// WallClockTimerWheel: the DES hashed timer wheel re-clocked to
// CLOCK_MONOTONIC for the real-time reactor.
//
// The runtime's timeout load is exactly the shape the wheel was built
// for — hundreds of thousands of short, bounded timers (TOF = 0.022 s,
// TOS = 0.021 s, inter-cycle delays up to δ_max = 10 s) that are
// usually cancelled before they fire — so instead of growing a second
// timer implementation, the reactor wraps a des::Scheduler (wheel
// backend) in a monotonic-clock seam:
//
//   * Time is seconds since construction, read from the steady
//     (CLOCK_MONOTONIC on Linux) clock — immune to NTP steps and
//     daylight-saving jumps.
//   * advance_to(t) fires every timer with deadline <= t. The caller
//     supplies t, so tests drive synthetic schedules deterministically
//     and can replay the exact same schedule through a plain DES
//     Scheduler to prove fire-order equivalence; the event loop calls
//     poll() = advance_to(now()).
//   * schedule_at() clamps deadlines that are already in the past
//     (computed before a suspend or a long stall) to "fire on the next
//     advance" instead of throwing — a wall-clock caller cannot
//     guarantee t >= now the way simulation code can.
//   * Large forward jumps (laptop suspend, debugger stop) are safe:
//     the underlying wheel window-jumps over silent gaps and the
//     coarse level cascades, so re-arming after hours of wall-clock
//     silence stays O(occupied slots).
//
// NOT thread-safe: owned and driven by one event-loop thread (the same
// single-threaded discipline as the DES scheduler). Cross-thread work
// enters the loop via EventLoop::post(), never by touching the wheel.
#pragma once

// NOLINT(no-wall-clock): this file IS the sanctioned monotonic-clock
// seam for src/des — see tools/lint.py WALL_CLOCK_EXEMPT.
#include <chrono>
#include <cstdint>

#include "des/scheduler.hpp"

namespace probemon::des {

class WallClockTimerWheel {
 public:
  using Callback = Scheduler::Callback;

  /// The wheel backend is mandatory here (the heap backend would work
  /// but defeats the point); defaults give 2^-8 s ticks, a 128 s fine
  /// span and ~36 h of coarse span — every runtime timeout is O(1).
  explicit WallClockTimerWheel(SchedulerConfig config = SchedulerConfig{});

  WallClockTimerWheel(const WallClockTimerWheel&) = delete;
  WallClockTimerWheel& operator=(const WallClockTimerWheel&) = delete;

  /// Seconds since construction, from the steady clock.
  double now() const;

  /// The instant advance_to() has fired up to (<= now()). Timestamps
  /// taken with now() may run ahead of this between polls.
  double advanced() const noexcept { return wheel_.now(); }

  /// Schedule `fn` at absolute time `t` (seconds on the now() time
  /// base). A deadline already in the past — computed before a stall
  /// or suspend — is clamped so it fires on the next advance.
  EventId schedule_at(double t, Callback fn);
  EventId schedule_after(double delay, Callback fn);

  /// Cancel a pending timer; O(1), slot reclaimed in place.
  bool cancel(EventId id) { return wheel_.cancel(id); }
  bool pending(EventId id) const noexcept { return wheel_.pending(id); }
  std::size_t pending_count() const noexcept { return wheel_.pending_count(); }

  /// Deadline of the earliest pending timer, or kTimeInfinity.
  double next_deadline() const { return wheel_.next_time(); }

  /// Fire every timer with deadline <= t, in (deadline, schedule order)
  /// — the same stable ordering as the DES wheel, verified by
  /// tests/test_wall_clock_wheel.cpp. Returns the number fired. `t`
  /// below the last advance is a no-op (monotonic re-arm after a
  /// backwards-looking caller is safe).
  std::uint64_t advance_to(double t);

  /// advance_to(now()) — the event loop's per-iteration tick.
  std::uint64_t poll() { return advance_to(now()); }

  /// poll()/epoll timeout until the next deadline, measured from `t`
  /// (pass now()): -1 when no timers are pending, 0 when one is
  /// already due, else the wait rounded up to a millisecond and capped
  /// at `max_ms`.
  int timeout_ms(double t, int max_ms = 1000) const;

  /// Timers fired over the wheel's lifetime.
  std::uint64_t fired_count() const noexcept { return wheel_.executed_count(); }

  /// The underlying wheel, for telemetry (residency gauges) and tests.
  const Scheduler& wheel() const noexcept { return wheel_; }

 private:
  Scheduler wheel_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace probemon::des
