#include "des/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "check/contract.hpp"

namespace probemon::des {

Scheduler::Scheduler(const SchedulerConfig& config) : config_(config) {
  if (config_.tick_bits < 0 || config_.tick_bits > 30) {
    throw std::invalid_argument("Scheduler: tick_bits must be in [0, 30]");
  }
  if (config_.wheel_bits < 6 || config_.wheel_bits > 22) {
    throw std::invalid_argument("Scheduler: wheel_bits must be in [6, 22]");
  }
  if (config_.coarse_bits != 0 &&
      (config_.coarse_bits < 6 || config_.coarse_bits > 22)) {
    throw std::invalid_argument(
        "Scheduler: coarse_bits must be 0 (disabled) or in [6, 22]");
  }
  tick_scale_ = std::ldexp(1.0, config_.tick_bits);
  if (config_.backend == SchedulerBackend::kWheel) {
    const std::size_t slots = std::size_t{1} << config_.wheel_bits;
    wheel_mask_ = slots - 1;
    slot_head_.assign(slots, kNil);
    slot_bits_.assign(slots / 64, 0);
    if (config_.coarse_bits != 0) {
      coarse_shift_ = config_.coarse_tick_bits < 0
                          ? std::min(13, config_.wheel_bits - 1)
                          : config_.coarse_tick_bits;
      // Strictly below wheel_bits: a cascaded coarse slot (2^shift fine
      // ticks) must fit inside the fine window with cur_tick_ parked one
      // tick before the slot's start.
      if (coarse_shift_ < 1 || coarse_shift_ >= config_.wheel_bits) {
        throw std::invalid_argument(
            "Scheduler: coarse_tick_bits must be in [1, wheel_bits - 1]");
      }
      const std::size_t cslots = std::size_t{1} << config_.coarse_bits;
      coarse_mask_ = cslots - 1;
      coarse_head_.assign(cslots, kNil);
      coarse_occ_.assign(cslots / 64, 0);
    }
  }
}

EventId Scheduler::schedule_at(Time t, Callback fn) {
  if (std::isnan(t) || t == kTimeInfinity) {
    throw std::logic_error("schedule_at: non-finite time");
  }
  if (t < now_) {
    throw std::logic_error("schedule_at: time in the past");
  }
  if (!fn) {
    throw std::logic_error("schedule_at: empty callback");
  }
  const std::uint32_t index = pool_.acquire();
  Event& ev = pool_[index];
  ev.time = t;
  ev.seq = next_seq_++;
  ev.tick = tick_of(t);
  ev.fn = std::move(fn);
  place(index);
  ++live_;
  if (live_ > high_water_) high_water_ = live_;
  return EventId(make_raw(index, ev.gen));
}

void Scheduler::place(std::uint32_t index) {
  Event& ev = pool_[index];
  if (config_.backend == SchedulerBackend::kHeap) {
    heap_push(heap_, index, Location::kHeap);
    return;
  }
  if (ev.tick <= cur_tick_) {
    // The event lands in the tick currently executing; it joins the
    // late-arrival heap, merged against the sorted run at pop time.
    heap_push(bucket_late_, index, Location::kBucketLate);
  } else if (ev.tick < cur_tick_ + wheel_span()) {
    wheel_insert(index);
  } else if (coarse_enabled() &&
             coarse_tick_of(ev.tick) <
                 coarse_tick_of(cur_tick_) + coarse_slot_count()) {
    coarse_insert(index);
  } else {
    heap_push(overflow_, index, Location::kOverflow);
  }
}

bool Scheduler::cancel(EventId id) {
  std::uint32_t index = 0;
  std::uint32_t gen = 0;
  if (!decode(id, index, gen)) return false;
  Event& ev = pool_[index];
  if (ev.gen != gen || ev.loc == Location::kFree) return false;
  switch (ev.loc) {
    case Location::kWheel:
      wheel_remove(index);
      break;
    case Location::kCoarse:
      coarse_remove(index);
      break;
    case Location::kOverflow:
      heap_remove_at(overflow_, ev.heap_pos);
      break;
    case Location::kBucket: {
      // O(run length), but cancelling inside the currently-executing
      // tick is rare; the shift keeps the run free of tombstones.
      const std::size_t pos = ev.heap_pos;
      bucket_run_.erase(bucket_run_.begin() +
                        static_cast<std::ptrdiff_t>(pos));
      for (std::size_t i = pos; i < bucket_run_.size(); ++i) {
        pool_[bucket_run_[i].index].heap_pos = static_cast<std::uint32_t>(i);
      }
      break;
    }
    case Location::kBucketLate:
      heap_remove_at(bucket_late_, ev.heap_pos);
      break;
    case Location::kHeap:
      heap_remove_at(heap_, ev.heap_pos);
      break;
    case Location::kFree:
      return false;
  }
  free_slot(index);
  --live_;
  return true;
}

bool Scheduler::pending(EventId id) const noexcept {
  std::uint32_t index = 0;
  std::uint32_t gen = 0;
  if (!decode(id, index, gen)) return false;
  const Event& ev = pool_[index];
  return ev.gen == gen && ev.loc != Location::kFree;
}

Time Scheduler::next_time() const {
  if (config_.backend == SchedulerBackend::kHeap) {
    return heap_.empty() ? kTimeInfinity : heap_.front().time;
  }
  if (!bucket_empty()) {
    Time best = kTimeInfinity;
    if (bucket_pos_ < bucket_run_.size()) best = bucket_run_[bucket_pos_].time;
    if (!bucket_late_.empty() && bucket_late_.front().time < best) {
      best = bucket_late_.front().time;
    }
    return best;
  }
  // Fine and coarse tick ranges can interleave until a cascade runs, so
  // the earliest pending event is the min over the next occupied fine
  // slot and the first occupied coarse slot. Overflow ticks lie beyond
  // both windows, so the heap root only matters when the wheels are
  // empty.
  Time best = kTimeInfinity;
  if (wheel_count_ > 0) {
    for (std::uint32_t i = slot_head_[next_occupied_slot()]; i != kNil;
         i = pool_[i].next) {
      if (pool_[i].time < best) best = pool_[i].time;
    }
  }
  if (coarse_count_ > 0) {
    // Coarse slots cover disjoint, increasing tick ranges, so the first
    // occupied slot holds the earliest coarse event (its list is
    // unsorted within the slot — scan it).
    for (std::uint32_t i = coarse_head_[next_occupied_coarse_slot()];
         i != kNil; i = pool_[i].next) {
      if (pool_[i].time < best) best = pool_[i].time;
    }
  }
  if (best != kTimeInfinity) return best;
  if (!overflow_.empty()) return overflow_.front().time;
  return kTimeInfinity;
}

bool Scheduler::refill_bucket() {
  while (bucket_empty()) {
    bucket_run_.clear();
    bucket_pos_ = 0;
    if (coarse_count_ > 0) {
      // Cascade-on-advance: when the first occupied coarse slot starts
      // at or before the next occupied fine tick, nothing in the fine
      // wheel precedes it — advance to just before the slot's window
      // and spill its events into the fine wheel (each lands strictly
      // inside the span because 2^coarse_shift < 2^wheel_bits).
      const std::size_t cslot = next_occupied_coarse_slot();
      const std::int64_t cstart =
          coarse_tick_of(pool_[coarse_head_[cslot]].tick) << coarse_shift_;
      const bool fine_first =
          wheel_count_ > 0 &&
          pool_[slot_head_[next_occupied_slot()]].tick < cstart;
      if (!fine_first) {
        cur_tick_ = cstart - 1;
        cascade_coarse_slot(cslot);
        promote_overflow();
        continue;
      }
    }
    if (wheel_count_ > 0) {
      const std::size_t slot = next_occupied_slot();
      cur_tick_ = pool_[slot_head_[slot]].tick;
      drain_slot_into_bucket(slot);
      promote_overflow();
    } else if (!overflow_.empty()) {
      // Window jump: fast-forward straight to the next far-future event.
      cur_tick_ = pool_[overflow_.front().index].tick;
      promote_overflow();
    } else {
      return false;
    }
  }
  return true;
}

bool Scheduler::fire_next(Time horizon) {
  std::uint32_t index = kNil;
  if (config_.backend == SchedulerBackend::kHeap) {
    if (heap_.empty()) return false;
    if (heap_.front().time > horizon) return false;
    index = heap_.front().index;
    heap_remove_at(heap_, 0);
  } else {
    if (!refill_bucket()) return false;
    bool from_late = bucket_pos_ >= bucket_run_.size();
    if (!from_late && !bucket_late_.empty() &&
        before(bucket_late_.front(), bucket_run_[bucket_pos_])) {
      from_late = true;
    }
    const HeapEntry& top =
        from_late ? bucket_late_.front() : bucket_run_[bucket_pos_];
    if (top.time > horizon) return false;
    index = top.index;
    if (from_late) {
      heap_remove_at(bucket_late_, 0);
    } else {
      ++bucket_pos_;
    }
  }
  Event& ev = pool_[index];
  PROBEMON_INVARIANT(ev.time >= now_,
                     "virtual time regressed: event at " << ev.time
                         << " popped while now() = " << now_);
  const Time t = ev.time;
  const std::uint64_t seq = ev.seq;
  Callback fn = std::move(ev.fn);
  free_slot(index);  // reclaim before running: the callback may reschedule
  --live_;
  now_ = t;
  ++executed_;
  if (exec_probe_) exec_probe_(t, seq);
  fn();
  return true;
}

std::uint64_t Scheduler::run_until(Time horizon) {
  std::uint64_t n = 0;
  while (fire_next(horizon)) ++n;
  if (now_ < horizon && horizon != kTimeInfinity) now_ = horizon;
  return n;
}

std::uint64_t Scheduler::run_all(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    if (++n > max_events) {
      throw std::runtime_error("Scheduler::run_all: event cap exceeded");
    }
  }
  return n;
}

void Scheduler::free_slot(std::uint32_t index) {
  Event& ev = pool_[index];
  ev.fn.reset();
  ++ev.gen;  // invalidates every outstanding EventId for this slot
  ev.loc = Location::kFree;
  ev.prev = kNil;
  ev.next = kNil;
  ev.heap_pos = kNil;
  pool_.release(index);
}

// --- indexed-heap primitives -------------------------------------------------

void Scheduler::heap_push(Heap& heap, std::uint32_t index, Location loc) {
  Event& ev = pool_[index];
  ev.loc = loc;
  ev.prev = kNil;
  ev.next = kNil;
  ev.heap_pos = static_cast<std::uint32_t>(heap.size());
  heap.push_back(HeapEntry{ev.time, ev.seq, index});
  sift_up(heap, heap.size() - 1);
}

void Scheduler::heap_remove_at(Heap& heap, std::size_t pos) {
  PROBEMON_CONTRACT(pos < heap.size(),
                    "heap_remove_at: position " << pos << " out of range");
  const HeapEntry last = heap.back();
  heap.pop_back();
  if (pos < heap.size()) {
    heap[pos] = last;
    pool_[last.index].heap_pos = static_cast<std::uint32_t>(pos);
    sift_down(heap, pos);
    sift_up(heap, pos);
  }
}

void Scheduler::sift_up(Heap& heap, std::size_t pos) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (!before(heap[pos], heap[parent])) break;
    std::swap(heap[pos], heap[parent]);
    pool_[heap[pos].index].heap_pos = static_cast<std::uint32_t>(pos);
    pool_[heap[parent].index].heap_pos = static_cast<std::uint32_t>(parent);
    pos = parent;
  }
}

void Scheduler::sift_down(Heap& heap, std::size_t pos) {
  const std::size_t n = heap.size();
  for (;;) {
    std::size_t best = pos;
    const std::size_t left = 2 * pos + 1;
    const std::size_t right = left + 1;
    if (left < n && before(heap[left], heap[best])) best = left;
    if (right < n && before(heap[right], heap[best])) best = right;
    if (best == pos) break;
    std::swap(heap[pos], heap[best]);
    pool_[heap[pos].index].heap_pos = static_cast<std::uint32_t>(pos);
    pool_[heap[best].index].heap_pos = static_cast<std::uint32_t>(best);
    pos = best;
  }
}

// --- wheel primitives --------------------------------------------------------

void Scheduler::wheel_insert(std::uint32_t index) {
  Event& ev = pool_[index];
  const std::size_t slot = slot_of(ev.tick);
  const std::uint32_t head = slot_head_[slot];
  PROBEMON_CONTRACT(head == kNil || pool_[head].tick == ev.tick,
                    "wheel slot " << slot << " mixes ticks " << ev.tick
                                  << " and " << pool_[head].tick);
  ev.loc = Location::kWheel;
  ev.heap_pos = kNil;
  ev.prev = kNil;
  ev.next = head;
  if (head != kNil) pool_[head].prev = index;
  slot_head_[slot] = index;
  slot_bits_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  ++wheel_count_;
}

void Scheduler::wheel_remove(std::uint32_t index) {
  Event& ev = pool_[index];
  const std::size_t slot = slot_of(ev.tick);
  if (ev.prev != kNil) {
    pool_[ev.prev].next = ev.next;
  } else {
    slot_head_[slot] = ev.next;
  }
  if (ev.next != kNil) pool_[ev.next].prev = ev.prev;
  if (slot_head_[slot] == kNil) {
    slot_bits_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  }
  --wheel_count_;
}

void Scheduler::drain_slot_into_bucket(std::size_t slot) {
  std::uint32_t i = slot_head_[slot];
  slot_head_[slot] = kNil;
  slot_bits_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  for (; i != kNil; i = pool_[i].next) {
    --wheel_count_;
    bucket_run_.push_back(HeapEntry{pool_[i].time, pool_[i].seq, i});
  }
  // The slot list is LIFO by schedule order, so the reverse is already
  // sorted by seq; a real sort is needed only when distinct times inside
  // the one tick arrived out of time order.
  std::reverse(bucket_run_.begin(), bucket_run_.end());
  if (!std::is_sorted(bucket_run_.begin(), bucket_run_.end(), before)) {
    std::sort(bucket_run_.begin(), bucket_run_.end(), before);
  }
  for (std::size_t pos = 0; pos < bucket_run_.size(); ++pos) {
    Event& ev = pool_[bucket_run_[pos].index];
    ev.loc = Location::kBucket;
    ev.prev = kNil;
    ev.next = kNil;
    ev.heap_pos = static_cast<std::uint32_t>(pos);
  }
}

void Scheduler::promote_overflow() {
  // The overflow heap is keyed (time, seq) and ticks are monotone in
  // time, so once the root's tick is outside the window nothing else
  // can be inside it.
  const std::int64_t fine_end = cur_tick_ + wheel_span();
  const std::int64_t window_end =
      coarse_enabled() ? coarse_window_end() : fine_end;
  while (!overflow_.empty()) {
    const std::uint32_t index = overflow_.front().index;
    const std::int64_t tick = pool_[index].tick;
    if (tick >= window_end) break;
    heap_remove_at(overflow_, 0);
    if (tick <= cur_tick_) {
      // Only reachable on a window jump, with the run empty: successive
      // overflow-root pops arrive in ascending (time, seq) order, so
      // appending keeps the run sorted.
      Event& ev = pool_[index];
      ev.loc = Location::kBucket;
      ev.heap_pos = static_cast<std::uint32_t>(bucket_run_.size());
      bucket_run_.push_back(HeapEntry{ev.time, ev.seq, index});
    } else if (tick < fine_end) {
      wheel_insert(index);
    } else {
      coarse_insert(index);
    }
  }
}

std::size_t Scheduler::next_occupied_slot() const {
  PROBEMON_CONTRACT(wheel_count_ > 0, "next_occupied_slot on empty wheel");
  const std::size_t nwords = slot_bits_.size();
  const std::size_t start = slot_of(cur_tick_ + 1);
  const std::size_t start_word = start >> 6;
  // Circular word scan: the wheel holds ticks in (cur_tick_, cur_tick_ +
  // span), so scanning slot positions circularly from cur_tick_ + 1
  // visits them in increasing-tick order.
  const std::uint64_t head_bits = slot_bits_[start_word] >> (start & 63);
  if (head_bits != 0) {
    return start + static_cast<std::size_t>(std::countr_zero(head_bits));
  }
  for (std::size_t step = 1; step <= nwords; ++step) {
    const std::size_t word = (start_word + step) & (nwords - 1);
    const std::uint64_t bits = slot_bits_[word];
    if (bits != 0) {
      return (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
    }
  }
  PROBEMON_CONTRACT(false, "occupancy bitmap inconsistent with wheel_count_");
  return 0;
}

// --- coarse (upper-level) wheel primitives -----------------------------------

void Scheduler::coarse_insert(std::uint32_t index) {
  Event& ev = pool_[index];
  const std::int64_t ctick = coarse_tick_of(ev.tick);
  const std::size_t slot = coarse_slot_of(ctick);
  const std::uint32_t head = coarse_head_[slot];
  // Residents satisfy coarse_tick_of(cur_tick_) < ctick <
  // coarse_tick_of(cur_tick_) + slot count, so — exactly like the fine
  // wheel — one slot never mixes two coarse ticks.
  PROBEMON_CONTRACT(head == kNil ||
                        coarse_tick_of(pool_[head].tick) == ctick,
                    "coarse slot " << slot << " mixes coarse ticks " << ctick
                                   << " and "
                                   << coarse_tick_of(pool_[head].tick));
  ev.loc = Location::kCoarse;
  ev.heap_pos = kNil;
  ev.prev = kNil;
  ev.next = head;
  if (head != kNil) pool_[head].prev = index;
  coarse_head_[slot] = index;
  coarse_occ_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  ++coarse_count_;
}

void Scheduler::coarse_remove(std::uint32_t index) {
  Event& ev = pool_[index];
  const std::size_t slot = coarse_slot_of(coarse_tick_of(ev.tick));
  if (ev.prev != kNil) {
    pool_[ev.prev].next = ev.next;
  } else {
    coarse_head_[slot] = ev.next;
  }
  if (ev.next != kNil) pool_[ev.next].prev = ev.prev;
  if (coarse_head_[slot] == kNil) {
    coarse_occ_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  }
  --coarse_count_;
}

void Scheduler::cascade_coarse_slot(std::size_t slot) {
  std::uint32_t i = coarse_head_[slot];
  coarse_head_[slot] = kNil;
  coarse_occ_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  while (i != kNil) {
    const std::uint32_t next = pool_[i].next;  // wheel_insert rewrites links
    --coarse_count_;
    wheel_insert(i);
    i = next;
  }
}

std::size_t Scheduler::next_occupied_coarse_slot() const {
  PROBEMON_CONTRACT(coarse_count_ > 0,
                    "next_occupied_coarse_slot on empty coarse wheel");
  const std::size_t nwords = coarse_occ_.size();
  // Residents are strictly after cur_tick_'s coarse tick, so a circular
  // scan from the following slot visits them in increasing-tick order.
  const std::size_t start = coarse_slot_of(coarse_tick_of(cur_tick_) + 1);
  const std::size_t start_word = start >> 6;
  const std::uint64_t head_bits = coarse_occ_[start_word] >> (start & 63);
  if (head_bits != 0) {
    return start + static_cast<std::size_t>(std::countr_zero(head_bits));
  }
  for (std::size_t step = 1; step <= nwords; ++step) {
    const std::size_t word = (start_word + step) & (nwords - 1);
    const std::uint64_t bits = coarse_occ_[word];
    if (bits != 0) {
      return (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
    }
  }
  PROBEMON_CONTRACT(false, "occupancy bitmap inconsistent with coarse_count_");
  return 0;
}

}  // namespace probemon::des
