#include "des/scheduler.hpp"

#include <cmath>

#include "check/contract.hpp"

namespace probemon::des {

EventId Scheduler::schedule_at(Time t, Callback fn) {
  if (std::isnan(t) || t == kTimeInfinity) {
    throw std::logic_error("schedule_at: non-finite time");
  }
  if (t < now_) {
    throw std::logic_error("schedule_at: time in the past");
  }
  if (!fn) {
    throw std::logic_error("schedule_at: empty callback");
  }
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{t, seq, seq, std::move(fn)});
  live_.insert(seq);
  if (live_.size() > high_water_) high_water_ = live_.size();
  return EventId(seq);
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  return live_.erase(id.raw_) > 0;
}

void Scheduler::skim() {
  while (!queue_.empty() && !live_.contains(queue_.top().id)) {
    queue_.pop();
  }
}

Time Scheduler::next_time() const {
  // const skim: we cannot pop from a const queue, so scan via copy-free
  // trick — the queue top may be tombstoned; fall back to conservative
  // answer by scanning. To keep this O(1) amortized we do the skim in the
  // non-const mutators and accept that next_time() on a dirty top is rare.
  auto* self = const_cast<Scheduler*>(this);
  self->skim();
  if (queue_.empty()) return kTimeInfinity;
  return queue_.top().time;
}

bool Scheduler::step() {
  skim();
  if (queue_.empty()) return false;
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  live_.erase(entry.id);
  PROBEMON_INVARIANT(entry.time >= now_,
                     "virtual time regressed: event at " << entry.time
                         << " popped while now() = " << now_);
  now_ = entry.time;
  ++executed_;
  entry.fn();
  return true;
}

std::uint64_t Scheduler::run_until(Time horizon) {
  std::uint64_t n = 0;
  for (;;) {
    skim();
    if (queue_.empty() || queue_.top().time > horizon) break;
    step();
    ++n;
  }
  if (now_ < horizon && horizon != kTimeInfinity) now_ = horizon;
  return n;
}

std::uint64_t Scheduler::run_all(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    if (++n > max_events) {
      throw std::runtime_error("Scheduler::run_all: event cap exceeded");
    }
  }
  return n;
}

}  // namespace probemon::des
