#include "des/simulation.hpp"

#include <chrono>

namespace probemon::des {

Simulation::Simulation(std::uint64_t seed, const SchedulerConfig& config)
    : scheduler_(config), rng_(seed) {}

// The wall clock is measured, never consumed: wall_seconds_ only feeds
// the events-per-second speed report, so determinism is unaffected.
std::uint64_t Simulation::run_until(Time horizon) {
  const auto wall_start = std::chrono::steady_clock::now();  // NOLINT(no-wall-clock): perf reporting only
  const std::uint64_t n = scheduler_.run_until(horizon);
  wall_seconds_ += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start)  // NOLINT(no-wall-clock): perf reporting only
                       .count();
  return n;
}

std::uint64_t Simulation::run_all() {
  const auto wall_start = std::chrono::steady_clock::now();  // NOLINT(no-wall-clock): perf reporting only
  const std::uint64_t n = scheduler_.run_all();
  wall_seconds_ += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start)  // NOLINT(no-wall-clock): perf reporting only
                       .count();
  return n;
}

Simulation::Periodic::Periodic(Scheduler& scheduler, Time period,
                               Simulation::PeriodicFn fn, Time until)
    : scheduler_(scheduler),
      period_(period),
      until_(until),
      fn_(std::move(fn)),
      timer_(scheduler, [this] { fire(); }) {
  if (!(period_ > 0)) throw std::logic_error("Periodic: period must be > 0");
  if (scheduler_.now() + period_ < until_) timer_.arm(period_);
}

void Simulation::Periodic::fire() {
  fn_(scheduler_.now());
  if (scheduler_.now() + period_ < until_) timer_.arm(period_);
}

std::unique_ptr<Simulation::Periodic> Simulation::every(
    Time period, PeriodicFn fn, Time until) {
  return std::make_unique<Periodic>(scheduler_, period, std::move(fn), until);
}

}  // namespace probemon::des
