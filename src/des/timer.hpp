// One-shot restartable timer built on the scheduler.
//
// Protocol state machines (probe timeouts, inter-probe delays) need a
// timer they can arm, re-arm and disarm without leaking stale callbacks.
// Timer guarantees: after disarm()/re-arm, a previously armed expiry will
// never fire. The owner must outlive the scheduler events, which holds
// naturally because nodes live for the whole simulation.
#pragma once

#include <utility>

#include "des/scheduler.hpp"

namespace probemon::des {

class Timer {
 public:
  /// `on_expire` is invoked at expiry with the timer already disarmed,
  /// so the callback may immediately re-arm.
  Timer(Scheduler& scheduler, InlineCallback on_expire)
      : scheduler_(scheduler), on_expire_(std::move(on_expire)) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { disarm(); }

  /// Arm (or re-arm) to expire `delay` seconds from now.
  void arm(Time delay) {
    disarm();
    auto fire = [this] {
      id_ = EventId{};
      on_expire_();
    };
    static_assert(InlineCallback::fits_inline<decltype(fire)>);
    id_ = scheduler_.schedule_after(delay, std::move(fire));
  }

  /// Arm to expire at an absolute time.
  void arm_at(Time t) {
    disarm();
    auto fire = [this] {
      id_ = EventId{};
      on_expire_();
    };
    static_assert(InlineCallback::fits_inline<decltype(fire)>);
    id_ = scheduler_.schedule_at(t, std::move(fire));
  }

  /// Cancel a pending expiry; harmless if not armed.
  void disarm() {
    if (id_.valid()) {
      scheduler_.cancel(id_);
      id_ = EventId{};
    }
  }

  bool armed() const { return scheduler_.pending(id_); }

 private:
  Scheduler& scheduler_;
  InlineCallback on_expire_;
  EventId id_;
};

}  // namespace probemon::des
