#include "des/wall_clock.hpp"

#include <cmath>

namespace probemon::des {

WallClockTimerWheel::WallClockTimerWheel(SchedulerConfig config)
    : wheel_((config.backend = SchedulerBackend::kWheel, config)),
      epoch_(std::chrono::steady_clock::now()) {}

double WallClockTimerWheel::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

EventId WallClockTimerWheel::schedule_at(double t, Callback fn) {
  // A deadline computed before a stall/suspend may already lie behind
  // the wheel's advance point; fire it on the next poll instead of
  // throwing (the DES "scheduling into the past" contract assumes a
  // caller-controlled clock, which wall time is not).
  const double floor = wheel_.now();
  return wheel_.schedule_at(t < floor ? floor : t, std::move(fn));
}

EventId WallClockTimerWheel::schedule_after(double delay, Callback fn) {
  if (!(delay >= 0)) delay = 0;  // clamp, same rationale as schedule_at
  return schedule_at(wheel_.now() + delay, std::move(fn));
}

std::uint64_t WallClockTimerWheel::advance_to(double t) {
  if (!(t > wheel_.now())) return 0;  // never run the wheel backwards
  return wheel_.run_until(t);
}

int WallClockTimerWheel::timeout_ms(double t, int max_ms) const {
  const double deadline = wheel_.next_time();
  if (deadline == kTimeInfinity) return -1;
  if (deadline <= t) return 0;
  const double ms = std::ceil((deadline - t) * 1000.0);
  if (ms >= static_cast<double>(max_ms)) return max_ms;
  return static_cast<int>(ms);
}

}  // namespace probemon::des
