// Discrete-event scheduler: the heart of the simulation substrate.
//
// Semantics (identical across both backends, verified bit-for-bit by the
// ordering-equivalence tests in tests/test_scheduler.cpp):
//   * Virtual time is a double in seconds, starting at 0.
//   * Events scheduled for the same instant fire in the order they were
//     scheduled (stable FIFO tie-break via a monotone sequence number).
//     This matters for protocol determinism: a probe and its timeout can
//     coincide, and the outcome must not depend on queue internals.
//   * Scheduling into the past (t < now) is a logic error and throws.
//   * run_until(h) horizon semantics are INCLUSIVE: every event with
//     time <= h fires, including events scheduled at exactly h during
//     the run; afterwards now() == h (for finite h).
//   * Cancellation is O(1) for near-future (wheel-resident) events and
//     O(log n) for far-future ones; either way the slot is reclaimed in
//     place — there are no tombstones to skim on pop.
//
// Implementation: a two-level hashed timer wheel with an indexed
// fallback heap. The protocol's delays are tightly bounded (TOF =
// 0.022 s, TOS = 0.021 s, δ ∈ [δ_min, δ_max] ≤ 10 s — the Varghese &
// Lauck sweet spot), so the overwhelming majority of events land in an
// O(1) fine-wheel slot within the 128 s default span. Longer-horizon
// timers (departure scripts, metrics flushes, δ_max-scale delays across
// fleet-sized models) land in a coarse upper wheel — 32 s slots, ~36 h
// span at the defaults — whose slots *cascade* into the fine wheel as
// the window advances. Only events beyond the coarse span wait in a
// binary min-heap of slot indices, keyed (time, seq), promoted as the
// window slides. Events for the tick currently executing live in the
// *bucket* — a sorted (time, seq) run consumed by cursor that restores
// exact ordering inside one tick. All structures hold 32-bit indices
// into a slab pool of event slots; callbacks are small-buffer-optimized
// InlineFunctions, so the steady-state probe path performs zero heap
// allocation (see docs/performance.md).
//
// The reference backend (SchedulerBackend::kHeap) bypasses the wheel
// and runs everything through one indexed heap — the pre-wheel ordering
// oracle for equivalence tests, and a sanity fallback.
//
// The scheduler is single-threaded by design; the MODEST/MOBIUS tool
// chain the paper used is likewise a sequential simulator. Concurrency
// lives in src/runtime and scenario::SweepRunner (one scheduler per
// worker), not here.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/inline_function.hpp"
#include "util/slab_pool.hpp"

namespace probemon::des {

/// Virtual simulation time, seconds.
using Time = double;

/// Sentinel for "never" / "no deadline".
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Move-only event callback with a 48-byte inline capture buffer.
/// Larger captures spill to the heap (and are counted via
/// util::inline_function_heap_allocations()); kernel and core call
/// sites static_assert fits_inline so spills cannot creep in.
using InlineCallback = util::InlineFunction<void()>;

enum class SchedulerBackend : std::uint8_t {
  kWheel,  ///< hashed timer wheel + overflow heap (default, fast path)
  kHeap,   ///< single indexed binary heap (reference ordering oracle)
};

struct SchedulerConfig {
  SchedulerBackend backend = SchedulerBackend::kWheel;
  /// Wheel tick granularity = 2^-tick_bits seconds. Default 2^-8 s
  /// (~3.9 ms): fine enough that probe timeouts (21-22 ms) spread over
  /// several slots, coarse enough that a 10 s SAPP delay stays in-span.
  int tick_bits = 8;
  /// Wheel size = 2^wheel_bits slots. Default 32768 slots * 2^-8 s
  /// = 128 s span — every bounded protocol delay, plus the coarse
  /// scenario scripting (departures, outages) common in experiments,
  /// lands in an O(1) slot. Cost: 132 KiB per scheduler, touched
  /// sparsely (only occupied slots are ever read).
  int wheel_bits = 15;
  /// Upper (coarse) wheel level: one coarse slot covers
  /// 2^coarse_tick_bits fine ticks. -1 resolves to
  /// min(13, wheel_bits - 1) — 32 s per coarse slot at the defaults.
  /// The resolved value must stay strictly below wheel_bits so a
  /// cascaded coarse slot always fits inside the fine window.
  int coarse_tick_bits = -1;
  /// Coarse wheel size = 2^coarse_bits slots; 0 disables the coarse
  /// level (fine wheel + overflow heap only, the pre-hierarchical
  /// layout). Default 4096 slots * 32 s ≈ 36 h span: δ_max-scale
  /// timers across 10^6 entities, plus multi-hour departure scripts,
  /// stay O(1) instead of churning the overflow heap.
  int coarse_bits = 12;
};

/// Opaque handle to a scheduled event, usable for cancellation.
/// Value 0 is reserved as "invalid handle".
class EventId {
 public:
  constexpr EventId() noexcept = default;
  constexpr bool valid() const noexcept { return raw_ != 0; }
  constexpr bool operator==(const EventId&) const noexcept = default;

 private:
  friend class Scheduler;
  explicit constexpr EventId(std::uint64_t raw) noexcept : raw_(raw) {}
  std::uint64_t raw_ = 0;
};

/// Event queue with stable same-time ordering and in-place reclamation.
class Scheduler {
 public:
  using Callback = InlineCallback;

  Scheduler() : Scheduler(SchedulerConfig{}) {}
  explicit Scheduler(const SchedulerConfig& config);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current virtual time.
  Time now() const noexcept { return now_; }

  SchedulerBackend backend() const noexcept { return config_.backend; }

  /// Schedule `fn` at absolute time `t >= now()`. Throws std::logic_error
  /// on scheduling into the past or at a non-finite time.
  EventId schedule_at(Time t, Callback fn);

  /// Schedule `fn` after a non-negative delay.
  EventId schedule_after(Time delay, Callback fn) {
    if (!(delay >= 0)) throw std::logic_error("schedule_after: negative delay");
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Returns true if the event was pending (and is
  /// now guaranteed not to fire), false if unknown/already fired/cancelled.
  /// The event's slot is reclaimed immediately (generation-tagged, so the
  /// stale handle can never alias a later event).
  bool cancel(EventId id);

  /// True if the event is still pending. O(1): a pool index + generation
  /// check, no hashing.
  bool pending(EventId id) const noexcept;

  /// Number of live pending events.
  std::size_t pending_count() const noexcept { return live_; }
  bool empty() const noexcept { return live_ == 0; }

  /// Time of the next live event, or kTimeInfinity. Non-mutating.
  Time next_time() const;

  /// Execute the single next event. Returns false if none remain.
  bool step() { return fire_next(kTimeInfinity); }

  /// Run events with time <= horizon (INCLUSIVE — an event landing
  /// exactly on the horizon fires, even when scheduled during the run);
  /// afterwards now() == horizon for finite horizons. Returns the number
  /// of events executed.
  std::uint64_t run_until(Time horizon);

  /// Drain the queue completely (with a safety cap on executed events;
  /// throws std::runtime_error if exceeded, catching runaway models).
  std::uint64_t run_all(std::uint64_t max_events = 500'000'000ULL);

  /// Total events executed over the scheduler's lifetime.
  std::uint64_t executed_count() const noexcept { return executed_; }

  /// Peak live pending-event count over the scheduler's lifetime (queue
  /// depth high-water mark; a capacity-planning signal for big models).
  std::size_t queue_high_water() const noexcept { return high_water_; }

  /// Event-slot pool occupancy (telemetry: slabs only ever grow, so a
  /// steady-state model must show a flat pool_slots()).
  std::size_t pool_slots() const noexcept { return pool_.capacity(); }
  std::size_t pool_in_use() const noexcept { return pool_.in_use(); }

  /// Residency split across the wheel hierarchy (telemetry/tests): with
  /// the coarse level enabled, the overflow heap should only ever hold
  /// events beyond the coarse span (~36 h at the defaults).
  std::size_t fine_resident() const noexcept { return wheel_count_; }
  std::size_t coarse_resident() const noexcept { return coarse_count_; }
  std::size_t overflow_resident() const noexcept { return overflow_.size(); }

  /// Test/trace hook invoked as (time, seq) immediately before each
  /// event executes. Used by the ordering-equivalence tests to diff the
  /// wheel path against the reference heap path bit-for-bit.
  using ExecutionProbe = util::InlineFunction<void(Time, std::uint64_t)>;
  void set_execution_probe(ExecutionProbe probe) {
    exec_probe_ = std::move(probe);
  }

 private:
  enum class Location : std::uint8_t {
    kFree,
    kWheel,       ///< intrusive doubly-linked list in a fine wheel slot
    kCoarse,      ///< intrusive doubly-linked list in a coarse wheel slot
    kOverflow,    ///< indexed overflow heap (tick beyond both windows)
    kBucket,      ///< sorted run of the tick currently executing
    kBucketLate,  ///< heap of events scheduled into the current tick mid-run
    kHeap,        ///< single heap of the kHeap reference backend
  };

  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Event {
    Time time = 0;
    std::uint64_t seq = 0;
    std::int64_t tick = 0;
    Callback fn;
    std::uint32_t gen = 0;
    std::uint32_t prev = kNil;      ///< wheel list links
    std::uint32_t next = kNil;
    std::uint32_t heap_pos = kNil;  ///< position in its indexed heap
    Location loc = Location::kFree;
  };

  /// Heap entries carry their sort key inline so sift comparisons stay
  /// within one contiguous array instead of chasing pool indices (the
  /// difference is ~2x on heap-heavy workloads).
  struct HeapEntry {
    Time time = 0;
    std::uint64_t seq = 0;
    std::uint32_t index = kNil;
  };
  using Heap = std::vector<HeapEntry>;

  // --- id packing -----------------------------------------------------------
  static std::uint64_t make_raw(std::uint32_t index, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(gen) << 32) |
           (static_cast<std::uint64_t>(index) + 1);
  }
  bool decode(EventId id, std::uint32_t& index, std::uint32_t& gen) const {
    if (!id.valid()) return false;
    index = static_cast<std::uint32_t>(id.raw_ & 0xffffffffu) - 1;
    gen = static_cast<std::uint32_t>(id.raw_ >> 32);
    return index < pool_.capacity();
  }

  // --- tick arithmetic ------------------------------------------------------
  std::int64_t tick_of(Time t) const noexcept {
    const double scaled = t * tick_scale_;
    // Clamp absurdly distant times; ordering never depends on the tick
    // (the heaps key on exact (time, seq)), only window placement does.
    constexpr double kClamp = 4.0e18;
    return scaled >= kClamp ? static_cast<std::int64_t>(4'000'000'000'000'000'000LL)
                            : static_cast<std::int64_t>(scaled);
  }
  std::int64_t wheel_span() const noexcept {
    return std::int64_t{1} << config_.wheel_bits;
  }
  std::size_t slot_of(std::int64_t tick) const noexcept {
    return static_cast<std::size_t>(tick) & wheel_mask_;
  }
  bool coarse_enabled() const noexcept { return coarse_shift_ > 0; }
  /// Coarse tick containing a fine tick (coarse level enabled only).
  std::int64_t coarse_tick_of(std::int64_t tick) const noexcept {
    return tick >> coarse_shift_;
  }
  std::int64_t coarse_slot_count() const noexcept {
    return static_cast<std::int64_t>(coarse_head_.size());
  }
  std::size_t coarse_slot_of(std::int64_t ctick) const noexcept {
    return static_cast<std::size_t>(ctick) & coarse_mask_;
  }
  /// First fine tick NOT covered by the coarse window: events at or past
  /// it wait in the overflow heap.
  std::int64_t coarse_window_end() const noexcept {
    return (coarse_tick_of(cur_tick_) + coarse_slot_count()) << coarse_shift_;
  }

  // --- indexed-heap primitives (keyed by (time, seq), positions written
  // back into Event::heap_pos) ----------------------------------------------
  static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  void heap_push(Heap& heap, std::uint32_t index, Location loc);
  void heap_remove_at(Heap& heap, std::size_t pos);
  void sift_up(Heap& heap, std::size_t pos);
  void sift_down(Heap& heap, std::size_t pos);

  // --- wheel primitives -----------------------------------------------------
  void wheel_insert(std::uint32_t index);
  void wheel_remove(std::uint32_t index);
  void drain_slot_into_bucket(std::size_t slot);
  void promote_overflow();
  std::size_t next_occupied_slot() const;  ///< requires wheel_count_ > 0

  // --- coarse (upper-level) wheel primitives --------------------------------
  void coarse_insert(std::uint32_t index);
  void coarse_remove(std::uint32_t index);
  /// Move every event of one coarse slot down into the fine wheel. The
  /// caller has already advanced cur_tick_ to just before the slot's
  /// window, so each event lands strictly inside the fine span.
  void cascade_coarse_slot(std::size_t slot);
  std::size_t next_occupied_coarse_slot() const;  ///< requires coarse_count_ > 0

  // --- core paths -----------------------------------------------------------
  void place(std::uint32_t index);
  bool bucket_empty() const noexcept {
    return bucket_pos_ >= bucket_run_.size() && bucket_late_.empty();
  }
  bool refill_bucket();
  bool fire_next(Time horizon);
  void free_slot(std::uint32_t index);

  SchedulerConfig config_;
  double tick_scale_ = 256.0;  ///< 2^tick_bits
  std::size_t wheel_mask_ = 0;

  util::SlabPool<Event> pool_;
  /// The tick being executed, as a sorted run consumed front-to-back
  /// (a drained wheel slot is LIFO by seq, so one reverse — plus a sort
  /// only when times inside the tick interleave — yields ascending
  /// (time, seq) order; pops are then cursor bumps, not heap sifts).
  std::vector<HeapEntry> bucket_run_;
  std::size_t bucket_pos_ = 0;
  /// Events scheduled *into* the current tick while it executes (e.g.
  /// zero-delay sends). Rare, so a heap is fine; pops take the min of
  /// this root and the run cursor.
  Heap bucket_late_;
  Heap overflow_;          ///< events beyond the wheel window
  Heap heap_;              ///< kHeap backend: the only structure in use
  std::vector<std::uint32_t> slot_head_;  ///< wheel slot -> list head
  std::vector<std::uint64_t> slot_bits_;  ///< occupancy bitmap over slots
  std::size_t wheel_count_ = 0;
  std::vector<std::uint32_t> coarse_head_;  ///< coarse slot -> list head
  std::vector<std::uint64_t> coarse_occ_;   ///< occupancy bitmap
  std::size_t coarse_count_ = 0;
  int coarse_shift_ = 0;  ///< log2 fine ticks per coarse slot; 0 = disabled
  std::size_t coarse_mask_ = 0;
  std::int64_t cur_tick_ = 0;

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;
  ExecutionProbe exec_probe_;
};

}  // namespace probemon::des
