// Discrete-event scheduler: the heart of the simulation substrate.
//
// Semantics:
//   * Virtual time is a double in seconds, starting at 0.
//   * Events scheduled for the same instant fire in the order they were
//     scheduled (stable FIFO tie-break via a monotone sequence number).
//     This matters for protocol determinism: a probe and its timeout can
//     coincide, and the outcome must not depend on heap internals.
//   * Scheduling into the past (t < now) is a logic error and throws.
//   * Cancellation is O(1) amortized (lazy tombstoning: cancelled events
//     stay in the heap and are skipped on pop).
//
// The scheduler is single-threaded by design; the MODEST/MOBIUS tool chain
// the paper used is likewise a sequential simulator. Concurrency lives in
// src/runtime, not here.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace probemon::des {

/// Virtual simulation time, seconds.
using Time = double;

/// Sentinel for "never" / "no deadline".
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Opaque handle to a scheduled event, usable for cancellation.
/// Value 0 is reserved as "invalid handle".
class EventId {
 public:
  constexpr EventId() noexcept = default;
  constexpr bool valid() const noexcept { return raw_ != 0; }
  constexpr bool operator==(const EventId&) const noexcept = default;

 private:
  friend class Scheduler;
  explicit constexpr EventId(std::uint64_t raw) noexcept : raw_(raw) {}
  std::uint64_t raw_ = 0;
};

/// Event priority queue with stable same-time ordering and lazy cancel.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current virtual time.
  Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t >= now()`. Throws std::logic_error
  /// on scheduling into the past or at a non-finite time.
  EventId schedule_at(Time t, Callback fn);

  /// Schedule `fn` after a non-negative delay.
  EventId schedule_after(Time delay, Callback fn) {
    if (!(delay >= 0)) throw std::logic_error("schedule_after: negative delay");
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Returns true if the event was pending (and is
  /// now guaranteed not to fire), false if unknown/already fired/cancelled.
  bool cancel(EventId id);

  /// True if the event is still pending.
  bool pending(EventId id) const {
    return id.valid() && live_.contains(id.raw_);
  }

  /// Number of live (non-cancelled) pending events.
  std::size_t pending_count() const noexcept { return live_.size(); }
  bool empty() const noexcept { return live_.empty(); }

  /// Time of the next live event, or kTimeInfinity.
  Time next_time() const;

  /// Execute the single next event. Returns false if none remain.
  bool step();

  /// Run events with time <= horizon; afterwards now() == min(horizon,
  /// time the queue drained). Events scheduled DURING the run are honored
  /// if they fall inside the horizon. Returns number of events executed.
  std::uint64_t run_until(Time horizon);

  /// Drain the queue completely (with a safety cap on executed events;
  /// throws std::runtime_error if exceeded, catching runaway models).
  std::uint64_t run_all(std::uint64_t max_events = 500'000'000ULL);

  /// Total events executed over the scheduler's lifetime.
  std::uint64_t executed_count() const noexcept { return executed_; }

  /// Peak live pending-event count over the scheduler's lifetime (queue
  /// depth high-water mark; a capacity-planning signal for big models).
  std::size_t queue_high_water() const noexcept { return high_water_; }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;  // tie-break: lower seq fires first
    std::uint64_t id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pop tombstoned entries off the top.
  void skim();

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> live_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace probemon::des
