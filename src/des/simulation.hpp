// Simulation facade: scheduler + root RNG + run control.
//
// A Simulation owns the clock and the root random stream. Every model
// component forks its own child stream from the root (see util::Rng::fork)
// so results are reproducible and insensitive to component creation order.
#pragma once

#include <cstdint>
#include <memory>

#include "des/scheduler.hpp"
#include "des/timer.hpp"
#include "util/rng.hpp"

namespace probemon::des {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 42,
                      const SchedulerConfig& config = SchedulerConfig{});

  Scheduler& scheduler() noexcept { return scheduler_; }
  const Scheduler& scheduler() const noexcept { return scheduler_; }
  Time now() const noexcept { return scheduler_.now(); }

  /// Root RNG; components should fork() from it rather than draw directly.
  util::Rng& rng() noexcept { return rng_; }

  /// Fork a named child stream (deterministic in the name).
  util::Rng fork_rng(std::string_view tag) const { return rng_.fork(tag); }

  /// Convenience scheduling.
  EventId at(Time t, Scheduler::Callback fn) {
    return scheduler_.schedule_at(t, std::move(fn));
  }
  EventId after(Time delay, Scheduler::Callback fn) {
    return scheduler_.schedule_after(delay, std::move(fn));
  }

  /// Repeat `fn` every `period` seconds, first firing at now()+period,
  /// until `until` (exclusive) or forever if until == kTimeInfinity.
  /// Returns a handle that cancels the repetition when destroyed.
  class Periodic;
  using PeriodicFn = util::InlineFunction<void(Time)>;
  std::unique_ptr<Periodic> every(Time period, PeriodicFn fn,
                                  Time until = kTimeInfinity);

  /// Run until virtual time `horizon`.
  std::uint64_t run_until(Time horizon);
  /// Run until the event queue drains.
  std::uint64_t run_all();

  /// Wall-clock seconds spent inside run_until()/run_all() so far.
  double wall_seconds() const noexcept { return wall_seconds_; }
  /// Virtual seconds simulated per wall-clock second (how much faster
  /// than real time the model runs); NaN before the first run call.
  double speedup_ratio() const noexcept {
    return scheduler_.now() / wall_seconds_;
  }

 private:
  Scheduler scheduler_;
  util::Rng rng_;
  double wall_seconds_ = 0.0;
};

/// Handle for a periodic activity; destroying it stops the repetition.
class Simulation::Periodic {
 public:
  Periodic(Scheduler& scheduler, Time period, Simulation::PeriodicFn fn,
           Time until);
  ~Periodic() = default;
  Periodic(const Periodic&) = delete;
  Periodic& operator=(const Periodic&) = delete;

  void stop() { timer_.disarm(); }

 private:
  void fire();

  Scheduler& scheduler_;
  Time period_;
  Time until_;
  Simulation::PeriodicFn fn_;
  Timer timer_;
};

}  // namespace probemon::des
