#include "check/invariant_auditor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/dcpp_device.hpp"

namespace probemon::check {

namespace {
constexpr std::size_t kMaxReports = 32;

std::size_t index_of(Invariant invariant) noexcept {
  return static_cast<std::size_t>(invariant);
}
}  // namespace

const char* to_string(Invariant invariant) noexcept {
  switch (invariant) {
    case Invariant::kDcppNtMonotone: return "dcpp_nt_monotone";
    case Invariant::kDcppGrantFormula: return "dcpp_grant_formula";
    case Invariant::kSappDelayClamp: return "sapp_delay_clamp";
    case Invariant::kCycleOrder: return "cycle_order";
    case Invariant::kCycleOverrun: return "cycle_overrun";
    case Invariant::kAbsenceNotExhausted: return "absence_not_exhausted";
    case Invariant::kDeviceLoad: return "device_load";
    case Invariant::kCounterConsistency: return "counter_consistency";
    case Invariant::kTraceShape: return "trace_shape";
    case Invariant::kCount_: break;
  }
  return "?";
}

InvariantAuditor::InvariantAuditor(AuditConfig config,
                                   telemetry::Registry* registry)
    : config_(config) {
  config_.timeouts.validate();
  if (config_.audit_dcpp) config_.dcpp.validate();
  if (registry) {
    for (std::size_t i = 0; i < kInvariantCount; ++i) {
      registry_counts_[i] = &registry->counter(
          "probemon_invariant_violations_total",
          "Protocol invariant violations detected by the InvariantAuditor",
          {{"invariant", to_string(static_cast<Invariant>(i))}});
    }
  }
}

// Safe to call with or without mutex_ held: the tally is atomic, the
// registry counter is atomic, and the diagnostics ring has its own lock.
void InvariantAuditor::record(Invariant invariant, std::string detail) {
  const std::size_t i = index_of(invariant);
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  if (registry_counts_[i]) registry_counts_[i]->inc();
  std::ostringstream line;
  line << to_string(invariant) << ": " << detail;
  util::MutexLock lock(reports_mutex_);
  reports_.push_back(line.str());
  if (reports_.size() > kMaxReports) reports_.pop_front();
}

void InvariantAuditor::on_probe_sent(net::NodeId cp, net::NodeId device,
                                     double t, std::uint8_t attempt) {
  util::MutexLock lock(mutex_);
  ++devices_[device].probes_sent_to;
  CycleState& cycle = cycles_[cp];
  if (attempt == 0) {
    // A fresh cycle; an unresolved previous one was legally aborted
    // (CP stopped, or absence learned via gossip).
    cycle.open = true;
    cycle.sends = 1;
    cycle.last_attempt = 0;
  } else if (!cycle.open || attempt != cycle.last_attempt + 1) {
    std::ostringstream out;
    out << "cp " << cp << " sent attempt " << int(attempt) << " at t=" << t
        << (cycle.open ? " out of order (previous attempt "
                       : " with no cycle in flight (previous attempt ")
        << int(cycle.last_attempt) << ")";
    record(Invariant::kCycleOrder, out.str());
    cycle.open = true;
    cycle.last_attempt = attempt;  // resynchronize, don't cascade
    ++cycle.sends;
  } else {
    cycle.last_attempt = attempt;
    ++cycle.sends;
  }
  if (cycle.open && cycle.sends > max_sends()) {
    std::ostringstream out;
    out << "cp " << cp << " sent " << cycle.sends
        << " probes in one cycle at t=" << t << " (max " << max_sends()
        << ")";
    record(Invariant::kCycleOverrun, out.str());
  }
}

void InvariantAuditor::on_probe_received(net::NodeId device, net::NodeId /*cp*/,
                                         double t) {
  util::MutexLock lock(mutex_);
  DeviceState& state = devices_[device];
  ++state.probes_received;
  if (state.probes_received > state.probes_sent_to) {
    std::ostringstream out;
    out << "device " << device << " received " << state.probes_received
        << " probes but only " << state.probes_sent_to
        << " were sent to it (t=" << t << ")";
    record(Invariant::kCounterConsistency, out.str());
  }
  if (config_.load_l_nom > 0) {
    state.recent_receives.push_back(t);
    const double horizon = t - config_.load_window;
    while (!state.recent_receives.empty() &&
           state.recent_receives.front() < horizon) {
      state.recent_receives.pop_front();
    }
    const double limit =
        config_.load_beta * config_.load_l_nom * config_.load_window +
        config_.load_slack_probes;
    if (static_cast<double>(state.recent_receives.size()) > limit) {
      std::ostringstream out;
      out << "device " << device << " saw " << state.recent_receives.size()
          << " probes in the last " << config_.load_window << "s at t=" << t
          << " (limit " << limit << " = beta*L_nom*window + slack)";
      record(Invariant::kDeviceLoad, out.str());
    }
  }
}

void InvariantAuditor::on_cycle_success(net::NodeId cp, net::NodeId /*device*/,
                                        double t, std::uint8_t attempts) {
  util::MutexLock lock(mutex_);
  auto it = cycles_.find(cp);
  if (it == cycles_.end()) return;  // attached mid-stream; cannot judge
  CycleState& cycle = it->second;
  if (!cycle.open) {
    std::ostringstream out;
    out << "cp " << cp << " reported cycle success at t=" << t
        << " with no cycle in flight";
    record(Invariant::kCycleOrder, out.str());
  } else if (attempts > cycle.sends) {
    std::ostringstream out;
    out << "cp " << cp << " reported success after " << int(attempts)
        << " attempts at t=" << t << " but only " << cycle.sends
        << " probes were sent";
    record(Invariant::kCycleOrder, out.str());
  }
  cycle.open = false;
}

void InvariantAuditor::on_delay_updated(net::NodeId cp, double t,
                                        double delay) {
  if (!std::isfinite(delay) || delay < 0) {
    std::ostringstream out;
    out << "cp " << cp << " chose a non-finite or negative delay " << delay
        << " at t=" << t;
    record(Invariant::kSappDelayClamp, out.str());
    return;
  }
  if (!config_.audit_delay_clamp) return;
  if (delay < config_.delta_min - config_.epsilon ||
      delay > config_.delta_max + config_.epsilon) {
    std::ostringstream out;
    out << "cp " << cp << " chose delay " << delay << " at t=" << t
        << " outside [" << config_.delta_min << ", " << config_.delta_max
        << "]";
    record(Invariant::kSappDelayClamp, out.str());
  }
}

void InvariantAuditor::on_device_declared_absent(net::NodeId cp,
                                                 net::NodeId /*device*/,
                                                 double t) {
  util::MutexLock lock(mutex_);
  auto it = cycles_.find(cp);
  if (it == cycles_.end()) return;  // attached mid-stream
  CycleState& cycle = it->second;
  if (!cycle.open) {
    std::ostringstream out;
    out << "cp " << cp << " declared absence at t=" << t
        << " with no cycle in flight";
    record(Invariant::kAbsenceNotExhausted, out.str());
  } else if (cycle.sends < max_sends()) {
    std::ostringstream out;
    out << "cp " << cp << " declared absence at t=" << t << " after only "
        << cycle.sends << " probes (an exhausted cycle sends " << max_sends()
        << ")";
    record(Invariant::kAbsenceNotExhausted, out.str());
  }
  cycle.open = false;
}

void InvariantAuditor::on_slot_granted(net::NodeId device, double t,
                                       double nt_before, double nt_after) {
  if (!config_.audit_dcpp) return;
  const double eps = config_.epsilon;
  double previous_slot = 0.0;
  bool have_previous = false;
  {
    util::MutexLock lock(mutex_);
    DeviceState& state = devices_[device];
    previous_slot = state.frontier;
    have_previous = state.frontier_known;
    state.frontier = std::max(state.frontier, nt_after);
    state.frontier_known = true;
  }

  const double frontier = std::max(nt_before, t);
  if (nt_after + eps < frontier ||
      (have_previous && nt_after + eps < previous_slot)) {
    std::ostringstream out;
    out << "device " << device << " granted slot " << nt_after
        << " behind the schedule frontier (max{nt=" << nt_before
        << ", t=" << t << "}";
    if (have_previous) out << ", previous slot " << previous_slot;
    out << ")";
    record(Invariant::kDcppNtMonotone, out.str());
    return;  // the formula checks below would only echo the same defect
  }

  const double wait = nt_after - t;
  const double expected = core::DcppDevice::grant(nt_before, t, config_.dcpp);
  if (std::abs(wait - expected) > eps) {
    std::ostringstream out;
    out << "device " << device << " granted wait " << wait << " at t=" << t
        << " but Delta(nt=" << nt_before << ", t) requires " << expected;
    record(Invariant::kDcppGrantFormula, out.str());
  }
  if (wait + eps < config_.dcpp.d_min) {
    std::ostringstream out;
    out << "device " << device << " granted wait " << wait
        << " below d_min=" << config_.dcpp.d_min
        << " (paper (ii): no CP probes faster than f_max)";
    record(Invariant::kDcppGrantFormula, out.str());
  }
  if (have_previous && nt_after - previous_slot + eps < config_.dcpp.delta_min) {
    std::ostringstream out;
    out << "device " << device << " granted slots " << previous_slot
        << " and " << nt_after << " closer than delta_min="
        << config_.dcpp.delta_min << " (paper (i): load bounded by L_nom)";
    record(Invariant::kDcppGrantFormula, out.str());
  }
}

void InvariantAuditor::audit_cycle(const telemetry::ProbeCycleTrace& trace) {
  const double eps = config_.epsilon;
  auto shape = [&](const std::string& what) {
    std::ostringstream out;
    out << "cycle " << trace.cycle << " (cp " << trace.cp << ", device "
        << trace.device << "): " << what;
    record(Invariant::kTraceShape, out.str());
  };

  if (trace.attempts == 0) {
    shape("zero attempts recorded");
    return;
  }
  if (trace.attempts > max_sends()) {
    std::ostringstream out;
    out << "cycle " << trace.cycle << " (cp " << trace.cp << ") used "
        << int(trace.attempts) << " probes (max " << max_sends() << ")";
    record(Invariant::kCycleOverrun, out.str());
  }
  if (!trace.success && trace.attempts < max_sends()) {
    std::ostringstream out;
    out << "cycle " << trace.cycle << " (cp " << trace.cp
        << ") declared absence after only " << int(trace.attempts)
        << " probes (an exhausted cycle sends " << max_sends() << ")";
    record(Invariant::kAbsenceNotExhausted, out.str());
  }
  if (trace.end + eps < trace.start) shape("ends before it starts");
  if (trace.rtt < 0) shape("negative rtt");
  if (!trace.sends.empty()) {
    if (trace.sends.size() != trace.attempts) {
      shape("send-instant count does not match attempts");
    }
    if (std::abs(trace.sends.front() - trace.start) > eps) {
      shape("first send instant differs from cycle start");
    }
    if (!std::is_sorted(trace.sends.begin(), trace.sends.end())) {
      shape("send instants out of order");
    }
    if (trace.end + eps < trace.sends.back()) {
      shape("resolution precedes the last send");
    }
    if (trace.success && trace.rtt > trace.end - trace.sends.back() + eps) {
      shape("rtt exceeds the last-send-to-resolution span");
    }
  }
}

void InvariantAuditor::audit_tracer(const telemetry::ProbeCycleTracer& tracer) {
  const auto retained = tracer.snapshot();
  if (retained.size() > tracer.capacity()) {
    std::ostringstream out;
    out << "tracer retains " << retained.size()
        << " records beyond its capacity " << tracer.capacity();
    record(Invariant::kTraceShape, out.str());
  }
  if (tracer.recorded() < retained.size()) {
    std::ostringstream out;
    out << "tracer recorded() = " << tracer.recorded()
        << " below retained count " << retained.size();
    record(Invariant::kTraceShape, out.str());
  }
}

std::uint64_t InvariantAuditor::violations(Invariant invariant) const noexcept {
  return counts_[index_of(invariant)].load(std::memory_order_relaxed);
}

std::uint64_t InvariantAuditor::total_violations() const noexcept {
  std::uint64_t total = 0;
  for (const auto& count : counts_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::string> InvariantAuditor::recent_reports() const {
  util::MutexLock lock(reports_mutex_);
  return {reports_.begin(), reports_.end()};
}

std::string InvariantAuditor::summary() const {
  std::ostringstream out;
  out << "invariant violations: " << total_violations();
  for (std::size_t i = 0; i < kInvariantCount; ++i) {
    const std::uint64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n > 0) {
      out << "\n  " << to_string(static_cast<Invariant>(i)) << ": " << n;
    }
  }
  for (const auto& report : recent_reports()) {
    out << "\n  - " << report;
  }
  return out.str();
}

}  // namespace probemon::check
