// Executable contracts: the PROBEMON_INVARIANT / PROBEMON_CONTRACT
// macro family.
//
// The paper's correctness claims are invariants (DCPP's schedule
// frontier is monotone, SAPP's delay stays clamped, a probe cycle sends
// at most 1 + max_retransmissions probes). These macros let the code
// state such properties where they are established, at zero cost in
// release builds:
//
//   * default build: both macros expand to ((void)0) — the condition is
//     NOT evaluated, so checks may be arbitrarily expensive;
//   * -DPROBEMON_CHECKED=ON: a failed check prints a diagnostic
//     (file:line, the expression, a streamed detail message) and calls
//     the installed failure handler, which aborts by default.
//
// PROBEMON_INVARIANT states a property of internal state ("this cannot
// happen if the implementation is right"); PROBEMON_CONTRACT states a
// caller obligation at an API boundary. Mechanically they differ only
// in the diagnostic prefix.
//
// The detail argument is an ostream chain, evaluated only on failure:
//
//   PROBEMON_INVARIANT(nt >= frontier,
//                      "DCPP frontier regressed: " << nt << " < " << frontier);
//
// Tests replace the aborting handler with check::ScopedFailureHandler
// to observe violations without dying. This header is deliberately
// header-only and dependency-free so that src/core and src/des can use
// the macros without a link-time cycle onto the check library.
#pragma once

#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>

namespace probemon::check {

/// True when contract checking is compiled in (PROBEMON_CHECKED build).
#if defined(PROBEMON_CHECKED) && PROBEMON_CHECKED
inline constexpr bool kChecked = true;
#else
inline constexpr bool kChecked = false;
#endif

/// One failed check, as handed to the failure handler.
struct ContractViolation {
  const char* kind = "invariant";  ///< "invariant" or "contract"
  const char* file = "";
  int line = 0;
  const char* expression = "";
  std::string detail;

  std::string to_string() const {
    std::ostringstream out;
    out << "probemon: " << kind << " violated at " << file << ":" << line
        << "\n  expression: " << expression;
    if (!detail.empty()) out << "\n  detail: " << detail;
    return out.str();
  }
};

using FailureHandler = std::function<void(const ContractViolation&)>;

namespace detail {
inline FailureHandler& handler_slot() {
  static FailureHandler handler;  // empty = default (print + abort)
  return handler;
}
}  // namespace detail

/// Install a failure handler; returns the previous one. An empty
/// handler restores the default print-and-abort behaviour. Not
/// synchronized: install handlers during single-threaded setup.
inline FailureHandler set_failure_handler(FailureHandler handler) {
  FailureHandler previous = std::move(detail::handler_slot());
  detail::handler_slot() = std::move(handler);
  return previous;
}

/// Report a failed check: either dispatch to the installed handler or
/// print the diagnostic and abort. Called by the macros; callable
/// directly when a check cannot be phrased as one expression.
inline void fail(const char* kind, const char* file, int line,
                 const char* expression, std::string detail_message) {
  ContractViolation violation{kind, file, line, expression,
                              std::move(detail_message)};
  if (const FailureHandler& handler = detail::handler_slot()) {
    handler(violation);
    return;
  }
  std::cerr << violation.to_string() << std::endl;
  std::abort();
}

/// RAII handler swap for tests:
///
///   std::vector<check::ContractViolation> seen;
///   check::ScopedFailureHandler guard(
///       [&](const check::ContractViolation& v) { seen.push_back(v); });
class ScopedFailureHandler {
 public:
  explicit ScopedFailureHandler(FailureHandler handler)
      : previous_(set_failure_handler(std::move(handler))) {}
  ~ScopedFailureHandler() { set_failure_handler(std::move(previous_)); }
  ScopedFailureHandler(const ScopedFailureHandler&) = delete;
  ScopedFailureHandler& operator=(const ScopedFailureHandler&) = delete;

 private:
  FailureHandler previous_;
};

}  // namespace probemon::check

#if defined(PROBEMON_CHECKED) && PROBEMON_CHECKED
#define PROBEMON_CHECK_IMPL_(kind_, cond_, ...)                       \
  do {                                                                \
    if (!(cond_)) {                                                   \
      ::std::ostringstream probemon_check_detail_;                    \
      static_cast<void>(probemon_check_detail_ __VA_OPT__(            \
          << __VA_ARGS__));                                           \
      ::probemon::check::fail(kind_, __FILE__, __LINE__, #cond_,      \
                              probemon_check_detail_.str());          \
    }                                                                 \
  } while (false)
/// State a property of internal state; aborts in checked builds if
/// violated. Compiled out (condition unevaluated) otherwise.
#define PROBEMON_INVARIANT(cond_, ...) \
  PROBEMON_CHECK_IMPL_("invariant", cond_, __VA_ARGS__)
/// State a caller obligation at an API boundary; same mechanics.
#define PROBEMON_CONTRACT(cond_, ...) \
  PROBEMON_CHECK_IMPL_("contract", cond_, __VA_ARGS__)
#else
#define PROBEMON_INVARIANT(cond_, ...) ((void)0)
#define PROBEMON_CONTRACT(cond_, ...) ((void)0)
#endif
