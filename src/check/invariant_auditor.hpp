// InvariantAuditor: continuous mechanical checking of the paper's
// protocol invariants against the live event stream.
//
// The repo's tests assert *outcomes* (detection latency, load figures);
// nothing asserted the *mechanisms* — a refactor could break DCPP's
// schedule monotonicity or SAPP's delay clamp while every outcome test
// still passed on its particular scenarios. The auditor closes that
// gap: it implements core::ProtocolObserver, attaches to the same
// fan-out as scenario::Metrics (every DES Experiment attaches one by
// default), and audits every event against the invariant catalogue in
// docs/static_analysis.md:
//
//   * dcpp_nt_monotone      — the device's schedule frontier nt never
//                             regresses (paper §4: nt' = max{nt,t} + Δ);
//   * dcpp_grant_formula    — every granted wait equals
//                             Δ(nt,t) = max{δ_min, d_min − (nt − t)}
//                             applied to the frontier, is ≥ d_min, and
//                             consecutive slots are ≥ δ_min apart
//                             (paper §4 constraints (i) and (ii));
//   * sapp_delay_clamp      — the CP's inter-cycle delay stays inside
//                             [δ_min, δ_max] (paper §2 eq. 1); all
//                             protocols: delays are finite and ≥ 0;
//   * cycle_order           — probe attempts within a cycle are
//                             consecutive, starting at 0 (paper Fig 1:
//                             TOF then TOS retransmissions);
//   * cycle_overrun         — a cycle sends at most
//                             1 + max_retransmissions probes (paper: 4);
//   * absence_not_exhausted — absence is declared only after a cycle
//                             exhausted every retransmission;
//   * device_load           — sliding-window experienced load stays
//                             ≤ β·L_nom (opt-in; statistical, unlike
//                             the exact checks above);
//   * counter_consistency   — a device never receives more probes than
//                             were sent to it;
//   * trace_shape           — probe-cycle trace records are well formed
//                             (send instants ordered, attempts in
//                             range, ring indices in bounds).
//
// Violations are counted per invariant — locally (violations(),
// total_violations()) and, when a telemetry::Registry is supplied, as
//   probemon_invariant_violations_total{invariant="..."}
// so they surface on /metrics and /healthz. The auditor never aborts by
// itself; in PROBEMON_CHECKED builds scenario::Experiment::finish()
// turns a non-zero tally into a PROBEMON_INVARIANT failure.
//
// Thread-safety: the observer hooks serialize on an internal mutex, so
// feeding them from the DES loop or from runtime CP threads is safe.
// audit_cycle()/audit_tracer() are safe from any thread. The auditor
// must see the *complete* event stream of the system it audits
// (counter_consistency compares sends against receives), which is what
// Experiment's fan-out provides.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/observer.hpp"
#include "telemetry/probe_tracer.hpp"
#include "telemetry/registry.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::check {

/// The audited invariant catalogue (docs/static_analysis.md).
enum class Invariant : std::size_t {
  kDcppNtMonotone = 0,
  kDcppGrantFormula,
  kSappDelayClamp,
  kCycleOrder,
  kCycleOverrun,
  kAbsenceNotExhausted,
  kDeviceLoad,
  kCounterConsistency,
  kTraceShape,
  kCount_,  ///< sentinel
};

inline constexpr std::size_t kInvariantCount =
    static_cast<std::size_t>(Invariant::kCount_);

/// Stable label value used in probemon_invariant_violations_total.
const char* to_string(Invariant invariant) noexcept;

/// What to audit; enable the parts matching the protocol under test.
struct AuditConfig {
  /// Probe-cycle shape bound (1 + max_retransmissions sends per cycle).
  core::TimeoutConfig timeouts{};

  /// Audit the DCPP schedule (on_slot_granted events) against `dcpp`.
  bool audit_dcpp = false;
  core::DcppDeviceConfig dcpp{};

  /// Audit CP inter-cycle delays against [delta_min, delta_max]
  /// (SAPP's clamp). Delays are always checked finite and >= 0.
  bool audit_delay_clamp = false;
  double delta_min = 0.02;
  double delta_max = 10.0;

  /// Sliding-window experienced-load audit: the device must see at most
  /// load_beta * load_l_nom probes/s averaged over load_window seconds
  /// (+ load_slack_probes absolute headroom for arrival jitter and
  /// join transients). 0 disables. Unlike the exact checks, this one is
  /// statistical: enable it for steady-state reference scenarios, not
  /// for deliberate-overload baselines (FixedRate).
  double load_l_nom = 0.0;
  double load_beta = 1.5;
  double load_window = 30.0;
  int load_slack_probes = 8;

  /// Floating-point comparison tolerance.
  double epsilon = 1e-9;
};

class InvariantAuditor final : public core::ProtocolObserver {
 public:
  /// When `registry` is non-null, registers one
  /// probemon_invariant_violations_total{invariant=...} counter per
  /// catalogue entry; the registry must outlive the auditor.
  explicit InvariantAuditor(AuditConfig config = {},
                            telemetry::Registry* registry = nullptr);

  const AuditConfig& config() const noexcept { return config_; }

  // --- core::ProtocolObserver (DES + any observer fan-out) ------------------
  void on_probe_sent(net::NodeId cp, net::NodeId device, double t,
                     std::uint8_t attempt) override PROBEMON_EXCLUDES(mutex_);
  void on_probe_received(net::NodeId device, net::NodeId cp, double t) override
      PROBEMON_EXCLUDES(mutex_);
  void on_cycle_success(net::NodeId cp, net::NodeId device, double t,
                        std::uint8_t attempts) override
      PROBEMON_EXCLUDES(mutex_);
  void on_delay_updated(net::NodeId cp, double t, double delay) override;
  void on_device_declared_absent(net::NodeId cp, net::NodeId device,
                                 double t) override PROBEMON_EXCLUDES(mutex_);
  void on_slot_granted(net::NodeId device, double t, double nt_before,
                       double nt_after) override PROBEMON_EXCLUDES(mutex_);

  // --- runtime side ---------------------------------------------------------
  /// Audit one completed probe-cycle span (the realtime CPs emit these
  /// through PresenceService::TelemetryOptions::auditor): shape, attempt
  /// bound, exhaustion-before-absence.
  void audit_cycle(const telemetry::ProbeCycleTrace& trace);

  /// Audit a tracer's ring bookkeeping (indices in range: retained
  /// count within capacity, recorded total consistent).
  void audit_tracer(const telemetry::ProbeCycleTracer& tracer);

  // --- results --------------------------------------------------------------
  std::uint64_t violations(Invariant invariant) const noexcept;
  std::uint64_t total_violations() const noexcept;

  /// Most recent violation diagnostics, oldest first (bounded ring).
  std::vector<std::string> recent_reports() const
      PROBEMON_EXCLUDES(reports_mutex_);

  /// Human-readable per-invariant tally, e.g. for an abort diagnostic.
  std::string summary() const;

 private:
  struct CycleState {
    bool open = false;
    int sends = 0;
    std::uint8_t last_attempt = 0;
  };
  struct DeviceState {
    std::uint64_t probes_sent_to = 0;
    std::uint64_t probes_received = 0;
    double frontier = 0.0;  ///< last granted slot instant
    bool frontier_known = false;
    std::deque<double> recent_receives;  ///< load window (when enabled)
  };

  void record(Invariant invariant, std::string detail)
      PROBEMON_EXCLUDES(reports_mutex_);
  int max_sends() const noexcept {
    return config_.timeouts.max_retransmissions + 1;
  }

  AuditConfig config_;
  std::array<std::atomic<std::uint64_t>, kInvariantCount> counts_{};
  std::array<telemetry::Counter*, kInvariantCount> registry_counts_{};

  /// Lock order: mutex_ -> reports_mutex_ (record() runs under mutex_).
  mutable util::Mutex mutex_{"check.InvariantAuditor"};
  std::unordered_map<net::NodeId, CycleState> cycles_
      PROBEMON_GUARDED_BY(mutex_);
  std::unordered_map<net::NodeId, DeviceState> devices_
      PROBEMON_GUARDED_BY(mutex_);
  mutable util::Mutex reports_mutex_{"check.InvariantAuditor.reports"};
  /// bounded diagnostics ring (record() only)
  std::deque<std::string> reports_ PROBEMON_GUARDED_BY(reports_mutex_);
};

}  // namespace probemon::check
