// One-way message latency models.
//
// The paper models network delay as "a uniform probabilistic choice
// between three modes of operation: a slow, a medium and a fast mode" and
// notes similar findings across several other network types. We provide
// that model (ThreeModeDelay) plus common alternatives so experiments can
// check sensitivity to the latency law.
//
// Calibration: the paper sets TOF = 2*RTT_max + compute_max = 0.022 s and
// TOS = RTT_max + compute_max = 0.021 s; solving gives RTT_max = 0.001 s
// (one-way <= 0.0005 s) and compute_max = 0.020 s. The default three-mode
// model below keeps the one-way delay <= 0.0005 s so the paper's timeouts
// are conservative, exactly as in its setup.
#pragma once

#include <memory>
#include <string>

#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace probemon::net {

/// Strategy interface: one-way latency for one message.
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  /// Draw the latency (seconds, >= 0) for a message being sent now.
  virtual double sample(util::Rng& rng) = 0;
  /// Upper bound on the latency, if the model has one (else +inf).
  virtual double max_delay() const = 0;
  virtual std::string describe() const = 0;
};

using DelayModelPtr = std::unique_ptr<DelayModel>;

/// Delay drawn iid from an arbitrary distribution, clamped at >= 0.
class DistributionDelay final : public DelayModel {
 public:
  DistributionDelay(util::DistributionPtr dist, double max_delay);
  double sample(util::Rng& rng) override;
  double max_delay() const override { return max_; }
  std::string describe() const override;

 private:
  util::DistributionPtr dist_;
  double max_;
};

/// The paper's network: each message independently experiences a fast,
/// medium or slow mode (uniform mode choice), with uniform latency within
/// the mode's band.
class ThreeModeDelay final : public DelayModel {
 public:
  struct Band {
    double lo;
    double hi;
  };
  ThreeModeDelay(Band fast, Band medium, Band slow);

  /// Default calibration: one-way delay <= 0.5 ms (RTT <= 1 ms), matching
  /// TOF = 0.022 = 2*RTT_max + compute_max with compute_max = 20 ms.
  static ThreeModeDelay paper_default();

  double sample(util::Rng& rng) override;
  double max_delay() const override { return slow_.hi; }
  std::string describe() const override;

 private:
  Band fast_, medium_, slow_;
};

/// Fixed latency (useful for deterministic protocol tests).
class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(double delay);
  double sample(util::Rng&) override { return delay_; }
  double max_delay() const override { return delay_; }
  std::string describe() const override;

 private:
  double delay_;
};

DelayModelPtr make_constant_delay(double delay);
DelayModelPtr make_three_mode_delay();
DelayModelPtr make_distribution_delay(util::DistributionPtr dist,
                                      double max_delay);

}  // namespace probemon::net
