#include "net/loss_model.hpp"

#include <sstream>
#include <stdexcept>

namespace probemon::net {

namespace {
void require_prob(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) throw std::invalid_argument(what);
}
}  // namespace

BernoulliLoss::BernoulliLoss(double p) : p_(p) {
  require_prob(p, "BernoulliLoss: p in [0,1]");
}

std::string BernoulliLoss::describe() const {
  std::ostringstream os;
  os << "Bernoulli(" << p_ << ")";
  return os.str();
}

GilbertElliottLoss::GilbertElliottLoss(double p_good_to_bad,
                                       double p_bad_to_good, double loss_good,
                                       double loss_bad)
    : p_gb_(p_good_to_bad),
      p_bg_(p_bad_to_good),
      loss_good_(loss_good),
      loss_bad_(loss_bad) {
  require_prob(p_gb_, "GilbertElliott: p_good_to_bad in [0,1]");
  require_prob(p_bg_, "GilbertElliott: p_bad_to_good in [0,1]");
  require_prob(loss_good_, "GilbertElliott: loss_good in [0,1]");
  require_prob(loss_bad_, "GilbertElliott: loss_bad in [0,1]");
}

bool GilbertElliottLoss::lose(util::Rng& rng) {
  // Advance the channel state, then decide this message's fate.
  if (bad_) {
    if (rng.bernoulli(p_bg_)) bad_ = false;
  } else {
    if (rng.bernoulli(p_gb_)) bad_ = true;
  }
  return rng.bernoulli(bad_ ? loss_bad_ : loss_good_);
}

double GilbertElliottLoss::steady_state_loss() const noexcept {
  const double denom = p_gb_ + p_bg_;
  if (denom == 0.0) return bad_ ? loss_bad_ : loss_good_;
  const double pi_bad = p_gb_ / denom;
  return pi_bad * loss_bad_ + (1.0 - pi_bad) * loss_good_;
}

std::string GilbertElliottLoss::describe() const {
  std::ostringstream os;
  os << "GilbertElliott(g->b " << p_gb_ << ", b->g " << p_bg_ << ", loss "
     << loss_good_ << '/' << loss_bad_ << ")";
  return os.str();
}

LossModelPtr make_no_loss() { return std::make_unique<NoLoss>(); }
LossModelPtr make_bernoulli_loss(double p) {
  return std::make_unique<BernoulliLoss>(p);
}
LossModelPtr make_gilbert_elliott_loss(double p_good_to_bad,
                                       double p_bad_to_good, double loss_good,
                                       double loss_bad) {
  return std::make_unique<GilbertElliottLoss>(p_good_to_bad, p_bad_to_good,
                                              loss_good, loss_bad);
}

}  // namespace probemon::net
