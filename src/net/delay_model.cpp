#include "net/delay_model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace probemon::net {

DistributionDelay::DistributionDelay(util::DistributionPtr dist,
                                     double max_delay)
    : dist_(std::move(dist)), max_(max_delay) {
  if (!dist_) throw std::invalid_argument("DistributionDelay: null dist");
  if (!(max_ > 0)) {
    throw std::invalid_argument("DistributionDelay: max_delay > 0");
  }
}

double DistributionDelay::sample(util::Rng& rng) {
  return std::clamp(dist_->sample(rng), 0.0, max_);
}

std::string DistributionDelay::describe() const {
  std::ostringstream os;
  os << "DistributionDelay[" << dist_->describe() << ", max " << max_ << "]";
  return os.str();
}

ThreeModeDelay::ThreeModeDelay(Band fast, Band medium, Band slow)
    : fast_(fast), medium_(medium), slow_(slow) {
  auto check = [](const Band& b, const char* what) {
    if (!(b.lo >= 0 && b.hi >= b.lo)) throw std::invalid_argument(what);
  };
  check(fast, "ThreeModeDelay: bad fast band");
  check(medium, "ThreeModeDelay: bad medium band");
  check(slow, "ThreeModeDelay: bad slow band");
  if (fast.hi > medium.hi || medium.hi > slow.hi) {
    throw std::invalid_argument("ThreeModeDelay: bands must be ordered");
  }
}

ThreeModeDelay ThreeModeDelay::paper_default() {
  return ThreeModeDelay(Band{0.00005, 0.00015}, Band{0.00015, 0.00030},
                        Band{0.00030, 0.00050});
}

double ThreeModeDelay::sample(util::Rng& rng) {
  const auto mode = rng.uniform_u64(0, 2);
  const Band& band = mode == 0 ? fast_ : (mode == 1 ? medium_ : slow_);
  return rng.uniform(band.lo, band.hi);
}

std::string ThreeModeDelay::describe() const {
  std::ostringstream os;
  os << "ThreeMode[fast U(" << fast_.lo << ',' << fast_.hi << ") | medium U("
     << medium_.lo << ',' << medium_.hi << ") | slow U(" << slow_.lo << ','
     << slow_.hi << ")]";
  return os.str();
}

ConstantDelay::ConstantDelay(double delay) : delay_(delay) {
  if (!(delay >= 0)) throw std::invalid_argument("ConstantDelay: delay >= 0");
}

std::string ConstantDelay::describe() const {
  std::ostringstream os;
  os << "ConstantDelay[" << delay_ << "]";
  return os.str();
}

DelayModelPtr make_constant_delay(double delay) {
  return std::make_unique<ConstantDelay>(delay);
}
DelayModelPtr make_three_mode_delay() {
  return std::make_unique<ThreeModeDelay>(ThreeModeDelay::paper_default());
}
DelayModelPtr make_distribution_delay(util::DistributionPtr dist,
                                      double max_delay) {
  return std::make_unique<DistributionDelay>(std::move(dist), max_delay);
}

}  // namespace probemon::net
