// Wire messages of the probe protocols.
//
// Both SAPP and DCPP exchange only two message kinds during normal
// operation (probe / reply); a departing node may send a bye. The Message
// struct is the union of all fields either protocol uses; unused fields
// stay at their defaults. This mirrors a real UPnP-style UDP datagram
// where the payload is a small set of header values.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace probemon::net {

/// Node address within one simulated network. 0 is never assigned.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0;

enum class MessageKind : std::uint8_t {
  kProbe,   // CP -> device: "are you still there?"
  kReply,   // device -> CP: presence confirmation + protocol payload
  kBye,     // graceful leave announcement
  kNotify,  // CP -> CP: "device X has left" (dissemination extension)
};

const char* to_string(MessageKind kind) noexcept;

struct Message {
  MessageKind kind = MessageKind::kProbe;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;

  /// CP-local probe-cycle sequence number, echoed by the device so the CP
  /// can discard replies that belong to an abandoned cycle.
  std::uint64_t cycle = 0;
  /// Retransmission attempt within the cycle (0 = first probe).
  std::uint8_t attempt = 0;

  // --- SAPP payload ------------------------------------------------------
  /// Device probe counter (already incremented by Delta), valid in replies.
  std::uint64_t pc = 0;
  /// Ids of the last two distinct CPs that probed the device (overlay
  /// construction, paper section 2). kInvalidNode when not yet known.
  std::array<NodeId, 2> last_probers{kInvalidNode, kInvalidNode};

  // --- DCPP payload ------------------------------------------------------
  /// Wait time granted to the CP before its next probe (seconds).
  double grant_delay = 0.0;

  // --- Dissemination extension -------------------------------------------
  /// Device a kNotify message reports as departed.
  NodeId subject = kInvalidNode;
  /// Remaining forwarding budget for gossip notifications.
  std::uint8_t ttl = 0;

  std::string describe() const;
};

}  // namespace probemon::net
