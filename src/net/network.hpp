// Simulated datagram network with a bounded in-flight buffer.
//
// Matches the paper's network process: messages experience a stochastic
// one-way delay (three-mode by default), may be lost, and occupy a slot
// in a bounded network buffer (capacity 20 000 in the paper) while in
// flight; a full buffer drops the message. The paper reports the average
// buffer length (~0.004 in the SAPP steady-state study), so occupancy is
// tracked time-weighted.
//
// Delivery is best-effort datagram semantics: no ordering guarantee
// beyond what the delay samples induce, no duplication, at-most-once.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "des/scheduler.hpp"
#include "net/delay_model.hpp"
#include "net/loss_model.hpp"
#include "net/message.hpp"
#include "stats/time_weighted.hpp"
#include "util/rng.hpp"
#include "util/slab_pool.hpp"

namespace probemon::net {

/// Anything attached to the network. on_message is invoked at delivery
/// time with the scheduler already advanced to that instant.
class INetworkClient {
 public:
  virtual ~INetworkClient() = default;
  virtual void on_message(const Message& msg) = 0;
};

struct NetworkConfig {
  /// Max number of in-flight messages; exceeding drops. Paper: 20 000.
  std::size_t buffer_capacity = 20'000;
};

struct NetworkCounters {
  std::uint64_t sent = 0;            ///< send() calls accepted from nodes
  std::uint64_t delivered = 0;       ///< reached a registered destination
  std::uint64_t dropped_loss = 0;    ///< loss model discarded
  std::uint64_t dropped_overflow = 0;///< buffer was full
  std::uint64_t dropped_unknown = 0; ///< destination not/no longer attached
  std::uint64_t dropped_outage = 0;  ///< sent while the network was down
};

class Network {
 public:
  /// The network forks its own RNG streams (delay, loss) from `rng`.
  Network(des::Scheduler& scheduler, const util::Rng& rng,
          NetworkConfig config, DelayModelPtr delay, LossModelPtr loss);

  /// Paper-default network: three-mode delay, no loss, buffer 20 000.
  static std::unique_ptr<Network> make_paper_default(
      des::Scheduler& scheduler, const util::Rng& rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Attach a node; returns its address. The client must outlive the
  /// network or detach first.
  NodeId attach(INetworkClient& client);

  /// Detach a node; in-flight messages to it are silently dropped at
  /// delivery time (counted as dropped_unknown).
  void detach(NodeId id);

  bool attached(NodeId id) const noexcept {
    return id < clients_.size() && clients_[id] != nullptr;
  }
  std::size_t node_count() const noexcept { return attached_count_; }

  /// Send msg.from -> msg.to. Loss and buffer limits apply. Returns true
  /// if the message entered the network (it may still be lost later only
  /// if the destination detaches).
  bool send(Message msg);

  /// Total network outage during [t0, t1): every message sent inside
  /// the window is dropped. Messages already in flight still arrive
  /// (they left the sender before the cable was pulled). Outage windows
  /// let experiments separate "device crashed" from "network down" —
  /// the false-alarm failure mode of probing detectors.
  void schedule_outage(double t0, double t1);
  bool down() const noexcept { return down_; }

  const NetworkCounters& counters() const noexcept { return counters_; }
  /// Current number of in-flight messages.
  std::size_t in_flight() const noexcept { return in_flight_; }
  /// Time-averaged buffer occupancy up to `t` (paper's "buffer length").
  double mean_buffer_occupancy(double t) const {
    return occupancy_.mean_until(t);
  }
  double max_buffer_occupancy() const { return occupancy_.max(); }

  const DelayModel& delay_model() const noexcept { return *delay_; }
  const LossModel& loss_model() const noexcept { return *loss_; }

  /// Slots in the in-flight message pool (monotone; telemetry/tests —
  /// a steady-state run must show this plateau, proving the delivery
  /// path stopped allocating).
  std::size_t message_pool_slots() const noexcept { return pool_.capacity(); }

 private:
  void deliver_slot(std::uint32_t slot);

  des::Scheduler& scheduler_;
  NetworkConfig config_;
  DelayModelPtr delay_;
  LossModelPtr loss_;
  util::Rng delay_rng_;
  util::Rng loss_rng_;
  /// Dense client table indexed by NodeId (ids are handed out
  /// sequentially from 1; slot 0 is kInvalidNode and stays null).
  /// Delivery is an array index instead of a hash lookup, and a million
  /// nodes cost one pointer each.
  std::vector<INetworkClient*> clients_;
  /// In-flight messages parked here so the delivery event captures only
  /// [this, slot] — inside the scheduler callback's inline buffer (a
  /// by-value Message capture would spill to the heap on every send).
  util::SlabPool<Message> pool_;
  NodeId next_id_ = 1;
  std::size_t attached_count_ = 0;
  std::size_t in_flight_ = 0;
  bool down_ = false;
  NetworkCounters counters_;
  stats::TimeWeighted occupancy_;
};

}  // namespace probemon::net
