#include "net/network.hpp"

#include <sstream>
#include <stdexcept>

#include "util/logging.hpp"

namespace probemon::net {

const char* to_string(MessageKind kind) noexcept {
  switch (kind) {
    case MessageKind::kProbe: return "probe";
    case MessageKind::kReply: return "reply";
    case MessageKind::kBye: return "bye";
    case MessageKind::kNotify: return "notify";
  }
  return "?";
}

std::string Message::describe() const {
  std::ostringstream os;
  os << to_string(kind) << ' ' << from << "->" << to << " cycle=" << cycle
     << " attempt=" << static_cast<int>(attempt);
  if (kind == MessageKind::kReply) {
    os << " pc=" << pc << " grant=" << grant_delay;
  }
  return os.str();
}

Network::Network(des::Scheduler& scheduler, const util::Rng& rng,
                 NetworkConfig config, DelayModelPtr delay, LossModelPtr loss)
    : scheduler_(scheduler),
      config_(config),
      delay_(std::move(delay)),
      loss_(std::move(loss)),
      delay_rng_(rng.fork("net.delay")),
      loss_rng_(rng.fork("net.loss")) {
  if (!delay_) throw std::invalid_argument("Network: null delay model");
  if (!loss_) throw std::invalid_argument("Network: null loss model");
  if (config_.buffer_capacity == 0) {
    throw std::invalid_argument("Network: buffer_capacity > 0");
  }
  occupancy_.set(scheduler_.now(), 0.0);
}

std::unique_ptr<Network> Network::make_paper_default(des::Scheduler& scheduler,
                                                     const util::Rng& rng) {
  return std::make_unique<Network>(scheduler, rng, NetworkConfig{},
                                   make_three_mode_delay(), make_no_loss());
}

NodeId Network::attach(INetworkClient& client) {
  const NodeId id = next_id_++;
  if (clients_.size() <= id) clients_.resize(id + 1, nullptr);
  clients_[id] = &client;
  ++attached_count_;
  return id;
}

void Network::detach(NodeId id) {
  if (!attached(id)) return;
  clients_[id] = nullptr;
  --attached_count_;
}

bool Network::send(Message msg) {
  if (msg.from == kInvalidNode || msg.to == kInvalidNode) {
    throw std::logic_error("Network::send: invalid endpoint");
  }
  ++counters_.sent;
  if (down_) {
    ++counters_.dropped_outage;
    return false;
  }
  if (loss_->lose(loss_rng_)) {
    ++counters_.dropped_loss;
    return false;
  }
  if (in_flight_ >= config_.buffer_capacity) {
    ++counters_.dropped_overflow;
    PLOG_DEBUG << "network buffer overflow, dropping " << msg.describe();
    return false;
  }
  ++in_flight_;
  occupancy_.set(scheduler_.now(), static_cast<double>(in_flight_));
  const double delay = delay_->sample(delay_rng_);
  const std::uint32_t slot = pool_.acquire();
  pool_[slot] = msg;
  auto fire = [this, slot] { deliver_slot(slot); };
  static_assert(des::InlineCallback::fits_inline<decltype(fire)>);
  scheduler_.schedule_after(delay, std::move(fire));
  return true;
}

void Network::schedule_outage(double t0, double t1) {
  if (!(t1 > t0) || t0 < scheduler_.now()) {
    throw std::logic_error("schedule_outage: need now <= t0 < t1");
  }
  scheduler_.schedule_at(t0, [this] { down_ = true; });
  scheduler_.schedule_at(t1, [this] { down_ = false; });
}

void Network::deliver_slot(std::uint32_t slot) {
  // Copy out and release first: on_message may send, and the new message
  // is welcome to reuse this slot.
  const Message msg = pool_[slot];
  pool_.release(slot);
  --in_flight_;
  occupancy_.set(scheduler_.now(), static_cast<double>(in_flight_));
  INetworkClient* client =
      msg.to < clients_.size() ? clients_[msg.to] : nullptr;
  if (client == nullptr) {
    ++counters_.dropped_unknown;
    return;
  }
  ++counters_.delivered;
  client->on_message(msg);
}

}  // namespace probemon::net
