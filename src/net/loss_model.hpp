// Packet-loss models.
//
// The paper's Fig 5 scenario assumes no loss ("every transmitted probe
// will eventually be answered") but explicitly conjectures that bursty
// loss — inevitable on capacity-limited devices — would *widen* the load
// spikes. Bench A3 tests that conjecture, which needs both independent
// (Bernoulli) and bursty (Gilbert-Elliott) loss processes.
#pragma once

#include <memory>
#include <string>

#include "util/rng.hpp"

namespace probemon::net {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// Decide the fate of one message. Stateful models advance their state.
  virtual bool lose(util::Rng& rng) = 0;
  virtual std::string describe() const = 0;
};

using LossModelPtr = std::unique_ptr<LossModel>;

class NoLoss final : public LossModel {
 public:
  bool lose(util::Rng&) override { return false; }
  std::string describe() const override { return "NoLoss"; }
};

/// Each message independently lost with probability p.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p);
  bool lose(util::Rng& rng) override { return rng.bernoulli(p_); }
  std::string describe() const override;
  double p() const noexcept { return p_; }

 private:
  double p_;
};

/// Two-state Markov (Gilbert-Elliott) loss: a Good state with loss
/// probability `loss_good` and a Bad state with `loss_bad`; transition
/// probabilities are evaluated per message. Produces loss bursts whose
/// mean length is 1 / p_bad_to_good messages.
class GilbertElliottLoss final : public LossModel {
 public:
  GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good,
                     double loss_good, double loss_bad);
  bool lose(util::Rng& rng) override;
  std::string describe() const override;
  bool in_bad_state() const noexcept { return bad_; }
  /// Long-run average loss probability.
  double steady_state_loss() const noexcept;

 private:
  double p_gb_, p_bg_, loss_good_, loss_bad_;
  bool bad_ = false;
};

LossModelPtr make_no_loss();
LossModelPtr make_bernoulli_loss(double p);
LossModelPtr make_gilbert_elliott_loss(double p_good_to_bad,
                                       double p_bad_to_good,
                                       double loss_good, double loss_bad);

}  // namespace probemon::net
