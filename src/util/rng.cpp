#include "util/rng.hpp"

namespace probemon::util {

void Xoshiro256pp::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
  // Lemire-style bounded draw with rejection to remove modulo bias.
  const std::uint64_t range = hi - lo;  // inclusive range size - 1
  if (range == std::numeric_limits<std::uint64_t>::max()) return next_u64();
  const std::uint64_t n = range + 1;
  // Rejection threshold: largest multiple of n that fits in 2^64.
  const std::uint64_t limit = (std::numeric_limits<std::uint64_t>::max() / n) * n;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return lo + (x % n);
}

Rng Rng::fork(std::string_view tag) const noexcept {
  return fork(fnv1a64(tag));
}

}  // namespace probemon::util
