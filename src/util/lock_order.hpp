// LockOrderRegistry: lockdep-style runtime lock-order cycle detection.
//
// Clang TSA (thread_annotations.hpp) proves *which lock guards what*;
// it cannot prove the *order* locks are taken in. This registry covers
// that gap dynamically: util::Mutex reports every acquire/release
// (under PROBEMON_CHECKED only — plain and release builds pay nothing),
// the registry maintains the process-wide directed graph of observed
// lock orderings, and the first acquisition that would close a cycle
// (the classic ABBA deadlock) aborts immediately with both lock names —
// on the *first* reversed acquisition, not on the eventual unlucky
// interleaving. Deadlocks thus become deterministic test failures.
//
// The class itself always compiles (so tier-1 tests exercise it
// directly via on_acquire/on_release with synthetic addresses); only
// the Mutex hooks are PROBEMON_CHECKED-gated.
//
// Detection model (standard lockdep reasoning):
//   - each thread keeps a stack of currently held locks;
//   - acquiring B while holding A records the edge A -> B;
//   - before recording A -> B, a path B ->* A in the global graph means
//     some earlier execution ordered them the other way round: cycle.
// Locks are keyed by address; a destroyed Mutex is purged from the
// graph (on_destroy). Per-thread caches of already-validated edges keep
// the common path cheap; after address reuse a stale cache entry can at
// worst suppress a report (false negative), never fabricate one.
#pragma once

#include <atomic>
#include <cstdint>

namespace probemon::util {

class LockOrderRegistry {
 public:
  /// Called on a detected cycle with the diagnostic text (which names
  /// both locks). The default handler writes it to stderr and aborts.
  using ViolationHandler = void (*)(const char* diagnostic);

  static LockOrderRegistry& instance();

  /// Cycle-check the edge (top of this thread's held stack -> lock),
  /// record it, and push `lock` onto the held stack. `name` must
  /// outlive the lock (string literals in practice).
  void on_acquire(const void* lock, const char* name);

  /// Push without edge recording or cycle check — for try_lock, which
  /// backs off instead of blocking and so cannot deadlock.
  void on_acquire_no_check(const void* lock, const char* name);

  /// Pop `lock` from this thread's held stack (out-of-order release
  /// is allowed and handled).
  void on_release(const void* lock);

  /// Purge a destroyed lock from the ordering graph.
  void on_destroy(const void* lock);

  /// Cycles detected process-wide (exported as
  /// probemon_lock_order_violations_total).
  std::uint64_t violations() const {
    return violations_.load(std::memory_order_relaxed);
  }

  /// Swap the violation handler (tests inject a non-aborting one);
  /// returns the previous handler. nullptr restores the default.
  ViolationHandler set_violation_handler(ViolationHandler handler);

  /// Test-only: drop the whole ordering graph (not the held stacks —
  /// call with no locks held).
  void reset_graph_for_test();

 private:
  LockOrderRegistry() = default;

  std::atomic<std::uint64_t> violations_{0};
  std::atomic<ViolationHandler> handler_{nullptr};
};

}  // namespace probemon::util
