// Probability distributions with portable, deterministic sampling.
//
// Each distribution is a small value type holding its parameters; sampling
// takes an Rng& explicitly so the same distribution object can be shared
// across streams. Parameters are validated eagerly (throwing
// std::invalid_argument) so configuration errors surface at construction,
// not deep inside a simulation run.
//
// A type-erased `AnyDistribution` lets scenario configuration pick a
// distribution at runtime (e.g. churn inter-arrival law) without templates
// leaking into public APIs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace probemon::util {

/// Interface for a real-valued random variate.
class Distribution {
 public:
  virtual ~Distribution() = default;
  /// Draw one sample.
  virtual double sample(Rng& rng) const = 0;
  /// Expected value (NaN if undefined for the parameterization).
  virtual double mean() const = 0;
  /// Variance (NaN / infinity where appropriate).
  virtual double variance() const = 0;
  /// Human-readable form, e.g. "Exp(rate=0.05)".
  virtual std::string describe() const = 0;
};

/// Point mass at `value`. Useful as a degenerate delay/churn law.
class Constant final : public Distribution {
 public:
  explicit Constant(double value);
  double sample(Rng&) const override { return value_; }
  double mean() const override { return value_; }
  double variance() const override { return 0.0; }
  std::string describe() const override;

 private:
  double value_;
};

/// Uniform on [lo, hi).
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);
  double sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double variance() const override {
    const double w = hi_ - lo_;
    return w * w / 12.0;
  }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::string describe() const override;

 private:
  double lo_, hi_;
};

/// Exponential with rate lambda (mean 1/lambda). Sampled by inversion.
class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate);
  double sample(Rng& rng) const override;
  double mean() const override { return 1.0 / rate_; }
  double variance() const override { return 1.0 / (rate_ * rate_); }
  double rate() const { return rate_; }
  std::string describe() const override;

 private:
  double rate_;
};

/// Normal(mu, sigma). Sampled by Box-Muller (both variates used).
class Normal final : public Distribution {
 public:
  Normal(double mu, double sigma);
  double sample(Rng& rng) const override;
  double mean() const override { return mu_; }
  double variance() const override { return sigma_ * sigma_; }
  std::string describe() const override;

 private:
  double mu_, sigma_;
  // Box-Muller produces pairs; cache the spare per-object is NOT safe for
  // const sampling, so we simply pay two uniforms per sample.
};

/// LogNormal: exp(Normal(mu, sigma)). Heavy-ish tailed network delays.
class LogNormal final : public Distribution {
 public:
  LogNormal(double mu, double sigma);
  double sample(Rng& rng) const override;
  double mean() const override;
  double variance() const override;
  std::string describe() const override;

 private:
  Normal normal_;
  double mu_, sigma_;
};

/// Pareto(xm, alpha): heavy-tailed; models pathological delay outliers.
class Pareto final : public Distribution {
 public:
  Pareto(double xm, double alpha);
  double sample(Rng& rng) const override;
  double mean() const override;
  double variance() const override;
  std::string describe() const override;

 private:
  double xm_, alpha_;
};

/// Weibull(shape k, scale lambda). k<1 bursty, k=1 exponential.
class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);
  double sample(Rng& rng) const override;
  double mean() const override;
  double variance() const override;
  std::string describe() const override;

 private:
  double shape_, scale_;
};

/// Finite mixture: picks component i with probability weight[i]/sum and
/// samples it. The paper's three-mode network delay is a special case.
class Mixture final : public Distribution {
 public:
  struct Component {
    double weight;
    std::shared_ptr<const Distribution> dist;
  };
  explicit Mixture(std::vector<Component> components);
  double sample(Rng& rng) const override;
  double mean() const override;
  double variance() const override;
  std::string describe() const override;

 private:
  std::vector<Component> components_;
  double total_weight_;
};

/// Uniform over the integers {lo, ..., hi}, returned as double.
class DiscreteUniform final : public Distribution {
 public:
  DiscreteUniform(std::int64_t lo, std::int64_t hi);
  double sample(Rng& rng) const override {
    return static_cast<double>(rng.uniform_i64(lo_, hi_));
  }
  double mean() const override {
    return 0.5 * static_cast<double>(lo_ + hi_);
  }
  double variance() const override {
    const double n = static_cast<double>(hi_ - lo_ + 1);
    return (n * n - 1.0) / 12.0;
  }
  std::string describe() const override;

 private:
  std::int64_t lo_, hi_;
};

/// Shared-pointer alias used throughout configuration structs.
using DistributionPtr = std::shared_ptr<const Distribution>;

/// Convenience factories.
DistributionPtr make_constant(double value);
DistributionPtr make_uniform(double lo, double hi);
DistributionPtr make_exponential(double rate);
DistributionPtr make_normal(double mu, double sigma);
DistributionPtr make_lognormal(double mu, double sigma);
DistributionPtr make_pareto(double xm, double alpha);
DistributionPtr make_weibull(double shape, double scale);
DistributionPtr make_discrete_uniform(std::int64_t lo, std::int64_t hi);
DistributionPtr make_mixture(std::vector<Mixture::Component> components);

}  // namespace probemon::util
