#include "util/distributions.hpp"

#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

namespace probemon::util {

namespace {

void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

std::string fmt(const char* name, std::initializer_list<double> params) {
  std::ostringstream os;
  os << name << '(';
  bool first = true;
  for (double p : params) {
    if (!first) os << ", ";
    os << p;
    first = false;
  }
  os << ')';
  return os.str();
}

}  // namespace

Constant::Constant(double value) : value_(value) {
  require(std::isfinite(value), "Constant: value must be finite");
}
std::string Constant::describe() const { return fmt("Const", {value_}); }

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  require(std::isfinite(lo) && std::isfinite(hi), "Uniform: bounds finite");
  require(lo <= hi, "Uniform: lo <= hi");
}
std::string Uniform::describe() const { return fmt("U", {lo_, hi_}); }

Exponential::Exponential(double rate) : rate_(rate) {
  require(std::isfinite(rate) && rate > 0, "Exponential: rate > 0");
}
double Exponential::sample(Rng& rng) const {
  return -std::log(rng.next_double_open0()) / rate_;
}
std::string Exponential::describe() const { return fmt("Exp", {rate_}); }

Normal::Normal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require(std::isfinite(mu), "Normal: mu finite");
  require(std::isfinite(sigma) && sigma >= 0, "Normal: sigma >= 0");
}
double Normal::sample(Rng& rng) const {
  const double u1 = rng.next_double_open0();
  const double u2 = rng.next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mu_ + sigma_ * r * std::cos(2.0 * std::numbers::pi * u2);
}
std::string Normal::describe() const { return fmt("N", {mu_, sigma_}); }

LogNormal::LogNormal(double mu, double sigma)
    : normal_(mu, sigma), mu_(mu), sigma_(sigma) {}
double LogNormal::sample(Rng& rng) const {
  return std::exp(normal_.sample(rng));
}
double LogNormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}
double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}
std::string LogNormal::describe() const { return fmt("LogN", {mu_, sigma_}); }

Pareto::Pareto(double xm, double alpha) : xm_(xm), alpha_(alpha) {
  require(xm > 0, "Pareto: xm > 0");
  require(alpha > 0, "Pareto: alpha > 0");
}
double Pareto::sample(Rng& rng) const {
  return xm_ / std::pow(rng.next_double_open0(), 1.0 / alpha_);
}
double Pareto::mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * xm_ / (alpha_ - 1.0);
}
double Pareto::variance() const {
  if (alpha_ <= 2.0) return std::numeric_limits<double>::infinity();
  const double a = alpha_;
  return xm_ * xm_ * a / ((a - 1.0) * (a - 1.0) * (a - 2.0));
}
std::string Pareto::describe() const { return fmt("Pareto", {xm_, alpha_}); }

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  require(shape > 0, "Weibull: shape > 0");
  require(scale > 0, "Weibull: scale > 0");
}
double Weibull::sample(Rng& rng) const {
  return scale_ * std::pow(-std::log(rng.next_double_open0()), 1.0 / shape_);
}
double Weibull::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}
double Weibull::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape_);
  const double g2 = std::tgamma(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}
std::string Weibull::describe() const {
  return fmt("Weibull", {shape_, scale_});
}

Mixture::Mixture(std::vector<Component> components)
    : components_(std::move(components)), total_weight_(0.0) {
  require(!components_.empty(), "Mixture: needs >= 1 component");
  for (const auto& c : components_) {
    require(c.weight > 0 && std::isfinite(c.weight),
            "Mixture: weights must be positive and finite");
    require(c.dist != nullptr, "Mixture: null component distribution");
    total_weight_ += c.weight;
  }
}
double Mixture::sample(Rng& rng) const {
  double pick = rng.next_double() * total_weight_;
  for (const auto& c : components_) {
    pick -= c.weight;
    if (pick < 0) return c.dist->sample(rng);
  }
  return components_.back().dist->sample(rng);  // fp round-off fallback
}
double Mixture::mean() const {
  double m = 0;
  for (const auto& c : components_) m += c.weight * c.dist->mean();
  return m / total_weight_;
}
double Mixture::variance() const {
  // Law of total variance: E[Var] + Var[E].
  const double mu = mean();
  double v = 0;
  for (const auto& c : components_) {
    const double cm = c.dist->mean();
    v += c.weight * (c.dist->variance() + (cm - mu) * (cm - mu));
  }
  return v / total_weight_;
}
std::string Mixture::describe() const {
  std::ostringstream os;
  os << "Mix[";
  bool first = true;
  for (const auto& c : components_) {
    if (!first) os << " + ";
    os << c.weight << '*' << c.dist->describe();
    first = false;
  }
  os << ']';
  return os.str();
}

DiscreteUniform::DiscreteUniform(std::int64_t lo, std::int64_t hi)
    : lo_(lo), hi_(hi) {
  require(lo <= hi, "DiscreteUniform: lo <= hi");
}
std::string DiscreteUniform::describe() const {
  return fmt("DU", {static_cast<double>(lo_), static_cast<double>(hi_)});
}

DistributionPtr make_constant(double value) {
  return std::make_shared<Constant>(value);
}
DistributionPtr make_uniform(double lo, double hi) {
  return std::make_shared<Uniform>(lo, hi);
}
DistributionPtr make_exponential(double rate) {
  return std::make_shared<Exponential>(rate);
}
DistributionPtr make_normal(double mu, double sigma) {
  return std::make_shared<Normal>(mu, sigma);
}
DistributionPtr make_lognormal(double mu, double sigma) {
  return std::make_shared<LogNormal>(mu, sigma);
}
DistributionPtr make_pareto(double xm, double alpha) {
  return std::make_shared<Pareto>(xm, alpha);
}
DistributionPtr make_weibull(double shape, double scale) {
  return std::make_shared<Weibull>(shape, scale);
}
DistributionPtr make_discrete_uniform(std::int64_t lo, std::int64_t hi) {
  return std::make_shared<DiscreteUniform>(lo, hi);
}
DistributionPtr make_mixture(std::vector<Mixture::Component> components) {
  return std::make_shared<Mixture>(std::move(components));
}

}  // namespace probemon::util
