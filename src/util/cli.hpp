// Tiny command-line option parser for the bench/ and examples/ binaries.
//
// Supports "--name=value" and "--name value" forms plus "--help". Every
// experiment binary exposes its scenario knobs (seed, duration, k, ...)
// through this so reviewers can probe robustness without recompiling:
//
//   Cli cli(argc, argv);
//   const auto seed = cli.get<std::uint64_t>("seed", 42);
//   const auto duration = cli.get<double>("duration", 20000.0);
//   cli.finish("bench_t1: SAPP steady state");  // errors on unknown args
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace probemon::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Typed lookup with default. Supported T: std::string, double,
  /// std::uint64_t, std::int64_t, bool ("true"/"false"/"1"/"0"; a bare
  /// "--flag" reads as true). Throws std::invalid_argument on a value
  /// that does not parse.
  template <typename T>
  T get(const std::string& name, T default_value);

  bool has(const std::string& name) const { return values_.contains(name); }
  bool help_requested() const noexcept { return help_; }

  /// Print a usage line listing every option that was get()-queried,
  /// then exit(0) if --help was passed; exit(2) if unknown options
  /// remain.
  void finish(const std::string& description) const;

 private:
  std::optional<std::string> raw(const std::string& name);

  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::vector<std::string> described_;  // options seen by get()
  std::map<std::string, std::string> defaults_shown_;
  bool help_ = false;
  std::vector<std::string> errors_;
};

}  // namespace probemon::util
