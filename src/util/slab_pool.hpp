// Slab allocator with stable 32-bit indices and a LIFO free list.
//
// The DES scheduler and the simulated network keep one pooled object per
// in-flight event/message. Requirements that rule out std::vector and
// node-based containers alike:
//   * stable addresses (events hold intrusive links into each other),
//   * index-addressable (an EventId packs a 32-bit slot index),
//   * O(1) acquire/release with zero steady-state allocation — slabs are
//     only ever added, never freed, so a population that plateaus stops
//     allocating entirely,
//   * deterministic reuse order (LIFO), so runs are reproducible.
//
// T is default-constructed once when its slab is created and then
// *reused* across acquire/release cycles; callers reset whatever fields
// matter on acquire. (That is the point: the expensive member — an
// InlineFunction's captured state — is overwritten, not reallocated.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace probemon::util {

template <class T, std::size_t SlabBits = 8>
class SlabPool {
 public:
  static constexpr std::uint32_t kSlabSize = 1u << SlabBits;
  static constexpr std::uint32_t kSlabMask = kSlabSize - 1;

  /// Take a slot; grows by one slab when the free list is empty.
  std::uint32_t acquire() {
    if (free_.empty()) grow();
    const std::uint32_t index = free_.back();
    free_.pop_back();
    return index;
  }

  /// Return a slot to the free list. The caller must not use the index
  /// again until re-acquired.
  void release(std::uint32_t index) { free_.push_back(index); }

  T& operator[](std::uint32_t index) noexcept {
    return slabs_[index >> SlabBits][index & kSlabMask];
  }
  const T& operator[](std::uint32_t index) const noexcept {
    return slabs_[index >> SlabBits][index & kSlabMask];
  }

  /// Total slots ever allocated (monotone; a capacity-planning signal).
  std::size_t capacity() const noexcept { return slabs_.size() * kSlabSize; }
  std::size_t free_count() const noexcept { return free_.size(); }
  std::size_t in_use() const noexcept { return capacity() - free_.size(); }

 private:
  void grow() {
    const auto base = static_cast<std::uint32_t>(capacity());
    slabs_.push_back(std::make_unique<T[]>(kSlabSize));
    free_.reserve(free_.size() + kSlabSize);
    // Reversed so the lowest index is handed out first (cosmetic, but it
    // keeps slot numbering intuitive in traces and tests).
    for (std::uint32_t i = kSlabSize; i-- > 0;) {
      free_.push_back(base + i);
    }
  }

  std::vector<std::unique_ptr<T[]>> slabs_;
  std::vector<std::uint32_t> free_;
};

}  // namespace probemon::util
