// Clang Thread Safety Analysis (TSA) macros and annotated lock wrappers.
//
// The repo's concurrency contract is *compiler-checked*: every mutex in
// src/ is a util::Mutex (capability-tagged), every guarded field carries
// PROBEMON_GUARDED_BY, every `_locked()` helper carries
// PROBEMON_REQUIRES, and every public entry point that takes the lock
// itself carries PROBEMON_EXCLUDES. A clang build with
// `-Wthread-safety -Werror` (scripts/ci.sh --full, or
// -DPROBEMON_TSA=ON) then rejects any access to guarded state without
// the right lock held — see docs/static_analysis.md.
//
// On non-Clang compilers (or compilers without the attribute) every
// macro expands to nothing, so g++ builds are unaffected. Define
// PROBEMON_TSA_DISABLED to force the macros off even under clang.
//
// The wrappers also carry the *dynamic* complement: under
// PROBEMON_CHECKED, util::Mutex reports every acquire/release to
// util::LockOrderRegistry (src/util/lock_order.hpp), which aborts on
// the first lock-order cycle — the class of deadlock TSA cannot see.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/lock_order.hpp"

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability) && !defined(PROBEMON_TSA_DISABLED)
#define PROBEMON_TSA(x) __attribute__((x))
#endif
#endif
#ifndef PROBEMON_TSA
#define PROBEMON_TSA(x)  // no-op outside clang
#endif

/// Tags a type as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define PROBEMON_CAPABILITY(x) PROBEMON_TSA(capability(x))

/// Tags an RAII guard whose constructor acquires and destructor
/// releases a capability.
#define PROBEMON_SCOPED_CAPABILITY PROBEMON_TSA(scoped_lockable)

/// Field is readable/writable only with the named capability held.
#define PROBEMON_GUARDED_BY(x) PROBEMON_TSA(guarded_by(x))

/// Pointee (not the pointer itself) is guarded by the named capability.
#define PROBEMON_PT_GUARDED_BY(x) PROBEMON_TSA(pt_guarded_by(x))

/// Function may only be called with the capability/ies already held
/// (the `_locked()` helper convention).
#define PROBEMON_REQUIRES(...) PROBEMON_TSA(requires_capability(__VA_ARGS__))
#define PROBEMON_REQUIRES_SHARED(...) \
  PROBEMON_TSA(requires_shared_capability(__VA_ARGS__))

/// Function acquires/releases the capability itself (lock wrappers).
#define PROBEMON_ACQUIRE(...) PROBEMON_TSA(acquire_capability(__VA_ARGS__))
#define PROBEMON_ACQUIRE_SHARED(...) \
  PROBEMON_TSA(acquire_shared_capability(__VA_ARGS__))
#define PROBEMON_RELEASE(...) PROBEMON_TSA(release_capability(__VA_ARGS__))
#define PROBEMON_RELEASE_SHARED(...) \
  PROBEMON_TSA(release_shared_capability(__VA_ARGS__))
#define PROBEMON_RELEASE_GENERIC(...) \
  PROBEMON_TSA(release_generic_capability(__VA_ARGS__))
#define PROBEMON_TRY_ACQUIRE(...) \
  PROBEMON_TSA(try_acquire_capability(__VA_ARGS__))

/// Function must be called *without* the capability held (public entry
/// points of classes that lock internally) — catches self-deadlock.
#define PROBEMON_EXCLUDES(...) PROBEMON_TSA(locks_excluded(__VA_ARGS__))

/// Assert (at runtime, to the analysis) that the capability is held.
#define PROBEMON_ASSERT_CAPABILITY(x) PROBEMON_TSA(assert_capability(x))

/// Function returns a reference to the named capability.
#define PROBEMON_RETURN_CAPABILITY(x) PROBEMON_TSA(lock_returned(x))

/// Opt a function out of the analysis. Every use must carry a comment
/// saying why (e.g. variable-length multi-lock walks TSA cannot model).
#define PROBEMON_NO_TSA PROBEMON_TSA(no_thread_safety_analysis)

// Hook for tools/tsa_selftest.py: expands to nothing in real builds;
// under PROBEMON_TSA_SELFTEST it befriends the self-test probe TU so
// the harness can reference private guarded fields when verifying that
// each annotation is load-bearing.
#ifdef PROBEMON_TSA_SELFTEST
#define PROBEMON_TSA_SELFTEST_HOOK friend struct ::probemon::TsaSelftestProbe;
namespace probemon {
struct TsaSelftestProbe;
}
#else
#define PROBEMON_TSA_SELFTEST_HOOK
#endif

namespace probemon::util {

/// std::mutex with a TSA capability tag, a diagnostic name, and (under
/// PROBEMON_CHECKED) lock-order recording. Drop-in for std::mutex; pair
/// with util::MutexLock instead of std::lock_guard and util::CondVar
/// instead of std::condition_variable.
class PROBEMON_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// `name` must be a string literal (stored, not copied); it appears
  /// in lock-order violation diagnostics. Convention: "namespace.Class".
  explicit Mutex(const char* name) : name_(name) {}
  ~Mutex() {
#ifdef PROBEMON_CHECKED
    LockOrderRegistry::instance().on_destroy(this);
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PROBEMON_ACQUIRE() {
#ifdef PROBEMON_CHECKED
    // Record (and cycle-check) before blocking, lockdep-style, so an
    // ABBA pattern aborts with a diagnostic instead of deadlocking.
    LockOrderRegistry::instance().on_acquire(this, name_);
#endif
    mu_.lock();
  }

  void unlock() PROBEMON_RELEASE() {
    mu_.unlock();
#ifdef PROBEMON_CHECKED
    LockOrderRegistry::instance().on_release(this);
#endif
  }

  bool try_lock() PROBEMON_TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
#ifdef PROBEMON_CHECKED
    // A failed try_lock backs off instead of blocking, so it cannot
    // close a deadlock cycle: record the hold, skip the cycle check.
    if (ok) LockOrderRegistry::instance().on_acquire_no_check(this, name_);
#endif
    return ok;
  }

  const char* name() const { return name_; }

  /// For util::CondVar only: the wrapped mutex, still logically held by
  /// this wrapper (the lock-order registry is not notified of the
  /// temporary release inside a wait).
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;  // NOLINT(annotated-locks): the wrapper itself
  const char* name_ = "util.Mutex";
};

/// RAII guard for util::Mutex — the std::lock_guard replacement.
class PROBEMON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PROBEMON_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PROBEMON_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII guard that can drop and retake the lock mid-scope (the
/// std::unique_lock replacement for callback windows: hold, Release()
/// around the user callback, Reacquire(), and the destructor unlocks
/// only if still held). Clang models the scoped object's lock state
/// through Release()/Reacquire(), so guarded accesses between them are
/// still rejected.
class PROBEMON_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex& mu) PROBEMON_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~ReleasableMutexLock() PROBEMON_RELEASE() {
    if (held_) mu_.unlock();
  }

  void Release() PROBEMON_RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  void Reacquire() PROBEMON_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// std::shared_mutex with a TSA capability tag. Writers use
/// WriterMutexLock, readers ReaderMutexLock. (No lock-order recording:
/// nothing in src/ nests shared locks yet; add hooks when it does.)
class PROBEMON_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* name) : name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() PROBEMON_ACQUIRE() { mu_.lock(); }
  void unlock() PROBEMON_RELEASE() { mu_.unlock(); }
  void lock_shared() PROBEMON_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() PROBEMON_RELEASE_SHARED() { mu_.unlock_shared(); }

  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;  // NOLINT(annotated-locks): the wrapper itself
  const char* name_ = "util.SharedMutex";
};

class PROBEMON_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) PROBEMON_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() PROBEMON_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

class PROBEMON_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) PROBEMON_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  // Generic release: the scope acquired in shared mode, and clang
  // tracks the scoped capability's mode itself.
  ~ReaderMutexLock() PROBEMON_RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable for util::Mutex. Deliberately *without* the
/// predicate overloads: TSA analyzes a predicate lambda as a separate
/// function and would flag its guarded-field reads, so call sites use
/// the explicit loop form instead:
///
///   while (!ready_) cv_.wait(mutex_);
///
/// which the analysis follows naturally.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and sleeps; `mu` is re-held on return.
  /// TSA-wise the capability stays held across the call (REQUIRES),
  /// matching how callers reason about the surrounding loop. The
  /// lock-order registry likewise keeps the lock on the held stack:
  /// the wait's release/re-acquire pair cannot introduce an ordering
  /// edge that the original acquisition did not already create.
  void wait(Mutex& mu) PROBEMON_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(  // NOLINT(annotated-locks): adopts
        mu.native_handle(), std::adopt_lock);
    cv_.wait(native);
    native.release();  // still held; the wrapper keeps ownership
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      PROBEMON_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(  // NOLINT(annotated-locks): adopts
        mu.native_handle(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& rel)
      PROBEMON_REQUIRES(mu) {
    return wait_until(mu, std::chrono::steady_clock::now() + rel);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // NOLINT(annotated-locks): wrapped here
};

}  // namespace probemon::util
