// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in probemon flows through these generators so
// that every simulation run is exactly reproducible from a single 64-bit
// seed. We deliberately avoid <random> engines and distributions for the
// *protocol-relevant* randomness: their output is implementation-defined
// across standard libraries, which would make regression tests and the
// EXPERIMENTS.md numbers non-portable.
//
// Generators:
//   SplitMix64   - tiny, used for seeding and stream derivation.
//   Xoshiro256pp - xoshiro256++ 1.0 (Blackman & Vigna), the workhorse.
//   Rng          - a seeded Xoshiro256pp plus convenience draws.
//
// Stream derivation: Rng::fork(tag) derives an independent generator from
// the parent seed and a caller-supplied tag, so each node / model in a
// simulation gets its own stream and adding a node never perturbs the
// randomness seen by others.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace probemon::util {

/// SplitMix64: used to expand a 64-bit seed into generator state.
/// Passes BigCrush when used as a generator in its own right.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0. Public domain reference algorithm by David Blackman
/// and Sebastiano Vigna, reimplemented here.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// State is expanded from `seed` via SplitMix64 (the seeding procedure
  /// recommended by the xoshiro authors).
  explicit constexpr Xoshiro256pp(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Advance 2^128 steps; used to create non-overlapping sequences.
  void jump() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

/// Seeded random source with the uniform draws every other module builds on.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed), seed_(seed) {}

  std::uint64_t seed() const noexcept { return seed_; }

  /// Raw 64 uniform bits.
  std::uint64_t next_u64() noexcept { return gen_(); }

  /// Uniform double in [0, 1). 53-bit resolution.
  double next_double() noexcept {
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; never returns 0 (safe for log()).
  double next_double_open0() noexcept {
    return (static_cast<double>(gen_() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [lo, hi] (inclusive). Debiased via rejection.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive), signed convenience.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_u64(0, static_cast<std::uint64_t>(hi - lo)));
  }

  /// Bernoulli trial.
  bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Derive an independent child generator from this generator's seed and
  /// a tag. Deterministic: same (seed, tag) -> same child stream.
  Rng fork(std::uint64_t tag) const noexcept {
    SplitMix64 sm(seed_ ^ (0x9e3779b97f4a7c15ULL * (tag + 1)));
    std::uint64_t derived = sm.next() ^ sm.next();
    return Rng(derived);
  }

  /// Derive a child stream from a string tag (e.g. "net.delay").
  Rng fork(std::string_view tag) const noexcept;

 private:
  Xoshiro256pp gen_;
  std::uint64_t seed_;
};

/// FNV-1a 64-bit hash; stable across platforms, used for string stream tags.
constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace probemon::util
