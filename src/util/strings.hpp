// Small string/format helpers shared by trace output and benches.
#pragma once

#include <string>
#include <vector>

namespace probemon::util {

/// Format a double with `precision` significant decimal digits after the
/// point, trimming trailing zeros ("1.50" -> "1.5", "2.00" -> "2").
std::string format_double(double value, int precision = 6);

/// Fixed-point formatting, keeps trailing zeros (for aligned tables).
std::string format_fixed(double value, int decimals);

/// "h:mm:ss" rendering of a duration in seconds (paper figures label runs
/// like "5h 33m 20s").
std::string format_duration(double seconds);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 const std::string& sep);

/// Left-pad / right-pad to width with spaces (no truncation).
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

}  // namespace probemon::util
