#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace probemon::util {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      errors_.push_back("unexpected positional argument: " + arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

std::optional<std::string> Cli::raw(const std::string& name) {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  std::string value = it->second;
  values_.erase(it);  // consumed; leftovers are unknown options
  return value;
}

template <>
std::string Cli::get(const std::string& name, std::string default_value) {
  described_.push_back(name);
  defaults_shown_[name] = default_value;
  return raw(name).value_or(default_value);
}

template <>
double Cli::get(const std::string& name, double default_value) {
  described_.push_back(name);
  defaults_shown_[name] = std::to_string(default_value);
  const auto value = raw(name);
  if (!value) return default_value;
  try {
    return std::stod(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": not a number: " + *value);
  }
}

template <>
std::uint64_t Cli::get(const std::string& name, std::uint64_t default_value) {
  described_.push_back(name);
  defaults_shown_[name] = std::to_string(default_value);
  const auto value = raw(name);
  if (!value) return default_value;
  try {
    return std::stoull(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": not an integer: " + *value);
  }
}

template <>
std::int64_t Cli::get(const std::string& name, std::int64_t default_value) {
  described_.push_back(name);
  defaults_shown_[name] = std::to_string(default_value);
  const auto value = raw(name);
  if (!value) return default_value;
  try {
    return std::stoll(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": not an integer: " + *value);
  }
}

template <>
bool Cli::get(const std::string& name, bool default_value) {
  described_.push_back(name);
  defaults_shown_[name] = default_value ? "true" : "false";
  const auto value = raw(name);
  if (!value) return default_value;
  if (*value == "true" || *value == "1") return true;
  if (*value == "false" || *value == "0") return false;
  throw std::invalid_argument("--" + name + ": not a bool: " + *value);
}

void Cli::finish(const std::string& description) const {
  if (help_) {
    std::cout << description << "\nusage: " << program_;
    for (const auto& name : described_) {
      std::cout << " [--" << name << "=" << defaults_shown_.at(name) << ']';
    }
    std::cout << '\n';
    std::exit(0);
  }
  bool bad = !errors_.empty();
  for (const auto& error : errors_) std::cerr << error << '\n';
  for (const auto& [name, value] : values_) {
    std::cerr << "unknown option --" << name << '\n';
    bad = true;
  }
  if (bad) std::exit(2);
}

}  // namespace probemon::util
