#include "util/lock_order.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>  // NOLINT(annotated-locks): detector sits below util::Mutex
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

// The singletons below are leaked on purpose (they must stay usable
// during static/thread_local destruction); tell LeakSanitizer so ASan
// runs don't report them.
#if defined(__SANITIZE_ADDRESS__)
#define PROBEMON_LSAN_IGNORE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PROBEMON_LSAN_IGNORE 1
#endif
#endif
#ifdef PROBEMON_LSAN_IGNORE
#include <sanitizer/lsan_interface.h>
#endif

namespace probemon::util {

namespace {

template <class T>
T* leak_intentionally(T* ptr) {
#ifdef PROBEMON_LSAN_IGNORE
  __lsan_ignore_object(ptr);
#endif
  return ptr;
}

struct Held {
  const void* lock;
  const char* name;
};

struct EdgeKey {
  const void* from;
  const void* to;
  bool operator==(const EdgeKey& o) const {
    return from == o.from && to == o.to;
  }
};

struct EdgeKeyHash {
  std::size_t operator()(const EdgeKey& e) const {
    const auto a = reinterpret_cast<std::uintptr_t>(e.from);
    const auto b = reinterpret_cast<std::uintptr_t>(e.to);
    return std::hash<std::uintptr_t>()(a ^ (b * 0x9e3779b97f4a7c15ULL));
  }
};

/// The global ordering graph. Guarded by its own raw mutex: the
/// registry sits *below* every util::Mutex (its hooks run inside their
/// lock/unlock), so it must not itself be a util::Mutex.
struct Graph {
  std::mutex mu;  // NOLINT(annotated-locks): lock-order detector internals
  /// adjacency: from-lock -> set of to-locks observed locked after it
  std::unordered_map<const void*, std::unordered_set<const void*>> edges;
  /// last-seen diagnostic name per live lock
  std::unordered_map<const void*, const char*> names;
};

Graph& graph() {
  static Graph* g = leak_intentionally(
      new Graph);  // NOLINT(no-naked-new): leaked on purpose — must outlive static-dtor order
  return *g;
}

/// Per-thread stack of currently held locks. Heap-allocated and leaked
/// per thread to stay usable during thread_local destruction.
std::vector<Held>& held_stack() {
  thread_local std::vector<Held>* stack = leak_intentionally(
      new std::vector<Held>);  // NOLINT(no-naked-new): leaked per thread on purpose (usable during thread_local dtors)
  return *stack;
}

/// Per-thread cache of edges already validated against the global
/// graph; hits skip the graph mutex entirely.
std::unordered_set<EdgeKey, EdgeKeyHash>& validated_edges() {
  thread_local std::unordered_set<EdgeKey, EdgeKeyHash>* cache =
      leak_intentionally(
          new std::unordered_set<EdgeKey,  // NOLINT(no-naked-new): leaked per thread on purpose
                                 EdgeKeyHash>);
  return *cache;
}

/// Depth-first reachability from -> to over `g.edges`. Called with
/// g.mu held; graphs here are tiny (one node per live named mutex), so
/// recursion depth is bounded and no visited-set reuse is needed.
bool reachable(Graph& g, const void* from, const void* to,
               std::unordered_set<const void*>& visited) {
  if (from == to) return true;
  if (!visited.insert(from).second) return false;
  auto it = g.edges.find(from);
  if (it == g.edges.end()) return false;
  for (const void* next : it->second) {
    if (reachable(g, next, to, visited)) return true;
  }
  return false;
}

void default_handler(const char* diagnostic) {
  std::fprintf(stderr, "%s\n", diagnostic);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

LockOrderRegistry& LockOrderRegistry::instance() {
  static LockOrderRegistry* registry = leak_intentionally(
      new LockOrderRegistry);  // NOLINT(no-naked-new): leaked on purpose — hooks run during static dtors
  return *registry;
}

LockOrderRegistry::ViolationHandler LockOrderRegistry::set_violation_handler(
    ViolationHandler handler) {
  return handler_.exchange(handler);
}

void LockOrderRegistry::reset_graph_for_test() {
  Graph& g = graph();
  std::lock_guard lock(g.mu);  // NOLINT(annotated-locks): detector internals
  g.edges.clear();
  g.names.clear();
  validated_edges().clear();
}

void LockOrderRegistry::on_acquire(const void* lock, const char* name) {
  std::vector<Held>& held = held_stack();
  if (!held.empty()) {
    const Held& prev = held.back();
    if (prev.lock != lock) {  // recursive re-lock would deadlock anyway
      const EdgeKey key{prev.lock, lock};
      if (validated_edges().find(key) == validated_edges().end()) {
        Graph& g = graph();
        std::string diagnostic;
        {
          std::lock_guard guard(g.mu);  // NOLINT(annotated-locks): internals
          g.names[lock] = name;
          auto& out = g.edges[prev.lock];
          if (out.find(lock) == out.end()) {
            // New ordering: a path lock ->* prev.lock means some earlier
            // execution took these locks in the opposite order.
            std::unordered_set<const void*> visited;
            if (reachable(g, lock, prev.lock, visited)) {
              violations_.fetch_add(1, std::memory_order_relaxed);
              diagnostic =
                  "probemon: lock-order violation (potential deadlock): "
                  "acquiring \"";
              diagnostic += name;
              diagnostic += "\" while holding \"";
              diagnostic += prev.name;
              diagnostic +=
                  "\" reverses a previously observed ordering in which \"";
              diagnostic += name;
              diagnostic += "\" was held before \"";
              diagnostic += prev.name;
              diagnostic += "\"";
            } else {
              out.insert(lock);
            }
          }
          if (diagnostic.empty()) validated_edges().insert(key);
        }
        if (!diagnostic.empty()) {
          ViolationHandler handler = handler_.load();
          if (handler == nullptr) handler = default_handler;
          handler(diagnostic.c_str());
          // A non-aborting (test) handler falls through: the reversed
          // edge is intentionally NOT recorded, so the graph keeps the
          // original orientation and later reversals re-report.
        }
      }
    }
  } else {
    Graph& g = graph();
    std::lock_guard guard(g.mu);  // NOLINT(annotated-locks): internals
    g.names[lock] = name;
  }
  held.push_back(Held{lock, name});
}

void LockOrderRegistry::on_acquire_no_check(const void* lock,
                                            const char* name) {
  held_stack().push_back(Held{lock, name});
}

void LockOrderRegistry::on_release(const void* lock) {
  std::vector<Held>& held = held_stack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->lock == lock) {
      held.erase(std::next(it).base());
      return;
    }
  }
  // Release of a lock this thread never recorded (e.g. registry was
  // reset mid-hold in a test): ignore.
}

void LockOrderRegistry::on_destroy(const void* lock) {
  Graph& g = graph();
  std::lock_guard guard(g.mu);  // NOLINT(annotated-locks): internals
  g.edges.erase(lock);
  for (auto& [from, out] : g.edges) {
    (void)from;
    out.erase(lock);
  }
  g.names.erase(lock);
  // Thread-local validated-edge caches may keep stale entries for this
  // address; after reuse that can only suppress a report, not invent
  // one (see header).
}

}  // namespace probemon::util
