#include "util/logging.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>

#include "util/thread_annotations.hpp"

namespace probemon::util {

namespace {
/// JSON string escaping (duplicated from telemetry/json.hpp to keep
/// util free of upward dependencies; the set of escapes is fixed by the
/// JSON grammar, so divergence is not a risk).
void json_escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}
}  // namespace

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::string log_timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03d",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(millis));
  return buf;
}

Logger::Sink make_stderr_sink() {
  return [](LogLevel level, const std::string& msg) {
    std::cerr << log_timestamp() << " [" << to_string(level) << "] " << msg
              << '\n';
  };
}

Logger::Sink make_json_sink(std::ostream& out) {
  return [&out](LogLevel level, const std::string& msg) {
    std::string line = "{\"ts\":";
    json_escape_into(line, log_timestamp());
    line += ",\"level\":";
    json_escape_into(line, to_string(level));
    line += ",\"msg\":";
    json_escape_into(line, msg);
    line += "}\n";
    out << line;
    out.flush();
  };
}

Logger::Logger() : sink_(make_stderr_sink()) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Sink Logger::set_sink(Sink sink) {
  MutexLock lock(sink_mutex_);
  Sink old = std::move(sink_);
  sink_ = std::move(sink);
  return old;
}

void Logger::log(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  MutexLock lock(sink_mutex_);
  if (sink_) sink_(level, message);
}

}  // namespace probemon::util
