#include "util/logging.hpp"

#include <iostream>
#include <mutex>

namespace probemon::util {

namespace {
std::mutex g_sink_mutex;
}

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger::Logger()
    : sink_([](LogLevel level, const std::string& msg) {
        std::cerr << '[' << to_string(level) << "] " << msg << '\n';
      }) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Sink Logger::set_sink(Sink sink) {
  std::lock_guard lock(g_sink_mutex);
  Sink old = std::move(sink_);
  sink_ = std::move(sink);
  return old;
}

void Logger::log(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  std::lock_guard lock(g_sink_mutex);
  if (sink_) sink_(level, message);
}

}  // namespace probemon::util
