// Small-buffer-optimized move-only callable: the event callback type of
// the DES hot path.
//
// std::function heap-allocates once per stored callable with captures
// beyond its (implementation-defined) inline buffer, and the scheduler
// creates one callable per event — millions per simulated run. An
// InlineFunction stores the callable inside the object when it fits in
// `Capacity` bytes (default 48, chosen so the common kernel captures —
// a `this` pointer plus a couple of scalars, or a whole std::function —
// stay inline) and only spills to the heap beyond that. Every spill is
// counted through a process-wide relaxed counter so tests can assert
// that the steady-state probe path never allocates
// (inline_function_heap_allocations()).
//
// Use `fits_inline<F>` with a static_assert at hot call sites to make
// "this capture is allocation-free" a compile-time guarantee rather
// than a hope; see des/timer.hpp and core/device_base.cpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace probemon::util {

namespace detail {
inline std::atomic<std::uint64_t>& inline_function_heap_counter() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}
}  // namespace detail

/// Total callables (process-wide) that did not fit an InlineFunction's
/// inline buffer and were heap-allocated. A test hook: steady-state DES
/// runs must not move this counter.
inline std::uint64_t inline_function_heap_allocations() noexcept {
  return detail::inline_function_heap_counter().load(std::memory_order_relaxed);
}

template <class Signature, std::size_t Capacity = 48>
class InlineFunction;  // primary left undefined; see the R(Args...) partial

template <class R, class... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  static constexpr std::size_t capacity = Capacity;

  /// True when F is stored inline (no heap allocation on construction).
  template <class F>
  static constexpr bool fits_inline =
      sizeof(std::decay_t<F>) <= Capacity &&
      alignof(std::decay_t<F>) <= alignof(std::max_align_t);

  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT: mirrors std::function

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    emplace(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(this, std::forward<Args>(args)...);
  }

  /// Destroy the stored callable (and free its heap block, if spilled).
  void reset() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, this, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

 private:
  enum class Op : std::uint8_t { kDestroy, kMove };

  using Invoke = R (*)(InlineFunction*, Args&&...);
  using Manage = void (*)(Op, InlineFunction*, InlineFunction*);

  template <class F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    // The invoke/manage function pointers each close over where the
    // callable lives (inline buffer vs heap block), so there is no
    // discriminator flag to keep in sync on moves.
    if constexpr (fits_inline<F>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
      invoke_ = [](InlineFunction* self, Args&&... args) -> R {
        return (*self->inline_target<Fn>())(std::forward<Args>(args)...);
      };
      manage_ = [](Op op, InlineFunction* self, InlineFunction* dst) {
        Fn* fn = self->inline_target<Fn>();
        if (op == Op::kDestroy) {
          fn->~Fn();
          return;
        }
        ::new (static_cast<void*>(dst->buffer_)) Fn(std::move(*fn));
        fn->~Fn();
      };
    } else {
      detail::inline_function_heap_counter().fetch_add(
          1, std::memory_order_relaxed);
      heap_slot() = new Fn(std::forward<F>(f));  // NOLINT(no-naked-new): type-erased SBO spill, deleted by the manager
      invoke_ = [](InlineFunction* self, Args&&... args) -> R {
        return (*static_cast<Fn*>(self->heap_slot()))(
            std::forward<Args>(args)...);
      };
      manage_ = [](Op op, InlineFunction* self, InlineFunction* dst) {
        Fn* fn = static_cast<Fn*>(self->heap_slot());
        if (op == Op::kDestroy) {
          delete fn;
          return;
        }
        dst->heap_slot() = fn;
      };
    }
  }

  void move_from(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) manage_(Op::kMove, &other, this);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  template <class Fn>
  Fn* inline_target() noexcept {
    return std::launder(reinterpret_cast<Fn*>(buffer_));
  }

  /// The heap pointer of a spilled callable lives in the inline buffer.
  void*& heap_slot() noexcept {
    return *reinterpret_cast<void**>(static_cast<void*>(buffer_));
  }

  alignas(std::max_align_t) unsigned char buffer_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace probemon::util
