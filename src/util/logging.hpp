// Minimal leveled logger.
//
// Simulations are quiet by default (kWarn); examples raise the level to
// narrate protocol behaviour. Logging goes through a single global sink so
// tests can capture output. Not intended to be a high-performance logging
// pipeline: protocol hot paths record metrics through stats::, never here.
#pragma once

#include <atomic>
#include <functional>
#include <iosfwd>
#include <sstream>
#include <string>

#include "util/thread_annotations.hpp"

namespace probemon::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* to_string(LogLevel level) noexcept;

/// Global log configuration. Level set/get is lock-free (relaxed
/// atomic); sink replacement and log emission are serialized by an
/// internal mutex, so both are safe at any time from any thread.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) noexcept {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  bool enabled(LogLevel level) const noexcept { return level >= this->level(); }

  /// Replace the sink (default: make_stderr_sink()). Returns previous
  /// sink. Thread-safe; never races an in-flight log() call.
  Sink set_sink(Sink sink) PROBEMON_EXCLUDES(sink_mutex_);

  void log(LogLevel level, const std::string& message)
      PROBEMON_EXCLUDES(sink_mutex_);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  mutable Mutex sink_mutex_{"util.Logger"};
  Sink sink_ PROBEMON_GUARDED_BY(sink_mutex_);
};

/// Wall-clock timestamp "YYYY-MM-DDTHH:MM:SS.mmm" (local time), as
/// prefixed by the default stderr sink.
std::string log_timestamp();

/// The default sink: "<timestamp> [LEVEL] message" to stderr.
Logger::Sink make_stderr_sink();

/// Structured JSON-lines sink for log ingestion: one
/// {"ts":...,"level":...,"msg":...} object per line on `out`. The
/// stream must outlive the sink; writes are serialized by the logger.
Logger::Sink make_json_sink(std::ostream& out);

/// Stream-style log statement builder; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().log(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace probemon::util

#define PROBEMON_LOG(level)                                       \
  if (!::probemon::util::Logger::instance().enabled(level)) {     \
  } else                                                          \
    ::probemon::util::LogLine(level)

#define PLOG_TRACE PROBEMON_LOG(::probemon::util::LogLevel::kTrace)
#define PLOG_DEBUG PROBEMON_LOG(::probemon::util::LogLevel::kDebug)
#define PLOG_INFO PROBEMON_LOG(::probemon::util::LogLevel::kInfo)
#define PLOG_WARN PROBEMON_LOG(::probemon::util::LogLevel::kWarn)
#define PLOG_ERROR PROBEMON_LOG(::probemon::util::LogLevel::kError)
