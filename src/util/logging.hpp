// Minimal leveled logger.
//
// Simulations are quiet by default (kWarn); examples raise the level to
// narrate protocol behaviour. Logging goes through a single global sink so
// tests can capture output. Not intended to be a high-performance logging
// pipeline: protocol hot paths record metrics through stats::, never here.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace probemon::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* to_string(LogLevel level) noexcept;

/// Global log configuration. Thread-safe for set/get of the level;
/// sink replacement must happen before concurrent logging starts.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }
  bool enabled(LogLevel level) const noexcept { return level >= level_; }

  /// Replace the sink (default writes to stderr). Returns previous sink.
  Sink set_sink(Sink sink);

  void log(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

/// Stream-style log statement builder; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().log(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace probemon::util

#define PROBEMON_LOG(level)                                       \
  if (!::probemon::util::Logger::instance().enabled(level)) {     \
  } else                                                          \
    ::probemon::util::LogLine(level)

#define PLOG_TRACE PROBEMON_LOG(::probemon::util::LogLevel::kTrace)
#define PLOG_DEBUG PROBEMON_LOG(::probemon::util::LogLevel::kDebug)
#define PLOG_INFO PROBEMON_LOG(::probemon::util::LogLevel::kInfo)
#define PLOG_WARN PROBEMON_LOG(::probemon::util::LogLevel::kWarn)
#define PLOG_ERROR PROBEMON_LOG(::probemon::util::LogLevel::kError)
