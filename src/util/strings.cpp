#include "util/strings.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace probemon::util {

std::string format_double(double value, int precision) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string format_fixed(double value, int decimals) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return std::string(buf);
}

std::string format_duration(double seconds) {
  if (seconds < 0) return "-" + format_duration(-seconds);
  const auto total = static_cast<long long>(seconds + 0.5);
  const long long h = total / 3600;
  const long long m = (total % 3600) / 60;
  const long long s = total % 60;
  std::ostringstream os;
  if (h > 0) os << h << "h ";
  if (h > 0 || m > 0) os << m << "m ";
  os << s << "s";
  return os.str();
}

std::string join(const std::vector<std::string>& pieces,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace probemon::util
