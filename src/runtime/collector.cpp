#include "runtime/collector.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "telemetry/json.hpp"

namespace probemon::runtime {

using telemetry::Labels;
using telemetry::MetricType;
using telemetry::Sample;

namespace {

/// Incoming label sets may not carry their own "agent" label — the
/// collector owns that dimension.
Labels strip_agent_label(const Labels& labels) {
  Labels out;
  out.reserve(labels.size());
  for (const auto& [k, v] : labels) {
    if (k != "agent") out.emplace_back(k, v);
  }
  return out;
}

Labels with_agent(const Labels& labels, const std::string& agent) {
  Labels out = labels;
  out.emplace_back("agent", agent);
  return out;
}

/// Write one sample's absolute state into a store (ingestion
/// semantics: overwrite, don't accumulate — re-delivery is idempotent).
void write_absolute(telemetry::MetricStore& store, const Sample& sample,
                    const Labels& labels) {
  switch (sample.type) {
    case MetricType::kCounter:
      store.counter(sample.name, sample.help, labels)
          .reset(static_cast<std::uint64_t>(sample.value));
      break;
    case MetricType::kGauge:
      store.gauge(sample.name, sample.help, labels).set(sample.value);
      break;
    case MetricType::kHistogram: {
      auto* hist =
          &store.histogram(sample.name, sample.bounds, sample.help, labels);
      if (hist->upper_bounds() != sample.bounds) {
        // The agent rebucketed between reports; replace the series.
        store.remove(sample.name, labels);
        hist = &store.histogram(sample.name, sample.bounds, sample.help,
                                labels);
      }
      hist->reset_to(sample.buckets, sample.count, sample.sum);
      break;
    }
  }
}

}  // namespace

MetricsCollector::MetricsCollector(std::size_t shards) : merged_(shards) {}

std::size_t MetricsCollector::ingest(std::string_view json_body) {
  return ingest(telemetry::parse_metrics_json(json_body));
}

void MetricsCollector::apply_sample(telemetry::Registry& agent_view,
                                    const Sample& sample,
                                    const std::string& agent) {
  const Labels labels = strip_agent_label(sample.labels);
  write_absolute(agent_view, sample, labels);
  write_absolute(merged_, sample, with_agent(labels, agent));
}

void MetricsCollector::remove_sample(telemetry::Registry& agent_view,
                                     const Sample& sample,
                                     const std::string& agent) {
  agent_view.remove(sample.name, sample.labels);
  merged_.remove(sample.name, with_agent(sample.labels, agent));
}

std::size_t MetricsCollector::ingest(
    const telemetry::MetricsDocument& document) {
  if (document.agent.empty()) {
    throw std::runtime_error("MetricsCollector: report carries no agent id");
  }
  std::lock_guard lock(mutex_);
  auto& agent_view = agents_[document.agent];
  if (!agent_view) agent_view = std::make_unique<telemetry::Registry>();

  if (document.full) {
    // Absolute state: any series the agent previously reported but no
    // longer does is gone — drop it from both views.
    std::set<std::string> reported;
    for (const Sample& s : document.samples) {
      reported.insert(
          telemetry::detail::make_key(s.name, strip_agent_label(s.labels)));
    }
    for (const Sample& old : agent_view->snapshot()) {
      if (reported.count(telemetry::detail::make_key(old.name, old.labels)) ==
          0) {
        remove_sample(*agent_view, old, document.agent);
      }
    }
  }
  for (const Sample& s : document.samples) {
    apply_sample(*agent_view, s, document.agent);
  }
  ++reports_;
  samples_ += document.samples.size();
  return document.samples.size();
}

std::vector<std::string> MetricsCollector::agents() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(agents_.size());
  for (const auto& [agent, view] : agents_) out.push_back(agent);
  return out;  // std::map: already sorted
}

std::size_t MetricsCollector::agent_count() const {
  std::lock_guard lock(mutex_);
  return agents_.size();
}

bool MetricsCollector::forget(const std::string& agent) {
  std::lock_guard lock(mutex_);
  auto it = agents_.find(agent);
  if (it == agents_.end()) return false;
  for (const Sample& s : it->second->snapshot()) {
    merged_.remove(s.name, with_agent(s.labels, agent));
  }
  agents_.erase(it);
  return true;
}

std::vector<Sample> MetricsCollector::agent_snapshot(
    const std::string& agent) const {
  std::lock_guard lock(mutex_);
  auto it = agents_.find(agent);
  if (it == agents_.end()) return {};
  return it->second->snapshot();
}

std::uint64_t MetricsCollector::reports_ingested() const {
  std::lock_guard lock(mutex_);
  return reports_;
}

std::uint64_t MetricsCollector::samples_ingested() const {
  std::lock_guard lock(mutex_);
  return samples_;
}

void register_collector_routes(telemetry::HttpServer& server,
                               MetricsCollector& collector) {
  server.handle_post(
      "/push", [&collector](const telemetry::HttpRequest& request) {
        std::size_t absorbed = 0;
        try {
          absorbed = collector.ingest(request.body);
        } catch (const std::exception& e) {
          return telemetry::error_response(400, e.what());
        }
        telemetry::JsonWriter w;
        w.begin_object();
        w.key("ok");
        w.value(true);
        w.key("samples");
        w.value(static_cast<std::uint64_t>(absorbed));
        w.end_object();
        return telemetry::HttpResponse{200, "application/json; charset=utf-8",
                                       w.str()};
      });
  server.handle("/agents", [&collector](const telemetry::HttpRequest&) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.key("reports_ingested");
    w.value(collector.reports_ingested());
    w.key("samples_ingested");
    w.value(collector.samples_ingested());
    w.key("agents");
    w.begin_array();
    for (const std::string& agent : collector.agents()) {
      w.begin_object();
      w.key("agent");
      w.value(agent);
      w.key("series");
      w.value(
          static_cast<std::uint64_t>(collector.agent_snapshot(agent).size()));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return telemetry::HttpResponse{200, "application/json; charset=utf-8",
                                   w.str()};
  });
}

}  // namespace probemon::runtime
