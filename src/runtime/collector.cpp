#include "runtime/collector.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <stdexcept>

#include "telemetry/json.hpp"

namespace probemon::runtime {

using telemetry::Labels;
using telemetry::MetricType;
using telemetry::Sample;

namespace {

/// Incoming label sets may not carry their own "agent" label — the
/// collector owns that dimension.
Labels strip_agent_label(const Labels& labels) {
  Labels out;
  out.reserve(labels.size());
  for (const auto& [k, v] : labels) {
    if (k != "agent") out.emplace_back(k, v);
  }
  return out;
}

Labels with_agent(const Labels& labels, const std::string& agent) {
  Labels out = labels;
  out.emplace_back("agent", agent);
  return out;
}

/// Write one sample's absolute state into a store (ingestion
/// semantics: overwrite, don't accumulate — re-delivery is idempotent).
void write_absolute(telemetry::MetricStore& store, const Sample& sample,
                    const Labels& labels) {
  switch (sample.type) {
    case MetricType::kCounter:
      store.counter(sample.name, sample.help, labels)
          .reset(static_cast<std::uint64_t>(sample.value));
      break;
    case MetricType::kGauge:
      store.gauge(sample.name, sample.help, labels).set(sample.value);
      break;
    case MetricType::kHistogram: {
      auto* hist =
          &store.histogram(sample.name, sample.bounds, sample.help, labels);
      if (hist->upper_bounds() != sample.bounds) {
        // The agent rebucketed between reports; replace the series.
        store.remove(sample.name, labels);
        hist = &store.histogram(sample.name, sample.bounds, sample.help,
                                labels);
      }
      hist->reset_to(sample.buckets, sample.count, sample.sum);
      break;
    }
  }
}

}  // namespace

namespace {

constexpr char kStalenessGauge[] = "probemon_collector_agent_staleness_seconds";
constexpr char kDeadlineGauge[] = "probemon_collector_agent_deadline_seconds";
constexpr char kAbsentGauge[] = "probemon_collector_agent_absent";
constexpr char kAbsentRule[] = "agent_absent";

/// The adaptation observes pc in these units so sub-second push gaps
/// still resolve (pc is integral).
constexpr double kTicksPerSecond = 1000.0;

}  // namespace

MetricsCollector::MetricsCollector(std::size_t shards,
                                   CollectorPresenceConfig presence)
    : merged_(shards), presence_(presence) {
  // Transpose SAPP (paper eq. 1) onto push arrivals: the adaptation
  // sees pc = elapsed ticks and t = push count, so l_exp = ticks/push
  // (the observed inter-push gap) and delta is the staleness deadline
  // in seconds. See the class comment.
  adapt_config_.alpha_inc = presence_.alpha_inc;
  adapt_config_.alpha_dec = presence_.alpha_dec;
  adapt_config_.beta = presence_.beta;
  adapt_config_.l_ideal = presence_.expected_period_s * kTicksPerSecond;
  adapt_config_.delta_min = presence_.deadline_min_s;
  adapt_config_.delta_max = presence_.deadline_max_s;
  adapt_config_.initial_delay = presence_.deadline_initial_s;
  adapt_config_.validate();
  const auto start = std::chrono::steady_clock::now();
  now_fn_ = [start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
}

void MetricsCollector::set_clock(std::function<double()> now_fn) {
  if (!now_fn) throw std::invalid_argument("collector clock must be callable");
  util::MutexLock lock(mutex_);
  now_fn_ = std::move(now_fn);
}

void MetricsCollector::attach_alert_engine(telemetry::AlertEngine& engine) {
  util::MutexLock lock(mutex_);
  telemetry::AlertRule rule;
  rule.name = kAbsentRule;
  rule.op = telemetry::AlertOp::kGt;
  rule.threshold = 0.0;  // breach signal is the adaptive deadline check
  rule.for_s = presence_.absent_for_s;
  rule.summary = "agent stopped pushing past its adaptive deadline";
  engine.add_condition_rule(rule);
  alert_engine_ = &engine;
}

void MetricsCollector::export_presence(const std::string& agent,
                                       const Presence& presence) {
  const Labels labels{{"agent", agent}};
  self_.gauge(kStalenessGauge,
              "Seconds since the agent's last ingested report", labels)
      .set(presence.staleness_s);
  self_.gauge(kDeadlineGauge,
              "Adaptive staleness deadline for the agent (SAPP eq. 1 on "
              "push arrivals)",
              labels)
      .set(presence.adaptation.delta());
  self_.gauge(kAbsentGauge, "1 while the agent is past its deadline, else 0",
              labels)
      .set(presence.absent ? 1.0 : 0.0);
}

void MetricsCollector::observe_push(const std::string& agent, double now) {
  auto it = presence_by_agent_.find(agent);
  if (it == presence_by_agent_.end()) {
    it = presence_by_agent_.emplace(agent, Presence(adapt_config_)).first;
  }
  Presence& presence = it->second;
  ++presence.reports;
  const auto ticks = static_cast<std::uint64_t>(
      std::llround(std::max(0.0, now) * kTicksPerSecond));
  presence.adaptation.observe(ticks, static_cast<double>(presence.reports));
  presence.last_push_t = now;
  presence.staleness_s = 0.0;
  const bool was_absent = presence.absent;
  presence.absent = false;
  export_presence(agent, presence);
  if (alert_engine_ != nullptr && was_absent) {
    alert_engine_->set_condition(kAbsentRule, {{"agent", agent}}, false, 0.0,
                                 now);
  }
}

std::size_t MetricsCollector::update_presence() {
  util::MutexLock lock(mutex_);
  const double now = now_fn_();
  std::size_t absent = 0;
  for (auto& [agent, presence] : presence_by_agent_) {
    presence.staleness_s = std::max(0.0, now - presence.last_push_t);
    presence.absent = presence.staleness_s > presence.adaptation.delta();
    if (presence.absent) ++absent;
    export_presence(agent, presence);
    if (alert_engine_ != nullptr) {
      alert_engine_->set_condition(kAbsentRule, {{"agent", agent}},
                                   presence.absent, presence.staleness_s, now);
    }
  }
  self_.gauge("probemon_collector_agents", "Agents known to the collector")
      .set(static_cast<double>(presence_by_agent_.size()));
  self_.gauge("probemon_collector_agents_absent",
              "Agents currently past their adaptive deadline")
      .set(static_cast<double>(absent));
  return absent;
}

std::vector<MetricsCollector::AgentPresence> MetricsCollector::agent_presence()
    const {
  util::MutexLock lock(mutex_);
  std::vector<AgentPresence> out;
  out.reserve(presence_by_agent_.size());
  for (const auto& [agent, presence] : presence_by_agent_) {
    AgentPresence info;
    info.agent = agent;
    info.absent = presence.absent;
    info.last_push_t = presence.last_push_t;
    info.staleness_s = presence.staleness_s;
    info.deadline_s = presence.adaptation.delta();
    info.reports = presence.reports;
    out.push_back(std::move(info));
  }
  return out;  // std::map: sorted by agent id
}

std::size_t MetricsCollector::ingest(std::string_view json_body) {
  return ingest(telemetry::parse_metrics_json(json_body));
}

void MetricsCollector::apply_sample(telemetry::Registry& agent_view,
                                    const Sample& sample,
                                    const std::string& agent) {
  const Labels labels = strip_agent_label(sample.labels);
  write_absolute(agent_view, sample, labels);
  write_absolute(merged_, sample, with_agent(labels, agent));
}

void MetricsCollector::remove_sample(telemetry::Registry& agent_view,
                                     const Sample& sample,
                                     const std::string& agent) {
  agent_view.remove(sample.name, sample.labels);
  merged_.remove(sample.name, with_agent(sample.labels, agent));
}

std::size_t MetricsCollector::ingest(
    const telemetry::MetricsDocument& document) {
  if (document.agent.empty()) {
    throw std::runtime_error("MetricsCollector: report carries no agent id");
  }
  util::MutexLock lock(mutex_);
  auto& agent_view = agents_[document.agent];
  if (!agent_view) agent_view = std::make_unique<telemetry::Registry>();

  if (document.full) {
    // Absolute state: any series the agent previously reported but no
    // longer does is gone — drop it from both views.
    std::set<std::string> reported;
    for (const Sample& s : document.samples) {
      reported.insert(
          telemetry::detail::make_key(s.name, strip_agent_label(s.labels)));
    }
    for (const Sample& old : agent_view->snapshot()) {
      if (reported.count(telemetry::detail::make_key(old.name, old.labels)) ==
          0) {
        remove_sample(*agent_view, old, document.agent);
      }
    }
  }
  for (const Sample& s : document.samples) {
    apply_sample(*agent_view, s, document.agent);
  }
  ++reports_;
  samples_ += document.samples.size();
  observe_push(document.agent, now_fn_());
  return document.samples.size();
}

std::vector<std::string> MetricsCollector::agents() const {
  util::MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(agents_.size());
  for (const auto& [agent, view] : agents_) out.push_back(agent);
  return out;  // std::map: already sorted
}

std::size_t MetricsCollector::agent_count() const {
  util::MutexLock lock(mutex_);
  return agents_.size();
}

bool MetricsCollector::forget(const std::string& agent) {
  util::MutexLock lock(mutex_);
  auto it = agents_.find(agent);
  if (it == agents_.end()) return false;
  for (const Sample& s : it->second->snapshot()) {
    merged_.remove(s.name, with_agent(s.labels, agent));
  }
  agents_.erase(it);
  // Presence state goes with the agent: gauges are removed (not zeroed)
  // so a later merge_from of self_metrics() cannot resurrect them.
  presence_by_agent_.erase(agent);
  const Labels labels{{"agent", agent}};
  self_.remove(kStalenessGauge, labels);
  self_.remove(kDeadlineGauge, labels);
  self_.remove(kAbsentGauge, labels);
  if (alert_engine_ != nullptr) {
    alert_engine_->remove_condition(kAbsentRule, labels);
  }
  return true;
}

std::vector<Sample> MetricsCollector::agent_snapshot(
    const std::string& agent) const {
  util::MutexLock lock(mutex_);
  auto it = agents_.find(agent);
  if (it == agents_.end()) return {};
  return it->second->snapshot();
}

std::uint64_t MetricsCollector::reports_ingested() const {
  util::MutexLock lock(mutex_);
  return reports_;
}

std::uint64_t MetricsCollector::samples_ingested() const {
  util::MutexLock lock(mutex_);
  return samples_;
}

void register_collector_routes(telemetry::HttpServer& server,
                               MetricsCollector& collector) {
  server.handle_post(
      "/push", [&collector](const telemetry::HttpRequest& request) {
        std::size_t absorbed = 0;
        try {
          absorbed = collector.ingest(request.body);
        } catch (const std::exception& e) {
          return telemetry::error_response(400, e.what());
        }
        telemetry::JsonWriter w;
        w.begin_object();
        w.key("ok");
        w.value(true);
        w.key("samples");
        w.value(static_cast<std::uint64_t>(absorbed));
        w.end_object();
        return telemetry::HttpResponse{200, "application/json; charset=utf-8",
                                       w.str()};
      });
  server.handle("/agents", [&collector](
                               const telemetry::HttpRequest& request) {
    std::string filter;
    const auto it = request.query.find("state");
    if (it != request.query.end()) {
      filter = it->second;
      if (filter != "ok" && filter != "absent") {
        return telemetry::json_error_response(
            400, "state must be ok or absent (got '" + filter + "')");
      }
    }
    collector.update_presence();
    telemetry::JsonWriter w;
    w.begin_object();
    w.key("reports_ingested");
    w.value(collector.reports_ingested());
    w.key("samples_ingested");
    w.value(collector.samples_ingested());
    w.key("agents");
    w.begin_array();
    for (const auto& presence : collector.agent_presence()) {
      if (!filter.empty() && (filter == "absent") != presence.absent) {
        continue;
      }
      w.begin_object();
      w.key("agent");
      w.value(presence.agent);
      w.key("state");
      w.value(presence.absent ? "absent" : "ok");
      w.key("series");
      w.value(static_cast<std::uint64_t>(
          collector.agent_snapshot(presence.agent).size()));
      w.key("reports");
      w.value(presence.reports);
      w.key("staleness_s");
      w.value(presence.staleness_s);
      w.key("deadline_s");
      w.value(presence.deadline_s);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return telemetry::HttpResponse{200, "application/json; charset=utf-8",
                                   w.str()};
  });
}

}  // namespace probemon::runtime
