#include "runtime/rt_control_point.hpp"

namespace probemon::runtime {

RtControlPointBase::RtControlPointBase(Transport& transport,
                                       net::NodeId device,
                                       const core::TimeoutConfig& timeouts,
                                       Callbacks callbacks)
    : transport_(transport),
      device_(device),
      timeouts_(timeouts),
      callbacks_(std::move(callbacks)) {
  timeouts_.validate();
  id_ = transport_.attach([this](const net::Message& msg) { handle(msg); });
}

RtControlPointBase::~RtControlPointBase() {
  stop();
  transport_.detach(id_);
}

void RtControlPointBase::start() {
  util::MutexLock lock(mutex_);
  if (started_) return;
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void RtControlPointBase::stop() {
  std::thread worker;
  {
    util::MutexLock lock(mutex_);
    stop_ = true;
    worker = std::move(thread_);
  }
  cv_.notify_all();
  if (worker.joinable()) worker.join();
}

void RtControlPointBase::handle(const net::Message& msg) {
  if (msg.kind != net::MessageKind::kReply || msg.from != device_) return;
  {
    util::MutexLock lock(mutex_);
    pending_reply_ = msg;
  }
  cv_.notify_all();
}

void RtControlPointBase::send_probe(std::uint64_t cycle,
                                    std::uint8_t attempt) {
  net::Message probe;
  probe.kind = net::MessageKind::kProbe;
  probe.from = id_;
  probe.to = device_;
  probe.cycle = cycle;
  probe.attempt = attempt;
  transport_.send(probe);
}

void RtControlPointBase::run() {
  const RtClock& clock = transport_.clock();
  util::ReleasableMutexLock lock(mutex_);
  while (!stop_) {
    // ---- probe cycle ----
    const std::uint64_t cyc = ++cycle_;
    pending_reply_.reset();
    bool success = false;
    net::Message reply;
    double t_obs = 0;
    telemetry::ProbeCycleTrace trace;
    trace.cp = id_;
    trace.device = device_;
    trace.cycle = cyc;
    for (int attempt = 0; attempt <= timeouts_.max_retransmissions;
         ++attempt) {
      ++probes_sent_;
      const double sent_at = clock.now();
      if (attempt == 0) trace.start = sent_at;
      trace.attempts = static_cast<std::uint8_t>(attempt + 1);
      trace.sends.push_back(sent_at);
      lock.Release();
      send_probe(cyc, static_cast<std::uint8_t>(attempt));
      lock.Reacquire();
      const double deadline =
          sent_at + (attempt == 0 ? timeouts_.tof : timeouts_.tos);
      while (!stop_ && !(pending_reply_ && pending_reply_->cycle == cyc)) {
        if (cv_.wait_until(mutex_, clock.to_time_point(deadline)) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (stop_) return;
      if (pending_reply_ && pending_reply_->cycle == cyc) {
        success = true;
        reply = *pending_reply_;
        pending_reply_.reset();
        // Same observation rule as the DES CP: clean success uses the
        // reply arrival instant, a retransmitted success the send time.
        t_obs = attempt == 0 ? clock.now() : sent_at;
        trace.rtt = clock.now() - sent_at;
        break;
      }
      pending_reply_.reset();  // stale reply from an older cycle, if any
    }

    trace.end = clock.now();
    trace.success = success;

    if (!success) {
      ++cycles_failed_;
      device_present_ = false;
      if (callbacks_.on_cycle_trace || callbacks_.on_absent) {
        auto trace_cb = callbacks_.on_cycle_trace;
        auto absent_cb = callbacks_.on_absent;
        lock.Release();
        if (trace_cb) trace_cb(trace);
        if (absent_cb) absent_cb(device_, clock.now());
        lock.Reacquire();
      }
      return;  // monitoring ends once the device is declared absent
    }

    ++cycles_succeeded_;
    device_present_ = true;
    const double delay = next_delay_locked(reply, t_obs);
    current_delay_ = delay;
    if (callbacks_.on_cycle_trace || callbacks_.on_cycle_success) {
      auto trace_cb = callbacks_.on_cycle_trace;
      auto success_cb = callbacks_.on_cycle_success;
      lock.Release();
      if (trace_cb) trace_cb(trace);
      if (success_cb) success_cb(clock.now(), delay);
      lock.Reacquire();
      if (stop_) return;
    }
    // ---- inter-cycle wait (interruptible) ----
    const auto resume_at = clock.to_time_point(clock.now() + delay);
    while (!stop_) {
      if (cv_.wait_until(mutex_, resume_at) == std::cv_status::timeout) break;
    }
  }
}

bool RtControlPointBase::device_considered_present() const {
  util::MutexLock lock(mutex_);
  return device_present_;
}
std::uint64_t RtControlPointBase::cycles_succeeded() const {
  util::MutexLock lock(mutex_);
  return cycles_succeeded_;
}
std::uint64_t RtControlPointBase::cycles_failed() const {
  util::MutexLock lock(mutex_);
  return cycles_failed_;
}
std::uint64_t RtControlPointBase::probes_sent() const {
  util::MutexLock lock(mutex_);
  return probes_sent_;
}
double RtControlPointBase::current_delay() const {
  util::MutexLock lock(mutex_);
  return current_delay_;
}

RtSappControlPoint::RtSappControlPoint(Transport& transport,
                                       net::NodeId device,
                                       core::SappCpConfig config,
                                       Callbacks callbacks)
    : RtControlPointBase(transport, device, config.timeouts,
                         std::move(callbacks)),
      config_(config),
      adaptation_(config_) {
  config_.validate();
}

double RtSappControlPoint::delta() const { return current_delay(); }

double RtSappControlPoint::next_delay_locked(const net::Message& reply,
                                             double t_obs) {
  return adaptation_.observe(reply.pc, t_obs);
}

RtDcppControlPoint::RtDcppControlPoint(Transport& transport,
                                       net::NodeId device,
                                       core::DcppCpConfig config,
                                       Callbacks callbacks)
    : RtControlPointBase(transport, device, config.timeouts,
                         std::move(callbacks)),
      config_(config) {
  config_.validate();
}

double RtDcppControlPoint::next_delay_locked(const net::Message& reply,
                                             double /*t_obs*/) {
  return reply.grant_delay < 0 ? 0.0 : reply.grant_delay;
}

}  // namespace probemon::runtime
