#include "runtime/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <system_error>

namespace probemon::runtime {

namespace {

void put_u32(std::uint8_t*& p, std::uint32_t v) {
  v = htonl(v);
  std::memcpy(p, &v, 4);
  p += 4;
}
void put_u64(std::uint8_t*& p, std::uint64_t v) {
  const std::uint32_t hi = static_cast<std::uint32_t>(v >> 32);
  const std::uint32_t lo = static_cast<std::uint32_t>(v);
  put_u32(p, hi);
  put_u32(p, lo);
}
std::uint32_t get_u32(const std::uint8_t*& p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  p += 4;
  return ntohl(v);
}
std::uint64_t get_u64(const std::uint8_t*& p) {
  const std::uint64_t hi = get_u32(p);
  const std::uint64_t lo = get_u32(p);
  return (hi << 32) | lo;
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

// Wire layout (48 bytes, big-endian):
//   0  kind (1) | attempt (1) | ttl (1) | reserved (1)
//   4  from (4) | to (4)
//  12  cycle (8)
//  20  pc (8)
//  28  grant_delay (8, IEEE-754 bits)
//  36  last_probers[0] (4) | last_probers[1] (4)
//  44  subject (4)
std::size_t udp_encode(const net::Message& msg,
                       std::uint8_t out[kUdpWireSize]) {
  std::uint8_t* p = out;
  *p++ = static_cast<std::uint8_t>(msg.kind);
  *p++ = msg.attempt;
  *p++ = msg.ttl;
  *p++ = 0;
  put_u32(p, msg.from);
  put_u32(p, msg.to);
  put_u64(p, msg.cycle);
  put_u64(p, msg.pc);
  std::uint64_t grant_bits;
  static_assert(sizeof(grant_bits) == sizeof(msg.grant_delay));
  std::memcpy(&grant_bits, &msg.grant_delay, 8);
  put_u64(p, grant_bits);
  put_u32(p, msg.last_probers[0]);
  put_u32(p, msg.last_probers[1]);
  put_u32(p, msg.subject);
  return kUdpWireSize;
}

bool udp_decode(const std::uint8_t in[kUdpWireSize], std::size_t size,
                net::Message& out) {
  if (size != kUdpWireSize) return false;
  const std::uint8_t* p = in;
  const std::uint8_t kind = *p++;
  if (kind > static_cast<std::uint8_t>(net::MessageKind::kNotify)) {
    return false;
  }
  out.kind = static_cast<net::MessageKind>(kind);
  out.attempt = *p++;
  out.ttl = *p++;
  ++p;  // reserved
  out.from = get_u32(p);
  out.to = get_u32(p);
  out.cycle = get_u64(p);
  out.pc = get_u64(p);
  const std::uint64_t grant_bits = get_u64(p);
  std::memcpy(&out.grant_delay, &grant_bits, 8);
  out.last_probers[0] = get_u32(p);
  out.last_probers[1] = get_u32(p);
  out.subject = get_u32(p);
  return true;
}

UdpTransport::UdpTransport() {
  if (pipe(wake_fds_) != 0) throw_errno("UdpTransport: pipe");
  receiver_ = std::thread([this] { receive_loop(); });
}

UdpTransport::~UdpTransport() {
  stop_ = true;
  wake_receiver();
  receiver_.join();
  close(wake_fds_[0]);
  close(wake_fds_[1]);
  util::MutexLock lock(mutex_);
  for (int fd : doomed_fds_) close(fd);
  for (auto& [id, node] : nodes_) close(node.fd);
}

void UdpTransport::wake_receiver() {
  const char byte = 'w';
  [[maybe_unused]] const ssize_t n = write(wake_fds_[1], &byte, 1);
}

net::NodeId UdpTransport::attach(RtHandler handler) {
  if (!handler) throw std::invalid_argument("attach: empty handler");
  const int fd = socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) throw_errno("UdpTransport: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close(fd);
    throw_errno("UdpTransport: bind");
  }
  socklen_t len = sizeof addr;
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    close(fd);
    throw_errno("UdpTransport: getsockname");
  }
  net::NodeId id;
  {
    util::MutexLock lock(mutex_);
    id = next_id_++;
    nodes_.emplace(id, Node{fd, ntohs(addr.sin_port), std::move(handler)});
  }
  wake_receiver();  // receiver must add the new fd to its poll set
  return id;
}

void UdpTransport::detach(net::NodeId id) {
  {
    util::MutexLock lock(mutex_);
    auto it = nodes_.find(id);
    if (it == nodes_.end()) return;
    // The receiver thread owns recv(); it closes the fd between poll
    // iterations so a concurrent recv never races a reused descriptor.
    doomed_fds_.push_back(it->second.fd);
    nodes_.erase(it);
    while (delivering_to_ == id) cv_.wait(mutex_);
  }
  wake_receiver();
}

void UdpTransport::instrument(telemetry::Registry& registry) {
  const telemetry::Labels labels{{"transport", "udp"}};
  util::MutexLock lock(mutex_);
  tele_sent_ =
      &registry.counter("probemon_transport_datagrams_sent_total",
                        "Datagrams handed to the transport", labels);
  tele_delivered_ =
      &registry.counter("probemon_transport_datagrams_delivered_total",
                        "Datagrams delivered to a handler", labels);
  tele_send_errors_ =
      &registry.counter("probemon_transport_send_errors_total",
                        "sendto() failures (best-effort loss)", labels);
  tele_recv_errors_ = &registry.counter(
      "probemon_transport_recv_errors_total",
      "recv() failures and truncated/undecodable datagrams", labels);
}

void UdpTransport::send(net::Message msg) {
  std::uint16_t port = 0;
  int fd = -1;
  {
    util::MutexLock lock(mutex_);
    ++sent_;
    if (tele_sent_) tele_sent_->inc();
    auto dst = nodes_.find(msg.to);
    if (dst == nodes_.end()) return;  // unknown destination: dropped
    port = dst->second.port;
    auto src = nodes_.find(msg.from);
    fd = src != nodes_.end() ? src->second.fd : dst->second.fd;
  }
  std::uint8_t wire[kUdpWireSize];
  udp_encode(msg, wire);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // Best-effort datagram: a full socket buffer is packet loss, exactly
  // what the protocols are built to tolerate.
  if (sendto(fd, wire, sizeof wire, 0, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) < 0) {
    util::MutexLock lock(mutex_);
    ++send_errors_;
    if (tele_send_errors_) tele_send_errors_->inc();
  }
}

void UdpTransport::receive_loop() {
  std::vector<pollfd> fds;
  std::vector<net::NodeId> ids;
  for (;;) {
    if (stop_) return;
    fds.clear();
    ids.clear();
    fds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    ids.push_back(net::kInvalidNode);
    {
      util::MutexLock lock(mutex_);
      for (int fd : doomed_fds_) close(fd);
      doomed_fds_.clear();
      for (const auto& [id, node] : nodes_) {
        fds.push_back(pollfd{node.fd, POLLIN, 0});
        ids.push_back(id);
      }
    }
    // Block until a datagram or a wake. The receiver has no intrinsic
    // deadlines (CP timers live in the control points), and every
    // fd-set change — attach, detach, doomed-fd close, stop — writes
    // the wake pipe, so an infinite timeout reacts *faster* than the
    // old fixed 100 ms tick while idling at zero wakeups/s.
    if (poll(fds.data(), fds.size(), -1) <= 0) continue;
    if (fds[0].revents & POLLIN) {
      char drain[64];
      [[maybe_unused]] const ssize_t n =
          read(wake_fds_[0], drain, sizeof drain);
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (!(fds[i].revents & POLLIN)) continue;
      std::uint8_t wire[kUdpWireSize + 8];
      const ssize_t n = recv(fds[i].fd, wire, sizeof wire, MSG_DONTWAIT);
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
          errno != EINTR) {
        count_recv_error();
        continue;
      }
      if (n <= 0) continue;
      net::Message msg;
      if (!udp_decode(wire, static_cast<std::size_t>(n), msg)) {
        // Wrong size (truncated or oversized datagram) or a garbage
        // kind byte: arrived, but not deliverable.
        count_recv_error();
        continue;
      }
      RtHandler handler;
      {
        util::MutexLock lock(mutex_);
        auto it = nodes_.find(ids[i]);
        if (it == nodes_.end()) continue;  // detached meanwhile
        handler = it->second.handler;
        delivering_to_ = ids[i];
        ++delivered_;
        if (tele_delivered_) tele_delivered_->inc();
      }
      handler(msg);
      {
        util::MutexLock lock(mutex_);
        delivering_to_ = net::kInvalidNode;
      }
      cv_.notify_all();
    }
  }
}

void UdpTransport::count_recv_error() {
  util::MutexLock lock(mutex_);
  ++recv_errors_;
  if (tele_recv_errors_) tele_recv_errors_->inc();
}

std::uint64_t UdpTransport::sent_count() const {
  util::MutexLock lock(mutex_);
  return sent_;
}
std::uint64_t UdpTransport::delivered_count() const {
  util::MutexLock lock(mutex_);
  return delivered_;
}
std::uint64_t UdpTransport::send_error_count() const {
  util::MutexLock lock(mutex_);
  return send_errors_;
}
std::uint64_t UdpTransport::recv_error_count() const {
  util::MutexLock lock(mutex_);
  return recv_errors_;
}
std::uint16_t UdpTransport::port_of(net::NodeId id) const {
  util::MutexLock lock(mutex_);
  auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.port;
}

}  // namespace probemon::runtime
