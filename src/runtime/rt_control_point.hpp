// Wall-clock control points: one thread per CP running the bounded-
// retransmission probe cycle against real deadlines. The SAPP/DCPP
// difference is confined to next_delay(), mirroring the DES classes.
//
// Thread interactions:
//   * the CP thread owns the protocol loop and sleeps on a condition
//     variable between cycles;
//   * the transport's delivery thread feeds replies through handle();
//   * stop()/destructor shut the loop down and synchronize with the
//     transport before the object dies.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>

#include "core/config.hpp"
#include "core/sapp_adaptation.hpp"
#include "runtime/transport.hpp"
#include "telemetry/probe_tracer.hpp"

namespace probemon::runtime {

class RtControlPointBase {
 public:
  struct Callbacks {
    /// Invoked (from the CP thread) when the device is declared absent.
    std::function<void(net::NodeId device, double t)> on_absent;
    /// Invoked after every successful cycle with the chosen delay.
    std::function<void(double t, double delay)> on_cycle_success;
    /// Invoked (from the CP thread) once per completed cycle — success
    /// or absence declaration — with the full span record: first-send /
    /// resolution instants, attempts used, reply RTT. Feed it to a
    /// telemetry::ProbeCycleTracer or Registry.
    std::function<void(const telemetry::ProbeCycleTrace&)> on_cycle_trace;
  };

  RtControlPointBase(Transport& transport, net::NodeId device,
                     const core::TimeoutConfig& timeouts, Callbacks callbacks);
  virtual ~RtControlPointBase();

  RtControlPointBase(const RtControlPointBase&) = delete;
  RtControlPointBase& operator=(const RtControlPointBase&) = delete;

  net::NodeId id() const noexcept { return id_; }
  net::NodeId device() const noexcept { return device_; }

  /// Launch the probing thread. Call at most once.
  void start();
  /// Stop the loop and join the thread. Idempotent.
  void stop();

  bool device_considered_present() const;
  std::uint64_t cycles_succeeded() const;
  std::uint64_t cycles_failed() const;
  std::uint64_t probes_sent() const;
  double current_delay() const;

 protected:
  /// Inter-cycle delay after a successful cycle; called on the CP thread
  /// with the state mutex held.
  virtual double next_delay_locked(const net::Message& reply,
                                   double t_obs) = 0;

 private:
  void handle(const net::Message& msg);
  void run();
  void send_probe(std::uint64_t cycle, std::uint8_t attempt);

  Transport& transport_;
  net::NodeId device_;
  core::TimeoutConfig timeouts_;
  Callbacks callbacks_;
  net::NodeId id_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::uint64_t cycle_ = 0;
  std::optional<net::Message> pending_reply_;
  bool device_present_ = true;
  std::uint64_t cycles_succeeded_ = 0;
  std::uint64_t cycles_failed_ = 0;
  std::uint64_t probes_sent_ = 0;
  double current_delay_ = 0.0;
  std::thread thread_;
};

class RtSappControlPoint final : public RtControlPointBase {
 public:
  RtSappControlPoint(Transport& transport, net::NodeId device,
                     core::SappCpConfig config, Callbacks callbacks = {});
  /// Joins the probing thread before the adaptation state dies (the
  /// thread virtual-dispatches into this subclass).
  ~RtSappControlPoint() override { stop(); }

  double delta() const;

 protected:
  double next_delay_locked(const net::Message& reply, double t_obs) override;

 private:
  core::SappCpConfig config_;
  core::SappAdaptation adaptation_;
};

class RtDcppControlPoint final : public RtControlPointBase {
 public:
  RtDcppControlPoint(Transport& transport, net::NodeId device,
                     core::DcppCpConfig config, Callbacks callbacks = {});
  ~RtDcppControlPoint() override { stop(); }

 protected:
  double next_delay_locked(const net::Message& reply, double t_obs) override;

 private:
  core::DcppCpConfig config_;
};

}  // namespace probemon::runtime
