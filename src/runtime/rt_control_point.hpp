// Wall-clock control points: one thread per CP running the bounded-
// retransmission probe cycle against real deadlines. The SAPP/DCPP
// difference is confined to next_delay(), mirroring the DES classes.
//
// Thread interactions:
//   * the CP thread owns the protocol loop and sleeps on a condition
//     variable between cycles;
//   * the transport's delivery thread feeds replies through handle();
//   * stop()/destructor shut the loop down and synchronize with the
//     transport before the object dies.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <thread>

#include "core/config.hpp"
#include "core/sapp_adaptation.hpp"
#include "runtime/transport.hpp"
#include "telemetry/probe_tracer.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::runtime {

class RtControlPointBase {
 public:
  struct Callbacks {
    /// Invoked (from the CP thread) when the device is declared absent.
    std::function<void(net::NodeId device, double t)> on_absent;
    /// Invoked after every successful cycle with the chosen delay.
    std::function<void(double t, double delay)> on_cycle_success;
    /// Invoked (from the CP thread) once per completed cycle — success
    /// or absence declaration — with the full span record: first-send /
    /// resolution instants, attempts used, reply RTT. Feed it to a
    /// telemetry::ProbeCycleTracer or Registry.
    std::function<void(const telemetry::ProbeCycleTrace&)> on_cycle_trace;
  };

  RtControlPointBase(Transport& transport, net::NodeId device,
                     const core::TimeoutConfig& timeouts, Callbacks callbacks);
  virtual ~RtControlPointBase();

  RtControlPointBase(const RtControlPointBase&) = delete;
  RtControlPointBase& operator=(const RtControlPointBase&) = delete;

  net::NodeId id() const noexcept { return id_; }
  net::NodeId device() const noexcept { return device_; }

  /// Launch the probing thread. Call at most once.
  void start() PROBEMON_EXCLUDES(mutex_);
  /// Stop the loop and join the thread. Idempotent.
  void stop() PROBEMON_EXCLUDES(mutex_);

  bool device_considered_present() const PROBEMON_EXCLUDES(mutex_);
  std::uint64_t cycles_succeeded() const PROBEMON_EXCLUDES(mutex_);
  std::uint64_t cycles_failed() const PROBEMON_EXCLUDES(mutex_);
  std::uint64_t probes_sent() const PROBEMON_EXCLUDES(mutex_);
  double current_delay() const PROBEMON_EXCLUDES(mutex_);

 protected:
  /// Inter-cycle delay after a successful cycle; called on the CP thread
  /// with the state mutex held.
  virtual double next_delay_locked(const net::Message& reply,
                                   double t_obs) PROBEMON_REQUIRES(mutex_) = 0;

  mutable util::Mutex mutex_{"runtime.RtControlPoint"};

 private:
  void handle(const net::Message& msg) PROBEMON_EXCLUDES(mutex_);
  void run() PROBEMON_EXCLUDES(mutex_);
  void send_probe(std::uint64_t cycle, std::uint8_t attempt);

  Transport& transport_;
  net::NodeId device_;
  core::TimeoutConfig timeouts_;
  Callbacks callbacks_;
  net::NodeId id_;

  util::CondVar cv_;
  bool stop_ PROBEMON_GUARDED_BY(mutex_) = false;
  bool started_ PROBEMON_GUARDED_BY(mutex_) = false;
  std::uint64_t cycle_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::optional<net::Message> pending_reply_ PROBEMON_GUARDED_BY(mutex_);
  bool device_present_ PROBEMON_GUARDED_BY(mutex_) = true;
  std::uint64_t cycles_succeeded_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::uint64_t cycles_failed_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::uint64_t probes_sent_ PROBEMON_GUARDED_BY(mutex_) = 0;
  double current_delay_ PROBEMON_GUARDED_BY(mutex_) = 0.0;
  std::thread thread_ PROBEMON_GUARDED_BY(mutex_);
};

class RtSappControlPoint final : public RtControlPointBase {
 public:
  RtSappControlPoint(Transport& transport, net::NodeId device,
                     core::SappCpConfig config, Callbacks callbacks = {});
  /// Joins the probing thread before the adaptation state dies (the
  /// thread virtual-dispatches into this subclass).
  ~RtSappControlPoint() override { stop(); }

  double delta() const;

 protected:
  double next_delay_locked(const net::Message& reply, double t_obs) override;

 private:
  core::SappCpConfig config_;
  core::SappAdaptation adaptation_;
};

class RtDcppControlPoint final : public RtControlPointBase {
 public:
  RtDcppControlPoint(Transport& transport, net::NodeId device,
                     core::DcppCpConfig config, Callbacks callbacks = {});
  ~RtDcppControlPoint() override { stop(); }

 protected:
  double next_delay_locked(const net::Message& reply, double t_obs) override;

 private:
  core::DcppCpConfig config_;
};

}  // namespace probemon::runtime
