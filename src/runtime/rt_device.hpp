// Wall-clock devices: the same reply logic as the DES devices, driven by
// transport callbacks and protected by a mutex (probes from many CP
// threads can race). Device state machines are small enough that the
// paper's "implementable on small computing devices" claim is literally
// visible here: DCPP's handler is a handful of arithmetic operations.
#pragma once

#include <cstdint>
#include <mutex>

#include "core/config.hpp"
#include "runtime/transport.hpp"

namespace probemon::runtime {

/// Common attach/detach + presence handling.
class RtDeviceBase {
 public:
  RtDeviceBase(Transport& transport);
  virtual ~RtDeviceBase();

  RtDeviceBase(const RtDeviceBase&) = delete;
  RtDeviceBase& operator=(const RtDeviceBase&) = delete;

  net::NodeId id() const noexcept { return id_; }

  /// Crash-style departure: stop answering (stays attached).
  void go_silent();
  void come_back();
  bool present() const;

  std::uint64_t probes_received() const;

 protected:
  /// Protocol-specific reply payload; called with the state mutex held.
  virtual void fill_reply_locked(const net::Message& probe, double t,
                                 net::Message& reply) = 0;

  /// Detach from the transport (idempotent). Subclass destructors call
  /// this so no handler can virtual-dispatch into a half-destroyed
  /// object.
  void shutdown();

  mutable std::mutex mutex_;

 private:
  void handle(const net::Message& msg);

  Transport& transport_;
  net::NodeId id_;
  bool detached_ = false;
  bool present_ = true;
  std::uint64_t probes_received_ = 0;
};

/// SAPP device: pc += Delta per probe; reply carries pc.
class RtSappDevice final : public RtDeviceBase {
 public:
  RtSappDevice(Transport& transport, core::SappDeviceConfig config);
  ~RtSappDevice() override { shutdown(); }

  std::uint64_t probe_counter() const;
  void set_delta(std::uint64_t delta);

 protected:
  void fill_reply_locked(const net::Message& probe, double t,
                         net::Message& reply) override;

 private:
  core::SappDeviceConfig config_;
  std::uint64_t pc_ = 0;
  std::uint64_t delta_;
};

/// DCPP device: schedules probers via core::DcppDevice::grant.
class RtDcppDevice final : public RtDeviceBase {
 public:
  RtDcppDevice(Transport& transport, core::DcppDeviceConfig config);
  ~RtDcppDevice() override { shutdown(); }

  double next_slot() const;

 protected:
  void fill_reply_locked(const net::Message& probe, double t,
                         net::Message& reply) override;

 private:
  core::DcppDeviceConfig config_;
  double nt_ = 0.0;
};

}  // namespace probemon::runtime
