// Wall-clock devices: the same reply logic as the DES devices, driven by
// transport callbacks and protected by a mutex (probes from many CP
// threads can race). Device state machines are small enough that the
// paper's "implementable on small computing devices" claim is literally
// visible here: DCPP's handler is a handful of arithmetic operations.
#pragma once

#include <cstdint>
#include <deque>

#include "core/config.hpp"
#include "runtime/transport.hpp"
#include "telemetry/registry.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::runtime {

/// Common attach/detach + presence handling.
class RtDeviceBase {
 public:
  RtDeviceBase(Transport& transport);
  virtual ~RtDeviceBase();

  RtDeviceBase(const RtDeviceBase&) = delete;
  RtDeviceBase& operator=(const RtDeviceBase&) = delete;

  net::NodeId id() const noexcept { return id_; }

  /// Crash-style departure: stop answering (stays attached).
  void go_silent() PROBEMON_EXCLUDES(mutex_);
  void come_back() PROBEMON_EXCLUDES(mutex_);
  bool present() const PROBEMON_EXCLUDES(mutex_);

  std::uint64_t probes_received() const PROBEMON_EXCLUDES(mutex_);

  /// Probes accepted per second over the trailing `load_window()` — the
  /// live runtime counterpart of the paper's Fig-5 device-load curve.
  double experienced_load() const PROBEMON_EXCLUDES(mutex_);
  /// Load-measurement window, seconds (default 5).
  double load_window() const PROBEMON_EXCLUDES(mutex_);
  void set_load_window(double seconds) PROBEMON_EXCLUDES(mutex_);

  /// Register this device's load view on `registry` (labels get
  /// device=<id> appended): probemon_device_experienced_load and
  /// probemon_device_nominal_load gauges (callback-backed), plus a
  /// probemon_device_probes_received_total counter. `nominal_load` is
  /// the protocol's L_nom cap (probes/s). The device must outlive the
  /// registry entries.
  void instrument(telemetry::Registry& registry, double nominal_load);

 protected:
  /// Protocol-specific reply payload; called with the state mutex held.
  virtual void fill_reply_locked(const net::Message& probe, double t,
                                 net::Message& reply)
      PROBEMON_REQUIRES(mutex_) = 0;

  /// Detach from the transport (idempotent). Subclass destructors call
  /// this so no handler can virtual-dispatch into a half-destroyed
  /// object.
  void shutdown();

  mutable util::Mutex mutex_{"runtime.RtDevice"};

 private:
  void handle(const net::Message& msg) PROBEMON_EXCLUDES(mutex_);

  Transport& transport_;
  net::NodeId id_;
  bool detached_ = false;
  bool present_ PROBEMON_GUARDED_BY(mutex_) = true;
  std::uint64_t probes_received_ PROBEMON_GUARDED_BY(mutex_) = 0;
  double load_window_ PROBEMON_GUARDED_BY(mutex_) = 5.0;
  /// within the trailing window
  std::deque<double> recent_probe_times_ PROBEMON_GUARDED_BY(mutex_);
};

/// SAPP device: pc += Delta per probe; reply carries pc.
class RtSappDevice final : public RtDeviceBase {
 public:
  RtSappDevice(Transport& transport, core::SappDeviceConfig config);
  ~RtSappDevice() override { shutdown(); }

  std::uint64_t probe_counter() const PROBEMON_EXCLUDES(mutex_);
  void set_delta(std::uint64_t delta) PROBEMON_EXCLUDES(mutex_);

  /// instrument() with the SAPP nominal load from the config.
  using RtDeviceBase::instrument;
  void instrument(telemetry::Registry& registry) {
    RtDeviceBase::instrument(registry, config_.l_nom);
  }

 protected:
  void fill_reply_locked(const net::Message& probe, double t,
                         net::Message& reply) override;

 private:
  core::SappDeviceConfig config_;
  std::uint64_t pc_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::uint64_t delta_ PROBEMON_GUARDED_BY(mutex_);
};

/// DCPP device: schedules probers via core::DcppDevice::grant.
class RtDcppDevice final : public RtDeviceBase {
 public:
  RtDcppDevice(Transport& transport, core::DcppDeviceConfig config);
  ~RtDcppDevice() override { shutdown(); }

  double next_slot() const PROBEMON_EXCLUDES(mutex_);

  /// instrument() with L_nom = 1/delta_min from the config.
  using RtDeviceBase::instrument;
  void instrument(telemetry::Registry& registry) {
    RtDeviceBase::instrument(registry, config_.l_nom());
  }

 protected:
  void fill_reply_locked(const net::Message& probe, double t,
                         net::Message& reply) override;

 private:
  core::DcppDeviceConfig config_;
  double nt_ PROBEMON_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace probemon::runtime
