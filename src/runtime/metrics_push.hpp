// MetricsPusher: the agent side of the push topology (collector.hpp).
//
// Wraps a local MetricStore and periodically POSTs its state to a
// collector's /push route as JSON:
//
//   {"agent": "node-7", "full": false, "metrics": [ ...changed... ]}
//
// Report contents ride the store's delta-scrape mechanism
// (MetricStore::snapshot_delta): the first report — and the first
// report after any failed push — carries the full absolute state
// (full=true, so the collector resynchronizes and drops series the
// agent no longer has); every other report carries only series whose
// value changed since the last report. A tick with nothing changed
// sends nothing at all.
//
// The pusher's own bookkeeping (pushes_ok etc.) deliberately lives in
// plain atomics, not in the pushed store — otherwise every report
// would dirty a series and no delta would ever be empty.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "telemetry/registry.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::runtime {

class MetricsPusher {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;     ///< collector port (required)
    std::string path = "/push";
    std::string agent;          ///< report identity (required)
    double period_s = 1.0;      ///< background push cadence
    double timeout_s = 2.0;     ///< per-request socket timeout
  };

  /// `store` must outlive the pusher. Throws std::invalid_argument on
  /// an empty agent id or zero port.
  MetricsPusher(const telemetry::MetricStore& store, Config config);
  ~MetricsPusher();

  MetricsPusher(const MetricsPusher&) = delete;
  MetricsPusher& operator=(const MetricsPusher&) = delete;

  /// One synchronous report. Returns true on success (including the
  /// nothing-changed case where no request is sent).
  bool push_once() PROBEMON_EXCLUDES(mutex_);

  /// Start/stop the background thread pushing every period_s seconds
  /// (plus one final push on stop()). Idempotent.
  void start() PROBEMON_EXCLUDES(mutex_);
  void stop() PROBEMON_EXCLUDES(mutex_);

  std::uint64_t pushes_ok() const noexcept {
    return ok_.load(std::memory_order_relaxed);
  }
  std::uint64_t pushes_failed() const noexcept {
    return failed_.load(std::memory_order_relaxed);
  }
  std::uint64_t pushes_skipped() const noexcept {
    return skipped_.load(std::memory_order_relaxed);
  }

 private:
  void run() PROBEMON_EXCLUDES(mutex_);

  const telemetry::MetricStore& store_;
  const Config config_;
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> skipped_{0};  ///< empty deltas not sent
  util::Mutex mutex_{"runtime.MetricsPusher"};
  util::CondVar cv_;
  /// delta cursor into store_
  std::uint64_t since_ PROBEMON_GUARDED_BY(mutex_) = 0;
  /// first report / resync after failure
  bool need_full_ PROBEMON_GUARDED_BY(mutex_) = true;
  bool stop_ PROBEMON_GUARDED_BY(mutex_) = false;
  bool started_ PROBEMON_GUARDED_BY(mutex_) = false;
  std::thread thread_ PROBEMON_GUARDED_BY(mutex_);
};

}  // namespace probemon::runtime
