// MetricsCollector: fleet aggregation for pushed metric reports.
//
// Topology (the probemon_collector example wires this end to end):
//
//   agent 0 ──┐                                   ┌─ /metrics (delta)
//   agent 1 ──┼── POST /push {agent, full, ... } ─┤  /metrics.json
//   agent N ──┘        (delta JSON reports)       └─ /agents
//
// Each agent owns a MetricStore and a MetricsPusher
// (metrics_push.hpp) that periodically POSTs the series that changed
// since its last successful report — full state on the first report
// and after any failure, deltas otherwise. The collector keeps:
//
//   * one Registry per agent holding that agent's last absolute state
//     (counters reset to the reported value, not incremented — a
//     re-delivered report is idempotent), and
//   * one merged ShardedRegistry across the whole fleet, updated
//     in place at ingest time with an "agent" label appended to every
//     series — so scraping the merged view costs O(changed) via the
//     standard delta routes, no matter how many agents report.
//
// A full report replaces the agent's state: series present before but
// absent from the report are removed from both the per-agent view and
// the merged store. Agent ordering is deterministic (sorted by agent
// id) wherever the collector folds multiple agents into one output.
//
// Agent presence: the collector is itself a presence monitor — its
// "device" is each agent, its "probe" is the agent's push. Every agent
// carries a staleness deadline adapted by the SAPP rule (paper eq. 1,
// core::SappAdaptation) with the axes transposed: the adaptation
// observes pc = elapsed milliseconds against t = push count, so its
// load estimate l_exp is the observed inter-push gap and its clamped
// delta *is* the deadline in seconds — agents pushing slower than
// beta * expected_period_s get a deadline multiplied by alpha_inc (up
// to deadline_max_s, fewer false alarms), agents pushing faster than
// expected_period_s / beta get it divided by alpha_dec (down to
// deadline_min_s, faster detection). update_presence() compares each
// agent's staleness (now - last push) against its deadline, exports
// probemon_collector_agent_* gauges into self_metrics(), and drives an
// attached AlertEngine's `agent_absent` condition rule per agent.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/sapp_adaptation.hpp"
#include "telemetry/alerts/alert_engine.hpp"
#include "telemetry/http_server.hpp"
#include "telemetry/metrics_parse.hpp"
#include "telemetry/sharded_registry.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::runtime {

/// Adaptive per-agent staleness detection (see file comment). The
/// defaults mirror core::SappCpConfig's multiplicative constants.
struct CollectorPresenceConfig {
  /// Push cadence agents are configured with, seconds (the transposed
  /// l_ideal).
  double expected_period_s = 1.0;
  double beta = 1.5;       ///< tolerance band on the observed gap
  double alpha_inc = 2.0;  ///< deadline growth per slow push
  double alpha_dec = 1.5;  ///< deadline shrink per fast push
  double deadline_min_s = 2.0;
  double deadline_max_s = 120.0;
  double deadline_initial_s = 5.0;
  /// Hysteresis for the agent_absent alert rule (seconds of sustained
  /// breach before firing).
  double absent_for_s = 0.0;
};

class MetricsCollector {
 public:
  /// `shards` sizes the merged ShardedRegistry (fleet-wide series
  /// count, not per-agent).
  explicit MetricsCollector(
      std::size_t shards = telemetry::ShardedRegistry::kDefaultShards,
      CollectorPresenceConfig presence = {});

  MetricsCollector(const MetricsCollector&) = delete;
  MetricsCollector& operator=(const MetricsCollector&) = delete;

  /// Ingest one report body (the JSON produced by MetricsPusher /
  /// samples_to_json + agent/full envelope). Returns the number of
  /// samples absorbed. Throws std::runtime_error on malformed JSON or
  /// a missing agent id, std::logic_error if a series conflicts with
  /// an existing registration (type change mid-flight).
  std::size_t ingest(std::string_view json_body);
  std::size_t ingest(const telemetry::MetricsDocument& document)
      PROBEMON_EXCLUDES(mutex_);

  /// Reporting agents, sorted.
  std::vector<std::string> agents() const PROBEMON_EXCLUDES(mutex_);
  std::size_t agent_count() const PROBEMON_EXCLUDES(mutex_);
  /// Drop one agent's state (per-agent view and its merged series).
  bool forget(const std::string& agent) PROBEMON_EXCLUDES(mutex_);

  /// The fleet-wide merged store ("agent" label on every series).
  /// Feed it to register_metrics_routes for O(changed) scrapes.
  const telemetry::MetricStore& merged() const { return merged_; }

  /// One agent's last absolute state, snapshot form (empty vector for
  /// an unknown agent).
  std::vector<telemetry::Sample> agent_snapshot(
      const std::string& agent) const PROBEMON_EXCLUDES(mutex_);

  /// Reports successfully ingested / samples absorbed since start.
  std::uint64_t reports_ingested() const PROBEMON_EXCLUDES(mutex_);
  std::uint64_t samples_ingested() const PROBEMON_EXCLUDES(mutex_);

  // --- Agent presence -------------------------------------------------------

  /// Replace the presence clock (seconds, monotone). Default: wall
  /// clock since construction. Tests inject a manual clock for
  /// deterministic deadlines.
  void set_clock(std::function<double()> now_fn) PROBEMON_EXCLUDES(mutex_);

  /// Re-evaluate every agent's staleness against its adaptive deadline
  /// at the current clock, refresh the self-metrics gauges, drive the
  /// attached alert engine's agent_absent conditions. Returns the
  /// number of agents currently absent. Call periodically (the /agents
  /// route also calls it per request).
  std::size_t update_presence() PROBEMON_EXCLUDES(mutex_);

  struct AgentPresence {
    std::string agent;
    bool absent = false;
    double last_push_t = 0.0;  ///< clock value of the last report
    double staleness_s = 0.0;  ///< now - last_push_t at the last update
    double deadline_s = 0.0;   ///< current adaptive deadline
    std::uint64_t reports = 0;
  };
  /// Presence state per agent, sorted by agent id; as of the last
  /// update_presence() (staleness included).
  std::vector<AgentPresence> agent_presence() const PROBEMON_EXCLUDES(mutex_);

  /// Collector-self metrics: probemon_collector_agent_staleness_seconds
  /// / _deadline_seconds / _absent per agent (removed on forget) plus
  /// fleet totals. Distinct from merged() so the collector's own health
  /// can be scraped or pushed like any agent's.
  telemetry::MetricStore& self_metrics() { return self_; }

  /// Register the `agent_absent` condition rule on `engine` (must
  /// outlive the collector) and drive one labelled instance per agent
  /// from update_presence().
  void attach_alert_engine(telemetry::AlertEngine& engine)
      PROBEMON_EXCLUDES(mutex_);

  const CollectorPresenceConfig& presence_config() const {
    return presence_;
  }

 private:
  PROBEMON_TSA_SELFTEST_HOOK

  struct Presence {
    core::SappAdaptation adaptation;
    double last_push_t = 0.0;
    double staleness_s = 0.0;
    bool absent = false;
    std::uint64_t reports = 0;

    explicit Presence(const core::SappCpConfig& config)
        : adaptation(config) {}
  };

  void apply_sample(telemetry::Registry& agent_view,
                    const telemetry::Sample& sample,
                    const std::string& agent) PROBEMON_REQUIRES(mutex_);
  void remove_sample(telemetry::Registry& agent_view,
                     const telemetry::Sample& sample,
                     const std::string& agent) PROBEMON_REQUIRES(mutex_);
  void observe_push(const std::string& agent, double now)
      PROBEMON_REQUIRES(mutex_);
  void export_presence(const std::string& agent, const Presence& presence)
      PROBEMON_REQUIRES(mutex_);

  mutable util::Mutex mutex_{"runtime.MetricsCollector"};
  std::map<std::string, std::unique_ptr<telemetry::Registry>> agents_
      PROBEMON_GUARDED_BY(mutex_);
  /// merged_ and self_ synchronize themselves; the collector's mutex
  /// orders multi-series updates around them but never protects their
  /// internals (lock order: MetricsCollector -> Registry / shard).
  telemetry::ShardedRegistry merged_;
  std::uint64_t reports_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::uint64_t samples_ PROBEMON_GUARDED_BY(mutex_) = 0;

  CollectorPresenceConfig presence_;
  /// The transposed SappCpConfig every agent's adaptation points at
  /// (stable address for the collector's lifetime).
  core::SappCpConfig adapt_config_;
  std::function<double()> now_fn_ PROBEMON_GUARDED_BY(mutex_);
  std::map<std::string, Presence> presence_by_agent_
      PROBEMON_GUARDED_BY(mutex_);
  telemetry::Registry self_;
  telemetry::AlertEngine* alert_engine_ PROBEMON_GUARDED_BY(mutex_) = nullptr;
};

/// Collector HTTP surface:
///   POST /push    ingest one report; 200 {"ok":true,"samples":N},
///                 400 on malformed/conflicting input
///   GET  /agents  {"agents":[{"agent":...,"series":N,"state":"ok",
///                 "staleness_s":...,"deadline_s":...,...}, ...]};
///                 ?state=ok|absent filters, anything else -> 400.
///                 Each request re-evaluates presence first.
/// Pair with telemetry::register_metrics_routes(server,
/// collector.merged()) for the scrape side. `collector` must outlive
/// the server.
void register_collector_routes(telemetry::HttpServer& server,
                               MetricsCollector& collector);

}  // namespace probemon::runtime
