// MetricsCollector: fleet aggregation for pushed metric reports.
//
// Topology (the probemon_collector example wires this end to end):
//
//   agent 0 ──┐                                   ┌─ /metrics (delta)
//   agent 1 ──┼── POST /push {agent, full, ... } ─┤  /metrics.json
//   agent N ──┘        (delta JSON reports)       └─ /agents
//
// Each agent owns a MetricStore and a MetricsPusher
// (metrics_push.hpp) that periodically POSTs the series that changed
// since its last successful report — full state on the first report
// and after any failure, deltas otherwise. The collector keeps:
//
//   * one Registry per agent holding that agent's last absolute state
//     (counters reset to the reported value, not incremented — a
//     re-delivered report is idempotent), and
//   * one merged ShardedRegistry across the whole fleet, updated
//     in place at ingest time with an "agent" label appended to every
//     series — so scraping the merged view costs O(changed) via the
//     standard delta routes, no matter how many agents report.
//
// A full report replaces the agent's state: series present before but
// absent from the report are removed from both the per-agent view and
// the merged store. Agent ordering is deterministic (sorted by agent
// id) wherever the collector folds multiple agents into one output.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/http_server.hpp"
#include "telemetry/metrics_parse.hpp"
#include "telemetry/sharded_registry.hpp"

namespace probemon::runtime {

class MetricsCollector {
 public:
  /// `shards` sizes the merged ShardedRegistry (fleet-wide series
  /// count, not per-agent).
  explicit MetricsCollector(
      std::size_t shards = telemetry::ShardedRegistry::kDefaultShards);

  MetricsCollector(const MetricsCollector&) = delete;
  MetricsCollector& operator=(const MetricsCollector&) = delete;

  /// Ingest one report body (the JSON produced by MetricsPusher /
  /// samples_to_json + agent/full envelope). Returns the number of
  /// samples absorbed. Throws std::runtime_error on malformed JSON or
  /// a missing agent id, std::logic_error if a series conflicts with
  /// an existing registration (type change mid-flight).
  std::size_t ingest(std::string_view json_body);
  std::size_t ingest(const telemetry::MetricsDocument& document);

  /// Reporting agents, sorted.
  std::vector<std::string> agents() const;
  std::size_t agent_count() const;
  /// Drop one agent's state (per-agent view and its merged series).
  bool forget(const std::string& agent);

  /// The fleet-wide merged store ("agent" label on every series).
  /// Feed it to register_metrics_routes for O(changed) scrapes.
  const telemetry::MetricStore& merged() const { return merged_; }

  /// One agent's last absolute state, snapshot form (empty vector for
  /// an unknown agent).
  std::vector<telemetry::Sample> agent_snapshot(
      const std::string& agent) const;

  /// Reports successfully ingested / samples absorbed since start.
  std::uint64_t reports_ingested() const;
  std::uint64_t samples_ingested() const;

 private:
  void apply_sample(telemetry::Registry& agent_view,
                    const telemetry::Sample& sample,
                    const std::string& agent);
  void remove_sample(telemetry::Registry& agent_view,
                     const telemetry::Sample& sample,
                     const std::string& agent);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<telemetry::Registry>> agents_;
  telemetry::ShardedRegistry merged_;
  std::uint64_t reports_ = 0;
  std::uint64_t samples_ = 0;
};

/// Collector HTTP surface:
///   POST /push    ingest one report; 200 {"ok":true,"samples":N},
///                 400 on malformed/conflicting input
///   GET  /agents  {"agents":[{"agent":...,"series":N}, ...]}
/// Pair with telemetry::register_metrics_routes(server,
/// collector.merged()) for the scrape side. `collector` must outlive
/// the server.
void register_collector_routes(telemetry::HttpServer& server,
                               MetricsCollector& collector);

}  // namespace probemon::runtime
