// PresenceService: the high-level embedding API of the runtime.
//
// An application (a UPnP control point, a smart-home hub) watches many
// devices at once; each watch runs a protocol-appropriate CP loop, and
// the service maintains a presence table plus an event stream. This is
// the facade a downstream user adopts; the per-protocol classes remain
// available for fine-grained control.
//
// Thread-safety: all public methods are safe to call from any thread.
// Event callbacks fire on internal protocol threads; keep them quick
// and do not call back into the service from within a callback for the
// same device being torn down.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/invariant_auditor.hpp"
#include "core/config.hpp"
#include "runtime/rt_control_point.hpp"
#include "runtime/transport.hpp"
#include "telemetry/probe_tracer.hpp"
#include "telemetry/registry.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::runtime {

/// Presence state of one watched device.
enum class Presence {
  kUnknown,  ///< watch started, no reply yet
  kPresent,  ///< at least one probe cycle succeeded
  kAbsent,   ///< a probe cycle exhausted all retransmissions
};
// Note: a watch whose device was declared absent stops probing (the
// protocol's behaviour); unwatch() + watch_*() resumes monitoring, e.g.
// after the device announces itself again via discovery.

const char* to_string(Presence presence) noexcept;

/// A presence transition event.
struct PresenceEvent {
  net::NodeId device = net::kInvalidNode;
  Presence state = Presence::kUnknown;
  double t = 0.0;  ///< transport-clock time of the transition
};

class PresenceService {
 public:
  using EventCallback = std::function<void(const PresenceEvent&)>;

  /// Optional observability wiring. When `registry` is set, the service
  /// maintains (metric names documented in docs/observability.md):
  ///   * probemon_watch_probes_sent_total{device=...} /
  ///     probemon_watch_retransmissions_total{device=...}
  ///   * probemon_watch_rtt_seconds{device=...} (per-watch histogram)
  ///   * probemon_watch_cycles_total{result=success|failure}
  ///   * probemon_presence_transitions_total{state=present|absent}
  ///   * probemon_detection_latency_seconds (first unanswered probe ->
  ///     absence declaration; a lower bound on the paper's detection
  ///     latency, which additionally spans the final inter-cycle wait)
  ///   * probemon_watches (gauge)
  /// When `tracer` is set, every completed probe cycle is recorded.
  /// When `auditor` is set, every completed probe cycle is audited
  /// against the paper's invariants (cycle shape, attempt bound,
  /// exhaustion-before-absence; see docs/static_analysis.md) —
  /// violations appear in the auditor's
  /// probemon_invariant_violations_total counters and on /healthz.
  /// All three must outlive the service.
  struct TelemetryOptions {
    telemetry::Registry* registry = nullptr;
    telemetry::ProbeCycleTracer* tracer = nullptr;
    check::InvariantAuditor* auditor = nullptr;
  };

  /// The service sends and receives through `transport`, which must
  /// outlive it.
  explicit PresenceService(Transport& transport)
      : PresenceService(transport, TelemetryOptions()) {}
  PresenceService(Transport& transport, TelemetryOptions telemetry);
  ~PresenceService();

  PresenceService(const PresenceService&) = delete;
  PresenceService& operator=(const PresenceService&) = delete;

  /// Subscribe to presence transitions (called for every watched
  /// device). Returns a token for unsubscribe.
  std::uint64_t subscribe(EventCallback callback) PROBEMON_EXCLUDES(mutex_);
  void unsubscribe(std::uint64_t token) PROBEMON_EXCLUDES(mutex_);

  /// Watch a device with DCPP (the recommended protocol). No-op if the
  /// device is already watched.
  void watch_dcpp(net::NodeId device, core::DcppCpConfig config = {})
      PROBEMON_EXCLUDES(mutex_);
  /// Watch a device with SAPP (for interop with legacy devices).
  void watch_sapp(net::NodeId device, core::SappCpConfig config = {})
      PROBEMON_EXCLUDES(mutex_);

  /// Stop watching; forgets the device's state.
  void unwatch(net::NodeId device) PROBEMON_EXCLUDES(mutex_);

  /// Current presence verdict (kUnknown if not watched).
  Presence presence(net::NodeId device) const PROBEMON_EXCLUDES(mutex_);
  /// True only if watched and currently considered present.
  bool present(net::NodeId device) const {
    return presence(device) == Presence::kPresent;
  }

  std::size_t watch_count() const PROBEMON_EXCLUDES(mutex_);
  std::vector<net::NodeId> watched_devices() const PROBEMON_EXCLUDES(mutex_);

  /// Point-in-time copy of the presence table.
  std::vector<PresenceEvent> snapshot() const PROBEMON_EXCLUDES(mutex_);

  /// Everything an operator dashboard wants to show about one watch.
  /// Times are transport-clock seconds (RtClock).
  struct WatchInfo {
    net::NodeId device = net::kInvalidNode;
    Presence state = Presence::kUnknown;
    double last_change = 0.0;  ///< instant of the last state transition
    /// Reply latency of the most recent successful cycle; 0 before the
    /// first reply.
    double last_rtt = 0.0;
    /// Unanswered probes closing the most recent completed cycle:
    /// retransmissions needed before the last reply, or every attempt
    /// of the final cycle once the device is declared absent.
    std::uint32_t consecutive_failures = 0;
    std::uint64_t probes_sent = 0;
    std::uint64_t cycles_succeeded = 0;
    std::uint64_t cycles_failed = 0;
    /// When the next probe cycle starts (last cycle end + inter-cycle
    /// delay); 0 while no cycle has completed or once the watch stopped
    /// probing (device absent).
    double next_probe_due = 0.0;
  };

  /// Point-in-time rows of the presence table, sorted by device id —
  /// the accessor behind the `/watches` HTTP route and the dashboard
  /// example.
  std::vector<WatchInfo> snapshotWatches() const PROBEMON_EXCLUDES(mutex_);

  /// Aggregate probe statistics across all watches.
  struct Stats {
    std::uint64_t probes_sent = 0;
    std::uint64_t cycles_succeeded = 0;
    std::uint64_t cycles_failed = 0;
  };
  Stats stats() const PROBEMON_EXCLUDES(mutex_);

 private:
  struct Watch {
    std::unique_ptr<RtControlPointBase> cp;
    Presence state = Presence::kUnknown;
    double last_change = 0.0;
    // Dashboard bookkeeping, updated from the cycle-trace callback.
    double last_rtt = 0.0;
    std::uint32_t consecutive_failures = 0;
    double next_probe_due = 0.0;
  };

  RtControlPointBase::Callbacks make_callbacks(net::NodeId device);
  void on_transition(net::NodeId device, Presence state, double t)
      PROBEMON_EXCLUDES(mutex_);
  void on_cycle_for_watch(net::NodeId device,
                          const telemetry::ProbeCycleTrace& trace)
      PROBEMON_EXCLUDES(mutex_);

  Transport& transport_;
  TelemetryOptions telemetry_;
  // Service-wide metric instances (null when telemetry is off).
  telemetry::Counter* transitions_present_ = nullptr;
  telemetry::Counter* transitions_absent_ = nullptr;
  telemetry::Counter* cycles_success_ = nullptr;
  telemetry::Counter* cycles_failure_ = nullptr;
  telemetry::Histogram* detection_latency_ = nullptr;
  telemetry::Gauge* watches_gauge_ = nullptr;

  mutable util::Mutex mutex_{"runtime.PresenceService"};
  std::unordered_map<net::NodeId, Watch> watches_ PROBEMON_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, EventCallback> subscribers_
      PROBEMON_GUARDED_BY(mutex_);
  std::uint64_t next_token_ PROBEMON_GUARDED_BY(mutex_) = 1;
};

}  // namespace probemon::runtime
