#include "runtime/http_routes.hpp"

#include <stdexcept>
#include <string>

#include "telemetry/history/query.hpp"
#include "telemetry/json.hpp"

namespace probemon::runtime {

namespace {

std::string render_watches(
    const std::vector<PresenceService::WatchInfo>& watches) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("watches");
  w.begin_array();
  for (const auto& info : watches) {
    w.begin_object();
    w.key("device");
    w.value(static_cast<std::uint64_t>(info.device));
    w.key("state");
    w.value(to_string(info.state));
    w.key("last_change");
    w.value(info.last_change);
    w.key("last_rtt");
    w.value(info.last_rtt);
    w.key("consecutive_failures");
    w.value(static_cast<std::uint64_t>(info.consecutive_failures));
    w.key("probes_sent");
    w.value(info.probes_sent);
    w.key("cycles_succeeded");
    w.value(info.cycles_succeeded);
    w.key("cycles_failed");
    w.value(info.cycles_failed);
    w.key("next_probe_due");
    w.value(info.next_probe_due);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace

std::string watches_to_json(const PresenceService& service) {
  return render_watches(service.snapshotWatches());
}

std::string watches_to_json(const AsyncPresenceService& service) {
  return render_watches(service.snapshotWatches());
}

void register_watch_routes(telemetry::HttpServer& server,
                           const PresenceService& service) {
  server.handle("/watches", [&service](const telemetry::HttpRequest&) {
    return telemetry::HttpResponse{200, "application/json; charset=utf-8",
                                   watches_to_json(service)};
  });
}

void register_watch_routes(telemetry::HttpServer& server,
                           const AsyncPresenceService& service) {
  server.handle("/watches", [&service](const telemetry::HttpRequest&) {
    return telemetry::HttpResponse{200, "application/json; charset=utf-8",
                                   watches_to_json(service)};
  });
}

void register_healthz_route(telemetry::HttpServer& server,
                            ObservabilitySources sources) {
  server.handle("/healthz", [&server, sources](
                                const telemetry::HttpRequest&) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.key("status");
    w.value("ok");
    w.key("uptime_seconds");
    w.value(server.uptime_seconds());
    w.key("requests_served");
    w.value(server.requests_served());
    if (sources.registry) {
      w.key("registry_metrics");
      w.value(static_cast<std::uint64_t>(sources.registry->size()));
    }
    if (sources.tracer) {
      w.key("tracer_recorded");
      w.value(sources.tracer->recorded());
      w.key("tracer_capacity");
      w.value(static_cast<std::uint64_t>(sources.tracer->capacity()));
    }
    if (sources.service || sources.async_service) {
      const std::size_t count =
          sources.service ? sources.service->watch_count()
                          : sources.async_service->watch_count();
      w.key("watches");
      w.value(static_cast<std::uint64_t>(count));
    }
    if (sources.auditor) {
      w.key("invariant_violations_total");
      w.value(sources.auditor->total_violations());
      w.key("invariant_violations");
      w.begin_object();
      for (std::size_t i = 0; i < check::kInvariantCount; ++i) {
        const auto invariant = static_cast<check::Invariant>(i);
        w.key(check::to_string(invariant));
        w.value(sources.auditor->violations(invariant));
      }
      w.end_object();
    }
    w.end_object();
    return telemetry::HttpResponse{200, "application/json; charset=utf-8",
                                   w.str()};
  });
}

void register_query_routes(telemetry::HttpServer& server,
                           const telemetry::TimeSeriesHistory& history) {
  server.handle("/query", [&history](const telemetry::HttpRequest& request) {
    const auto expr_it = request.query.find("expr");
    if (expr_it == request.query.end() || expr_it->second.empty()) {
      return telemetry::json_error_response(400, "missing ?expr=");
    }
    double range_s = history.sample_period_s() * 60.0;
    const auto range_it = request.query.find("range");
    if (range_it != request.query.end()) {
      std::size_t used = 0;
      double parsed = 0.0;
      try {
        parsed = std::stod(range_it->second, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (used != range_it->second.size() || !(parsed > 0.0)) {
        return telemetry::json_error_response(
            400, "range must be a positive number of seconds (got '" +
                     range_it->second + "')");
      }
      range_s = parsed;
    }
    telemetry::QueryExpr expr;
    try {
      expr = telemetry::parse_query(expr_it->second);
    } catch (const std::invalid_argument& e) {
      return telemetry::json_error_response(400, e.what());
    }
    const double value = telemetry::eval_query(expr, history, range_s);
    telemetry::JsonWriter w;
    w.begin_object();
    w.key("expr");
    w.value(expr_it->second);
    w.key("fn");
    w.value(telemetry::to_string(expr.fn));
    w.key("series");
    w.value(expr.series);
    w.key("range_s");
    w.value(expr.range_s > 0.0 ? expr.range_s : range_s);
    w.key("as_of");
    w.value(history.last_sample_time());
    w.key("value");
    w.value(value);
    w.end_object();
    return telemetry::HttpResponse{200, "application/json; charset=utf-8",
                                   w.str()};
  });
}

void register_alert_routes(telemetry::HttpServer& server,
                           const telemetry::AlertEngine& alerts) {
  server.handle("/alerts", [&alerts](const telemetry::HttpRequest& request) {
    std::string filter;
    const auto it = request.query.find("state");
    if (it != request.query.end()) {
      filter = it->second;
      if (filter != "inactive" && filter != "pending" && filter != "firing" &&
          filter != "resolved") {
        return telemetry::json_error_response(
            400, "state must be inactive, pending, firing or resolved (got '" +
                     filter + "')");
      }
    }
    return telemetry::HttpResponse{200, "application/json; charset=utf-8",
                                   telemetry::alerts_to_json(alerts, filter)};
  });
}

void register_observability_routes(telemetry::HttpServer& server,
                                   ObservabilitySources sources) {
  if (sources.registry) {
    telemetry::register_metrics_routes(server, *sources.registry);
  }
  if (sources.tracer) {
    telemetry::register_trace_routes(server, *sources.tracer);
  }
  if (sources.service) {
    register_watch_routes(server, *sources.service);
  } else if (sources.async_service) {
    register_watch_routes(server, *sources.async_service);
  }
  if (sources.history) register_query_routes(server, *sources.history);
  if (sources.alerts) register_alert_routes(server, *sources.alerts);
  register_healthz_route(server, sources);
  server.handle("/", [&server](const telemetry::HttpRequest&) {
    std::string body = "probemon observability endpoint\n\nroutes:\n";
    for (const auto& route : server.routes()) {
      body += "  " + route + '\n';
    }
    body += "\n/trace takes ?format=chrome for Perfetto / "
            "chrome://tracing\n";
    return telemetry::HttpResponse{200, "text/plain; charset=utf-8", body};
  });
}

}  // namespace probemon::runtime
