#include "runtime/metrics_push.hpp"

#include <chrono>
#include <stdexcept>

#include "telemetry/export.hpp"
#include "telemetry/http_client.hpp"
#include "telemetry/json.hpp"

namespace probemon::runtime {

MetricsPusher::MetricsPusher(const telemetry::MetricStore& store,
                             Config config)
    : store_(store), config_(std::move(config)) {
  if (config_.agent.empty()) {
    throw std::invalid_argument("MetricsPusher: agent id required");
  }
  if (config_.port == 0) {
    throw std::invalid_argument("MetricsPusher: collector port required");
  }
}

MetricsPusher::~MetricsPusher() { stop(); }

bool MetricsPusher::push_once() {
  std::vector<telemetry::Sample> samples;
  bool full;
  {
    util::MutexLock lock(mutex_);
    full = need_full_;
    samples = store_.snapshot_delta(since_, full);
  }
  if (samples.empty() && !full) {
    skipped_.fetch_add(1, std::memory_order_relaxed);
    return true;  // nothing changed; the collector is already current
  }

  telemetry::JsonWriter w;
  w.begin_object();
  w.key("agent");
  w.value(config_.agent);
  w.key("full");
  w.value(full);
  telemetry::write_samples_json(w, samples);
  w.end_object();

  const telemetry::HttpResult result =
      telemetry::http_post(config_.host, config_.port, config_.path, w.str(),
                           "application/json; charset=utf-8",
                           config_.timeout_s);
  util::MutexLock lock(mutex_);
  if (result.ok()) {
    need_full_ = false;
    ok_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // The collector may have missed this delta (or restarted and lost
  // everything): resynchronize with absolute state next time.
  need_full_ = true;
  failed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void MetricsPusher::start() {
  util::MutexLock lock(mutex_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { run(); });
}

void MetricsPusher::stop() {
  std::thread worker;
  {
    util::MutexLock lock(mutex_);
    if (!started_) return;
    stop_ = true;
    worker = std::move(thread_);
  }
  cv_.notify_all();
  if (worker.joinable()) worker.join();
  push_once();  // final state so the collector sees the shutdown values
  util::MutexLock lock(mutex_);
  started_ = false;
}

void MetricsPusher::run() {
  const auto period =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.period_s));
  for (;;) {
    {
      util::MutexLock lock(mutex_);
      const auto deadline = std::chrono::steady_clock::now() + period;
      while (!stop_) {
        if (cv_.wait_until(mutex_, deadline) == std::cv_status::timeout) {
          break;
        }
      }
      if (stop_) return;
    }
    // Push with the lock dropped: push_once() takes it itself and the
    // HTTP round-trip must not block stop()/start().
    push_once();
  }
}

}  // namespace probemon::runtime
