// EventLoop: the single-threaded epoll reactor behind the async runtime.
//
// One loop thread owns everything — the fd handlers, the wall-clock
// timer wheel, the batched UDP transport — so the 10^5-endpoint hot
// path runs with zero locks and zero per-event allocation. The
// thread-per-component runtime (rt_device / rt_control_point) remains
// for small fleets and as the semantic reference; this reactor is its
// scale-out (ROADMAP item 1, docs/performance.md "Real-time scale").
//
// Iteration structure (run()):
//   1. drain cross-thread tasks posted via post()
//   2. timers().poll() — fire due wall-clock timers (probe timeouts,
//      inter-cycle delays) through the DES hashed wheel re-clocked to
//      the monotonic clock (des::WallClockTimerWheel)
//   3. flush hooks — e.g. AsyncUdpTransport sendmmsg()s its pending
//      batch so every iteration's output hits the wire before we sleep
//   4. epoll_wait with a timeout derived from the nearest timer
//      deadline (capped); a wake eventfd makes post()/stop() take
//      effect immediately
//   5. dispatch fd events to their handlers
//
// Threading contract:
//   * post(), stop(), running() and the counter accessors are safe
//     from any thread.
//   * Everything else — add_fd/remove_fd/add_flush_hook, timers(), and
//     all AsyncUdpTransport / AsyncDevice / AsyncControlPoint methods
//     that are not explicitly atomic — must run on the loop thread or
//     while the loop is not running. Cross-thread work enters via
//     post().
//   * Non-Linux builds fall back from epoll/eventfd to poll(2) and a
//     self-pipe; semantics are identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "des/wall_clock.hpp"
#include "telemetry/registry.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::runtime {

class EventLoop {
 public:
  struct Config {
    /// epoll_wait / poll() event batch per wakeup.
    int max_fd_events = 256;
    /// Cap on the idle sleep (ms); the wake fd means this is a safety
    /// net, not a latency bound.
    int max_wait_ms = 1000;
  };

  /// `events` is the epoll/poll readiness mask (EPOLLIN/POLLIN etc.).
  using FdHandler = std::function<void(std::uint32_t events)>;
  using Task = std::function<void()>;

  EventLoop() : EventLoop(Config{}) {}
  explicit EventLoop(Config config);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// The loop's wall-clock timer wheel. Loop thread only.
  des::WallClockTimerWheel& timers() noexcept { return timers_; }
  const des::WallClockTimerWheel& timers() const noexcept { return timers_; }
  /// Seconds since loop construction (monotonic). Any thread.
  double now() const { return timers_.now(); }

  /// Register a readable-fd handler. The fd must be non-blocking.
  /// Loop thread, or while the loop is not running.
  void add_fd(int fd, FdHandler handler);
  void remove_fd(int fd);

  /// Run once per iteration after timers, before the loop sleeps —
  /// transports flush their send batches here. Returns a handle for
  /// remove_flush_hook (detach before the hook's captures die). Loop
  /// thread or stopped.
  std::uint64_t add_flush_hook(Task hook);
  void remove_flush_hook(std::uint64_t handle);

  /// Enqueue a task for the loop thread; wakes the loop. Safe from any
  /// thread. After the loop has fully stopped (thread joined, queue
  /// drained) the task runs inline on the caller, so teardown posted
  /// around stop() never strands work.
  void post(Task task);

  /// Run the loop on the calling thread until stop().
  void run();
  /// Spawn a thread running run(). Idempotent while running; a stopped
  /// loop can be started again (start/stop churn is tested).
  void start() PROBEMON_EXCLUDES(lifecycle_mutex_);
  /// Request stop and join the loop thread (if started). Safe from any
  /// thread, including loop-thread callbacks (then it defers the join
  /// to the caller of start()/stop() on another thread... see .cpp).
  void stop() PROBEMON_EXCLUDES(lifecycle_mutex_);

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  bool on_loop_thread() const noexcept {
    return running() && std::this_thread::get_id() ==
                            loop_thread_.load(std::memory_order_acquire);
  }

  // --- scrape-safe statistics (atomics; any thread) -----------------------
  std::uint64_t wakeups() const noexcept {
    return wakeups_.load(std::memory_order_relaxed);
  }
  std::uint64_t fd_dispatches() const noexcept {
    return fd_dispatches_.load(std::memory_order_relaxed);
  }
  std::uint64_t tasks_run() const noexcept {
    return tasks_run_.load(std::memory_order_relaxed);
  }
  std::uint64_t timers_fired() const noexcept {
    return timers_fired_.load(std::memory_order_relaxed);
  }
  std::uint64_t timers_pending() const noexcept {
    return timers_pending_.load(std::memory_order_relaxed);
  }

  /// Export loop counters on `registry` (label loop=<name>):
  /// probemon_loop_wakeups_total, probemon_loop_fd_dispatches_total,
  /// probemon_loop_tasks_total, probemon_loop_timers_fired_total and
  /// the probemon_loop_timers_pending gauge. Callback-backed over the
  /// atomics above, so scrapes never touch loop-owned state. The
  /// registry must outlive the loop.
  void instrument(telemetry::Registry& registry,
                  const std::string& loop_name = "0");

 private:
  void run_iteration(bool& saw_stop);
  void drain_tasks();
  void wake();
  void dispatch(int fd, std::uint32_t events);

  Config config_;
  des::WallClockTimerWheel timers_;

  int poll_fd_ = -1;   ///< epoll instance (Linux); -1 on the poll() path
  int wake_fds_[2] = {-1, -1};  ///< [0] read side (eventfd uses only [0])

  /// Loop-confined (modified pre-start or on the loop thread).
  std::unordered_map<int, FdHandler> handlers_;
  std::vector<std::pair<std::uint64_t, Task>> flush_hooks_;
  std::uint64_t next_hook_id_ = 1;

  mutable util::Mutex task_mutex_{"runtime.EventLoop.tasks"};
  std::vector<Task> tasks_ PROBEMON_GUARDED_BY(task_mutex_);
  /// False once the loop has drained its final task batch; post() then
  /// runs tasks inline on the caller.
  bool accepting_tasks_ PROBEMON_GUARDED_BY(task_mutex_) = true;

  mutable util::Mutex lifecycle_mutex_{"runtime.EventLoop.lifecycle"};
  std::thread thread_ PROBEMON_GUARDED_BY(lifecycle_mutex_);

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::thread::id> loop_thread_{};

  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> fd_dispatches_{0};
  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> timers_fired_{0};
  std::atomic<std::uint64_t> timers_pending_{0};
};

}  // namespace probemon::runtime
