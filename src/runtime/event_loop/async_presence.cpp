#include "runtime/event_loop/async_presence.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace probemon::runtime {

AsyncPresenceService::AsyncPresenceService(AsyncUdpTransport& transport,
                                           TelemetryOptions telemetry)
    : transport_(transport),
      loop_(transport.loop()),
      telemetry_(telemetry) {
  if (telemetry_.registry) {
    auto& r = *telemetry_.registry;
    transitions_present_ =
        &r.counter("probemon_presence_transitions_total",
                   "Presence state transitions observed by the service",
                   {{"state", "present"}});
    transitions_absent_ = &r.counter("probemon_presence_transitions_total", "",
                                     {{"state", "absent"}});
    cycles_success_ =
        &r.counter("probemon_watch_cycles_total",
                   "Completed probe cycles across all watches",
                   {{"result", "success"}});
    cycles_failure_ = &r.counter("probemon_watch_cycles_total", "",
                                 {{"result", "failure"}});
    detection_latency_ = &r.histogram(
        "probemon_detection_latency_seconds",
        telemetry::Histogram::exponential_buckets(0.01, 2.0, 11),
        "First unanswered probe to absence declaration");
    reply_latency_ = &r.histogram(
        "probemon_reply_latency_seconds",
        telemetry::Histogram::exponential_buckets(0.0005, 2.0, 14),
        "Probe send to reply acceptance latency across all watches");
    watches_gauge_ = &r.gauge("probemon_watches", "Currently watched devices");
  }
}

AsyncPresenceService::~AsyncPresenceService() {
  std::unordered_map<net::NodeId, Watch> doomed;
  {
    util::MutexLock lock(mutex_);
    doomed = std::move(watches_);
    watches_.clear();
    subscribers_.clear();
  }
  stop_watches(doomed);
  // The stopped watches are destroyed here (or, when torn down from a
  // loop callback, on a later loop iteration via the holder task).
}

void AsyncPresenceService::stop_watches(
    std::unordered_map<net::NodeId, Watch>& watches) {
  if (watches.empty()) return;
  if (loop_.on_loop_thread()) {
    // Possibly inside one of these CPs' callbacks: stop now, but push
    // destruction to a later iteration so we never free a CP whose
    // callback frame is still on the stack.
    for (auto& [id, watch] : watches) watch.cp->stop();
    auto holder = std::make_shared<std::unordered_map<net::NodeId, Watch>>(
        std::move(watches));
    watches.clear();
    loop_.post([holder] {});
    return;
  }
  if (loop_.running()) {
    // Stop on the loop thread and wait, so after return no callback can
    // reference this service.
    util::Mutex done_mutex{"runtime.AsyncPresenceService.stop"};
    util::CondVar done_cv;
    bool done = false;
    auto* watches_ptr = &watches;
    loop_.post([&, watches_ptr] {
      for (auto& [id, watch] : *watches_ptr) watch.cp->stop();
      {
        util::MutexLock lock(done_mutex);
        done = true;
      }
      done_cv.notify_all();
    });
    util::MutexLock lock(done_mutex);
    while (!done) done_cv.wait(done_mutex);
    return;
  }
  // Loop not running: loop-confined calls are legal from this thread.
  for (auto& [id, watch] : watches) watch.cp->stop();
}

std::uint64_t AsyncPresenceService::subscribe(EventCallback callback) {
  util::MutexLock lock(mutex_);
  const std::uint64_t token = next_token_++;
  subscribers_.emplace(token, std::move(callback));
  return token;
}

void AsyncPresenceService::unsubscribe(std::uint64_t token) {
  util::MutexLock lock(mutex_);
  subscribers_.erase(token);
}

AsyncControlPointBase::Callbacks AsyncPresenceService::make_callbacks(
    net::NodeId device) {
  AsyncControlPointBase::Callbacks callbacks;
  callbacks.on_absent = [this, device](net::NodeId, double t) {
    on_transition(device, Presence::kAbsent, t);
  };
  callbacks.on_cycle_success = [this, device](double t, double) {
    on_transition(device, Presence::kPresent, t);
  };
  callbacks.on_cycle =
      [this, device](const AsyncControlPointBase::CycleInfo& info) {
        on_cycle(device, info);
      };

  const bool want_trace = telemetry_.tracer != nullptr ||
                          telemetry_.auditor != nullptr ||
                          (telemetry_.per_watch_metrics && telemetry_.registry);
  if (!want_trace) return callbacks;

  telemetry::Counter* probes = nullptr;
  telemetry::Counter* retransmissions = nullptr;
  telemetry::Histogram* rtt = nullptr;
  if (telemetry_.per_watch_metrics && telemetry_.registry) {
    auto& r = *telemetry_.registry;
    const telemetry::Labels labels{{"device", std::to_string(device)}};
    probes = &r.counter("probemon_watch_probes_sent_total",
                        "Probes transmitted for this watch", labels);
    retransmissions =
        &r.counter("probemon_watch_retransmissions_total",
                   "Probe retransmissions for this watch", labels);
    rtt = &r.histogram(
        "probemon_watch_rtt_seconds",
        telemetry::Histogram::exponential_buckets(0.0005, 2.0, 11),
        "Probe send to reply acceptance latency", labels);
  }
  callbacks.on_cycle_trace =
      [this, probes, retransmissions,
       rtt](const telemetry::ProbeCycleTrace& trace) {
        if (telemetry_.auditor) telemetry_.auditor->audit_cycle(trace);
        if (telemetry_.tracer) telemetry_.tracer->record(trace);
        if (probes) probes->inc(trace.attempts);
        if (retransmissions && trace.attempts > 1) {
          retransmissions->inc(trace.attempts - 1u);
        }
        if (trace.success && rtt) rtt->observe(trace.rtt);
      };
  return callbacks;
}

void AsyncPresenceService::watch_dcpp(net::NodeId device,
                                      core::DcppCpConfig config,
                                      double start_jitter_s) {
  {
    util::MutexLock lock(mutex_);
    if (watches_.contains(device)) return;
  }
  if (loop_.running() && !loop_.on_loop_thread()) {
    loop_.post([this, device, config, start_jitter_s] {
      do_watch_dcpp(device, config, start_jitter_s);
    });
    return;
  }
  do_watch_dcpp(device, config, start_jitter_s);
}

void AsyncPresenceService::watch_sapp(net::NodeId device,
                                      core::SappCpConfig config,
                                      double start_jitter_s) {
  {
    util::MutexLock lock(mutex_);
    if (watches_.contains(device)) return;
  }
  if (loop_.running() && !loop_.on_loop_thread()) {
    loop_.post([this, device, config, start_jitter_s] {
      do_watch_sapp(device, config, start_jitter_s);
    });
    return;
  }
  do_watch_sapp(device, config, start_jitter_s);
}

void AsyncPresenceService::do_watch_dcpp(net::NodeId device,
                                         const core::DcppCpConfig& config,
                                         double start_jitter_s) {
  adopt_watch(device,
              std::make_unique<AsyncDcppControlPoint>(
                  transport_, device, config, make_callbacks(device)),
              start_jitter_s);
}

void AsyncPresenceService::do_watch_sapp(net::NodeId device,
                                         const core::SappCpConfig& config,
                                         double start_jitter_s) {
  adopt_watch(device,
              std::make_unique<AsyncSappControlPoint>(
                  transport_, device, config, make_callbacks(device)),
              start_jitter_s);
}

void AsyncPresenceService::adopt_watch(
    net::NodeId device, std::unique_ptr<AsyncControlPointBase> cp,
    double start_jitter_s) {
  AsyncControlPointBase* raw = cp.get();
  {
    util::MutexLock lock(mutex_);
    auto [it, inserted] = watches_.try_emplace(device);
    if (!inserted) return;  // raced with another watcher; drop ours
    it->second.cp = std::move(cp);
    if (watches_gauge_) {
      watches_gauge_->set(static_cast<double>(watches_.size()));
    }
  }
  raw->start(start_jitter_s);
}

void AsyncPresenceService::unwatch(net::NodeId device) {
  std::unordered_map<net::NodeId, Watch> doomed;
  {
    util::MutexLock lock(mutex_);
    auto it = watches_.find(device);
    if (it == watches_.end()) return;
    doomed.emplace(device, std::move(it->second));
    watches_.erase(it);
    if (watches_gauge_) {
      watches_gauge_->set(static_cast<double>(watches_.size()));
    }
  }
  stop_watches(doomed);
}

void AsyncPresenceService::on_cycle(
    net::NodeId device, const AsyncControlPointBase::CycleInfo& info) {
  if (info.success) {
    if (cycles_success_) cycles_success_->inc();
    if (reply_latency_) reply_latency_->observe(info.rtt);
  } else {
    if (cycles_failure_) cycles_failure_->inc();
    if (detection_latency_) detection_latency_->observe(info.end - info.start);
  }
  util::MutexLock lock(mutex_);
  auto it = watches_.find(device);
  if (it == watches_.end()) return;  // unwatched concurrently
  Watch& watch = it->second;
  if (info.success) {
    watch.last_rtt = info.rtt;
    watch.consecutive_failures =
        info.attempts > 0 ? info.attempts - 1u : 0u;
    watch.next_probe_due = info.end + info.next_delay;
  } else {
    watch.consecutive_failures = info.attempts;
    watch.next_probe_due = 0.0;  // absence declared: probing stops
  }
}

void AsyncPresenceService::on_transition(net::NodeId device, Presence state,
                                         double t) {
  std::vector<EventCallback> to_notify;
  {
    util::MutexLock lock(mutex_);
    auto it = watches_.find(device);
    if (it == watches_.end()) return;       // unwatched concurrently
    if (it->second.state == state) return;  // no transition
    it->second.state = state;
    it->second.last_change = t;
    if (state == Presence::kPresent && transitions_present_) {
      transitions_present_->inc();
    }
    if (state == Presence::kAbsent && transitions_absent_) {
      transitions_absent_->inc();
    }
    to_notify.reserve(subscribers_.size());
    for (const auto& [token, cb] : subscribers_) to_notify.push_back(cb);
  }
  const PresenceEvent event{device, state, t};
  for (const auto& cb : to_notify) cb(event);
}

Presence AsyncPresenceService::presence(net::NodeId device) const {
  util::MutexLock lock(mutex_);
  auto it = watches_.find(device);
  return it == watches_.end() ? Presence::kUnknown : it->second.state;
}

std::size_t AsyncPresenceService::watch_count() const {
  util::MutexLock lock(mutex_);
  return watches_.size();
}

std::vector<net::NodeId> AsyncPresenceService::watched_devices() const {
  util::MutexLock lock(mutex_);
  std::vector<net::NodeId> out;
  out.reserve(watches_.size());
  for (const auto& [id, w] : watches_) out.push_back(id);
  return out;
}

std::vector<PresenceEvent> AsyncPresenceService::snapshot() const {
  util::MutexLock lock(mutex_);
  std::vector<PresenceEvent> out;
  out.reserve(watches_.size());
  for (const auto& [id, w] : watches_) {
    out.push_back(PresenceEvent{id, w.state, w.last_change});
  }
  return out;
}

std::vector<AsyncPresenceService::WatchInfo>
AsyncPresenceService::snapshotWatches() const {
  util::MutexLock lock(mutex_);
  std::vector<WatchInfo> out;
  out.reserve(watches_.size());
  for (const auto& [id, w] : watches_) {
    WatchInfo info;
    info.device = id;
    info.state = w.state;
    info.last_change = w.last_change;
    info.last_rtt = w.last_rtt;
    info.consecutive_failures = w.consecutive_failures;
    info.probes_sent = w.cp->probes_sent();
    info.cycles_succeeded = w.cp->cycles_succeeded();
    info.cycles_failed = w.cp->cycles_failed();
    info.next_probe_due = w.next_probe_due;
    out.push_back(info);
  }
  std::sort(out.begin(), out.end(),
            [](const WatchInfo& a, const WatchInfo& b) {
              return a.device < b.device;
            });
  return out;
}

AsyncPresenceService::Stats AsyncPresenceService::stats() const {
  util::MutexLock lock(mutex_);
  Stats s;
  for (const auto& [id, w] : watches_) {
    s.probes_sent += w.cp->probes_sent();
    s.cycles_succeeded += w.cp->cycles_succeeded();
    s.cycles_failed += w.cp->cycles_failed();
  }
  return s;
}

}  // namespace probemon::runtime
