// Async control points: the bounded-retransmission probe cycle as an
// event-loop state machine.
//
// RtControlPointBase dedicates a thread (and a condvar) to each CP;
// this port runs the identical cycle — first probe, TOF timeout, up to
// max_retransmissions TOS-spaced retries, absence declaration on
// exhaustion, protocol-chosen inter-cycle delay on success — as timer
// callbacks on one EventLoop, so 10^5 CPs cost two timer slots and a
// few hundred bytes each instead of a thread each. Protocol parity
// points mirrored from the Rt classes (and checked by the invariant
// auditor):
//
//   * observation rule — a clean (attempt 0) success observes at the
//     reply arrival instant, a retransmitted success at the last send
//     instant;
//   * stale replies from older cycles are ignored;
//   * monitoring STOPS once the device is declared absent (the paper's
//     CP behaviour; re-watch to resume);
//   * rtt = reply arrival − last send, so the auditor's
//     rtt ≤ end − last_send bound holds with equality.
//
// Callback tiers: on_cycle (POD summary, no allocation — the one the
// 100k-endpoint service uses) always fires; on_cycle_trace (full
// ProbeCycleTrace with per-attempt sends) is only assembled when set,
// keeping the hot path allocation-free.
//
// Threading: start()/stop()/dtor and the callbacks are loop-confined
// (loop thread, or while the loop is not running); the scrape accessors
// are atomics, safe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "core/config.hpp"
#include "core/sapp_adaptation.hpp"
#include "runtime/event_loop/async_udp.hpp"
#include "telemetry/probe_tracer.hpp"

namespace probemon::runtime {

class AsyncControlPointBase {
 public:
  /// Allocation-free per-cycle summary (the scale-path callback).
  struct CycleInfo {
    bool success = false;
    double start = 0.0;       ///< first send instant
    double end = 0.0;         ///< reply acceptance / absence declaration
    double rtt = 0.0;         ///< last send -> reply; 0 on failure
    double next_delay = 0.0;  ///< inter-cycle delay chosen; 0 on failure
    std::uint8_t attempts = 0;
  };

  struct Callbacks {
    /// Invoked (on the loop thread) when the device is declared absent.
    std::function<void(net::NodeId device, double t)> on_absent;
    /// Invoked after every successful cycle with the chosen delay.
    std::function<void(double t, double delay)> on_cycle_success;
    /// Invoked once per completed cycle, success or failure.
    std::function<void(const CycleInfo&)> on_cycle;
    /// Full-span record with per-attempt send instants; costs a heap
    /// vector per CP, so leave unset at 10^5 scale unless tracing.
    std::function<void(const telemetry::ProbeCycleTrace&)> on_cycle_trace;
  };

  AsyncControlPointBase(AsyncUdpTransport& transport, net::NodeId device,
                        const core::TimeoutConfig& timeouts,
                        Callbacks callbacks);
  virtual ~AsyncControlPointBase();

  AsyncControlPointBase(const AsyncControlPointBase&) = delete;
  AsyncControlPointBase& operator=(const AsyncControlPointBase&) = delete;

  net::NodeId id() const noexcept { return id_; }
  net::NodeId device() const noexcept { return device_; }

  /// Begin probing after `initial_jitter_s` (loop-confined; call at
  /// most once). The jitter desynchronizes fleet-scale cycle starts —
  /// 10^5 CPs firing their first probe in the same tick is a self-made
  /// burst the paper's protocols never face.
  void start(double initial_jitter_s = 0.0);

  /// Cancel the pending timer and detach (idempotent, loop-confined).
  void stop();

  // --- scrape-safe statistics (atomics; any thread) -----------------------
  bool device_considered_present() const noexcept {
    return device_present_.load(std::memory_order_relaxed);
  }
  std::uint64_t cycles_succeeded() const noexcept {
    return cycles_succeeded_.load(std::memory_order_relaxed);
  }
  std::uint64_t cycles_failed() const noexcept {
    return cycles_failed_.load(std::memory_order_relaxed);
  }
  std::uint64_t probes_sent() const noexcept {
    return probes_sent_.load(std::memory_order_relaxed);
  }
  double current_delay() const noexcept {
    return current_delay_.load(std::memory_order_relaxed);
  }

 protected:
  /// Inter-cycle delay after a successful cycle (loop thread).
  virtual double next_delay(const net::Message& reply, double t_obs) = 0;

 private:
  void handle(const net::Message& msg);
  void begin_cycle();
  void send_attempt();
  void on_timeout();
  void declare_absent();
  void disarm();

  AsyncUdpTransport& transport_;
  net::NodeId device_;
  core::TimeoutConfig timeouts_;
  Callbacks callbacks_;
  net::NodeId id_;

  bool started_ = false;
  bool stopped_ = false;
  bool awaiting_reply_ = false;
  std::uint64_t cycle_ = 0;
  int attempt_ = 0;
  double cycle_start_ = 0.0;
  double sent_at_ = 0.0;
  des::EventId timer_{};

  /// Reused across cycles (sends vector only populated when the trace
  /// callback is set).
  telemetry::ProbeCycleTrace trace_;

  std::atomic<bool> device_present_{true};
  std::atomic<std::uint64_t> cycles_succeeded_{0};
  std::atomic<std::uint64_t> cycles_failed_{0};
  std::atomic<std::uint64_t> probes_sent_{0};
  std::atomic<double> current_delay_{0.0};
};

class AsyncSappControlPoint final : public AsyncControlPointBase {
 public:
  AsyncSappControlPoint(AsyncUdpTransport& transport, net::NodeId device,
                        core::SappCpConfig config, Callbacks callbacks = {});
  ~AsyncSappControlPoint() override { stop(); }

  double delta() const noexcept { return current_delay(); }

 protected:
  double next_delay(const net::Message& reply, double t_obs) override;

 private:
  core::SappCpConfig config_;
  core::SappAdaptation adaptation_;
};

class AsyncDcppControlPoint final : public AsyncControlPointBase {
 public:
  AsyncDcppControlPoint(AsyncUdpTransport& transport, net::NodeId device,
                        core::DcppCpConfig config, Callbacks callbacks = {});
  ~AsyncDcppControlPoint() override { stop(); }

 protected:
  double next_delay(const net::Message& reply, double t_obs) override;

 private:
  core::DcppCpConfig config_;
};

}  // namespace probemon::runtime
