#include "runtime/event_loop/async_device.hpp"

#include <string>

#include "core/dcpp_device.hpp"

namespace probemon::runtime {

AsyncDeviceBase::AsyncDeviceBase(AsyncUdpTransport& transport)
    : transport_(transport) {
  id_ = transport_.attach([this](const net::Message& msg) { handle(msg); });
}

AsyncDeviceBase::~AsyncDeviceBase() { shutdown(); }

void AsyncDeviceBase::shutdown() {
  if (detached_) return;
  detached_ = true;
  transport_.detach(id_);
}

void AsyncDeviceBase::handle(const net::Message& msg) {
  if (msg.kind != net::MessageKind::kProbe) return;
  if (!present_.load(std::memory_order_relaxed)) return;
  probes_received_.fetch_add(1, std::memory_order_relaxed);
  net::Message reply;
  reply.kind = net::MessageKind::kReply;
  reply.from = id_;
  reply.to = msg.from;
  reply.cycle = msg.cycle;
  reply.attempt = msg.attempt;
  fill_reply(msg, transport_.loop().now(), reply);
  transport_.send(reply);
}

void AsyncDeviceBase::instrument(telemetry::Registry& registry,
                                 double nominal_load) {
  const telemetry::Labels labels{{"device", std::to_string(id_)}};
  registry.counter_callback(
      "probemon_device_probes_received_total",
      [this] { return static_cast<double>(probes_received()); },
      "Probes accepted by the device", labels);
  registry.gauge("probemon_device_nominal_load",
                 "Protocol nominal load cap L_nom (probes/s)", labels)
      .set(nominal_load);
}

AsyncSappDevice::AsyncSappDevice(AsyncUdpTransport& transport,
                                 core::SappDeviceConfig config)
    : AsyncDeviceBase(transport), config_(config), delta_(config.delta()) {
  config_.validate();
}

void AsyncSappDevice::fill_reply(const net::Message& /*probe*/, double /*t*/,
                                 net::Message& reply) {
  const std::uint64_t pc =
      pc_.load(std::memory_order_relaxed) + delta_;
  pc_.store(pc, std::memory_order_relaxed);
  reply.pc = pc;
}

AsyncDcppDevice::AsyncDcppDevice(AsyncUdpTransport& transport,
                                 core::DcppDeviceConfig config)
    : AsyncDeviceBase(transport), config_(config) {
  config_.validate();
}

void AsyncDcppDevice::fill_reply(const net::Message& /*probe*/, double t,
                                 net::Message& reply) {
  const double wait = core::DcppDevice::grant(nt_, t, config_);
  nt_ = t + wait;
  reply.grant_delay = wait;
}

}  // namespace probemon::runtime
