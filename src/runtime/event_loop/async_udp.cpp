#include "runtime/event_loop/async_udp.hpp"

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef PROBEMON_CHECKED
#include <cstdio>
#include <cstdlib>
#endif

namespace probemon::runtime {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

constexpr std::size_t kRecvBufSize = kUdpWireSize + 16;  // oversize detect

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

struct AsyncUdpTransport::IoBatches {
#ifdef __linux__
  // recvmmsg scratch: one buffer/iovec/source-addr/header per slot.
  std::vector<std::array<std::uint8_t, kRecvBufSize>> rbufs;
  std::vector<iovec> riov;
  std::vector<sockaddr_in> raddr;
  std::vector<mmsghdr> rmsgs;
  // sendmmsg batch, filled by send() and drained by flush().
  std::vector<std::array<std::uint8_t, kUdpWireSize>> sbufs;
  std::vector<iovec> siov;
  std::vector<sockaddr_in> saddr;
  std::vector<mmsghdr> smsgs;

  explicit IoBatches(const Config& config) {
    const auto rn = static_cast<std::size_t>(config.recv_batch);
    rbufs.resize(rn);
    riov.resize(rn);
    raddr.resize(rn);
    rmsgs.resize(rn);
    for (std::size_t i = 0; i < rn; ++i) {
      riov[i] = {rbufs[i].data(), rbufs[i].size()};
      std::memset(&rmsgs[i], 0, sizeof(rmsgs[i]));
      rmsgs[i].msg_hdr.msg_iov = &riov[i];
      rmsgs[i].msg_hdr.msg_iovlen = 1;
      rmsgs[i].msg_hdr.msg_name = &raddr[i];
      rmsgs[i].msg_hdr.msg_namelen = sizeof(raddr[i]);
    }
    const auto sn = static_cast<std::size_t>(config.send_batch);
    sbufs.resize(sn);
    siov.resize(sn);
    saddr.resize(sn);
    smsgs.resize(sn);
    for (std::size_t i = 0; i < sn; ++i) {
      siov[i] = {sbufs[i].data(), kUdpWireSize};
      std::memset(&smsgs[i], 0, sizeof(smsgs[i]));
      smsgs[i].msg_hdr.msg_iov = &siov[i];
      smsgs[i].msg_hdr.msg_iovlen = 1;
      smsgs[i].msg_hdr.msg_name = &saddr[i];
      smsgs[i].msg_hdr.msg_namelen = sizeof(saddr[i]);
    }
  }
#else
  std::array<std::uint8_t, kRecvBufSize> rbuf{};
  explicit IoBatches(const Config&) {}
#endif
};

AsyncUdpTransport::AsyncUdpTransport(EventLoop& loop)
    : AsyncUdpTransport(loop, Config{}) {}

AsyncUdpTransport::AsyncUdpTransport(EventLoop& loop, Config config)
    : loop_(loop),
      config_(config),
      io_(std::make_unique<IoBatches>(config)) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw_errno("AsyncUdpTransport: socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
#ifdef SO_REUSEPORT
  if (config_.reuse_port) {
    if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
      const int saved = errno;
      ::close(fd_);
      errno = saved;
      throw_errno("AsyncUdpTransport: SO_REUSEPORT");
    }
  }
#endif
  if (config_.rcvbuf_bytes > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &config_.rcvbuf_bytes,
                 sizeof(config_.rcvbuf_bytes));
  }
  if (config_.sndbuf_bytes > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &config_.sndbuf_bytes,
                 sizeof(config_.sndbuf_bytes));
  }
  sockaddr_in addr = loopback_addr(config_.port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    throw_errno("AsyncUdpTransport: bind");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) == 0) {
    local_port_ = ntohs(addr.sin_port);
  }
  handlers_.resize(1);  // NodeId 0 = kInvalidNode, never attached
  loop_.add_fd(fd_, [this](std::uint32_t) { on_readable(); });
  flush_hook_ = loop_.add_flush_hook([this] { flush(); });
}

AsyncUdpTransport::~AsyncUdpTransport() {
  assert_loop_confined("~AsyncUdpTransport");
  flush();
  loop_.remove_flush_hook(flush_hook_);
  loop_.remove_fd(fd_);
  ::close(fd_);
}

void AsyncUdpTransport::assert_loop_confined(const char* what) const {
#ifdef PROBEMON_CHECKED
  if (loop_.running() && !loop_.on_loop_thread()) {
    std::fprintf(stderr, "AsyncUdpTransport: %s off the loop thread\n", what);
    std::abort();
  }
#else
  (void)what;
#endif
}

net::NodeId AsyncUdpTransport::attach(RtHandler handler) {
  assert_loop_confined("attach");
  const net::NodeId id = next_id_++;
  if (id >= handlers_.size()) handlers_.resize(id + 1);
  handlers_[id] = std::move(handler);
  ++attached_;
  return id;
}

void AsyncUdpTransport::detach(net::NodeId id) {
  assert_loop_confined("detach");
  if (id < handlers_.size() && handlers_[id]) {
    handlers_[id] = nullptr;
    --attached_;
  }
}

void AsyncUdpTransport::set_peer(net::NodeId id, std::uint16_t port) {
  assert_loop_confined("set_peer");
  peers_[id] = port;
}

void AsyncUdpTransport::send(net::Message msg) {
  assert_loop_confined("send");
  std::uint16_t port = 0;
  if (locally_attached(msg.to)) {
    port = local_port_;  // loops back through the kernel, not in-process
  } else {
    auto it = peers_.find(msg.to);
    if (it != peers_.end()) port = it->second;
  }
  if (port == 0) {
    unroutable_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
#ifdef __linux__
  const auto slot = static_cast<std::size_t>(pending_send_);
  udp_encode(msg, io_->sbufs[slot].data());
  io_->saddr[slot] = loopback_addr(port);
  io_->smsgs[slot].msg_hdr.msg_namelen = sizeof(io_->saddr[slot]);
  if (++pending_send_ >= config_.send_batch) flush();
#else
  std::uint8_t buf[kUdpWireSize];
  udp_encode(msg, buf);
  const sockaddr_in addr = loopback_addr(port);
  const ssize_t n =
      ::sendto(fd_, buf, sizeof(buf), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (n == static_cast<ssize_t>(sizeof(buf))) {
    sent_.fetch_add(1, std::memory_order_relaxed);
  } else {
    send_errors_.fetch_add(1, std::memory_order_relaxed);
  }
#endif
}

void AsyncUdpTransport::flush() {
#ifdef __linux__
  if (pending_send_ == 0) return;
  int done = 0;
  while (done < pending_send_) {
    const int n = ::sendmmsg(fd_, io_->smsgs.data() + done,
                             static_cast<unsigned>(pending_send_ - done), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN (full socket buffer) or a real error: UDP is best-effort
      // loss either way — count the remainder and move on, never block
      // the loop.
      send_errors_.fetch_add(
          static_cast<std::uint64_t>(pending_send_ - done),
          std::memory_order_relaxed);
      break;
    }
    done += n;
    sent_.fetch_add(static_cast<std::uint64_t>(n),
                    std::memory_order_relaxed);
  }
  pending_send_ = 0;
#endif
}

void AsyncUdpTransport::on_readable() {
  int consumed = 0;
#ifdef __linux__
  while (consumed < config_.max_datagrams_per_wake) {
    // Source-addr lengths are overwritten by the kernel; re-arm them.
    for (auto& m : io_->rmsgs) m.msg_hdr.msg_namelen = sizeof(sockaddr_in);
    const int n = ::recvmmsg(fd_, io_->rmsgs.data(),
                             static_cast<unsigned>(config_.recv_batch),
                             MSG_DONTWAIT, nullptr);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        recv_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    if (n == 0) break;
    if (recv_depth_hist_) recv_depth_hist_->observe(static_cast<double>(n));
    for (int i = 0; i < n; ++i) {
      handle_datagram(io_->rbufs[static_cast<std::size_t>(i)].data(),
                      io_->rmsgs[static_cast<std::size_t>(i)].msg_len,
                      ntohs(io_->raddr[static_cast<std::size_t>(i)].sin_port));
    }
    consumed += n;
    if (n < config_.recv_batch) break;  // socket drained
  }
#else
  while (consumed < config_.max_datagrams_per_wake) {
    sockaddr_in src{};
    socklen_t src_len = sizeof(src);
    const ssize_t n =
        ::recvfrom(fd_, io_->rbuf.data(), io_->rbuf.size(), 0,
                   reinterpret_cast<sockaddr*>(&src), &src_len);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        recv_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    if (recv_depth_hist_) recv_depth_hist_->observe(1.0);
    handle_datagram(io_->rbuf.data(), static_cast<std::size_t>(n),
                    ntohs(src.sin_port));
    ++consumed;
  }
#endif
}

void AsyncUdpTransport::handle_datagram(const std::uint8_t* data,
                                        std::size_t len,
                                        std::uint16_t src_port) {
  net::Message msg;
  if (len != kUdpWireSize || !udp_decode(data, len, msg)) {
    recv_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Peer learning: an unknown external sender binds its NodeId to the
  // datagram's source port, so replies route back without pre-config.
  if (msg.from != net::kInvalidNode && !locally_attached(msg.from)) {
    peers_[msg.from] = src_port;
  }
  if (!locally_attached(msg.to)) {
    unroutable_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  delivered_.fetch_add(1, std::memory_order_relaxed);
  handlers_[msg.to](msg);
}

void AsyncUdpTransport::instrument(telemetry::Registry& registry,
                                   const std::string& transport_name) {
  const telemetry::Labels labels{{"transport", transport_name}};
  registry.counter_callback(
      "probemon_transport_datagrams_sent_total",
      [this] { return static_cast<double>(sent_count()); },
      "Datagrams handed to the kernel", labels);
  registry.counter_callback(
      "probemon_transport_datagrams_delivered_total",
      [this] { return static_cast<double>(delivered_count()); },
      "Datagrams decoded and dispatched to a handler", labels);
  registry.counter_callback(
      "probemon_transport_send_errors_total",
      [this] { return static_cast<double>(send_error_count()); },
      "sendmmsg/sendto failures (full buffers count as loss)", labels);
  registry.counter_callback(
      "probemon_transport_recv_errors_total",
      [this] { return static_cast<double>(recv_error_count()); },
      "Receive failures and undecodable datagrams", labels);
  registry.counter_callback(
      "probemon_transport_unroutable_total",
      [this] { return static_cast<double>(unroutable_count()); },
      "Datagrams addressed to no attached handler or known peer", labels);
  recv_depth_hist_ = &registry.histogram(
      "probemon_transport_recv_batch_depth",
      telemetry::Histogram::exponential_buckets(
          1.0, 2.0, 8),
      "Datagrams returned per recvmmsg() call", labels);
}

}  // namespace probemon::runtime
