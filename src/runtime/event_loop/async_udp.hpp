// AsyncUdpTransport: batched, non-blocking UDP for the event loop.
//
// Where UdpTransport gives every node its own blocking socket plus a
// receiver thread, this transport multiplexes *all* locally attached
// NodeIds over ONE non-blocking socket owned by an EventLoop — the
// 48-byte wire format carries from/to ids in the payload, so one fd
// (and one epoll registration) serves 10^5 endpoints. IO is batched:
//
//   * receive — recvmmsg() pulls up to Config::recv_batch datagrams per
//     syscall; the loop's level-triggered epoll re-arms if more than
//     Config::max_datagrams_per_wake are queued (fairness bound).
//   * send    — send() encodes into a pending sendmmsg() batch which is
//     flushed when full and at the end of every loop iteration (the
//     transport registers itself as a loop flush hook), so datagrams
//     never sit across a sleep.
//
// Non-Linux builds fall back to recvfrom()/sendto() per datagram over
// the same non-blocking socket; semantics are identical, only the
// syscall count differs.
//
// Routing: destinations that are locally attached loop through the
// socket to our own port (real kernel UDP, not a shortcut). External
// peers are learned from datagram source addresses — the first message
// from an unknown NodeId binds that id to its source port (how
// tools/probemon_loadgen gets replies back) — or pinned explicitly via
// set_peer(). SO_REUSEPORT sharding (Config::reuse_port) lets N loops
// bind the same port and have the kernel spread load.
//
// Threading: attach/detach/send/flush/set_peer are loop-confined (loop
// thread, or while the loop is not running — enforced under
// PROBEMON_CHECKED); the counter accessors and instrument()'s callbacks
// are atomics, safe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/event_loop/event_loop.hpp"
#include "runtime/transport.hpp"
#include "runtime/udp_transport.hpp"  // 48-byte wire codec
#include "telemetry/registry.hpp"

namespace probemon::runtime {

class AsyncUdpTransport final : public Transport {
 public:
  struct Config {
    /// UDP port to bind on 127.0.0.1; 0 = ephemeral (see local_port()).
    std::uint16_t port = 0;
    /// SO_REUSEPORT, for N-loop sharding on a fixed port.
    bool reuse_port = false;
    /// recvmmsg()/sendmmsg() batch depth per syscall.
    int recv_batch = 64;
    int send_batch = 64;
    /// Fairness bound: max datagrams consumed per readable-fd wake
    /// (level-triggered epoll re-fires for the remainder).
    int max_datagrams_per_wake = 4096;
    /// Socket buffer sizes; generous, because an open-loop prober can
    /// burst far ahead of the loop.
    int rcvbuf_bytes = 1 << 22;
    int sndbuf_bytes = 1 << 22;
  };

  /// Binds the socket and registers it (plus a flush hook) on `loop`,
  /// which must not be running yet or must be driven by the caller.
  explicit AsyncUdpTransport(EventLoop& loop);
  AsyncUdpTransport(EventLoop& loop, Config config);
  ~AsyncUdpTransport() override;

  // Transport interface (loop-confined).
  net::NodeId attach(RtHandler handler) override;
  void detach(net::NodeId id) override;
  void send(net::Message msg) override;
  const RtClock& clock() const override { return clock_; }

  /// Pin an external NodeId to a UDP port on 127.0.0.1 (loop-confined).
  /// Datagram source addresses update the same table automatically.
  void set_peer(net::NodeId id, std::uint16_t port);

  std::uint16_t local_port() const noexcept { return local_port_; }
  int fd() const noexcept { return fd_; }
  EventLoop& loop() const noexcept { return loop_; }

  /// Transmit the pending send batch now (loop-confined). Called
  /// automatically as a loop flush hook; exposed for tests.
  void flush();

  // --- scrape-safe counters (atomics; any thread) -------------------------
  std::uint64_t sent_count() const noexcept {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t delivered_count() const noexcept {
    return delivered_.load(std::memory_order_relaxed);
  }
  std::uint64_t send_error_count() const noexcept {
    return send_errors_.load(std::memory_order_relaxed);
  }
  std::uint64_t recv_error_count() const noexcept {
    return recv_errors_.load(std::memory_order_relaxed);
  }
  /// Datagrams that decoded fine but addressed no attached handler and
  /// no known peer — the transport's drop counter.
  std::uint64_t unroutable_count() const noexcept {
    return unroutable_.load(std::memory_order_relaxed);
  }

  /// Mirror counters into `registry` with label transport=<name>
  /// (probemon_transport_datagrams_{sent,delivered}_total,
  /// probemon_transport_{send,recv}_errors_total,
  /// probemon_transport_unroutable_total) plus the
  /// probemon_transport_recv_batch_depth histogram — the recvmmsg-depth
  /// distribution that shows how much batching actually bought. The
  /// registry must outlive the transport.
  void instrument(telemetry::Registry& registry,
                  const std::string& transport_name = "async_udp");

 private:
  struct IoBatches;  // platform-specific scratch (mmsghdr arrays)

  void on_readable();
  void handle_datagram(const std::uint8_t* data, std::size_t len,
                       std::uint16_t src_port);
  bool locally_attached(net::NodeId id) const noexcept {
    return id < handlers_.size() && handlers_[id] != nullptr;
  }
  void assert_loop_confined(const char* what) const;

  EventLoop& loop_;
  Config config_;
  RtClock clock_;
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::uint64_t flush_hook_ = 0;

  /// Dense handler table indexed by NodeId (ids start at 1).
  std::vector<RtHandler> handlers_;
  std::size_t attached_ = 0;
  net::NodeId next_id_ = 1;
  /// External NodeId -> UDP port (127.0.0.1), learned or pinned.
  std::unordered_map<net::NodeId, std::uint16_t> peers_;

  std::unique_ptr<IoBatches> io_;
  int pending_send_ = 0;

  telemetry::Histogram* recv_depth_hist_ = nullptr;

  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> send_errors_{0};
  std::atomic<std::uint64_t> recv_errors_{0};
  std::atomic<std::uint64_t> unroutable_{0};
};

}  // namespace probemon::runtime
