// AsyncPresenceService: the PresenceService facade over the event-loop
// runtime.
//
// Same embedding API shape as PresenceService — watch/unwatch, presence
// table, event subscriptions, snapshotWatches for the /watches route —
// but each watch is an AsyncControlPoint on the transport's EventLoop
// instead of a dedicated thread, so one service scales to 10^5 watches.
// Differences that matter at that scale:
//
//   * per-watch metric series (device=<id> labels) are OFF by default
//     (TelemetryOptions::per_watch_metrics) — 10^5 devices would mint
//     4x10^5 registry series; the aggregate counters plus the
//     probemon_reply_latency_seconds histogram (the p99 source for
//     bench_rt_scale) carry the fleet story;
//   * the hot path runs on the CycleInfo callback (no allocation); the
//     full ProbeCycleTrace pipeline (tracer, invariant auditor,
//     per-watch series) is only wired when one of those consumers is
//     configured;
//   * watch_*/unwatch hop onto the loop thread via post() when called
//     while the loop runs (transport attach/detach are loop-confined),
//     so watch registration from an HTTP handler is asynchronous —
//     the watch appears in the table once the loop task runs.
//
// Scrapes (presence/snapshot*/stats) are safe from any thread; do not
// destroy the service from inside one of its own callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "check/invariant_auditor.hpp"
#include "core/config.hpp"
#include "runtime/event_loop/async_control_point.hpp"
#include "runtime/presence_service.hpp"  // Presence, PresenceEvent, WatchInfo
#include "telemetry/probe_tracer.hpp"
#include "telemetry/registry.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::runtime {

class AsyncPresenceService {
 public:
  using EventCallback = std::function<void(const PresenceEvent&)>;
  using WatchInfo = PresenceService::WatchInfo;
  using Stats = PresenceService::Stats;

  /// Observability wiring; all referents must outlive the service.
  /// `registry` maintains the same service-wide series as
  /// PresenceService (probemon_presence_transitions_total,
  /// probemon_watch_cycles_total, probemon_detection_latency_seconds,
  /// probemon_watches) plus probemon_reply_latency_seconds. `tracer` /
  /// `auditor` / `per_watch_metrics` additionally enable the full
  /// per-cycle trace pipeline.
  struct TelemetryOptions {
    telemetry::Registry* registry = nullptr;
    telemetry::ProbeCycleTracer* tracer = nullptr;
    check::InvariantAuditor* auditor = nullptr;
    bool per_watch_metrics = false;
  };

  explicit AsyncPresenceService(AsyncUdpTransport& transport)
      : AsyncPresenceService(transport, TelemetryOptions()) {}
  AsyncPresenceService(AsyncUdpTransport& transport,
                       TelemetryOptions telemetry);
  ~AsyncPresenceService();

  AsyncPresenceService(const AsyncPresenceService&) = delete;
  AsyncPresenceService& operator=(const AsyncPresenceService&) = delete;

  std::uint64_t subscribe(EventCallback callback) PROBEMON_EXCLUDES(mutex_);
  void unsubscribe(std::uint64_t token) PROBEMON_EXCLUDES(mutex_);

  /// Watch a device. `start_jitter_s` delays the first probe cycle —
  /// spread it over [0, d_min) when watching a fleet so cycle starts
  /// desynchronize. No-op if already watched. Runs asynchronously (via
  /// the loop) when called off-loop while the loop is running.
  void watch_dcpp(net::NodeId device, core::DcppCpConfig config = {},
                  double start_jitter_s = 0.0) PROBEMON_EXCLUDES(mutex_);
  void watch_sapp(net::NodeId device, core::SappCpConfig config = {},
                  double start_jitter_s = 0.0) PROBEMON_EXCLUDES(mutex_);

  /// Stop watching; forgets the device's state. The control point is
  /// stopped and destroyed on the loop thread.
  void unwatch(net::NodeId device) PROBEMON_EXCLUDES(mutex_);

  Presence presence(net::NodeId device) const PROBEMON_EXCLUDES(mutex_);
  bool present(net::NodeId device) const {
    return presence(device) == Presence::kPresent;
  }

  std::size_t watch_count() const PROBEMON_EXCLUDES(mutex_);
  std::vector<net::NodeId> watched_devices() const PROBEMON_EXCLUDES(mutex_);
  std::vector<PresenceEvent> snapshot() const PROBEMON_EXCLUDES(mutex_);
  std::vector<WatchInfo> snapshotWatches() const PROBEMON_EXCLUDES(mutex_);
  Stats stats() const PROBEMON_EXCLUDES(mutex_);

  /// The probemon_reply_latency_seconds histogram (null when telemetry
  /// is off) — bench_rt_scale reads its buckets for p99.
  const telemetry::Histogram* reply_latency() const noexcept {
    return reply_latency_;
  }

 private:
  struct Watch {
    std::unique_ptr<AsyncControlPointBase> cp;
    Presence state = Presence::kUnknown;
    double last_change = 0.0;
    double last_rtt = 0.0;
    std::uint32_t consecutive_failures = 0;
    double next_probe_due = 0.0;
  };

  AsyncControlPointBase::Callbacks make_callbacks(net::NodeId device);
  void do_watch_dcpp(net::NodeId device, const core::DcppCpConfig& config,
                     double start_jitter_s) PROBEMON_EXCLUDES(mutex_);
  void do_watch_sapp(net::NodeId device, const core::SappCpConfig& config,
                     double start_jitter_s) PROBEMON_EXCLUDES(mutex_);
  void adopt_watch(net::NodeId device,
                   std::unique_ptr<AsyncControlPointBase> cp,
                   double start_jitter_s) PROBEMON_EXCLUDES(mutex_);
  void on_cycle(net::NodeId device,
                const AsyncControlPointBase::CycleInfo& info)
      PROBEMON_EXCLUDES(mutex_);
  void on_transition(net::NodeId device, Presence state, double t)
      PROBEMON_EXCLUDES(mutex_);
  /// Stop `watches` on the loop thread (waiting for it when off-loop)
  /// so no callback can touch `this` afterwards.
  void stop_watches(std::unordered_map<net::NodeId, Watch>& watches);

  AsyncUdpTransport& transport_;
  EventLoop& loop_;
  TelemetryOptions telemetry_;
  telemetry::Counter* transitions_present_ = nullptr;
  telemetry::Counter* transitions_absent_ = nullptr;
  telemetry::Counter* cycles_success_ = nullptr;
  telemetry::Counter* cycles_failure_ = nullptr;
  telemetry::Histogram* detection_latency_ = nullptr;
  telemetry::Histogram* reply_latency_ = nullptr;
  telemetry::Gauge* watches_gauge_ = nullptr;

  mutable util::Mutex mutex_{"runtime.AsyncPresenceService"};
  std::unordered_map<net::NodeId, Watch> watches_ PROBEMON_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, EventCallback> subscribers_
      PROBEMON_GUARDED_BY(mutex_);
  std::uint64_t next_token_ PROBEMON_GUARDED_BY(mutex_) = 1;
};

}  // namespace probemon::runtime
