#include "runtime/event_loop/async_control_point.hpp"

namespace probemon::runtime {

AsyncControlPointBase::AsyncControlPointBase(
    AsyncUdpTransport& transport, net::NodeId device,
    const core::TimeoutConfig& timeouts, Callbacks callbacks)
    : transport_(transport),
      device_(device),
      timeouts_(timeouts),
      callbacks_(std::move(callbacks)) {
  timeouts_.validate();
  id_ = transport_.attach([this](const net::Message& msg) { handle(msg); });
}

AsyncControlPointBase::~AsyncControlPointBase() { stop(); }

void AsyncControlPointBase::start(double initial_jitter_s) {
  if (started_ || stopped_) return;
  started_ = true;
  if (initial_jitter_s > 0) {
    timer_ = transport_.loop().timers().schedule_after(
        initial_jitter_s, [this] { begin_cycle(); });
  } else {
    begin_cycle();
  }
}

void AsyncControlPointBase::stop() {
  if (stopped_) return;
  stopped_ = true;
  disarm();
  awaiting_reply_ = false;
  transport_.detach(id_);
}

void AsyncControlPointBase::disarm() {
  if (timer_.valid()) {
    transport_.loop().timers().cancel(timer_);
    timer_ = des::EventId{};
  }
}

void AsyncControlPointBase::begin_cycle() {
  timer_ = des::EventId{};
  if (stopped_) return;
  ++cycle_;
  attempt_ = 0;
  awaiting_reply_ = true;
  send_attempt();
}

void AsyncControlPointBase::send_attempt() {
  probes_sent_.fetch_add(1, std::memory_order_relaxed);
  sent_at_ = transport_.loop().now();
  if (attempt_ == 0) {
    cycle_start_ = sent_at_;
    if (callbacks_.on_cycle_trace) {
      trace_.cp = id_;
      trace_.device = device_;
      trace_.cycle = cycle_;
      trace_.start = sent_at_;
      trace_.rtt = 0.0;
      trace_.sends.clear();
    }
  }
  if (callbacks_.on_cycle_trace) trace_.sends.push_back(sent_at_);

  net::Message probe;
  probe.kind = net::MessageKind::kProbe;
  probe.from = id_;
  probe.to = device_;
  probe.cycle = cycle_;
  probe.attempt = static_cast<std::uint8_t>(attempt_);
  transport_.send(probe);

  const double deadline =
      sent_at_ + (attempt_ == 0 ? timeouts_.tof : timeouts_.tos);
  timer_ = transport_.loop().timers().schedule_at(deadline,
                                                  [this] { on_timeout(); });
}

void AsyncControlPointBase::on_timeout() {
  timer_ = des::EventId{};
  if (stopped_ || !awaiting_reply_) return;
  if (attempt_ < timeouts_.max_retransmissions) {
    ++attempt_;
    send_attempt();
    return;
  }
  declare_absent();
}

void AsyncControlPointBase::handle(const net::Message& msg) {
  if (msg.kind != net::MessageKind::kReply || msg.from != device_) return;
  // Stale replies — an older cycle's retransmission answered late, or a
  // reply after absence was declared — are dropped, same as the Rt CP.
  if (stopped_ || !awaiting_reply_ || msg.cycle != cycle_) return;
  disarm();
  awaiting_reply_ = false;

  const double now = transport_.loop().now();
  // Same observation rule as the DES and Rt CPs: a clean success uses
  // the reply arrival instant, a retransmitted success the send time.
  const double t_obs = attempt_ == 0 ? now : sent_at_;
  const double rtt = now - sent_at_;
  const double delay = next_delay(msg, t_obs);
  const auto attempts = static_cast<std::uint8_t>(attempt_ + 1);

  current_delay_.store(delay, std::memory_order_relaxed);
  device_present_.store(true, std::memory_order_relaxed);
  cycles_succeeded_.fetch_add(1, std::memory_order_relaxed);

  if (callbacks_.on_cycle) {
    CycleInfo info;
    info.success = true;
    info.start = cycle_start_;
    info.end = now;
    info.rtt = rtt;
    info.next_delay = delay;
    info.attempts = attempts;
    callbacks_.on_cycle(info);
  }
  if (callbacks_.on_cycle_trace) {
    trace_.end = now;
    trace_.attempts = attempts;
    trace_.success = true;
    trace_.rtt = rtt;
    callbacks_.on_cycle_trace(trace_);
  }
  if (callbacks_.on_cycle_success) callbacks_.on_cycle_success(now, delay);
  if (stopped_) return;  // a callback stopped this CP

  timer_ = transport_.loop().timers().schedule_after(
      delay, [this] { begin_cycle(); });
}

void AsyncControlPointBase::declare_absent() {
  awaiting_reply_ = false;
  const double now = transport_.loop().now();
  const auto attempts = static_cast<std::uint8_t>(attempt_ + 1);

  device_present_.store(false, std::memory_order_relaxed);
  cycles_failed_.fetch_add(1, std::memory_order_relaxed);

  if (callbacks_.on_cycle) {
    CycleInfo info;
    info.success = false;
    info.start = cycle_start_;
    info.end = now;
    info.attempts = attempts;
    callbacks_.on_cycle(info);
  }
  if (callbacks_.on_cycle_trace) {
    trace_.end = now;
    trace_.attempts = attempts;
    trace_.success = false;
    trace_.rtt = 0.0;
    callbacks_.on_cycle_trace(trace_);
  }
  if (callbacks_.on_absent) callbacks_.on_absent(device_, now);
  // Monitoring ends here — no timer re-armed (the protocol's CP stops
  // probing an absent device; re-watch to resume).
}

AsyncSappControlPoint::AsyncSappControlPoint(AsyncUdpTransport& transport,
                                             net::NodeId device,
                                             core::SappCpConfig config,
                                             Callbacks callbacks)
    : AsyncControlPointBase(transport, device, config.timeouts,
                            std::move(callbacks)),
      config_(config),
      adaptation_(config_) {
  config_.validate();
}

double AsyncSappControlPoint::next_delay(const net::Message& reply,
                                         double t_obs) {
  return adaptation_.observe(reply.pc, t_obs);
}

AsyncDcppControlPoint::AsyncDcppControlPoint(AsyncUdpTransport& transport,
                                             net::NodeId device,
                                             core::DcppCpConfig config,
                                             Callbacks callbacks)
    : AsyncControlPointBase(transport, device, config.timeouts,
                            std::move(callbacks)),
      config_(config) {
  config_.validate();
}

double AsyncDcppControlPoint::next_delay(const net::Message& reply,
                                         double /*t_obs*/) {
  return reply.grant_delay < 0 ? 0.0 : reply.grant_delay;
}

}  // namespace probemon::runtime
