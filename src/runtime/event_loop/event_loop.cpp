#include "runtime/event_loop/event_loop.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#ifdef PROBEMON_CHECKED
#include <cstdio>
#include <cstdlib>
#endif

namespace probemon::runtime {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("EventLoop: fcntl(O_NONBLOCK)");
  }
}

}  // namespace

EventLoop::EventLoop(Config config) : config_(config) {
#ifdef __linux__
  poll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (poll_fd_ < 0) throw_errno("EventLoop: epoll_create1");
  wake_fds_[0] = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fds_[0] < 0) throw_errno("EventLoop: eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fds_[0];
  if (::epoll_ctl(poll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev) < 0) {
    throw_errno("EventLoop: epoll_ctl(wake)");
  }
#else
  if (::pipe(wake_fds_) < 0) throw_errno("EventLoop: pipe");
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);
#endif
}

EventLoop::~EventLoop() {
  stop();
  if (poll_fd_ >= 0) ::close(poll_fd_);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

void EventLoop::add_fd(int fd, FdHandler handler) {
#ifdef PROBEMON_CHECKED
  if (running() && !on_loop_thread()) {
    std::fprintf(stderr, "EventLoop::add_fd off the loop thread\n");
    std::abort();
  }
#endif
  set_nonblocking(fd);
  handlers_[fd] = std::move(handler);
#ifdef __linux__
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(poll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    handlers_.erase(fd);
    throw_errno("EventLoop: epoll_ctl(add)");
  }
#endif
}

void EventLoop::remove_fd(int fd) {
#ifdef PROBEMON_CHECKED
  if (running() && !on_loop_thread()) {
    std::fprintf(stderr, "EventLoop::remove_fd off the loop thread\n");
    std::abort();
  }
#endif
  if (handlers_.erase(fd) == 0) return;
#ifdef __linux__
  ::epoll_ctl(poll_fd_, EPOLL_CTL_DEL, fd, nullptr);  // best effort
#endif
}

std::uint64_t EventLoop::add_flush_hook(Task hook) {
  const std::uint64_t handle = next_hook_id_++;
  flush_hooks_.emplace_back(handle, std::move(hook));
  return handle;
}

void EventLoop::remove_flush_hook(std::uint64_t handle) {
  for (auto it = flush_hooks_.begin(); it != flush_hooks_.end(); ++it) {
    if (it->first == handle) {
      flush_hooks_.erase(it);
      return;
    }
  }
}

void EventLoop::post(Task task) {
  bool queued = false;
  {
    util::MutexLock lock(task_mutex_);
    if (accepting_tasks_) {
      tasks_.push_back(std::move(task));
      queued = true;
    }
  }
  if (queued) {
    wake();
    return;
  }
  // Loop fully stopped: run inline on the caller so shutdown-ordered
  // teardown (e.g. AsyncPresenceService dtor) never strands work.
  task();
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
}

void EventLoop::wake() {
#ifdef __linux__
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[0], &one, sizeof(one));
#else
  const char byte = 'w';
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
#endif
}

void EventLoop::drain_tasks() {
  std::vector<Task> batch;
  {
    util::MutexLock lock(task_mutex_);
    batch.swap(tasks_);
  }
  for (auto& task : batch) task();
  if (!batch.empty()) {
    tasks_run_.fetch_add(batch.size(), std::memory_order_relaxed);
  }
}

void EventLoop::dispatch(int fd, std::uint32_t events) {
  if (fd == wake_fds_[0]) {
    // Drain the wake signal; the work it announces (tasks, stop flag)
    // is picked up by the surrounding iteration.
#ifdef __linux__
    std::uint64_t value = 0;
    while (::read(wake_fds_[0], &value, sizeof(value)) > 0) {
    }
#else
    char buf[64];
    while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
    }
#endif
    return;
  }
  auto it = handlers_.find(fd);
  // A handler earlier in this batch may have removed the fd.
  if (it == handlers_.end()) return;
  fd_dispatches_.fetch_add(1, std::memory_order_relaxed);
  it->second(events);
}

void EventLoop::run_iteration(bool& saw_stop) {
  drain_tasks();

  const std::uint64_t fired = timers_.poll();
  if (fired != 0) timers_fired_.fetch_add(fired, std::memory_order_relaxed);

  for (auto& [handle, hook] : flush_hooks_) hook();
  timers_pending_.store(timers_.pending_count(), std::memory_order_relaxed);

  if (stop_requested_.load(std::memory_order_acquire)) {
    saw_stop = true;
    return;
  }

  int timeout = timers_.timeout_ms(timers_.now(), config_.max_wait_ms);
  if (timeout < 0) timeout = config_.max_wait_ms;

#ifdef __linux__
  // Scratch batch reused across iterations — no per-wakeup allocation.
  static thread_local std::vector<epoll_event> events;
  events.resize(static_cast<std::size_t>(config_.max_fd_events));
  const int n =
      ::epoll_wait(poll_fd_, events.data(), config_.max_fd_events, timeout);
  wakeups_.fetch_add(1, std::memory_order_relaxed);
  if (n < 0) {
    if (errno == EINTR) return;
    throw_errno("EventLoop: epoll_wait");
  }
  for (int i = 0; i < n; ++i) {
    dispatch(events[i].data.fd, events[i].events);
  }
#else
  std::vector<pollfd> fds;
  fds.reserve(handlers_.size() + 1);
  fds.push_back({wake_fds_[0], POLLIN, 0});
  for (const auto& [fd, handler] : handlers_) {
    fds.push_back({fd, POLLIN, 0});
  }
  const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout);
  wakeups_.fetch_add(1, std::memory_order_relaxed);
  if (n < 0) {
    if (errno == EINTR) return;
    throw_errno("EventLoop: poll");
  }
  for (const auto& p : fds) {
    if (p.revents != 0) dispatch(p.fd, static_cast<std::uint32_t>(p.revents));
  }
#endif
}

void EventLoop::run() {
  {
    util::MutexLock lock(task_mutex_);
    accepting_tasks_ = true;
  }
  stop_requested_.store(false, std::memory_order_release);
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  running_.store(true, std::memory_order_release);

  bool saw_stop = false;
  while (!saw_stop) {
    run_iteration(saw_stop);
  }

  // Shutdown: close the task queue and run whatever raced in, so every
  // accepted post() executes on the loop thread.
  std::vector<Task> tail;
  {
    util::MutexLock lock(task_mutex_);
    accepting_tasks_ = false;
    tail.swap(tasks_);
  }
  for (auto& task : tail) task();
  if (!tail.empty()) {
    tasks_run_.fetch_add(tail.size(), std::memory_order_relaxed);
  }
  timers_pending_.store(timers_.pending_count(), std::memory_order_relaxed);

  running_.store(false, std::memory_order_release);
  loop_thread_.store(std::thread::id{}, std::memory_order_release);
}

void EventLoop::start() {
  util::MutexLock lock(lifecycle_mutex_);
  if (thread_.joinable()) {
    if (running()) return;  // already started
    thread_.join();         // previous run ended via loop-thread stop()
  }
  thread_ = std::thread([this] { run(); });
  // Make start() synchronous with the loop being live: post() before
  // running_ flips would still be picked up (accepting_tasks_ opens in
  // run()), but tests and callers read running() right after start().
  while (!running() && !stop_requested_.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_release);
  wake();
  if (on_loop_thread()) {
    // Called from a loop callback: the loop exits after this iteration;
    // the join happens in the destructor or the next start().
    return;
  }
  util::MutexLock lock(lifecycle_mutex_);
  if (thread_.joinable() &&
      std::this_thread::get_id() != thread_.get_id()) {
    thread_.join();
  }
}

void EventLoop::instrument(telemetry::Registry& registry,
                           const std::string& loop_name) {
  const telemetry::Labels labels{{"loop", loop_name}};
  registry.counter_callback(
      "probemon_loop_wakeups_total",
      [this] { return static_cast<double>(wakeups()); },
      "Event-loop scheduler wakeups (epoll_wait returns)", labels);
  registry.counter_callback(
      "probemon_loop_fd_dispatches_total",
      [this] { return static_cast<double>(fd_dispatches()); },
      "Readable-fd handler dispatches", labels);
  registry.counter_callback(
      "probemon_loop_tasks_total",
      [this] { return static_cast<double>(tasks_run()); },
      "Cross-thread tasks executed on the loop", labels);
  registry.counter_callback(
      "probemon_loop_timers_fired_total",
      [this] { return static_cast<double>(timers_fired()); },
      "Wall-clock wheel timers fired", labels);
  registry.gauge_callback(
      "probemon_loop_timers_pending",
      [this] { return static_cast<double>(timers_pending()); },
      "Timers currently armed on the loop's wheel", labels);
}

}  // namespace probemon::runtime
