// Async devices: the RtDevice reply logic ported to the event loop.
//
// Same protocol behaviour as RtSappDevice / RtDcppDevice — SAPP bumps
// its probe counter per probe, DCPP grants Δ = max{δ_min, d_min−(nt−t)}
// — but loop-confined and lock-free: the reactor's single thread owns
// all device state, so a probe is handled with zero mutex traffic and
// zero allocation, which is what lets one process answer for 10^5
// endpoints. The only cross-thread surface is go_silent()/come_back()
// (atomic flag, so tests and demos can kill a device from the main
// thread) and the scrape counters.
//
// Deliberately omitted vs. RtDeviceBase: the trailing-window
// experienced-load deque (a per-device std::deque is exactly the kind
// of per-endpoint cost this runtime exists to avoid; the transport's
// aggregate counters and the loop histograms cover the load story at
// scale).
#pragma once

#include <atomic>
#include <cstdint>

#include "core/config.hpp"
#include "runtime/event_loop/async_udp.hpp"
#include "telemetry/registry.hpp"

namespace probemon::runtime {

class AsyncDeviceBase {
 public:
  /// Attaches to `transport` (loop-confined, like all transport calls).
  explicit AsyncDeviceBase(AsyncUdpTransport& transport);
  virtual ~AsyncDeviceBase();

  AsyncDeviceBase(const AsyncDeviceBase&) = delete;
  AsyncDeviceBase& operator=(const AsyncDeviceBase&) = delete;

  net::NodeId id() const noexcept { return id_; }

  /// Crash-style departure: stop answering (stays attached). Safe from
  /// any thread.
  void go_silent() noexcept {
    present_.store(false, std::memory_order_relaxed);
  }
  void come_back() noexcept {
    present_.store(true, std::memory_order_relaxed);
  }
  bool present() const noexcept {
    return present_.load(std::memory_order_relaxed);
  }

  std::uint64_t probes_received() const noexcept {
    return probes_received_.load(std::memory_order_relaxed);
  }

  /// Per-device metrics (device=<id> label):
  /// probemon_device_probes_received_total and the
  /// probemon_device_nominal_load gauge. Per-device series are a
  /// cardinality cost — intended for small fleets and tests, not for
  /// 10^5 endpoints. The device must outlive the registry entries.
  void instrument(telemetry::Registry& registry, double nominal_load);

 protected:
  /// Protocol-specific reply payload; runs on the loop thread.
  virtual void fill_reply(const net::Message& probe, double t,
                          net::Message& reply) = 0;

  /// Detach from the transport (idempotent; loop-confined). Subclass
  /// destructors call this so no handler can virtual-dispatch into a
  /// half-destroyed object.
  void shutdown();

 private:
  void handle(const net::Message& msg);

  AsyncUdpTransport& transport_;
  net::NodeId id_;
  bool detached_ = false;
  std::atomic<bool> present_{true};
  std::atomic<std::uint64_t> probes_received_{0};
};

/// SAPP device: pc += Delta per probe; reply carries pc.
class AsyncSappDevice final : public AsyncDeviceBase {
 public:
  AsyncSappDevice(AsyncUdpTransport& transport, core::SappDeviceConfig config);
  ~AsyncSappDevice() override { shutdown(); }

  std::uint64_t probe_counter() const noexcept {
    return pc_.load(std::memory_order_relaxed);
  }

  using AsyncDeviceBase::instrument;
  void instrument(telemetry::Registry& registry) {
    AsyncDeviceBase::instrument(registry, config_.l_nom);
  }

 protected:
  void fill_reply(const net::Message& probe, double t,
                  net::Message& reply) override;

 private:
  core::SappDeviceConfig config_;
  /// Written on the loop thread, readable from any (tests scrape it).
  std::atomic<std::uint64_t> pc_{0};
  std::uint64_t delta_;
};

/// DCPP device: schedules probers via core::DcppDevice::grant.
class AsyncDcppDevice final : public AsyncDeviceBase {
 public:
  AsyncDcppDevice(AsyncUdpTransport& transport, core::DcppDeviceConfig config);
  ~AsyncDcppDevice() override { shutdown(); }

  /// Next grantable probe instant (loop thread, or stopped loop).
  double next_slot() const noexcept { return nt_; }

  using AsyncDeviceBase::instrument;
  void instrument(telemetry::Registry& registry) {
    AsyncDeviceBase::instrument(registry, config_.l_nom());
  }

 protected:
  void fill_reply(const net::Message& probe, double t,
                  net::Message& reply) override;

 private:
  core::DcppDeviceConfig config_;
  double nt_ = 0.0;  ///< loop-confined
};

}  // namespace probemon::runtime
