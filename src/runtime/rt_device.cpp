#include "runtime/rt_device.hpp"

#include "core/dcpp_device.hpp"

namespace probemon::runtime {

RtDeviceBase::RtDeviceBase(Transport& transport) : transport_(transport) {
  id_ = transport_.attach([this](const net::Message& msg) { handle(msg); });
}

RtDeviceBase::~RtDeviceBase() { shutdown(); }

void RtDeviceBase::shutdown() {
  if (detached_) return;
  detached_ = true;
  transport_.detach(id_);
}

void RtDeviceBase::go_silent() {
  std::lock_guard lock(mutex_);
  present_ = false;
}

void RtDeviceBase::come_back() {
  std::lock_guard lock(mutex_);
  present_ = true;
}

bool RtDeviceBase::present() const {
  std::lock_guard lock(mutex_);
  return present_;
}

std::uint64_t RtDeviceBase::probes_received() const {
  std::lock_guard lock(mutex_);
  return probes_received_;
}

void RtDeviceBase::handle(const net::Message& msg) {
  if (msg.kind != net::MessageKind::kProbe) return;
  net::Message reply;
  {
    std::lock_guard lock(mutex_);
    if (!present_) return;
    ++probes_received_;
    reply.kind = net::MessageKind::kReply;
    reply.from = id_;
    reply.to = msg.from;
    reply.cycle = msg.cycle;
    reply.attempt = msg.attempt;
    fill_reply_locked(msg, transport_.clock().now(), reply);
  }
  transport_.send(reply);
}

RtSappDevice::RtSappDevice(Transport& transport, core::SappDeviceConfig config)
    : RtDeviceBase(transport), config_(config), delta_(config.delta()) {
  config_.validate();
}

std::uint64_t RtSappDevice::probe_counter() const {
  std::lock_guard lock(mutex_);
  return pc_;
}

void RtSappDevice::set_delta(std::uint64_t delta) {
  std::lock_guard lock(mutex_);
  delta_ = delta;
}

void RtSappDevice::fill_reply_locked(const net::Message& /*probe*/,
                                     double /*t*/, net::Message& reply) {
  pc_ += delta_;
  reply.pc = pc_;
}

RtDcppDevice::RtDcppDevice(Transport& transport, core::DcppDeviceConfig config)
    : RtDeviceBase(transport), config_(config) {
  config_.validate();
}

double RtDcppDevice::next_slot() const {
  std::lock_guard lock(mutex_);
  return nt_;
}

void RtDcppDevice::fill_reply_locked(const net::Message& /*probe*/, double t,
                                     net::Message& reply) {
  const double wait = core::DcppDevice::grant(nt_, t, config_);
  nt_ = t + wait;
  reply.grant_delay = wait;
}

}  // namespace probemon::runtime
