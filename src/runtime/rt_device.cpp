#include "runtime/rt_device.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/dcpp_device.hpp"

namespace probemon::runtime {

RtDeviceBase::RtDeviceBase(Transport& transport) : transport_(transport) {
  id_ = transport_.attach([this](const net::Message& msg) { handle(msg); });
}

RtDeviceBase::~RtDeviceBase() { shutdown(); }

void RtDeviceBase::shutdown() {
  if (detached_) return;
  detached_ = true;
  transport_.detach(id_);
}

void RtDeviceBase::go_silent() {
  util::MutexLock lock(mutex_);
  present_ = false;
}

void RtDeviceBase::come_back() {
  util::MutexLock lock(mutex_);
  present_ = true;
}

bool RtDeviceBase::present() const {
  util::MutexLock lock(mutex_);
  return present_;
}

std::uint64_t RtDeviceBase::probes_received() const {
  util::MutexLock lock(mutex_);
  return probes_received_;
}

double RtDeviceBase::experienced_load() const {
  util::MutexLock lock(mutex_);
  const double now = transport_.clock().now();
  std::size_t in_window = 0;
  for (auto it = recent_probe_times_.rbegin();
       it != recent_probe_times_.rend() && *it > now - load_window_; ++it) {
    ++in_window;
  }
  // Before a full window has elapsed, divide by the elapsed time so the
  // estimate is not biased low at startup.
  const double span = std::min(load_window_, now);
  return span > 0 ? static_cast<double>(in_window) / span : 0.0;
}

double RtDeviceBase::load_window() const {
  util::MutexLock lock(mutex_);
  return load_window_;
}

void RtDeviceBase::set_load_window(double seconds) {
  if (!(seconds > 0)) {
    throw std::invalid_argument("set_load_window: seconds > 0");
  }
  util::MutexLock lock(mutex_);
  load_window_ = seconds;
}

void RtDeviceBase::instrument(telemetry::Registry& registry,
                              double nominal_load) {
  const telemetry::Labels labels{{"device", std::to_string(id_)}};
  registry.gauge_callback(
      "probemon_device_experienced_load",
      [this] { return experienced_load(); },
      "Probes/s accepted over the trailing load window (live Fig 5)",
      labels);
  registry.gauge("probemon_device_nominal_load",
                 "Protocol nominal load cap L_nom (probes/s)", labels)
      .set(nominal_load);
  registry.counter_callback(
      "probemon_device_probes_received_total",
      [this] { return static_cast<double>(probes_received()); },
      "Probes accepted by the device", labels);
}

void RtDeviceBase::handle(const net::Message& msg) {
  if (msg.kind != net::MessageKind::kProbe) return;
  net::Message reply;
  {
    util::MutexLock lock(mutex_);
    if (!present_) return;
    ++probes_received_;
    const double now = transport_.clock().now();
    recent_probe_times_.push_back(now);
    while (!recent_probe_times_.empty() &&
           recent_probe_times_.front() <= now - load_window_) {
      recent_probe_times_.pop_front();
    }
    reply.kind = net::MessageKind::kReply;
    reply.from = id_;
    reply.to = msg.from;
    reply.cycle = msg.cycle;
    reply.attempt = msg.attempt;
    fill_reply_locked(msg, transport_.clock().now(), reply);
  }
  transport_.send(reply);
}

RtSappDevice::RtSappDevice(Transport& transport, core::SappDeviceConfig config)
    : RtDeviceBase(transport), config_(config), delta_(config.delta()) {
  config_.validate();
}

std::uint64_t RtSappDevice::probe_counter() const {
  util::MutexLock lock(mutex_);
  return pc_;
}

void RtSappDevice::set_delta(std::uint64_t delta) {
  util::MutexLock lock(mutex_);
  delta_ = delta;
}

void RtSappDevice::fill_reply_locked(const net::Message& /*probe*/,
                                     double /*t*/, net::Message& reply) {
  pc_ += delta_;
  reply.pc = pc_;
}

RtDcppDevice::RtDcppDevice(Transport& transport, core::DcppDeviceConfig config)
    : RtDeviceBase(transport), config_(config) {
  config_.validate();
}

double RtDcppDevice::next_slot() const {
  util::MutexLock lock(mutex_);
  return nt_;
}

void RtDcppDevice::fill_reply_locked(const net::Message& /*probe*/, double t,
                                     net::Message& reply) {
  const double wait = core::DcppDevice::grant(nt_, t, config_);
  nt_ = t + wait;
  reply.grant_delay = wait;
}

}  // namespace probemon::runtime
