#include "runtime/presence_service.hpp"

#include <algorithm>
#include <utility>

namespace probemon::runtime {

const char* to_string(Presence presence) noexcept {
  switch (presence) {
    case Presence::kUnknown: return "unknown";
    case Presence::kPresent: return "present";
    case Presence::kAbsent: return "absent";
  }
  return "?";
}

PresenceService::PresenceService(Transport& transport,
                                 TelemetryOptions telemetry)
    : transport_(transport), telemetry_(telemetry) {
  if (telemetry_.registry) {
    auto& r = *telemetry_.registry;
    transitions_present_ =
        &r.counter("probemon_presence_transitions_total",
                   "Presence state transitions observed by the service",
                   {{"state", "present"}});
    transitions_absent_ = &r.counter("probemon_presence_transitions_total", "",
                                     {{"state", "absent"}});
    cycles_success_ =
        &r.counter("probemon_watch_cycles_total",
                   "Completed probe cycles across all watches",
                   {{"result", "success"}});
    cycles_failure_ = &r.counter("probemon_watch_cycles_total", "",
                                 {{"result", "failure"}});
    detection_latency_ = &r.histogram(
        "probemon_detection_latency_seconds",
        telemetry::Histogram::exponential_buckets(0.01, 2.0, 11),
        "First unanswered probe to absence declaration");
    watches_gauge_ = &r.gauge("probemon_watches", "Currently watched devices");
  }
}

PresenceService::~PresenceService() {
  // Move the watches out so CP threads join without the lock held
  // (their callbacks may be blocked on it).
  std::unordered_map<net::NodeId, Watch> doomed;
  {
    util::MutexLock lock(mutex_);
    doomed = std::move(watches_);
    watches_.clear();
    subscribers_.clear();
  }
}

std::uint64_t PresenceService::subscribe(EventCallback callback) {
  util::MutexLock lock(mutex_);
  const std::uint64_t token = next_token_++;
  subscribers_.emplace(token, std::move(callback));
  return token;
}

void PresenceService::unsubscribe(std::uint64_t token) {
  util::MutexLock lock(mutex_);
  subscribers_.erase(token);
}

RtControlPointBase::Callbacks PresenceService::make_callbacks(
    net::NodeId device) {
  RtControlPointBase::Callbacks callbacks;
  callbacks.on_absent = [this, device](net::NodeId, double t) {
    on_transition(device, Presence::kAbsent, t);
  };
  callbacks.on_cycle_success = [this, device](double t, double) {
    on_transition(device, Presence::kPresent, t);
  };
  if (!telemetry_.registry && !telemetry_.tracer && !telemetry_.auditor) {
    callbacks.on_cycle_trace =
        [this, device](const telemetry::ProbeCycleTrace& trace) {
          on_cycle_for_watch(device, trace);
        };
    return callbacks;
  }

  // Per-watch instances are registered once here (watch time) so the
  // per-cycle path below never touches the registry map.
  telemetry::Counter* probes = nullptr;
  telemetry::Counter* retransmissions = nullptr;
  telemetry::Histogram* rtt = nullptr;
  if (telemetry_.registry) {
    auto& r = *telemetry_.registry;
    const telemetry::Labels labels{{"device", std::to_string(device)}};
    probes = &r.counter("probemon_watch_probes_sent_total",
                        "Probes transmitted for this watch", labels);
    retransmissions =
        &r.counter("probemon_watch_retransmissions_total",
                   "Probe retransmissions for this watch", labels);
    rtt = &r.histogram(
        "probemon_watch_rtt_seconds",
        telemetry::Histogram::exponential_buckets(0.0005, 2.0, 11),
        "Probe send to reply acceptance latency", labels);
  }
  callbacks.on_cycle_trace =
      [this, device, probes, retransmissions,
       rtt](const telemetry::ProbeCycleTrace& trace) {
        on_cycle_for_watch(device, trace);
        if (telemetry_.auditor) telemetry_.auditor->audit_cycle(trace);
        if (telemetry_.tracer) telemetry_.tracer->record(trace);
        if (probes) probes->inc(trace.attempts);
        if (retransmissions && trace.attempts > 1) {
          retransmissions->inc(trace.attempts - 1u);
        }
        if (trace.success) {
          if (rtt) rtt->observe(trace.rtt);
          if (cycles_success_) cycles_success_->inc();
        } else {
          if (cycles_failure_) cycles_failure_->inc();
          if (detection_latency_) {
            detection_latency_->observe(trace.end - trace.start);
          }
        }
      };
  return callbacks;
}

void PresenceService::watch_dcpp(net::NodeId device,
                                 core::DcppCpConfig config) {
  {
    util::MutexLock lock(mutex_);
    if (watches_.contains(device)) return;
  }
  auto cp = std::make_unique<RtDcppControlPoint>(transport_, device, config,
                                                 make_callbacks(device));
  RtControlPointBase* raw = cp.get();
  {
    util::MutexLock lock(mutex_);
    auto [it, inserted] = watches_.try_emplace(device);
    if (!inserted) return;  // raced with another watcher; drop ours
    it->second.cp = std::move(cp);
    if (watches_gauge_) {
      watches_gauge_->set(static_cast<double>(watches_.size()));
    }
  }
  raw->start();
}

void PresenceService::watch_sapp(net::NodeId device,
                                 core::SappCpConfig config) {
  {
    util::MutexLock lock(mutex_);
    if (watches_.contains(device)) return;
  }
  auto cp = std::make_unique<RtSappControlPoint>(transport_, device, config,
                                                 make_callbacks(device));
  RtControlPointBase* raw = cp.get();
  {
    util::MutexLock lock(mutex_);
    auto [it, inserted] = watches_.try_emplace(device);
    if (!inserted) return;
    it->second.cp = std::move(cp);
    if (watches_gauge_) {
      watches_gauge_->set(static_cast<double>(watches_.size()));
    }
  }
  raw->start();
}

void PresenceService::unwatch(net::NodeId device) {
  Watch doomed;
  {
    util::MutexLock lock(mutex_);
    auto it = watches_.find(device);
    if (it == watches_.end()) return;
    doomed = std::move(it->second);
    watches_.erase(it);
    if (watches_gauge_) {
      watches_gauge_->set(static_cast<double>(watches_.size()));
    }
  }
  // Watch (and its CP thread) dies here, outside the lock.
}

void PresenceService::on_cycle_for_watch(
    net::NodeId device, const telemetry::ProbeCycleTrace& trace) {
  util::MutexLock lock(mutex_);
  auto it = watches_.find(device);
  if (it == watches_.end()) return;  // unwatched concurrently
  Watch& watch = it->second;
  if (trace.success) {
    watch.last_rtt = trace.rtt;
    watch.consecutive_failures = trace.attempts > 0 ? trace.attempts - 1u : 0u;
    // current_delay() was updated by the CP before this callback fired,
    // so end-of-cycle + delay is the next cycle's start instant.
    watch.next_probe_due = trace.end + watch.cp->current_delay();
  } else {
    watch.consecutive_failures = trace.attempts;
    watch.next_probe_due = 0.0;  // absence declared: probing stops
  }
}

void PresenceService::on_transition(net::NodeId device, Presence state,
                                    double t) {
  std::vector<EventCallback> to_notify;
  {
    util::MutexLock lock(mutex_);
    auto it = watches_.find(device);
    if (it == watches_.end()) return;       // unwatched concurrently
    if (it->second.state == state) return;  // no transition
    it->second.state = state;
    it->second.last_change = t;
    if (state == Presence::kPresent && transitions_present_) {
      transitions_present_->inc();
    }
    if (state == Presence::kAbsent && transitions_absent_) {
      transitions_absent_->inc();
    }
    to_notify.reserve(subscribers_.size());
    for (const auto& [token, cb] : subscribers_) to_notify.push_back(cb);
  }
  const PresenceEvent event{device, state, t};
  for (const auto& cb : to_notify) cb(event);
}

Presence PresenceService::presence(net::NodeId device) const {
  util::MutexLock lock(mutex_);
  auto it = watches_.find(device);
  return it == watches_.end() ? Presence::kUnknown : it->second.state;
}

std::size_t PresenceService::watch_count() const {
  util::MutexLock lock(mutex_);
  return watches_.size();
}

std::vector<net::NodeId> PresenceService::watched_devices() const {
  util::MutexLock lock(mutex_);
  std::vector<net::NodeId> out;
  out.reserve(watches_.size());
  for (const auto& [id, w] : watches_) out.push_back(id);
  return out;
}

std::vector<PresenceEvent> PresenceService::snapshot() const {
  util::MutexLock lock(mutex_);
  std::vector<PresenceEvent> out;
  out.reserve(watches_.size());
  for (const auto& [id, w] : watches_) {
    out.push_back(PresenceEvent{id, w.state, w.last_change});
  }
  return out;
}

std::vector<PresenceService::WatchInfo> PresenceService::snapshotWatches()
    const {
  util::MutexLock lock(mutex_);
  std::vector<WatchInfo> out;
  out.reserve(watches_.size());
  for (const auto& [id, w] : watches_) {
    WatchInfo info;
    info.device = id;
    info.state = w.state;
    info.last_change = w.last_change;
    info.last_rtt = w.last_rtt;
    info.consecutive_failures = w.consecutive_failures;
    info.probes_sent = w.cp->probes_sent();
    info.cycles_succeeded = w.cp->cycles_succeeded();
    info.cycles_failed = w.cp->cycles_failed();
    info.next_probe_due = w.next_probe_due;
    out.push_back(info);
  }
  std::sort(out.begin(), out.end(),
            [](const WatchInfo& a, const WatchInfo& b) {
              return a.device < b.device;
            });
  return out;
}

PresenceService::Stats PresenceService::stats() const {
  util::MutexLock lock(mutex_);
  Stats s;
  for (const auto& [id, w] : watches_) {
    s.probes_sent += w.cp->probes_sent();
    s.cycles_succeeded += w.cp->cycles_succeeded();
    s.cycles_failed += w.cp->cycles_failed();
  }
  return s;
}

}  // namespace probemon::runtime
