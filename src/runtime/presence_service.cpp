#include "runtime/presence_service.hpp"

#include <utility>

namespace probemon::runtime {

const char* to_string(Presence presence) noexcept {
  switch (presence) {
    case Presence::kUnknown: return "unknown";
    case Presence::kPresent: return "present";
    case Presence::kAbsent: return "absent";
  }
  return "?";
}

PresenceService::PresenceService(Transport& transport)
    : transport_(transport) {}

PresenceService::~PresenceService() {
  // Move the watches out so CP threads join without the lock held
  // (their callbacks may be blocked on it).
  std::unordered_map<net::NodeId, Watch> doomed;
  {
    std::lock_guard lock(mutex_);
    doomed = std::move(watches_);
    watches_.clear();
    subscribers_.clear();
  }
}

std::uint64_t PresenceService::subscribe(EventCallback callback) {
  std::lock_guard lock(mutex_);
  const std::uint64_t token = next_token_++;
  subscribers_.emplace(token, std::move(callback));
  return token;
}

void PresenceService::unsubscribe(std::uint64_t token) {
  std::lock_guard lock(mutex_);
  subscribers_.erase(token);
}

RtControlPointBase::Callbacks PresenceService::make_callbacks(
    net::NodeId device) {
  RtControlPointBase::Callbacks callbacks;
  callbacks.on_absent = [this, device](net::NodeId, double t) {
    on_transition(device, Presence::kAbsent, t);
  };
  callbacks.on_cycle_success = [this, device](double t, double) {
    on_transition(device, Presence::kPresent, t);
  };
  return callbacks;
}

void PresenceService::watch_dcpp(net::NodeId device,
                                 core::DcppCpConfig config) {
  {
    std::lock_guard lock(mutex_);
    if (watches_.contains(device)) return;
  }
  auto cp = std::make_unique<RtDcppControlPoint>(transport_, device, config,
                                                 make_callbacks(device));
  RtControlPointBase* raw = cp.get();
  {
    std::lock_guard lock(mutex_);
    auto [it, inserted] = watches_.try_emplace(device);
    if (!inserted) return;  // raced with another watcher; drop ours
    it->second.cp = std::move(cp);
  }
  raw->start();
}

void PresenceService::watch_sapp(net::NodeId device,
                                 core::SappCpConfig config) {
  {
    std::lock_guard lock(mutex_);
    if (watches_.contains(device)) return;
  }
  auto cp = std::make_unique<RtSappControlPoint>(transport_, device, config,
                                                 make_callbacks(device));
  RtControlPointBase* raw = cp.get();
  {
    std::lock_guard lock(mutex_);
    auto [it, inserted] = watches_.try_emplace(device);
    if (!inserted) return;
    it->second.cp = std::move(cp);
  }
  raw->start();
}

void PresenceService::unwatch(net::NodeId device) {
  Watch doomed;
  {
    std::lock_guard lock(mutex_);
    auto it = watches_.find(device);
    if (it == watches_.end()) return;
    doomed = std::move(it->second);
    watches_.erase(it);
  }
  // Watch (and its CP thread) dies here, outside the lock.
}

void PresenceService::on_transition(net::NodeId device, Presence state,
                                    double t) {
  std::vector<EventCallback> to_notify;
  {
    std::lock_guard lock(mutex_);
    auto it = watches_.find(device);
    if (it == watches_.end()) return;       // unwatched concurrently
    if (it->second.state == state) return;  // no transition
    it->second.state = state;
    it->second.last_change = t;
    to_notify.reserve(subscribers_.size());
    for (const auto& [token, cb] : subscribers_) to_notify.push_back(cb);
  }
  const PresenceEvent event{device, state, t};
  for (const auto& cb : to_notify) cb(event);
}

Presence PresenceService::presence(net::NodeId device) const {
  std::lock_guard lock(mutex_);
  auto it = watches_.find(device);
  return it == watches_.end() ? Presence::kUnknown : it->second.state;
}

std::size_t PresenceService::watch_count() const {
  std::lock_guard lock(mutex_);
  return watches_.size();
}

std::vector<net::NodeId> PresenceService::watched_devices() const {
  std::lock_guard lock(mutex_);
  std::vector<net::NodeId> out;
  out.reserve(watches_.size());
  for (const auto& [id, w] : watches_) out.push_back(id);
  return out;
}

std::vector<PresenceEvent> PresenceService::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<PresenceEvent> out;
  out.reserve(watches_.size());
  for (const auto& [id, w] : watches_) {
    out.push_back(PresenceEvent{id, w.state, w.last_change});
  }
  return out;
}

PresenceService::Stats PresenceService::stats() const {
  std::lock_guard lock(mutex_);
  Stats s;
  for (const auto& [id, w] : watches_) {
    s.probes_sent += w.cp->probes_sent();
    s.cycles_succeeded += w.cp->cycles_succeeded();
    s.cycles_failed += w.cp->cycles_failed();
  }
  return s;
}

}  // namespace probemon::runtime
