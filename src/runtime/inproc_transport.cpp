#include "runtime/inproc_transport.hpp"

#include <stdexcept>

namespace probemon::runtime {

InProcTransport::InProcTransport(InProcTransportConfig config)
    : config_(config), rng_(config.seed) {
  if (!(config_.delay_min >= 0) || !(config_.delay_max >= config_.delay_min)) {
    throw std::invalid_argument("InProcTransport: 0 <= delay_min <= delay_max");
  }
  if (!(config_.loss >= 0 && config_.loss <= 1)) {
    throw std::invalid_argument("InProcTransport: loss in [0,1]");
  }
  worker_ = std::thread([this] { delivery_loop(); });
}

InProcTransport::~InProcTransport() {
  {
    util::MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

net::NodeId InProcTransport::attach(RtHandler handler) {
  if (!handler) throw std::invalid_argument("attach: empty handler");
  util::MutexLock lock(mutex_);
  const net::NodeId id = next_id_++;
  handlers_.emplace(id, std::move(handler));
  return id;
}

void InProcTransport::detach(net::NodeId id) {
  util::MutexLock lock(mutex_);
  handlers_.erase(id);
  // Wait out an in-progress delivery to this node so the caller can
  // safely destroy the handler's target. NOTE: never call detach from
  // inside a handler — it would deadlock on its own delivery.
  while (delivering_to_ == id) cv_.wait(mutex_);
}

void InProcTransport::instrument(telemetry::Registry& registry) {
  const telemetry::Labels labels{{"transport", "inproc"}};
  util::MutexLock lock(mutex_);
  tele_sent_ =
      &registry.counter("probemon_transport_datagrams_sent_total",
                        "Datagrams handed to the transport", labels);
  tele_delivered_ =
      &registry.counter("probemon_transport_datagrams_delivered_total",
                        "Datagrams delivered to a handler", labels);
  tele_dropped_ = &registry.counter(
      "probemon_transport_datagrams_dropped_total",
      "Datagrams lost (injected loss or unknown destination)", labels);
}

void InProcTransport::send(net::Message msg) {
  double delay;
  bool lost;
  {
    util::MutexLock lock(mutex_);
    ++sent_;
    if (tele_sent_) tele_sent_->inc();
    lost = rng_.bernoulli(config_.loss);
    if (lost) {
      ++dropped_;
      if (tele_dropped_) tele_dropped_->inc();
      return;
    }
    delay = rng_.uniform(config_.delay_min, config_.delay_max);
    queue_.push(Pending{clock_.now() + delay, next_seq_++, msg});
  }
  cv_.notify_all();
}

void InProcTransport::delivery_loop() {
  util::ReleasableMutexLock lock(mutex_);
  for (;;) {
    if (stop_) return;
    if (queue_.empty()) {
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      continue;
    }
    const double head = queue_.top().deliver_at;
    if (clock_.now() < head) {
      cv_.wait_until(mutex_, clock_.to_time_point(head));
      continue;
    }
    Pending p = queue_.top();
    queue_.pop();
    auto it = handlers_.find(p.msg.to);
    if (it == handlers_.end()) {
      ++dropped_;
      if (tele_dropped_) tele_dropped_->inc();
      continue;
    }
    RtHandler handler = it->second;  // copy: survives concurrent detach
    delivering_to_ = p.msg.to;
    ++delivered_;
    if (tele_delivered_) tele_delivered_->inc();
    lock.Release();
    handler(p.msg);
    lock.Reacquire();
    delivering_to_ = net::kInvalidNode;
    cv_.notify_all();
  }
}

std::uint64_t InProcTransport::sent_count() const {
  util::MutexLock lock(mutex_);
  return sent_;
}
std::uint64_t InProcTransport::delivered_count() const {
  util::MutexLock lock(mutex_);
  return delivered_;
}
std::uint64_t InProcTransport::dropped_count() const {
  util::MutexLock lock(mutex_);
  return dropped_;
}

}  // namespace probemon::runtime
