// In-process datagram transport with delay and loss injection.
//
// A single delivery thread owns a deadline-ordered queue; send() draws a
// uniform latency from [delay_min, delay_max] and may drop the message
// with probability loss. Handlers run on the delivery thread. detach()
// synchronizes with in-progress deliveries so a node can be destroyed
// safely right after detaching.
#pragma once

#include <cstdint>
#include <queue>
#include <thread>
#include <unordered_map>

#include "runtime/transport.hpp"
#include "telemetry/registry.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::runtime {

struct InProcTransportConfig {
  double delay_min = 0.0001;  ///< one-way latency lower bound (s)
  double delay_max = 0.0005;  ///< one-way latency upper bound (s)
  double loss = 0.0;          ///< iid loss probability
  std::uint64_t seed = 42;
};

class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(InProcTransportConfig config = {});
  ~InProcTransport() override;

  net::NodeId attach(RtHandler handler) override PROBEMON_EXCLUDES(mutex_);
  void detach(net::NodeId id) override PROBEMON_EXCLUDES(mutex_);
  void send(net::Message msg) override PROBEMON_EXCLUDES(mutex_);
  const RtClock& clock() const override { return clock_; }

  std::uint64_t sent_count() const PROBEMON_EXCLUDES(mutex_);
  std::uint64_t delivered_count() const PROBEMON_EXCLUDES(mutex_);
  std::uint64_t dropped_count() const PROBEMON_EXCLUDES(mutex_);

  /// Mirror datagram counts into `registry` (label transport="inproc"):
  /// probemon_transport_datagrams_{sent,delivered,dropped}_total. The
  /// registry must outlive the transport.
  void instrument(telemetry::Registry& registry) PROBEMON_EXCLUDES(mutex_);

 private:
  struct Pending {
    double deliver_at;
    std::uint64_t seq;
    net::Message msg;
    bool operator>(const Pending& other) const {
      if (deliver_at != other.deliver_at) {
        return deliver_at > other.deliver_at;
      }
      return seq > other.seq;
    }
  };

  void delivery_loop() PROBEMON_EXCLUDES(mutex_);

  InProcTransportConfig config_;
  RtClock clock_;
  mutable util::Mutex mutex_{"runtime.InProcTransport"};
  util::CondVar cv_;
  bool stop_ PROBEMON_GUARDED_BY(mutex_) = false;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_
      PROBEMON_GUARDED_BY(mutex_);
  std::unordered_map<net::NodeId, RtHandler> handlers_
      PROBEMON_GUARDED_BY(mutex_);
  net::NodeId next_id_ PROBEMON_GUARDED_BY(mutex_) = 1;
  net::NodeId delivering_to_ PROBEMON_GUARDED_BY(mutex_) = net::kInvalidNode;
  std::uint64_t next_seq_ PROBEMON_GUARDED_BY(mutex_) = 0;
  util::Rng rng_ PROBEMON_GUARDED_BY(mutex_);
  std::uint64_t sent_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::uint64_t delivered_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ PROBEMON_GUARDED_BY(mutex_) = 0;
  telemetry::Counter* tele_sent_ PROBEMON_GUARDED_BY(mutex_) = nullptr;
  telemetry::Counter* tele_delivered_ PROBEMON_GUARDED_BY(mutex_) = nullptr;
  telemetry::Counter* tele_dropped_ PROBEMON_GUARDED_BY(mutex_) = nullptr;
  std::thread worker_;  // last member: starts after everything is ready
};

}  // namespace probemon::runtime
