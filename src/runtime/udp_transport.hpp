// UDP loopback transport: the protocols over real datagram sockets.
//
// Each attached node gets its own UDP socket bound to 127.0.0.1 with an
// ephemeral port; the NodeId doubles as an index into the port table,
// which is exchanged in-process (a deployment would use UPnP discovery
// for that). A single receiver thread polls all sockets and dispatches
// to handlers. Messages travel in a fixed 48-byte big-endian wire
// format (see udp_transport.cpp) — real serialization, real kernel
// buffers, real (if tiny) loopback latency.
//
// This backend exists to back the paper's deployability claim with an
// actual socket path; InProcTransport remains the default for tests
// that need delay/loss injection.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/transport.hpp"
#include "telemetry/registry.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::runtime {

class UdpTransport final : public Transport {
 public:
  UdpTransport();
  ~UdpTransport() override;

  net::NodeId attach(RtHandler handler) override PROBEMON_EXCLUDES(mutex_);
  void detach(net::NodeId id) override PROBEMON_EXCLUDES(mutex_);
  void send(net::Message msg) override PROBEMON_EXCLUDES(mutex_);
  const RtClock& clock() const override { return clock_; }

  std::uint64_t sent_count() const PROBEMON_EXCLUDES(mutex_);
  std::uint64_t delivered_count() const PROBEMON_EXCLUDES(mutex_);
  /// sendto() failures (full socket buffer etc.) — best-effort loss.
  std::uint64_t send_error_count() const PROBEMON_EXCLUDES(mutex_);
  /// Receive-path failures: recv() errors plus truncated or otherwise
  /// undecodable datagrams (anything that arrived but could not be
  /// delivered as a Message).
  std::uint64_t recv_error_count() const PROBEMON_EXCLUDES(mutex_);

  /// Mirror datagram counts into `registry` (label transport="udp"):
  /// probemon_transport_datagrams_{sent,delivered}_total and
  /// probemon_transport_{send,recv}_errors_total. The registry must
  /// outlive the transport.
  void instrument(telemetry::Registry& registry) PROBEMON_EXCLUDES(mutex_);

  /// UDP port of a node's socket (0 if unknown) — exposed for tests.
  std::uint16_t port_of(net::NodeId id) const PROBEMON_EXCLUDES(mutex_);

 private:
  struct Node {
    int fd = -1;
    std::uint16_t port = 0;
    RtHandler handler;
  };

  void receive_loop() PROBEMON_EXCLUDES(mutex_);
  void wake_receiver();
  void count_recv_error() PROBEMON_EXCLUDES(mutex_);

  RtClock clock_;
  mutable util::Mutex mutex_{"runtime.UdpTransport"};
  std::unordered_map<net::NodeId, Node> nodes_ PROBEMON_GUARDED_BY(mutex_);
  /// closed by the receiver thread
  std::vector<int> doomed_fds_ PROBEMON_GUARDED_BY(mutex_);
  net::NodeId next_id_ PROBEMON_GUARDED_BY(mutex_) = 1;
  net::NodeId delivering_to_ PROBEMON_GUARDED_BY(mutex_) = net::kInvalidNode;
  util::CondVar cv_;
  std::atomic<bool> stop_{false};
  int wake_fds_[2] = {-1, -1};  // self-pipe to interrupt poll()
  std::uint64_t sent_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::uint64_t delivered_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::uint64_t send_errors_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::uint64_t recv_errors_ PROBEMON_GUARDED_BY(mutex_) = 0;
  telemetry::Counter* tele_sent_ PROBEMON_GUARDED_BY(mutex_) = nullptr;
  telemetry::Counter* tele_delivered_ PROBEMON_GUARDED_BY(mutex_) = nullptr;
  telemetry::Counter* tele_send_errors_ PROBEMON_GUARDED_BY(mutex_) = nullptr;
  telemetry::Counter* tele_recv_errors_ PROBEMON_GUARDED_BY(mutex_) = nullptr;
  std::thread receiver_;
};

/// Wire codec, exposed for unit tests.
/// Returns the encoded size (always kUdpWireSize).
inline constexpr std::size_t kUdpWireSize = 48;
std::size_t udp_encode(const net::Message& msg,
                       std::uint8_t out[kUdpWireSize]);
/// Returns false if the buffer is malformed (wrong size handled by
/// caller; this checks the kind byte).
bool udp_decode(const std::uint8_t in[kUdpWireSize], std::size_t size,
                net::Message& out);

}  // namespace probemon::runtime
