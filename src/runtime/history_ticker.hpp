// HistoryTicker: the wall-clock driver for TimeSeriesHistory and
// AlertEngine in the threaded runtime.
//
// The history/alert classes are clock-free by design (the no-wall-clock
// lint zone covers src/telemetry/history and src/telemetry/alerts); a
// DES run drives them from a scheduler event, and this ticker drives
// them from a thread at a fixed period for real deployments:
//
//   telemetry::TimeSeriesHistory history(registry);
//   telemetry::AlertEngine alerts(&history);
//   runtime::HistoryTicker ticker(history, &alerts, 1.0);
//   ticker.start();
//
// Each tick calls history.sample(t), then alerts->evaluate(t), then the
// optional on_tick hook (e.g. MetricsCollector::update_presence), with
// t = seconds since start() — the same zero the sampled runtime metrics
// effectively share.
#pragma once

#include <chrono>
#include <functional>
#include <thread>

#include "telemetry/alerts/alert_engine.hpp"
#include "telemetry/history/history.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::runtime {

class HistoryTicker {
 public:
  /// `history` (and `alerts`, when given) must outlive the ticker.
  explicit HistoryTicker(telemetry::TimeSeriesHistory& history,
                         telemetry::AlertEngine* alerts = nullptr,
                         double period_s = 1.0);
  ~HistoryTicker();

  HistoryTicker(const HistoryTicker&) = delete;
  HistoryTicker& operator=(const HistoryTicker&) = delete;

  /// Extra work per tick (after sample + evaluate), called with the
  /// tick time. Set before start().
  void set_on_tick(std::function<void(double)> hook)
      PROBEMON_EXCLUDES(mutex_);

  void start() PROBEMON_EXCLUDES(mutex_);
  /// Stop and join; idempotent, called by the destructor.
  void stop() PROBEMON_EXCLUDES(mutex_);
  bool running() const PROBEMON_EXCLUDES(mutex_);
  std::uint64_t ticks() const PROBEMON_EXCLUDES(mutex_);

 private:
  void run() PROBEMON_EXCLUDES(mutex_);

  telemetry::TimeSeriesHistory& history_;
  telemetry::AlertEngine* alerts_;
  const double period_s_;

  mutable util::Mutex mutex_{"runtime.HistoryTicker"};
  util::CondVar cv_;
  std::function<void(double)> on_tick_ PROBEMON_GUARDED_BY(mutex_);
  bool running_ PROBEMON_GUARDED_BY(mutex_) = false;
  bool stopping_ PROBEMON_GUARDED_BY(mutex_) = false;
  std::uint64_t ticks_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::thread thread_ PROBEMON_GUARDED_BY(mutex_);
};

}  // namespace probemon::runtime
