// HistoryTicker: the wall-clock driver for TimeSeriesHistory and
// AlertEngine in the threaded runtime.
//
// The history/alert classes are clock-free by design (the no-wall-clock
// lint zone covers src/telemetry/history and src/telemetry/alerts); a
// DES run drives them from a scheduler event, and this ticker drives
// them from a thread at a fixed period for real deployments:
//
//   telemetry::TimeSeriesHistory history(registry);
//   telemetry::AlertEngine alerts(&history);
//   runtime::HistoryTicker ticker(history, &alerts, 1.0);
//   ticker.start();
//
// Each tick calls history.sample(t), then alerts->evaluate(t), then the
// optional on_tick hook (e.g. MetricsCollector::update_presence), with
// t = seconds since start() — the same zero the sampled runtime metrics
// effectively share.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "telemetry/alerts/alert_engine.hpp"
#include "telemetry/history/history.hpp"

namespace probemon::runtime {

class HistoryTicker {
 public:
  /// `history` (and `alerts`, when given) must outlive the ticker.
  explicit HistoryTicker(telemetry::TimeSeriesHistory& history,
                         telemetry::AlertEngine* alerts = nullptr,
                         double period_s = 1.0);
  ~HistoryTicker();

  HistoryTicker(const HistoryTicker&) = delete;
  HistoryTicker& operator=(const HistoryTicker&) = delete;

  /// Extra work per tick (after sample + evaluate), called with the
  /// tick time. Set before start().
  void set_on_tick(std::function<void(double)> hook);

  void start();
  /// Stop and join; idempotent, called by the destructor.
  void stop();
  bool running() const;
  std::uint64_t ticks() const;

 private:
  void run();

  telemetry::TimeSeriesHistory& history_;
  telemetry::AlertEngine* alerts_;
  const double period_s_;
  std::function<void(double)> on_tick_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stopping_ = false;
  std::uint64_t ticks_ = 0;
  std::thread thread_;
};

}  // namespace probemon::runtime
