// Wall-clock transport abstraction for the threaded runtime.
//
// The DES substrate demonstrates the protocols' *analysis*; this runtime
// demonstrates their *deployability*: the same protocol logic running on
// real threads against real timeouts ("can be implemented on large
// networks of small computing devices"). Transport implementations
// deliver datagrams asynchronously; handlers are invoked on a transport-
// owned thread and must be quick and thread-safe.
#pragma once

#include <chrono>
#include <functional>

#include "net/message.hpp"

namespace probemon::runtime {

/// Seconds since the transport was created (the runtime's time base).
class RtClock {
 public:
  RtClock() : epoch_(std::chrono::steady_clock::now()) {}
  double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }
  std::chrono::steady_clock::time_point to_time_point(double t) const {
    return epoch_ + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(t));
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

using RtHandler = std::function<void(const net::Message&)>;

class Transport {
 public:
  virtual ~Transport() = default;
  /// Register a handler; returns the node's address.
  virtual net::NodeId attach(RtHandler handler) = 0;
  /// Deregister. After detach returns, the handler will not be invoked
  /// again and may be destroyed.
  virtual void detach(net::NodeId id) = 0;
  /// Fire-and-forget datagram send.
  virtual void send(net::Message msg) = 0;
  /// The transport's clock (shared time base for all nodes).
  virtual const RtClock& clock() const = 0;
};

}  // namespace probemon::runtime
