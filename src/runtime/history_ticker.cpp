#include "runtime/history_ticker.hpp"

#include <stdexcept>

namespace probemon::runtime {

HistoryTicker::HistoryTicker(telemetry::TimeSeriesHistory& history,
                             telemetry::AlertEngine* alerts, double period_s)
    : history_(history), alerts_(alerts), period_s_(period_s) {
  if (!(period_s_ > 0.0)) {
    throw std::invalid_argument("HistoryTicker period must be > 0");
  }
}

HistoryTicker::~HistoryTicker() { stop(); }

void HistoryTicker::set_on_tick(std::function<void(double)> hook) {
  util::MutexLock lock(mutex_);
  if (running_) {
    throw std::logic_error("set_on_tick must be called before start()");
  }
  on_tick_ = std::move(hook);
}

void HistoryTicker::start() {
  util::MutexLock lock(mutex_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { run(); });
}

void HistoryTicker::stop() {
  std::thread thread;
  {
    util::MutexLock lock(mutex_);
    if (!running_) return;
    stopping_ = true;
    thread = std::move(thread_);
  }
  cv_.notify_all();
  if (thread.joinable()) thread.join();
  util::MutexLock lock(mutex_);
  running_ = false;
  stopping_ = false;
}

bool HistoryTicker::running() const {
  util::MutexLock lock(mutex_);
  return running_ && !stopping_;
}

std::uint64_t HistoryTicker::ticks() const {
  util::MutexLock lock(mutex_);
  return ticks_;
}

void HistoryTicker::run() {
  const auto start = std::chrono::steady_clock::now();
  const auto period = std::chrono::duration<double>(period_s_);
  auto next = start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(period);
  for (;;) {
    std::function<void(double)> hook;
    {
      util::MutexLock lock(mutex_);
      while (!stopping_) {
        if (cv_.wait_until(mutex_, next) == std::cv_status::timeout) break;
      }
      if (stopping_) return;
      ++ticks_;
      hook = on_tick_;
    }
    const double t = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    history_.sample(t);
    if (alerts_ != nullptr) alerts_->evaluate(t);
    if (hook) hook(t);
    next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        period);
  }
}

}  // namespace probemon::runtime
