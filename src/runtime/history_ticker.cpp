#include "runtime/history_ticker.hpp"

#include <stdexcept>

namespace probemon::runtime {

HistoryTicker::HistoryTicker(telemetry::TimeSeriesHistory& history,
                             telemetry::AlertEngine* alerts, double period_s)
    : history_(history), alerts_(alerts), period_s_(period_s) {
  if (!(period_s_ > 0.0)) {
    throw std::invalid_argument("HistoryTicker period must be > 0");
  }
}

HistoryTicker::~HistoryTicker() { stop(); }

void HistoryTicker::set_on_tick(std::function<void(double)> hook) {
  std::lock_guard lock(mutex_);
  if (running_) {
    throw std::logic_error("set_on_tick must be called before start()");
  }
  on_tick_ = std::move(hook);
}

void HistoryTicker::start() {
  std::lock_guard lock(mutex_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { run(); });
}

void HistoryTicker::stop() {
  std::thread thread;
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    stopping_ = true;
    thread = std::move(thread_);
  }
  cv_.notify_all();
  if (thread.joinable()) thread.join();
  std::lock_guard lock(mutex_);
  running_ = false;
  stopping_ = false;
}

bool HistoryTicker::running() const {
  std::lock_guard lock(mutex_);
  return running_ && !stopping_;
}

std::uint64_t HistoryTicker::ticks() const {
  std::lock_guard lock(mutex_);
  return ticks_;
}

void HistoryTicker::run() {
  const auto start = std::chrono::steady_clock::now();
  const auto period = std::chrono::duration<double>(period_s_);
  auto next = start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(period);
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      if (cv_.wait_until(lock, next, [this] { return stopping_; })) return;
      ++ticks_;
    }
    const double t = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    history_.sample(t);
    if (alerts_ != nullptr) alerts_->evaluate(t);
    if (on_tick_) on_tick_(t);
    next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        period);
  }
}

}  // namespace probemon::runtime
