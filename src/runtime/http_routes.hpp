// Observability HTTP routes over a running probe runtime.
//
// telemetry::HttpServer knows how to serve a Registry and a
// ProbeCycleTracer; this header adds the runtime-level routes —
// `/watches` (the PresenceService presence table) and `/healthz`
// (liveness plus registry/tracer/service stats) — and bundles the whole
// set behind one call, so an example or embedding application does:
//
//   telemetry::HttpServer server({.port = http_port});
//   runtime::register_observability_routes(
//       server, {&registry, &tracer, &service});
//   server.start();
//
// Routes (all GET, Connection: close):
//   /          route index (text)
//   /metrics   Prometheus text exposition 0.0.4
//   /metrics.json  JSON snapshot of the registry
//   /healthz   liveness JSON
//   /watches   presence table JSON (from snapshotWatches())
//   /trace     probe-cycle ring: JSON, or ?format=chrome for Perfetto
//   /query     one history query: ?expr=rate(name[30])&range=60
//   /alerts    alert engine state JSON, ?state=firing to filter
#pragma once

#include "runtime/event_loop/async_presence.hpp"
#include "runtime/presence_service.hpp"
#include "telemetry/alerts/alert_engine.hpp"
#include "telemetry/history/history.hpp"
#include "telemetry/http_server.hpp"

namespace probemon::runtime {

/// Pointers may be null: routes whose source is missing are simply not
/// registered (a /healthz with partial stats is always registered).
/// Everything referenced must outlive the server.
struct ObservabilitySources {
  /// Any MetricStore (Registry or ShardedRegistry).
  const telemetry::MetricStore* registry = nullptr;
  const telemetry::ProbeCycleTracer* tracer = nullptr;
  const PresenceService* service = nullptr;
  /// The reactor-based service (event_loop/async_presence.hpp); wire
  /// whichever of service/async_service the runtime actually runs —
  /// both feed the same /watches and /healthz shapes.
  const AsyncPresenceService* async_service = nullptr;
  const check::InvariantAuditor* auditor = nullptr;
  const telemetry::TimeSeriesHistory* history = nullptr;
  const telemetry::AlertEngine* alerts = nullptr;
};

/// `/watches`: one JSON object per watch — device id, presence state,
/// last transition instant, last RTT, consecutive failures, probe/cycle
/// tallies and the next probe's due time.
void register_watch_routes(telemetry::HttpServer& server,
                           const PresenceService& service);
void register_watch_routes(telemetry::HttpServer& server,
                           const AsyncPresenceService& service);

/// `/healthz`: {"status":"ok", uptime, requests served, and per-source
/// stats for whichever of registry/tracer/service are wired}.
void register_healthz_route(telemetry::HttpServer& server,
                            ObservabilitySources sources);

/// `/query?expr=E[&range=N]`: evaluate one expression (grammar in
/// telemetry/history/query.hpp) against the sampled history; responds
/// {"expr":E,"fn":...,"range":N,"as_of":T,"value":V} with null for
/// insufficient data, 400 + JSON error on a malformed expr/range.
void register_query_routes(telemetry::HttpServer& server,
                           const telemetry::TimeSeriesHistory& history);

/// `/alerts[?state=firing|pending|resolved|inactive]`: the alert
/// engine's deterministic JSON snapshot (alerts_to_json).
void register_alert_routes(telemetry::HttpServer& server,
                           const telemetry::AlertEngine& alerts);

/// The full route set ("/", /metrics, /metrics.json, /healthz,
/// /watches, /trace, /query, /alerts) for whichever sources are
/// non-null.
void register_observability_routes(telemetry::HttpServer& server,
                                   ObservabilitySources sources);

/// JSON rendering of snapshotWatches() (exposed for tests and for
/// non-HTTP dumps).
std::string watches_to_json(const PresenceService& service);
std::string watches_to_json(const AsyncPresenceService& service);

}  // namespace probemon::runtime
