// Observability HTTP routes over a running probe runtime.
//
// telemetry::HttpServer knows how to serve a Registry and a
// ProbeCycleTracer; this header adds the runtime-level routes —
// `/watches` (the PresenceService presence table) and `/healthz`
// (liveness plus registry/tracer/service stats) — and bundles the whole
// set behind one call, so an example or embedding application does:
//
//   telemetry::HttpServer server({.port = http_port});
//   runtime::register_observability_routes(
//       server, {&registry, &tracer, &service});
//   server.start();
//
// Routes (all GET, Connection: close):
//   /          route index (text)
//   /metrics   Prometheus text exposition 0.0.4
//   /metrics.json  JSON snapshot of the registry
//   /healthz   liveness JSON
//   /watches   presence table JSON (from snapshotWatches())
//   /trace     probe-cycle ring: JSON, or ?format=chrome for Perfetto
#pragma once

#include "runtime/presence_service.hpp"
#include "telemetry/http_server.hpp"

namespace probemon::runtime {

/// Pointers may be null: routes whose source is missing are simply not
/// registered (a /healthz with partial stats is always registered).
/// Everything referenced must outlive the server.
struct ObservabilitySources {
  /// Any MetricStore (Registry or ShardedRegistry).
  const telemetry::MetricStore* registry = nullptr;
  const telemetry::ProbeCycleTracer* tracer = nullptr;
  const PresenceService* service = nullptr;
  const check::InvariantAuditor* auditor = nullptr;
};

/// `/watches`: one JSON object per watch — device id, presence state,
/// last transition instant, last RTT, consecutive failures, probe/cycle
/// tallies and the next probe's due time.
void register_watch_routes(telemetry::HttpServer& server,
                           const PresenceService& service);

/// `/healthz`: {"status":"ok", uptime, requests served, and per-source
/// stats for whichever of registry/tracer/service are wired}.
void register_healthz_route(telemetry::HttpServer& server,
                            ObservabilitySources sources);

/// The full route set ("/", /metrics, /metrics.json, /healthz,
/// /watches, /trace) for whichever sources are non-null.
void register_observability_routes(telemetry::HttpServer& server,
                                   ObservabilitySources sources);

/// JSON rendering of snapshotWatches() (exposed for tests and for
/// non-HTTP dumps).
std::string watches_to_json(const PresenceService& service);

}  // namespace probemon::runtime
