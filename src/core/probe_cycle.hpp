// Bounded-retransmission probe cycle (paper Fig 1).
//
// A cycle: send a probe; wait TOF; on timeout retransmit and wait TOS,
// up to max_retransmissions times; a reply for the current cycle ends it
// successfully, exhaustion ends it unsuccessfully. The FSM is protocol-
// agnostic: SAPP and DCPP CPs differ only in what they do with the reply.
//
// Timing bookkeeping exposed to the owner (needed by SAPP's L_exp rule,
// which uses "the time at which the retransmitted probe has been sent"
// when the first probe went unanswered):
//   * cycle_start_time: when probe attempt 0 was sent,
//   * last_send_time:   when the most recent attempt was sent,
//   * the reply arrival time is the scheduler's now() in on_success.
#pragma once

#include <cstdint>

#include "des/scheduler.hpp"
#include "des/timer.hpp"
#include "net/message.hpp"
#include "util/inline_function.hpp"

namespace probemon::core {

class ProbeCycle {
 public:
  /// Callbacks are SBO InlineFunctions: the probe cycle sits on the DES
  /// hot path, and protocol CPs only ever bind small [this] lambdas.
  struct Callbacks {
    /// Transmit a probe for (cycle, attempt). Must not be empty.
    util::InlineFunction<void(std::uint64_t cycle, std::uint8_t attempt)>
        send_probe;
    /// Cycle ended with an accepted reply.
    util::InlineFunction<void(const net::Message& reply)> on_success;
    /// Cycle ended with all probes unanswered.
    util::InlineFunction<void()> on_failure;
  };

  ProbeCycle(des::Scheduler& scheduler, double tof, double tos,
             int max_retransmissions, Callbacks callbacks);

  ProbeCycle(const ProbeCycle&) = delete;
  ProbeCycle& operator=(const ProbeCycle&) = delete;

  /// Begin a new cycle (sends the first probe immediately).
  /// Must not be called while a cycle is active.
  void start();

  /// Abort the current cycle, if any (no callback fires).
  void abort();

  /// Feed an incoming reply. Returns true if it was accepted (current
  /// cycle, cycle active); stale replies return false and are ignored.
  bool offer_reply(const net::Message& reply);

  bool active() const noexcept { return active_; }
  std::uint64_t cycle() const noexcept { return cycle_; }
  std::uint8_t attempt() const noexcept { return attempt_; }
  double cycle_start_time() const noexcept { return cycle_start_time_; }
  double last_send_time() const noexcept { return last_send_time_; }

  /// Totals over the FSM's lifetime.
  std::uint64_t cycles_started() const noexcept { return cycles_started_; }
  std::uint64_t cycles_succeeded() const noexcept { return cycles_succeeded_; }
  std::uint64_t cycles_failed() const noexcept { return cycles_failed_; }
  std::uint64_t probes_sent() const noexcept { return probes_sent_; }

 private:
  void transmit();
  void on_timeout();

  des::Scheduler& scheduler_;
  double tof_;
  double tos_;
  int max_retransmissions_;
  Callbacks callbacks_;
  des::Timer timer_;

  bool active_ = false;
  std::uint64_t cycle_ = 0;
  std::uint8_t attempt_ = 0;
  double cycle_start_time_ = 0;
  double last_send_time_ = 0;

  std::uint64_t cycles_started_ = 0;
  std::uint64_t cycles_succeeded_ = 0;
  std::uint64_t cycles_failed_ = 0;
  std::uint64_t probes_sent_ = 0;
};

}  // namespace probemon::core
