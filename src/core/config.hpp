// Configuration of the probe protocols, with the paper's parameter values
// as defaults. Every struct validates itself via validate(), throwing
// std::invalid_argument with a descriptive message; builders call this
// before constructing nodes.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace probemon::core {

/// Bounded-retransmission timing shared by both protocols (paper Fig 1).
struct TimeoutConfig {
  /// Timeout after the FIRST probe of a cycle: 2*RTT_max + compute_max.
  double tof = 0.022;
  /// Timeout after each retransmitted probe: RTT_max + compute_max.
  double tos = 0.021;
  /// Max retransmissions after the first probe (paper: 3 => 4 probes).
  int max_retransmissions = 3;

  void validate() const {
    if (!(tof > 0)) throw std::invalid_argument("TimeoutConfig: tof > 0");
    if (!(tos > 0)) throw std::invalid_argument("TimeoutConfig: tos > 0");
    if (max_retransmissions < 0) {
      throw std::invalid_argument("TimeoutConfig: max_retransmissions >= 0");
    }
  }
};

/// Device-side reply computation time: uniform in [min, max]. The paper's
/// timeout calibration implies compute_max = 0.020 s.
struct ComputeConfig {
  double min = 0.001;
  double max = 0.020;

  void validate() const {
    if (!(min >= 0 && max >= min)) {
      throw std::invalid_argument("ComputeConfig: 0 <= min <= max");
    }
  }
};

/// SAPP device parameters (paper section 2).
struct SappDeviceConfig {
  /// Reference constant known to all nodes; must be high. Paper: 1e6.
  double l_ideal = 1e6;
  /// Nominal probe load the device wants to sustain (probes/s). Paper: 10.
  double l_nom = 10.0;
  ComputeConfig compute{};

  // --- Optional overload-control extension (paper: "if the device finds
  // that it is getting too many probes, it can, say, double its value of
  // Delta") -----------------------------------------------------------------
  bool adaptive_delta = false;
  /// Measured load above overload_factor * l_nom doubles Delta;
  /// below l_nom / overload_factor halves it (never below the base value).
  double overload_factor = 1.5;
  /// How often the device re-evaluates its measured load (seconds).
  double adapt_period = 5.0;
  /// Load-measurement window (seconds).
  double adapt_window = 10.0;

  /// Probe-counter increment: Delta = l_ideal / l_nom (paper: 1e5).
  std::uint64_t delta() const {
    return static_cast<std::uint64_t>(l_ideal / l_nom);
  }

  void validate() const {
    compute.validate();
    if (!(l_ideal > 0)) throw std::invalid_argument("Sapp: l_ideal > 0");
    if (!(l_nom > 0)) throw std::invalid_argument("Sapp: l_nom > 0");
    if (!(l_ideal >= l_nom)) {
      throw std::invalid_argument("Sapp: l_ideal >> l_nom required");
    }
    if (delta() == 0) throw std::invalid_argument("Sapp: delta rounds to 0");
    if (adaptive_delta) {
      if (!(overload_factor > 1)) {
        throw std::invalid_argument("Sapp: overload_factor > 1");
      }
      if (!(adapt_period > 0) || !(adapt_window > 0)) {
        throw std::invalid_argument("Sapp: adapt periods > 0");
      }
    }
  }
};

/// SAPP control-point parameters (paper section 2, "Adapting the probing
/// frequency"). Defaults are the values used in the paper's simulations.
struct SappCpConfig {
  TimeoutConfig timeouts{};
  /// Multiplicative delay increase on overload. Paper: 2.
  double alpha_inc = 2.0;
  /// Multiplicative delay decrease on underload. Paper: 3/2.
  double alpha_dec = 1.5;
  /// Load tolerance band: L_ideal/beta <= L_exp <= beta*L_ideal. Paper: 3/2.
  double beta = 1.5;
  /// Reference constant, same value as the device's. Paper: 1e6.
  double l_ideal = 1e6;
  /// Inter-probe-cycle delay bounds. Paper: 0.02 and 10.
  double delta_min = 0.02;
  double delta_max = 10.0;
  /// Delay used for the very first cycle(s), before any L_exp estimate
  /// exists. The paper leaves this open, but its Fig 2 frequency traces
  /// rise from near zero, so CPs evidently start politely at the maximal
  /// delay and work downward; a delta_min start would also stampede a
  /// serial device with 50 probes/s per CP.
  double initial_delay = 10.0;
  /// Feed every reply from the device into the L_exp estimator, not just
  /// the one that completes a probe cycle. The paper states the rule
  /// over successive replies ("The next reply is received at time
  /// t' > t"), and the device answers every probe — so the duplicate
  /// replies produced by a retransmitted cycle form (pc, t) pairs only
  /// milliseconds apart, yielding enormous L_exp spikes that double the
  /// CP's delay. This is a key driver of the starvation ratchet the
  /// paper observes; set false to use only cycle-completing replies.
  bool use_every_reply = true;
  /// Keep probing at delta_max after declaring the device absent (false:
  /// stop, which is what the analysis scenarios do).
  bool continue_after_absence = false;

  void validate() const {
    timeouts.validate();
    if (!(alpha_inc > 1)) throw std::invalid_argument("SappCp: alpha_inc > 1");
    if (!(alpha_dec > 1)) throw std::invalid_argument("SappCp: alpha_dec > 1");
    if (!(beta > 1)) throw std::invalid_argument("SappCp: beta > 1");
    if (!(l_ideal > 0)) throw std::invalid_argument("SappCp: l_ideal > 0");
    if (!(delta_min > 0)) throw std::invalid_argument("SappCp: delta_min > 0");
    if (!(delta_max >= delta_min)) {
      throw std::invalid_argument("SappCp: delta_max >= delta_min");
    }
    if (!(initial_delay >= delta_min && initial_delay <= delta_max)) {
      throw std::invalid_argument(
          "SappCp: initial_delay within [delta_min, delta_max]");
    }
  }
};

/// DCPP device parameters (paper section 4).
struct DcppDeviceConfig {
  /// Min spacing between any two granted probe instants; 1/L_nom.
  /// Paper's analysis: 0.1 (L_nom = 10).
  double delta_min = 0.1;
  /// Min wait granted to a single CP; 1/f_max. Paper's analysis: 0.5.
  double d_min = 0.5;
  /// DCPP's reply is a handful of arithmetic operations ("intrinsic
  /// simplicity ... amenable to implementation in small computing
  /// devices"), so its computation time is two orders of magnitude below
  /// SAPP's 20 ms bound. This keeps the paper's worst case honest: a
  /// 60-CP synchronous join burst (60 * 0.175 ms ~ 11 ms) drains through
  /// the serial device within one TOF, so "every transmitted probe will
  /// eventually be answered" holds without retransmission storms.
  ComputeConfig compute{0.00005, 0.0003};

  double l_nom() const { return 1.0 / delta_min; }
  double f_max() const { return 1.0 / d_min; }

  void validate() const {
    compute.validate();
    if (!(delta_min > 0)) throw std::invalid_argument("Dcpp: delta_min > 0");
    if (!(d_min >= delta_min)) {
      throw std::invalid_argument("Dcpp: d_min >= delta_min");
    }
  }
};

/// DCPP control-point parameters. The delay between cycles comes from the
/// device, so only the retransmission timing and failure policy remain.
struct DcppCpConfig {
  TimeoutConfig timeouts{};
  bool continue_after_absence = false;

  void validate() const { timeouts.validate(); }
};

}  // namespace probemon::core
