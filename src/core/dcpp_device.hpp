// DCPP device (paper section 4, "Device behavior").
//
// Instead of exporting a load estimate, the device *schedules* its
// probers. It remembers nt, the latest instant already handed out; a
// probe arriving at time t is granted the slot
//
//     nt' = max{nt, t} + Delta(nt, t),
//     Delta(nt, t) = max{ delta_min, d_min - (max{nt, t} - t) }
//
// and the reply carries the wait nt' - t. The two constraints this
// encodes (paper (i) and (ii)): consecutive granted slots are >= delta_min
// apart, bounding the device load by L_nom = 1/delta_min; and every CP is
// granted a wait of at least d_min, so no CP probes faster than
// f_max = 1/d_min.
//
// Deviation note: the paper's literal Delta uses (nt - t) unclamped.
// When the schedule is stale (nt << t, e.g. first prober after an idle
// stretch), the literal formula grants d_min + (t - nt) — an unbounded
// wait growing with the idle time, which is clearly not intended (it
// would punish the first CP to find an idle device). We clamp the backlog
// term at zero, i.e. use max{nt, t} inside Delta; for nt >= t — the only
// regime the paper's analysis exercises — the two formulas coincide.
#pragma once

#include <cstdint>

#include "core/device_base.hpp"

namespace probemon::core {

class DcppDevice final : public DeviceBase {
 public:
  DcppDevice(des::Simulation& sim, net::Network& network, EntityArena& arena,
             DcppDeviceConfig config, ProtocolObserver* observer = nullptr);

  const DcppDeviceConfig& config() const noexcept { return config_; }

  /// Latest granted slot instant (the schedule frontier).
  double next_slot() const noexcept { return nt_; }

  /// Pure scheduling function, exposed for property tests:
  /// returns the granted wait for a probe arriving at t given frontier nt,
  /// without mutating state.
  static double grant(double nt, double t, const DcppDeviceConfig& config);

 protected:
  void fill_reply(const net::Message& probe, double t,
                  net::Message& reply) override;

 private:
  DcppDeviceConfig config_;
  double nt_ = 0.0;
};

}  // namespace probemon::core
