// Common device behaviour shared by SAPP and DCPP devices.
//
// A device is attached to the network, answers probes while present, and
// can depart either gracefully (sends bye to recent probers) or silently
// (simply stops answering — the failure mode the probe protocols exist to
// detect). Replies are issued after a uniform computation delay, matching
// the "maximal computation time of the device" in the paper's timeout
// calibration.
//
// The device also tracks the last two *distinct* CPs that probed it and
// piggybacks their ids on every reply (paper section 2) — this is the
// overlay the dissemination extension uses.
#pragma once

#include <array>
#include <cstdint>
#include <deque>

#include "core/config.hpp"
#include "core/observer.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"

namespace probemon::core {

class DeviceBase : public net::INetworkClient {
 public:
  DeviceBase(des::Simulation& sim, net::Network& network,
             ComputeConfig compute, ProtocolObserver* observer);
  ~DeviceBase() override;

  DeviceBase(const DeviceBase&) = delete;
  DeviceBase& operator=(const DeviceBase&) = delete;

  net::NodeId id() const noexcept { return id_; }
  bool present() const noexcept { return present_; }

  /// Crash-style departure: the device stays attached (so probes are
  /// still *delivered*) but never answers again.
  void go_silent();

  /// Graceful departure: sends bye to the last known probers, then goes
  /// silent.
  void leave_gracefully();

  /// Rejoin after a silent period.
  void come_back();

  /// Total probes accepted since creation (including ones still queued
  /// for processing).
  std::uint64_t probes_received() const noexcept { return probes_received_; }

  /// Probes waiting for the device's single-threaded processor.
  std::size_t service_queue_length() const noexcept {
    return service_queue_.size();
  }

  /// Ids of the last two distinct probers (kInvalidNode when unknown).
  const std::array<net::NodeId, 2>& last_probers() const noexcept {
    return last_probers_;
  }

  // INetworkClient:
  void on_message(const net::Message& msg) final;

 protected:
  /// Fill the protocol-specific reply payload for a probe that arrived at
  /// time `t`. The base class has already prepared kind/from/to/cycle/
  /// attempt/last_probers.
  virtual void fill_reply(const net::Message& probe, double t,
                          net::Message& reply) = 0;

  /// Hook for subclasses needing per-probe state (e.g. load measurement).
  virtual void on_probe_accepted(const net::Message& /*probe*/,
                                 double /*t*/) {}

  des::Simulation& sim() noexcept { return sim_; }
  net::Network& network() noexcept { return network_; }
  ProtocolObserver* observer() noexcept { return observer_; }
  void notify_delta_changed(std::uint64_t delta);

 private:
  void record_prober(net::NodeId cp);
  void start_service();

  des::Simulation& sim_;
  net::Network& network_;
  ComputeConfig compute_;
  ProtocolObserver* observer_;
  util::Rng compute_rng_;
  net::NodeId id_ = net::kInvalidNode;
  bool present_ = true;
  std::uint64_t probes_received_ = 0;
  std::deque<net::Message> service_queue_;
  /// Reply for the in-flight computation. The device is serial (busy_
  /// guards a single outstanding completion event), so one slot suffices
  /// — and it keeps the completion lambda down to [this, epoch], inside
  /// the scheduler callback's inline buffer.
  net::Message pending_reply_;
  bool busy_ = false;
  std::uint64_t service_epoch_ = 0;  ///< bumped on go_silent
  std::array<net::NodeId, 2> last_probers_{net::kInvalidNode,
                                           net::kInvalidNode};
};

}  // namespace probemon::core
