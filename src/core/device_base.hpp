// Common device behaviour shared by SAPP and DCPP devices.
//
// A device is attached to the network, answers probes while present, and
// can depart either gracefully (sends bye to recent probers) or silently
// (simply stops answering — the failure mode the probe protocols exist to
// detect). Replies are issued after a uniform computation delay, matching
// the "maximal computation time of the device" in the paper's timeout
// calibration.
//
// The device also tracks the last two *distinct* CPs that probed it and
// piggybacks their ids on every reply (paper section 2) — this is the
// overlay the dissemination extension uses.
//
// All mutable protocol state (presence, probe counters, the service
// queue, the pending reply) lives in a `core::EntityArena` slab addressed
// by a generation-tagged `DeviceId`; this object is a thin behaviour
// wrapper, so a million devices share contiguous storage instead of a
// deque and heap node each.
#pragma once

#include <array>
#include <cstdint>

#include "core/config.hpp"
#include "core/entity_arena.hpp"
#include "core/observer.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"

namespace probemon::core {

class DeviceBase : public net::INetworkClient {
 public:
  DeviceBase(des::Simulation& sim, net::Network& network, EntityArena& arena,
             ComputeConfig compute, ProtocolObserver* observer);
  ~DeviceBase() override;

  DeviceBase(const DeviceBase&) = delete;
  DeviceBase& operator=(const DeviceBase&) = delete;

  net::NodeId id() const noexcept { return id_; }
  /// Arena handle for this device's state slab.
  DeviceId entity_id() const noexcept { return did_; }
  bool present() const noexcept { return state().present; }

  /// Crash-style departure: the device stays attached (so probes are
  /// still *delivered*) but never answers again.
  void go_silent();

  /// Graceful departure: sends bye to the last known probers, then goes
  /// silent.
  void leave_gracefully();

  /// Rejoin after a silent period.
  void come_back();

  /// Total probes accepted since creation (including ones still queued
  /// for processing).
  std::uint64_t probes_received() const noexcept {
    return state().probes_received;
  }

  /// Probes waiting for the device's single-threaded processor.
  std::size_t service_queue_length() const noexcept {
    return state().queue_len;
  }

  /// Ids of the last two distinct probers (kInvalidNode when unknown).
  const std::array<net::NodeId, 2>& last_probers() const noexcept {
    return state().last_probers;
  }

  // INetworkClient:
  void on_message(const net::Message& msg) final;

 protected:
  /// Fill the protocol-specific reply payload for a probe that arrived at
  /// time `t`. The base class has already prepared kind/from/to/cycle/
  /// attempt/last_probers.
  virtual void fill_reply(const net::Message& probe, double t,
                          net::Message& reply) = 0;

  /// Hook for subclasses needing per-probe state (e.g. load measurement).
  virtual void on_probe_accepted(const net::Message& /*probe*/,
                                 double /*t*/) {}

  des::Simulation& sim() noexcept { return sim_; }
  net::Network& network() noexcept { return network_; }
  ProtocolObserver* observer() noexcept { return observer_; }
  void notify_delta_changed(std::uint64_t delta);

 private:
  DeviceState& state() noexcept { return arena_.device(did_); }
  const DeviceState& state() const noexcept { return arena_.device(did_); }
  void record_prober(DeviceState& st, net::NodeId cp);
  void start_service();

  des::Simulation& sim_;
  net::Network& network_;
  EntityArena& arena_;
  ComputeConfig compute_;
  ProtocolObserver* observer_;
  util::Rng compute_rng_;
  DeviceId did_;
  net::NodeId id_ = net::kInvalidNode;
};

}  // namespace probemon::core
