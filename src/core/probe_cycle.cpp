#include "core/probe_cycle.hpp"

#include <stdexcept>

#include "check/contract.hpp"

namespace probemon::core {

ProbeCycle::ProbeCycle(des::Scheduler& scheduler, double tof, double tos,
                       int max_retransmissions, Callbacks callbacks)
    : scheduler_(scheduler),
      tof_(tof),
      tos_(tos),
      max_retransmissions_(max_retransmissions),
      callbacks_(std::move(callbacks)),
      timer_(scheduler, [this] { on_timeout(); }) {
  if (!(tof > 0) || !(tos > 0)) {
    throw std::invalid_argument("ProbeCycle: timeouts must be > 0");
  }
  if (max_retransmissions < 0) {
    throw std::invalid_argument("ProbeCycle: max_retransmissions >= 0");
  }
  if (!callbacks_.send_probe || !callbacks_.on_success ||
      !callbacks_.on_failure) {
    throw std::invalid_argument("ProbeCycle: all callbacks required");
  }
}

void ProbeCycle::start() {
  if (active_) throw std::logic_error("ProbeCycle::start: cycle active");
  active_ = true;
  ++cycle_;
  ++cycles_started_;
  attempt_ = 0;
  cycle_start_time_ = scheduler_.now();
  transmit();
}

void ProbeCycle::abort() {
  if (!active_) return;
  active_ = false;
  timer_.disarm();
}

void ProbeCycle::transmit() {
  PROBEMON_INVARIANT(attempt_ <= max_retransmissions_,
                     "probe cycle " << cycle_ << " transmitting attempt "
                         << int(attempt_) << " beyond the paper's bound of "
                         << max_retransmissions_ << " retransmissions");
  last_send_time_ = scheduler_.now();
  ++probes_sent_;
  // Arm the timeout BEFORE handing the probe to the network: the send
  // path may deliver synchronously in unit tests with zero delay, and the
  // reply handler must find a consistent (armed) cycle to cancel.
  timer_.arm(attempt_ == 0 ? tof_ : tos_);
  callbacks_.send_probe(cycle_, attempt_);
}

void ProbeCycle::on_timeout() {
  if (!active_) return;
  if (attempt_ < max_retransmissions_) {
    ++attempt_;
    transmit();
    return;
  }
  active_ = false;
  ++cycles_failed_;
  callbacks_.on_failure();
}

bool ProbeCycle::offer_reply(const net::Message& reply) {
  if (!active_) return false;
  if (reply.cycle != cycle_) return false;  // stale: an abandoned cycle
  active_ = false;
  timer_.disarm();
  ++cycles_succeeded_;
  callbacks_.on_success(reply);
  return true;
}

}  // namespace probemon::core
