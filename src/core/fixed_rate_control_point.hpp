// The naive baseline: probe at a fixed, configured period.
//
// The paper's introduction dismisses this scheme in one line — "The
// simplest scheme one could consider is to regularly probe a device …
// This scheme, however, easily leads to over- or underloading of
// devices" — and both SAPP and DCPP exist to fix it. We implement it as
// the experimental baseline so that claim can be measured (bench A12):
// with k CPs at fixed period p the device load is k/p, unbounded in k
// and oblivious to L_nom.
#pragma once

#include "core/control_point_base.hpp"

namespace probemon::core {

struct FixedRateCpConfig {
  TimeoutConfig timeouts{};
  /// Fixed inter-cycle delay (seconds). The UPnP-ish default of one
  /// probe per second per CP, the kind of value a naive implementor
  /// picks to satisfy "detect absence in the order of one second".
  double period = 1.0;
  bool continue_after_absence = false;

  void validate() const {
    timeouts.validate();
    if (!(period > 0)) {
      throw std::invalid_argument("FixedRateCp: period > 0");
    }
  }
};

class FixedRateControlPoint final : public ControlPointBase {
 public:
  FixedRateControlPoint(des::Simulation& sim, net::Network& network,
                        EntityArena& arena, net::NodeId device,
                        FixedRateCpConfig config,
                        ProtocolObserver* observer = nullptr)
      : ControlPointBase(sim, network, arena, device, config.timeouts,
                         config.continue_after_absence, observer),
        config_(config) {
    config_.validate();
  }

  const FixedRateCpConfig& config() const noexcept { return config_; }

 protected:
  double delay_after_success(const net::Message&) override {
    return config_.period;
  }
  double delay_after_failure() override { return config_.period; }

 private:
  FixedRateCpConfig config_;
};

}  // namespace probemon::core
