// Pure SAPP adaptation state machine (paper eq. 1), shared by the
// discrete-event CP (core::SappControlPoint) and the wall-clock CP
// (runtime::RtSappControlPoint). Keeping it pure makes the adaptation
// rule unit- and property-testable in isolation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

#include "check/contract.hpp"
#include "core/config.hpp"

namespace probemon::core {

class SappAdaptation {
 public:
  explicit SappAdaptation(const SappCpConfig& config)
      : config_(&config),
        delta_(config.initial_delay),
        l_exp_(std::numeric_limits<double>::quiet_NaN()) {}

  /// Current inter-probe-cycle delay.
  double delta() const noexcept { return delta_; }
  /// Last experienced-load estimate (NaN before two observations).
  double experienced_load() const noexcept { return l_exp_; }

  /// Feed one successful probe observation: the reply's probe counter
  /// `pc` and the observation instant `t_obs` (reply arrival for a clean
  /// success; retransmission send time otherwise). Returns the delay to
  /// wait before the next cycle.
  double observe(std::uint64_t pc, double t_obs) {
    if (has_prev_ && t_obs > prev_t_) {
      l_exp_ = static_cast<double>(pc - prev_pc_) / (t_obs - prev_t_);
      if (l_exp_ > config_->beta * config_->l_ideal) {
        delta_ = std::min(config_->alpha_inc * delta_, config_->delta_max);
      } else if (l_exp_ < config_->l_ideal / config_->beta) {
        delta_ = std::max(delta_ / config_->alpha_dec, config_->delta_min);
      }
      // else: within the tolerance band; keep delta.
    }
    has_prev_ = true;
    prev_pc_ = pc;
    prev_t_ = t_obs;
    PROBEMON_INVARIANT(
        delta_ >= config_->delta_min && delta_ <= config_->delta_max,
        "SAPP delay escaped its clamp: " << delta_ << " outside ["
                                         << config_->delta_min << ", "
                                         << config_->delta_max << "]");
    return delta_;
  }

 private:
  const SappCpConfig* config_;
  double delta_;
  double l_exp_;
  bool has_prev_ = false;
  std::uint64_t prev_pc_ = 0;
  double prev_t_ = 0;
};

}  // namespace probemon::core
