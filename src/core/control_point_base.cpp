#include "core/control_point_base.hpp"

#include <algorithm>
#include <cmath>

#include "check/contract.hpp"
#include "util/logging.hpp"

namespace probemon::core {

ControlPointBase::ControlPointBase(des::Simulation& sim, net::Network& network,
                                   EntityArena& arena, net::NodeId device,
                                   const TimeoutConfig& timeouts,
                                   bool continue_after_absence,
                                   ProtocolObserver* observer)
    : sim_(sim),
      network_(network),
      arena_(arena),
      device_(device),
      continue_after_absence_(continue_after_absence),
      observer_(observer),
      cid_(arena.add_cp()),
      id_(network.attach(*this)),
      cycle_(sim.scheduler(), timeouts.tof, timeouts.tos,
             timeouts.max_retransmissions,
             ProbeCycle::Callbacks{
                 [this](std::uint64_t c, std::uint8_t a) { send_probe(c, a); },
                 [this](const net::Message& reply) { handle_success(reply); },
                 [this] { handle_failure(); }}),
      next_cycle_timer_(sim.scheduler(), [this] { cycle_.start(); }) {
  timeouts.validate();
  CpState& st = state();
  st.node = id_;
  st.device = device_;
}

ControlPointBase::~ControlPointBase() {
  stop();
  arena_.remove_cp(cid_);
}

void ControlPointBase::start(double initial_jitter) {
  CpState& st = state();
  if (st.running) return;
  st.running = true;
  if (initial_jitter > 0) {
    next_cycle_timer_.arm(initial_jitter);
  } else {
    cycle_.start();
  }
}

void ControlPointBase::stop() {
  if (!state().running && !network_.attached(id_)) return;
  state().running = false;
  cycle_.abort();
  next_cycle_timer_.disarm();
  if (network_.attached(id_)) network_.detach(id_);
}

void ControlPointBase::send_probe(std::uint64_t cycle, std::uint8_t attempt) {
  net::Message probe;
  probe.kind = net::MessageKind::kProbe;
  probe.from = id_;
  probe.to = device_;
  probe.cycle = cycle;
  probe.attempt = attempt;
  network_.send(probe);
  if (observer_) observer_->on_probe_sent(id_, device_, sim_.now(), attempt);
}

void ControlPointBase::schedule_cycle(double delay) {
  PROBEMON_CONTRACT(std::isfinite(delay) && delay >= 0,
                    "inter-cycle delay must be finite and non-negative, got "
                        << delay);
  state().current_delay = delay;
  if (observer_) observer_->on_delay_updated(id_, sim_.now(), delay);
  next_cycle_timer_.arm(delay);
}

void ControlPointBase::handle_success(const net::Message& reply) {
  if (!state().running) return;
  learn_overlay(reply);
  if (observer_) {
    observer_->on_cycle_success(
        id_, device_, sim_.now(),
        static_cast<std::uint8_t>(reply.attempt + 1));
  }
  // A successful probe is evidence of presence: clear a stale verdict
  // (e.g. the device came back after a silent period).
  state().device_present = true;
  schedule_cycle(std::max(0.0, delay_after_success(reply)));
}

void ControlPointBase::handle_failure() {
  if (!state().running) return;
  mark_absent(/*learned=*/false);
  if (continue_after_absence_) {
    schedule_cycle(std::max(0.0, delay_after_failure()));
  }
}

void ControlPointBase::mark_absent(bool learned) {
  CpState& st = state();
  const bool was_present = st.device_present;
  st.device_present = false;
  if (was_present) {
    st.absence_time = sim_.now();
    if (observer_) {
      if (learned) {
        observer_->on_absence_learned(id_, device_, sim_.now());
      } else {
        observer_->on_device_declared_absent(id_, device_, sim_.now());
      }
    }
    if (st.dissemination_ttl > 0 && !st.notified_peers) {
      st.notified_peers = true;
      disseminate(device_, st.dissemination_ttl);
    }
  }
}

void ControlPointBase::disseminate(net::NodeId subject, std::uint8_t ttl) {
  if (ttl == 0) return;
  for (net::NodeId peer : overlay_neighbors()) {
    net::Message notify;
    notify.kind = net::MessageKind::kNotify;
    notify.from = id_;
    notify.to = peer;
    notify.subject = subject;
    notify.ttl = static_cast<std::uint8_t>(ttl - 1);
    network_.send(notify);
  }
}

void ControlPointBase::learn_overlay(const net::Message& reply) {
  CpState& st = state();
  for (net::NodeId peer : reply.last_probers) {
    if (peer == net::kInvalidNode || peer == id_) continue;
    const auto end = st.overlay.begin() + st.overlay_count;
    if (std::find(st.overlay.begin(), end, peer) != end) continue;
    // Keep the overlay small and fresh: most recent four neighbours
    // (evict the oldest when full).
    if (st.overlay_count == st.overlay.size()) {
      std::copy(st.overlay.begin() + 1, st.overlay.end(),
                st.overlay.begin());
      st.overlay.back() = peer;
    } else {
      st.overlay[st.overlay_count++] = peer;
    }
  }
}

void ControlPointBase::on_message(const net::Message& msg) {
  switch (msg.kind) {
    case net::MessageKind::kReply:
      if (msg.from == device_ && state().running) {
        if (!cycle_.offer_reply(msg)) on_stale_reply(msg);
      }
      break;
    case net::MessageKind::kBye:
      if (msg.from == device_ || msg.subject == device_) {
        cycle_.abort();
        next_cycle_timer_.disarm();
        mark_absent(/*learned=*/true);
      }
      break;
    case net::MessageKind::kNotify: {
      if (msg.subject == device_ && state().device_present) {
        cycle_.abort();
        next_cycle_timer_.disarm();
        mark_absent(/*learned=*/true);
        // mark_absent already gossiped if enabled, but honour the
        // incoming TTL when it is smaller than ours.
        CpState& st = state();
        if (st.dissemination_ttl > 0 && msg.ttl > 0 && !st.notified_peers) {
          st.notified_peers = true;
          disseminate(msg.subject, msg.ttl);
        }
      }
      break;
    }
    case net::MessageKind::kProbe:
      break;  // CPs are never probed
  }
}

}  // namespace probemon::core
