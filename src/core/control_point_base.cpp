#include "core/control_point_base.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "check/contract.hpp"
#include "util/logging.hpp"

namespace probemon::core {

ControlPointBase::ControlPointBase(des::Simulation& sim, net::Network& network,
                                   net::NodeId device,
                                   const TimeoutConfig& timeouts,
                                   bool continue_after_absence,
                                   ProtocolObserver* observer)
    : sim_(sim),
      network_(network),
      device_(device),
      continue_after_absence_(continue_after_absence),
      observer_(observer),
      id_(network.attach(*this)),
      cycle_(sim.scheduler(), timeouts.tof, timeouts.tos,
             timeouts.max_retransmissions,
             ProbeCycle::Callbacks{
                 [this](std::uint64_t c, std::uint8_t a) { send_probe(c, a); },
                 [this](const net::Message& reply) { handle_success(reply); },
                 [this] { handle_failure(); }}),
      next_cycle_timer_(sim.scheduler(), [this] { cycle_.start(); }),
      absence_time_(std::numeric_limits<double>::quiet_NaN()),
      current_delay_(std::numeric_limits<double>::quiet_NaN()) {
  timeouts.validate();
}

ControlPointBase::~ControlPointBase() { stop(); }

void ControlPointBase::start(double initial_jitter) {
  if (running_) return;
  running_ = true;
  if (initial_jitter > 0) {
    next_cycle_timer_.arm(initial_jitter);
  } else {
    cycle_.start();
  }
}

void ControlPointBase::stop() {
  if (!running_ && !network_.attached(id_)) return;
  running_ = false;
  cycle_.abort();
  next_cycle_timer_.disarm();
  if (network_.attached(id_)) network_.detach(id_);
}

void ControlPointBase::send_probe(std::uint64_t cycle, std::uint8_t attempt) {
  net::Message probe;
  probe.kind = net::MessageKind::kProbe;
  probe.from = id_;
  probe.to = device_;
  probe.cycle = cycle;
  probe.attempt = attempt;
  network_.send(probe);
  if (observer_) observer_->on_probe_sent(id_, device_, sim_.now(), attempt);
}

void ControlPointBase::schedule_cycle(double delay) {
  PROBEMON_CONTRACT(std::isfinite(delay) && delay >= 0,
                    "inter-cycle delay must be finite and non-negative, got "
                        << delay);
  current_delay_ = delay;
  if (observer_) observer_->on_delay_updated(id_, sim_.now(), delay);
  next_cycle_timer_.arm(delay);
}

void ControlPointBase::handle_success(const net::Message& reply) {
  if (!running_) return;
  learn_overlay(reply);
  if (observer_) {
    observer_->on_cycle_success(
        id_, device_, sim_.now(),
        static_cast<std::uint8_t>(reply.attempt + 1));
  }
  // A successful probe is evidence of presence: clear a stale verdict
  // (e.g. the device came back after a silent period).
  device_present_ = true;
  schedule_cycle(std::max(0.0, delay_after_success(reply)));
}

void ControlPointBase::handle_failure() {
  if (!running_) return;
  mark_absent(/*learned=*/false);
  if (continue_after_absence_) {
    schedule_cycle(std::max(0.0, delay_after_failure()));
  }
}

void ControlPointBase::mark_absent(bool learned) {
  const bool was_present = device_present_;
  device_present_ = false;
  if (was_present) {
    absence_time_ = sim_.now();
    if (observer_) {
      if (learned) {
        observer_->on_absence_learned(id_, device_, sim_.now());
      } else {
        observer_->on_device_declared_absent(id_, device_, sim_.now());
      }
    }
    if (dissemination_ttl_ > 0 && !notified_peers_) {
      notified_peers_ = true;
      disseminate(device_, dissemination_ttl_);
    }
  }
}

void ControlPointBase::disseminate(net::NodeId subject, std::uint8_t ttl) {
  if (ttl == 0) return;
  for (net::NodeId peer : overlay_) {
    net::Message notify;
    notify.kind = net::MessageKind::kNotify;
    notify.from = id_;
    notify.to = peer;
    notify.subject = subject;
    notify.ttl = static_cast<std::uint8_t>(ttl - 1);
    network_.send(notify);
  }
}

void ControlPointBase::learn_overlay(const net::Message& reply) {
  for (net::NodeId peer : reply.last_probers) {
    if (peer == net::kInvalidNode || peer == id_) continue;
    if (std::find(overlay_.begin(), overlay_.end(), peer) != overlay_.end()) {
      continue;
    }
    overlay_.push_back(peer);
    // Keep the overlay small and fresh: most recent four neighbours.
    if (overlay_.size() > 4) overlay_.erase(overlay_.begin());
  }
}

void ControlPointBase::on_message(const net::Message& msg) {
  switch (msg.kind) {
    case net::MessageKind::kReply:
      if (msg.from == device_ && running_) {
        if (!cycle_.offer_reply(msg)) on_stale_reply(msg);
      }
      break;
    case net::MessageKind::kBye:
      if (msg.from == device_ || msg.subject == device_) {
        cycle_.abort();
        next_cycle_timer_.disarm();
        mark_absent(/*learned=*/true);
      }
      break;
    case net::MessageKind::kNotify:
      if (msg.subject == device_ && device_present_) {
        cycle_.abort();
        next_cycle_timer_.disarm();
        mark_absent(/*learned=*/true);
        // mark_absent already gossiped if enabled, but honour the
        // incoming TTL when it is smaller than ours.
        if (dissemination_ttl_ > 0 && msg.ttl > 0 && !notified_peers_) {
          notified_peers_ = true;
          disseminate(msg.subject, msg.ttl);
        }
      }
      break;
    case net::MessageKind::kProbe:
      break;  // CPs are never probed
  }
}

}  // namespace probemon::core
