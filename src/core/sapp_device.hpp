// SAPP device (paper section 2, "Device behavior").
//
// Maintains a probe counter pc, incremented by Delta = L_ideal / L_nom on
// every probe; the reply carries the just-updated pc. CPs derive their
// experienced load from consecutive pc values, so Delta is the device's
// lever for slowing everyone down: doubling Delta makes the device look
// twice as busy.
//
// The optional overload-control extension implements exactly that lever:
// the device measures its own recent probe load and doubles/halves Delta
// when the load leaves [L_nom/f, f*L_nom].
#pragma once

#include <cstdint>
#include <deque>

#include "core/device_base.hpp"

namespace probemon::core {

class SappDevice final : public DeviceBase {
 public:
  SappDevice(des::Simulation& sim, net::Network& network, EntityArena& arena,
             SappDeviceConfig config, ProtocolObserver* observer = nullptr);

  const SappDeviceConfig& config() const noexcept { return config_; }
  std::uint64_t probe_counter() const noexcept { return pc_; }
  std::uint64_t delta() const noexcept { return delta_; }

  /// Manually change Delta (e.g. to script a "device got busy" event).
  void set_delta(std::uint64_t delta);

  /// Probe load measured by the device itself over the adapt window.
  double measured_load() const;

 protected:
  void fill_reply(const net::Message& probe, double t,
                  net::Message& reply) override;
  void on_probe_accepted(const net::Message& probe, double t) override;

 private:
  void adapt_delta();

  SappDeviceConfig config_;
  std::uint64_t pc_ = 0;
  std::uint64_t delta_;
  std::uint64_t base_delta_;
  std::deque<double> recent_probe_times_;
  std::unique_ptr<des::Simulation::Periodic> adapt_task_;
};

}  // namespace probemon::core
