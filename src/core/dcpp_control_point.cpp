#include "core/dcpp_control_point.hpp"

#include <cmath>
#include <limits>

namespace probemon::core {

DcppControlPoint::DcppControlPoint(des::Simulation& sim, net::Network& network,
                                   EntityArena& arena, net::NodeId device,
                                   DcppCpConfig config,
                                   ProtocolObserver* observer)
    : ControlPointBase(sim, network, arena, device, config.timeouts,
                       config.continue_after_absence, observer),
      config_(config),
      last_grant_(std::numeric_limits<double>::quiet_NaN()) {
  config_.validate();
}

double DcppControlPoint::delay_after_success(const net::Message& reply) {
  last_grant_ = reply.grant_delay;
  return reply.grant_delay;
}

double DcppControlPoint::delay_after_failure() {
  // Without a grant (device unresponsive but we keep trying), fall back
  // to the last grant, or one second if none was ever received.
  return std::isnan(last_grant_) ? 1.0 : last_grant_;
}

}  // namespace probemon::core
