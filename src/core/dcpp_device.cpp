#include "core/dcpp_device.hpp"

#include <algorithm>

#include "check/contract.hpp"

namespace probemon::core {

DcppDevice::DcppDevice(des::Simulation& sim, net::Network& network,
                       EntityArena& arena, DcppDeviceConfig config,
                       ProtocolObserver* observer)
    : DeviceBase(sim, network, arena, config.compute, observer),
      config_(config) {
  config_.validate();
}

double DcppDevice::grant(double nt, double t, const DcppDeviceConfig& config) {
  const double frontier = std::max(nt, t);
  const double backlog = frontier - t;  // >= 0 by construction
  const double delta = std::max(config.delta_min, config.d_min - backlog);
  const double next = frontier + delta;
  return next - t;
}

void DcppDevice::fill_reply(const net::Message& /*probe*/, double t,
                            net::Message& reply) {
  const double wait = grant(nt_, t, config_);
  const double granted = t + wait;
  PROBEMON_INVARIANT(granted >= nt_ && wait + 1e-12 >= config_.d_min,
                     "DCPP grant broke the schedule: nt " << nt_ << " -> "
                         << granted << ", wait " << wait << " (d_min "
                         << config_.d_min << ")");
  if (observer()) observer()->on_slot_granted(id(), t, nt_, granted);
  nt_ = granted;
  reply.grant_delay = wait;
}

}  // namespace probemon::core
