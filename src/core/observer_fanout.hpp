// Fan-out observer: multiplexes protocol events to several sinks, so an
// experiment can feed live metrics and a persistent event log (or a
// test spy) from the same run.
#pragma once

#include <vector>

#include "core/observer.hpp"

namespace probemon::core {

class FanoutObserver final : public ProtocolObserver {
 public:
  FanoutObserver() = default;
  explicit FanoutObserver(std::vector<ProtocolObserver*> sinks)
      : sinks_(std::move(sinks)) {}

  /// Sinks must outlive the fanout; null sinks are ignored.
  void add(ProtocolObserver* sink) {
    if (sink) sinks_.push_back(sink);
  }
  std::size_t size() const noexcept { return sinks_.size(); }

  void on_probe_sent(net::NodeId cp, net::NodeId device, double t,
                     std::uint8_t attempt) override {
    for (auto* s : sinks_) s->on_probe_sent(cp, device, t, attempt);
  }
  void on_probe_received(net::NodeId device, net::NodeId cp,
                         double t) override {
    for (auto* s : sinks_) s->on_probe_received(device, cp, t);
  }
  void on_cycle_success(net::NodeId cp, net::NodeId device, double t,
                        std::uint8_t attempts) override {
    for (auto* s : sinks_) s->on_cycle_success(cp, device, t, attempts);
  }
  void on_delay_updated(net::NodeId cp, double t, double delay) override {
    for (auto* s : sinks_) s->on_delay_updated(cp, t, delay);
  }
  void on_device_declared_absent(net::NodeId cp, net::NodeId device,
                                 double t) override {
    for (auto* s : sinks_) s->on_device_declared_absent(cp, device, t);
  }
  void on_absence_learned(net::NodeId cp, net::NodeId device,
                          double t) override {
    for (auto* s : sinks_) s->on_absence_learned(cp, device, t);
  }
  void on_delta_changed(net::NodeId device, double t,
                        std::uint64_t delta) override {
    for (auto* s : sinks_) s->on_delta_changed(device, t, delta);
  }
  void on_slot_granted(net::NodeId device, double t, double nt_before,
                       double nt_after) override {
    for (auto* s : sinks_) s->on_slot_granted(device, t, nt_before, nt_after);
  }

 private:
  std::vector<ProtocolObserver*> sinks_;
};

}  // namespace probemon::core
