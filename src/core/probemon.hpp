// Umbrella header: the public API of the probemon core library.
//
// Typical use (see examples/quickstart.cpp):
//
//   des::Simulation sim(seed);
//   auto network = net::Network::make_paper_default(sim.scheduler(), sim.rng());
//   core::EntityArena arena;
//   core::DcppDevice device(sim, *network, arena, core::DcppDeviceConfig{});
//   core::DcppControlPoint cp(sim, *network, arena, device.id(),
//                             core::DcppCpConfig{});
//   cp.start();
//   sim.run_until(600.0);
#pragma once

#include "core/config.hpp"
#include "core/control_point_base.hpp"
#include "core/entity_arena.hpp"
#include "core/dcpp_control_point.hpp"
#include "core/dcpp_device.hpp"
#include "core/device_base.hpp"
#include "core/fixed_rate_control_point.hpp"
#include "core/observer.hpp"
#include "core/probe_cycle.hpp"
#include "core/sapp_control_point.hpp"
#include "core/sapp_device.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"
