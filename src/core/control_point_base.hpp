// Common control-point behaviour shared by SAPP and DCPP CPs.
//
// A CP monitors exactly one device (the paper studies one device and k
// CPs; device/CP groups are independent, section 3). The base class owns
// the bounded-retransmission probe cycle, the inter-cycle delay timer,
// absence bookkeeping, and the optional gossip dissemination of leave
// events over the last-two-probers overlay. Subclasses decide one thing:
// how long to wait after a successful cycle (SAPP: adaptive; DCPP: the
// device's grant).
//
// Mutable monitoring state (running flag, presence verdict, absence
// time, current delay, the overlay) lives in a `core::EntityArena` slab
// addressed by a generation-tagged `CpId`; the wrapper keeps only
// immutable identity and the timer/cycle machinery whose callbacks
// capture `this`.
#pragma once

#include <cstdint>
#include <span>

#include "core/config.hpp"
#include "core/entity_arena.hpp"
#include "core/observer.hpp"
#include "core/probe_cycle.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"

namespace probemon::core {

class ControlPointBase : public net::INetworkClient {
 public:
  ControlPointBase(des::Simulation& sim, net::Network& network,
                   EntityArena& arena, net::NodeId device,
                   const TimeoutConfig& timeouts, bool continue_after_absence,
                   ProtocolObserver* observer);
  ~ControlPointBase() override;

  ControlPointBase(const ControlPointBase&) = delete;
  ControlPointBase& operator=(const ControlPointBase&) = delete;

  net::NodeId id() const noexcept { return id_; }
  net::NodeId device() const noexcept { return device_; }
  /// Arena handle for this CP's state slab.
  CpId entity_id() const noexcept { return cid_; }

  /// Begin monitoring: the first probe cycle starts `initial_jitter`
  /// seconds from now (jitter desynchronizes joining bursts).
  void start(double initial_jitter = 0.0);

  /// Leave the network: abort any cycle, cancel timers, detach.
  void stop();

  bool running() const noexcept { return state().running; }
  /// False once this CP has declared or learned the device's absence.
  bool device_considered_present() const noexcept {
    return state().device_present;
  }
  /// Time the CP declared/learned absence (NaN while present).
  double absence_time() const noexcept { return state().absence_time; }

  /// Most recent inter-cycle delay (NaN before the first success).
  double current_delay() const noexcept { return state().current_delay; }

  const ProbeCycle& cycle() const noexcept { return cycle_; }

  /// Enable gossip forwarding of absence notifications with the given
  /// forwarding budget (extension; the paper mentions but does not
  /// analyze the dissemination phase).
  void enable_dissemination(std::uint8_t ttl) {
    state().dissemination_ttl = ttl;
  }

  /// Overlay neighbours learned from reply piggyback data.
  std::span<const net::NodeId> overlay_neighbors() const noexcept {
    const CpState& st = state();
    return {st.overlay.data(), st.overlay_count};
  }

  // INetworkClient:
  void on_message(const net::Message& msg) final;

 protected:
  /// Inter-cycle delay to apply after a successful cycle.
  virtual double delay_after_success(const net::Message& reply) = 0;
  /// Delay before re-probing after a failed cycle when
  /// continue_after_absence is set.
  virtual double delay_after_failure() = 0;
  /// A reply from the device that did not complete the current cycle —
  /// a duplicate (the device answers every probe, so a retransmitted
  /// cycle yields several replies) or a leftover from an abandoned
  /// cycle. SAPP's load estimator consumes these (the paper phrases the
  /// L_exp rule over successive *replies*); default ignores them.
  virtual void on_stale_reply(const net::Message& /*reply*/) {}

  des::Simulation& sim() noexcept { return sim_; }
  ProtocolObserver* observer() noexcept { return observer_; }

 private:
  CpState& state() noexcept { return arena_.cp(cid_); }
  const CpState& state() const noexcept { return arena_.cp(cid_); }
  void send_probe(std::uint64_t cycle, std::uint8_t attempt);
  void handle_success(const net::Message& reply);
  void handle_failure();
  void mark_absent(bool learned);
  void disseminate(net::NodeId subject, std::uint8_t ttl);
  void learn_overlay(const net::Message& reply);
  void schedule_cycle(double delay);

  des::Simulation& sim_;
  net::Network& network_;
  EntityArena& arena_;
  net::NodeId device_;
  bool continue_after_absence_;
  ProtocolObserver* observer_;
  CpId cid_;
  net::NodeId id_ = net::kInvalidNode;
  ProbeCycle cycle_;
  des::Timer next_cycle_timer_;
};

}  // namespace probemon::core
