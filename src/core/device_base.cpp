#include "core/device_base.hpp"

#include "util/logging.hpp"

namespace probemon::core {

DeviceBase::DeviceBase(des::Simulation& sim, net::Network& network,
                       ComputeConfig compute, ProtocolObserver* observer)
    : sim_(sim),
      network_(network),
      compute_(compute),
      observer_(observer),
      compute_rng_(sim.rng().fork("device.compute")) {
  compute_.validate();
  id_ = network_.attach(*this);
  // Make the per-device stream unique even with several devices.
  compute_rng_ = compute_rng_.fork(id_);
}

DeviceBase::~DeviceBase() {
  if (network_.attached(id_)) network_.detach(id_);
}

void DeviceBase::go_silent() {
  present_ = false;
  service_queue_.clear();
  busy_ = false;
  // Invalidate the in-progress "computation", if any: its completion
  // event carries the old epoch and bails even if the device has come
  // back in the meantime.
  ++service_epoch_;
}

void DeviceBase::leave_gracefully() {
  for (net::NodeId cp : last_probers_) {
    if (cp == net::kInvalidNode) continue;
    net::Message bye;
    bye.kind = net::MessageKind::kBye;
    bye.from = id_;
    bye.to = cp;
    bye.subject = id_;
    network_.send(bye);
  }
  go_silent();
}

void DeviceBase::come_back() { present_ = true; }

void DeviceBase::record_prober(net::NodeId cp) {
  if (cp == last_probers_[0]) return;  // still the most recent
  last_probers_[1] = last_probers_[0];
  last_probers_[0] = cp;
}

void DeviceBase::on_message(const net::Message& msg) {
  if (!present_) return;  // a silent device ignores everything
  if (msg.kind != net::MessageKind::kProbe) return;

  const double t = sim_.now();
  ++probes_received_;
  if (observer_) observer_->on_probe_received(id_, msg.from, t);
  on_probe_accepted(msg, t);

  // The device is a single-threaded little box: probes are answered one
  // at a time, each taking a computation time in [compute.min,
  // compute.max]. Concurrent probes queue up, which is what makes the
  // paper's timeout calibration (TOF = 2*RTT + compute_max) tight rather
  // than vacuous: under bursts, turnaround exceeds TOF and CPs
  // retransmit.
  service_queue_.push_back(msg);
  if (!busy_) start_service();
}

void DeviceBase::start_service() {
  if (service_queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const net::Message probe = service_queue_.front();
  service_queue_.pop_front();

  // Protocol state updates at service time (the paper's "on receipt":
  // receipt and processing coincide for a serial device).
  net::Message& reply = pending_reply_;
  reply = net::Message{};
  reply.kind = net::MessageKind::kReply;
  reply.from = id_;
  reply.to = probe.from;
  reply.cycle = probe.cycle;
  reply.attempt = probe.attempt;
  reply.last_probers = last_probers_;
  fill_reply(probe, sim_.now(), reply);
  record_prober(probe.from);

  const double compute = compute_rng_.uniform(compute_.min, compute_.max);
  auto complete = [this, epoch = service_epoch_] {
    if (epoch != service_epoch_) return;  // went silent mid-computation
    network_.send(pending_reply_);
    start_service();
  };
  static_assert(des::InlineCallback::fits_inline<decltype(complete)>);
  sim_.after(compute, std::move(complete));
}

void DeviceBase::notify_delta_changed(std::uint64_t delta) {
  if (observer_) observer_->on_delta_changed(id_, sim_.now(), delta);
}

}  // namespace probemon::core
