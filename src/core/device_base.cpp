#include "core/device_base.hpp"

#include "util/logging.hpp"

namespace probemon::core {

DeviceBase::DeviceBase(des::Simulation& sim, net::Network& network,
                       EntityArena& arena, ComputeConfig compute,
                       ProtocolObserver* observer)
    : sim_(sim),
      network_(network),
      arena_(arena),
      compute_(compute),
      observer_(observer),
      compute_rng_(sim.rng().fork("device.compute")),
      did_(arena.add_device()) {
  compute_.validate();
  id_ = network_.attach(*this);
  state().node = id_;
  // Make the per-device stream unique even with several devices.
  compute_rng_ = compute_rng_.fork(id_);
}

DeviceBase::~DeviceBase() {
  if (network_.attached(id_)) network_.detach(id_);
  arena_.remove_device(did_);
}

void DeviceBase::go_silent() {
  DeviceState& st = state();
  st.present = false;
  arena_.queue_clear(did_);
  st.busy = false;
  // Invalidate the in-progress "computation", if any: its completion
  // event carries the old epoch and bails even if the device has come
  // back in the meantime.
  ++st.service_epoch;
}

void DeviceBase::leave_gracefully() {
  for (net::NodeId cp : state().last_probers) {
    if (cp == net::kInvalidNode) continue;
    net::Message bye;
    bye.kind = net::MessageKind::kBye;
    bye.from = id_;
    bye.to = cp;
    bye.subject = id_;
    network_.send(bye);
  }
  go_silent();
}

void DeviceBase::come_back() { state().present = true; }

void DeviceBase::record_prober(DeviceState& st, net::NodeId cp) {
  if (cp == st.last_probers[0]) return;  // still the most recent
  st.last_probers[1] = st.last_probers[0];
  st.last_probers[0] = cp;
}

void DeviceBase::on_message(const net::Message& msg) {
  DeviceState& st = state();
  if (!st.present) return;  // a silent device ignores everything
  if (msg.kind != net::MessageKind::kProbe) return;

  const double t = sim_.now();
  ++st.probes_received;
  if (observer_) observer_->on_probe_received(id_, msg.from, t);
  on_probe_accepted(msg, t);

  // The device is a single-threaded little box: probes are answered one
  // at a time, each taking a computation time in [compute.min,
  // compute.max]. Concurrent probes queue up, which is what makes the
  // paper's timeout calibration (TOF = 2*RTT + compute_max) tight rather
  // than vacuous: under bursts, turnaround exceeds TOF and CPs
  // retransmit.
  arena_.queue_push(did_, msg);
  if (!st.busy) start_service();
}

void DeviceBase::start_service() {
  DeviceState& st = state();
  net::Message probe;
  if (!arena_.queue_pop(did_, probe)) {
    st.busy = false;
    return;
  }
  st.busy = true;

  // Protocol state updates at service time (the paper's "on receipt":
  // receipt and processing coincide for a serial device).
  net::Message& reply = st.pending_reply;
  reply = net::Message{};
  reply.kind = net::MessageKind::kReply;
  reply.from = id_;
  reply.to = probe.from;
  reply.cycle = probe.cycle;
  reply.attempt = probe.attempt;
  reply.last_probers = st.last_probers;
  fill_reply(probe, sim_.now(), reply);
  record_prober(st, probe.from);

  const double compute = compute_rng_.uniform(compute_.min, compute_.max);
  auto complete = [this, epoch = st.service_epoch] {
    if (epoch != state().service_epoch) return;  // went silent mid-computation
    network_.send(state().pending_reply);
    start_service();
  };
  static_assert(des::InlineCallback::fits_inline<decltype(complete)>);
  sim_.after(compute, std::move(complete));
}

void DeviceBase::notify_delta_changed(std::uint64_t delta) {
  if (observer_) observer_->on_delta_changed(id_, sim_.now(), delta);
}

}  // namespace probemon::core
