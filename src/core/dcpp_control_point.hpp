// DCPP control point (paper section 4, "CP behavior").
//
// "The CP shows the same behavior with respect to the probing and
// re-probing of a device, however, the delay between two probe cycles is
// now directly determined by the device." — so the subclass is a one-
// liner: wait exactly the granted delay.
#pragma once

#include "core/control_point_base.hpp"

namespace probemon::core {

class DcppControlPoint final : public ControlPointBase {
 public:
  DcppControlPoint(des::Simulation& sim, net::Network& network,
                   EntityArena& arena, net::NodeId device, DcppCpConfig config,
                   ProtocolObserver* observer = nullptr);

  const DcppCpConfig& config() const noexcept { return config_; }
  /// Most recent grant received from the device (NaN before the first).
  double last_grant() const noexcept { return last_grant_; }

 protected:
  double delay_after_success(const net::Message& reply) override;
  double delay_after_failure() override;

 private:
  DcppCpConfig config_;
  double last_grant_;
};

}  // namespace probemon::core
