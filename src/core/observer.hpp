// Instrumentation hooks.
//
// Protocol nodes report state changes through a ProtocolObserver so that
// measurement code (scenario::Metrics, tests) never couples into protocol
// internals. All hooks default to no-ops; observers override what they
// need. The observer outlives the nodes it watches.
#pragma once

#include <cstdint>

#include "net/message.hpp"

namespace probemon::core {

class ProtocolObserver {
 public:
  virtual ~ProtocolObserver() = default;

  /// CP transmitted a probe (attempt 0 = first of the cycle).
  virtual void on_probe_sent(net::NodeId /*cp*/, net::NodeId /*device*/,
                             double /*t*/, std::uint8_t /*attempt*/) {}

  /// Device accepted a probe (this is the event the device-load figures
  /// count).
  virtual void on_probe_received(net::NodeId /*device*/, net::NodeId /*cp*/,
                                 double /*t*/) {}

  /// CP accepted a reply for its current cycle.
  virtual void on_cycle_success(net::NodeId /*cp*/, net::NodeId /*device*/,
                                double /*t*/, std::uint8_t /*attempts*/) {}

  /// CP's inter-probe-cycle delay changed (SAPP adaptation / DCPP grant).
  /// Fig 2-4 plot 1/delay from exactly this stream.
  virtual void on_delay_updated(net::NodeId /*cp*/, double /*t*/,
                                double /*delay*/) {}

  /// CP exhausted all retransmissions and considers the device gone.
  virtual void on_device_declared_absent(net::NodeId /*cp*/,
                                         net::NodeId /*device*/,
                                         double /*t*/) {}

  /// CP learned of the device's departure via a gossip notification
  /// (dissemination extension) rather than by probing.
  virtual void on_absence_learned(net::NodeId /*cp*/, net::NodeId /*device*/,
                                  double /*t*/) {}

  /// SAPP device changed its Delta (overload-control extension).
  virtual void on_delta_changed(net::NodeId /*device*/, double /*t*/,
                                std::uint64_t /*delta*/) {}

  /// DCPP device granted a probe slot: for a probe serviced at time t
  /// the schedule frontier advanced from nt_before to nt_after
  /// (= t + granted wait). This exposes the paper's §4 scheduling state
  /// so the invariant auditor can verify nt monotonicity and the
  /// Delta(nt, t) grant formula mechanically.
  virtual void on_slot_granted(net::NodeId /*device*/, double /*t*/,
                               double /*nt_before*/, double /*nt_after*/) {}
};

}  // namespace probemon::core
