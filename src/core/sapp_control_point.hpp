// SAPP control point (paper section 2, "CP behavior" and "Adapting the
// probing frequency").
//
// The CP estimates the device's experienced probe load from two
// consecutive successful cycles:
//
//     L_exp = (pc' - pc) / (t' - t)
//
// where t is the reply arrival time of a cleanly answered probe, or — per
// the paper — the send time of the retransmitted probe when earlier
// probes of the cycle went unanswered. The inter-cycle delay adapts
// multiplicatively (eq. 1):
//
//     delta' = min(alpha_inc * delta, delta_max)    if L_exp > beta*L_ideal
//     delta' = max(delta / alpha_dec, delta_min)    if L_exp < L_ideal/beta
//     delta' = delta                                otherwise
//
// This greedy rule is precisely what the paper shows to be unfair: a CP
// cannot distinguish "many medium-rate CPs" from "few fast CPs", and slow
// CPs are systematically late in grabbing freed-up probe budget.
#pragma once

#include <cstdint>

#include "core/control_point_base.hpp"
#include "core/sapp_adaptation.hpp"

namespace probemon::core {

class SappControlPoint final : public ControlPointBase {
 public:
  SappControlPoint(des::Simulation& sim, net::Network& network,
                   EntityArena& arena, net::NodeId device, SappCpConfig config,
                   ProtocolObserver* observer = nullptr);

  const SappCpConfig& config() const noexcept { return config_; }

  /// Current inter-probe-cycle delay delta (the adaptation state).
  double delta() const noexcept { return adaptation_.delta(); }

  /// Last computed experienced load (NaN before two successes).
  double experienced_load() const noexcept {
    return adaptation_.experienced_load();
  }

 protected:
  double delay_after_success(const net::Message& reply) override;
  double delay_after_failure() override { return config_.delta_max; }
  void on_stale_reply(const net::Message& reply) override;

 private:
  SappCpConfig config_;
  SappAdaptation adaptation_;
};

}  // namespace probemon::core
