#include "core/sapp_device.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace probemon::core {

SappDevice::SappDevice(des::Simulation& sim, net::Network& network,
                       EntityArena& arena, SappDeviceConfig config,
                       ProtocolObserver* observer)
    : DeviceBase(sim, network, arena, config.compute, observer),
      config_(config),
      delta_(config.delta()),
      base_delta_(config.delta()) {
  config_.validate();
  if (config_.adaptive_delta) {
    adapt_task_ = sim.every(config_.adapt_period,
                            [this](double) { adapt_delta(); });
  }
}

void SappDevice::set_delta(std::uint64_t delta) {
  if (delta == 0) throw std::invalid_argument("SappDevice: delta > 0");
  delta_ = delta;
  notify_delta_changed(delta_);
}

void SappDevice::fill_reply(const net::Message& /*probe*/, double /*t*/,
                            net::Message& reply) {
  pc_ += delta_;
  reply.pc = pc_;
}

void SappDevice::on_probe_accepted(const net::Message& /*probe*/, double t) {
  if (!config_.adaptive_delta) return;
  recent_probe_times_.push_back(t);
  const double horizon = t - config_.adapt_window;
  while (!recent_probe_times_.empty() && recent_probe_times_.front() < horizon) {
    recent_probe_times_.pop_front();
  }
}

double SappDevice::measured_load() const {
  return static_cast<double>(recent_probe_times_.size()) /
         config_.adapt_window;
}

void SappDevice::adapt_delta() {
  const double load = measured_load();
  const double high = config_.overload_factor * config_.l_nom;
  const double low = config_.l_nom / config_.overload_factor;
  if (load > high) {
    // Look twice as busy: CPs will eventually halve the probe load.
    set_delta(delta_ * 2);
  } else if (load < low && delta_ > base_delta_) {
    set_delta(std::max(base_delta_, delta_ / 2));
  }
}

}  // namespace probemon::core
