// Dense struct-of-arrays storage for device and control-point state.
//
// Fleet-scale runs (10^5-10^6 entities in one Simulation, ROADMAP item 1)
// are memory-layout bound: one `std::deque<Message>` per device costs
// ~0.5 KiB of libstdc++ bookkeeping before the first probe arrives, and
// pointer-heavy per-object state scatters the probe hot path across the
// heap. The arena fixes both:
//
//   * `DeviceState`/`CpState` live in contiguous `util::SlabPool` slabs
//     (stable addresses, 32-bit indices, LIFO reuse, zero steady-state
//     allocation once the population plateaus),
//   * every device's probe service queue is an intrusive list of
//     `QueueNode`s drawn from ONE shared pool — an idle device costs
//     12 bytes of queue state, not a deque,
//   * handles are generation-tagged (`DeviceId`/`CpId`, same scheme as
//     `des::EventId`): a stale id never aliases a reused slot.
//
// The wrapper classes (`DeviceBase`, `ControlPointBase`) keep behaviour
// and network identity; all mutable protocol state lives here. Occupancy
// and high-water gauges feed the telemetry bridge
// (`probemon_entity_arena_*`).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>

#include "check/contract.hpp"
#include "net/message.hpp"
#include "util/slab_pool.hpp"

namespace probemon::core {

/// Generation-tagged arena handle. Packs (generation << 32) | (index + 1);
/// zero is the invalid handle, so a default-constructed id is never valid.
template <class Tag>
class EntityId {
 public:
  constexpr EntityId() = default;

  constexpr bool is_valid_handle() const noexcept { return raw_ != 0; }
  constexpr std::uint32_t index() const noexcept {
    return static_cast<std::uint32_t>(raw_ & 0xffff'ffffu) - 1;
  }
  constexpr std::uint32_t generation() const noexcept {
    return static_cast<std::uint32_t>(raw_ >> 32);
  }

  friend constexpr bool operator==(EntityId a, EntityId b) noexcept {
    return a.raw_ == b.raw_;
  }
  friend constexpr bool operator!=(EntityId a, EntityId b) noexcept {
    return a.raw_ != b.raw_;
  }

 private:
  constexpr explicit EntityId(std::uint64_t raw) noexcept : raw_(raw) {}
  std::uint64_t raw_ = 0;
  friend class EntityArena;
};

using DeviceId = EntityId<struct DeviceIdTag>;
using CpId = EntityId<struct CpIdTag>;

/// All mutable state of one device. Reset on slot acquire; `gen` survives
/// release so stale `DeviceId`s are detectable.
struct DeviceState {
  static constexpr std::uint32_t kNil = 0xffff'ffffu;

  /// Reply for the in-flight computation. The device is serial (busy
  /// guards a single outstanding completion event), so one slot suffices.
  net::Message pending_reply{};
  std::uint64_t probes_received = 0;
  std::uint64_t service_epoch = 0;  ///< bumped on go_silent
  /// Last two *distinct* probers, most recent first (overlay seed).
  std::array<net::NodeId, 2> last_probers{net::kInvalidNode,
                                          net::kInvalidNode};
  net::NodeId node = net::kInvalidNode;  ///< network address
  std::uint32_t queue_head = kNil;       ///< service queue (shared pool)
  std::uint32_t queue_tail = kNil;
  std::uint32_t queue_len = 0;
  std::uint32_t gen = 0;
  bool present = true;
  bool busy = false;
  bool live = false;
};

/// All mutable state of one control point.
struct CpState {
  double absence_time = std::numeric_limits<double>::quiet_NaN();
  double current_delay = std::numeric_limits<double>::quiet_NaN();
  /// Overlay neighbours learned from reply piggyback data, oldest first;
  /// only the first `overlay_count` entries are meaningful.
  std::array<net::NodeId, 4> overlay{};
  net::NodeId node = net::kInvalidNode;    ///< network address
  net::NodeId device = net::kInvalidNode;  ///< monitored device
  std::uint32_t gen = 0;
  std::uint8_t overlay_count = 0;
  std::uint8_t dissemination_ttl = 0;
  bool running = false;
  bool device_present = true;
  bool notified_peers = false;
  bool live = false;
};

class EntityArena {
 public:
  static constexpr std::uint32_t kNil = DeviceState::kNil;

  // --- devices ---------------------------------------------------------

  DeviceId add_device() {
    const std::uint32_t index = devices_.acquire();
    DeviceState& st = devices_[index];
    const std::uint32_t gen = st.gen;
    st = DeviceState{};
    st.gen = gen;
    st.live = true;
    device_high_water_ = std::max(device_high_water_, devices_.in_use());
    return DeviceId{pack(gen, index)};
  }

  void remove_device(DeviceId id) {
    DeviceState& st = device(id);
    clear_queue(st);
    st.live = false;
    ++st.gen;  // invalidates every outstanding handle to this slot
    devices_.release(id.index());
  }

  DeviceState& device(DeviceId id) noexcept {
    PROBEMON_CONTRACT(valid(id), "stale or invalid DeviceId");
    return devices_[id.index()];
  }
  const DeviceState& device(DeviceId id) const noexcept {
    PROBEMON_CONTRACT(valid(id), "stale or invalid DeviceId");
    return devices_[id.index()];
  }

  bool valid(DeviceId id) const noexcept {
    if (!id.is_valid_handle() || id.index() >= devices_.capacity()) {
      return false;
    }
    const DeviceState& st = devices_[id.index()];
    return st.live && st.gen == id.generation();
  }

  // --- control points --------------------------------------------------

  CpId add_cp() {
    const std::uint32_t index = cps_.acquire();
    CpState& st = cps_[index];
    const std::uint32_t gen = st.gen;
    st = CpState{};
    st.gen = gen;
    st.live = true;
    cp_high_water_ = std::max(cp_high_water_, cps_.in_use());
    return CpId{pack(gen, index)};
  }

  void remove_cp(CpId id) {
    CpState& st = cp(id);
    st.live = false;
    ++st.gen;
    cps_.release(id.index());
  }

  CpState& cp(CpId id) noexcept {
    PROBEMON_CONTRACT(valid(id), "stale or invalid CpId");
    return cps_[id.index()];
  }
  const CpState& cp(CpId id) const noexcept {
    PROBEMON_CONTRACT(valid(id), "stale or invalid CpId");
    return cps_[id.index()];
  }

  bool valid(CpId id) const noexcept {
    if (!id.is_valid_handle() || id.index() >= cps_.capacity()) return false;
    const CpState& st = cps_[id.index()];
    return st.live && st.gen == id.generation();
  }

  // --- device service queues (one shared node pool) --------------------

  void queue_push(DeviceId id, const net::Message& msg) {
    DeviceState& st = device(id);
    const std::uint32_t node = queue_pool_.acquire();
    QueueNode& qn = queue_pool_[node];
    qn.msg = msg;
    qn.next = kNil;
    if (st.queue_tail == kNil) {
      st.queue_head = node;
    } else {
      queue_pool_[st.queue_tail].next = node;
    }
    st.queue_tail = node;
    ++st.queue_len;
    queue_high_water_ = std::max(queue_high_water_, queue_pool_.in_use());
  }

  /// Pop the oldest queued message into `out`; false when empty.
  bool queue_pop(DeviceId id, net::Message& out) {
    DeviceState& st = device(id);
    if (st.queue_head == kNil) return false;
    const std::uint32_t node = st.queue_head;
    QueueNode& qn = queue_pool_[node];
    out = qn.msg;
    st.queue_head = qn.next;
    if (st.queue_head == kNil) st.queue_tail = kNil;
    --st.queue_len;
    queue_pool_.release(node);
    return true;
  }

  void queue_clear(DeviceId id) { clear_queue(device(id)); }

  // --- occupancy / telemetry ------------------------------------------

  std::size_t device_slots() const noexcept { return devices_.capacity(); }
  std::size_t device_in_use() const noexcept { return devices_.in_use(); }
  std::size_t device_high_water() const noexcept {
    return device_high_water_;
  }
  std::size_t cp_slots() const noexcept { return cps_.capacity(); }
  std::size_t cp_in_use() const noexcept { return cps_.in_use(); }
  std::size_t cp_high_water() const noexcept { return cp_high_water_; }
  std::size_t queue_pool_slots() const noexcept {
    return queue_pool_.capacity();
  }
  std::size_t queue_pool_in_use() const noexcept {
    return queue_pool_.in_use();
  }
  std::size_t queue_pool_high_water() const noexcept {
    return queue_high_water_;
  }

 private:
  struct QueueNode {
    net::Message msg{};
    std::uint32_t next = kNil;
  };

  static constexpr std::uint64_t pack(std::uint32_t gen,
                                      std::uint32_t index) noexcept {
    return (static_cast<std::uint64_t>(gen) << 32) |
           (static_cast<std::uint64_t>(index) + 1);
  }

  void clear_queue(DeviceState& st) {
    std::uint32_t node = st.queue_head;
    while (node != kNil) {
      const std::uint32_t next = queue_pool_[node].next;
      queue_pool_.release(node);
      node = next;
    }
    st.queue_head = kNil;
    st.queue_tail = kNil;
    st.queue_len = 0;
  }

  util::SlabPool<DeviceState> devices_;
  util::SlabPool<CpState> cps_;
  util::SlabPool<QueueNode> queue_pool_;
  std::size_t device_high_water_ = 0;
  std::size_t cp_high_water_ = 0;
  std::size_t queue_high_water_ = 0;
};

}  // namespace probemon::core
