#include "core/sapp_control_point.hpp"

namespace probemon::core {

SappControlPoint::SappControlPoint(des::Simulation& sim, net::Network& network,
                                   EntityArena& arena, net::NodeId device,
                                   SappCpConfig config,
                                   ProtocolObserver* observer)
    : ControlPointBase(sim, network, arena, device, config.timeouts,
                       config.continue_after_absence, observer),
      config_(config),
      adaptation_(config_) {
  config_.validate();
}

double SappControlPoint::delay_after_success(const net::Message& reply) {
  // Observation instant for the load estimate: reply arrival for a clean
  // first-probe success; the retransmission's send time otherwise (paper:
  // "In case of a failed probe, the time at which the retransmitted probe
  // has been sent is taken").
  const double t_obs =
      reply.attempt == 0 ? sim().now() : cycle().last_send_time();
  return adaptation_.observe(reply.pc, t_obs);
}

void SappControlPoint::on_stale_reply(const net::Message& reply) {
  if (!config_.use_every_reply) return;
  // Duplicate replies (the device answers every probe of a retransmitted
  // cycle) are load observations too: their (pc, t) pair spans only the
  // inter-duplicate gap, so L_exp spikes and the delay doubles. The new
  // delta takes effect when the next cycle completes.
  adaptation_.observe(reply.pc, sim().now());
}

}  // namespace probemon::core
