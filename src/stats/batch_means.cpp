#include "stats/batch_means.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/student_t.hpp"

namespace probemon::stats {

BatchMeans::BatchMeans(std::uint64_t batch_size, std::uint64_t warmup)
    : batch_size_(batch_size), warmup_(warmup) {
  if (batch_size == 0) {
    throw std::invalid_argument("BatchMeans: batch_size must be > 0");
  }
}

void BatchMeans::add(double x) {
  if (discarded_ < warmup_) {
    ++discarded_;
    return;
  }
  ++observations_;
  current_sum_ += x;
  if (++current_count_ == batch_size_) {
    batch_means_.push_back(current_sum_ / static_cast<double>(batch_size_));
    current_sum_ = 0;
    current_count_ = 0;
  }
}

double BatchMeans::mean() const noexcept {
  if (batch_means_.empty()) return std::numeric_limits<double>::quiet_NaN();
  double s = 0;
  for (double m : batch_means_) s += m;
  return s / static_cast<double>(batch_means_.size());
}

double BatchMeans::batch_variance() const noexcept {
  if (batch_means_.size() < 2) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  Welford w;
  for (double m : batch_means_) w.add(m);
  return w.variance();
}

ConfidenceInterval BatchMeans::interval(double confidence) const {
  if (batch_means_.size() < 2) {
    throw std::logic_error("BatchMeans::interval: need >= 2 batches");
  }
  const auto n = batch_means_.size();
  const double mu = mean();
  const double s2 = batch_variance();
  const double t =
      student_t_critical(confidence, static_cast<int>(n) - 1);
  const double hw = t * std::sqrt(s2 / static_cast<double>(n));
  return ConfidenceInterval{mu, hw, confidence};
}

bool BatchMeans::converged(double rel_half_width, double confidence,
                           std::uint64_t min_batches) const {
  if (batch_means_.size() < std::max<std::uint64_t>(min_batches, 2)) {
    return false;
  }
  const auto ci = interval(confidence);
  if (ci.mean == 0.0) return ci.half_width <= rel_half_width;
  return ci.half_width <= rel_half_width * std::fabs(ci.mean);
}

double BatchMeans::lag1_autocorrelation() const {
  const auto n = batch_means_.size();
  if (n < 3) return std::numeric_limits<double>::quiet_NaN();
  const double mu = mean();
  double num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = batch_means_[i] - mu;
    den += d * d;
    if (i + 1 < n) num += d * (batch_means_[i + 1] - mu);
  }
  if (den == 0) return 0.0;
  return num / den;
}

}  // namespace probemon::stats
