// Sample autocorrelation function — diagnostic for batch-size selection
// in steady-state estimation and for quantifying the oscillation the
// paper observes in SAPP per-CP delays.
#pragma once

#include <vector>

namespace probemon::stats {

/// Sample autocorrelation at lags 0..max_lag. acf[0] == 1 by definition
/// (unless the series is constant, in which case all entries are 0).
std::vector<double> autocorrelation(const std::vector<double>& xs,
                                    std::size_t max_lag);

/// Smallest lag k in [1, max_lag] with |acf[k]| < threshold, or max_lag+1
/// if none — a crude effective decorrelation time.
std::size_t decorrelation_lag(const std::vector<double>& xs,
                              std::size_t max_lag, double threshold = 0.1);

}  // namespace probemon::stats
