#include "stats/autocorr.hpp"

#include <cmath>

namespace probemon::stats {

std::vector<double> autocorrelation(const std::vector<double>& xs,
                                    std::size_t max_lag) {
  const std::size_t n = xs.size();
  std::vector<double> acf(max_lag + 1, 0.0);
  if (n == 0) return acf;
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(n);
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  if (var == 0) return acf;  // constant series
  for (std::size_t k = 0; k <= max_lag && k < n; ++k) {
    double num = 0;
    for (std::size_t i = 0; i + k < n; ++i) {
      num += (xs[i] - mean) * (xs[i + k] - mean);
    }
    acf[k] = num / var;
  }
  return acf;
}

std::size_t decorrelation_lag(const std::vector<double>& xs,
                              std::size_t max_lag, double threshold) {
  const auto acf = autocorrelation(xs, max_lag);
  for (std::size_t k = 1; k < acf.size(); ++k) {
    if (std::fabs(acf[k]) < threshold) return k;
  }
  return max_lag + 1;
}

}  // namespace probemon::stats
