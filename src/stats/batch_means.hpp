// Batch-means steady-state estimation.
//
// The paper's steady-state results were obtained with MOBIUS' batch-mean
// technique at confidence level 0.95 and (relative) confidence interval
// 0.1. This module reimplements that estimator:
//
//   * Observations stream in; they are grouped into batches of fixed size.
//   * Batch means are treated as ~iid samples; mean and Student-t CI are
//     computed over them.
//   * `converged(rel_half_width)` implements the sequential stopping rule
//     "CI half-width <= rel * |grand mean|".
//   * An optional warm-up (initial-transient) count discards the first W
//     observations (Welch-style truncation, chosen by the caller).
//
// For batch-size adequacy, `lag1_autocorrelation()` exposes the lag-1
// autocorrelation of the batch means; |rho1| small (< ~0.1) indicates the
// batches are long enough to be treated as independent.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/welford.hpp"

namespace probemon::stats {

struct ConfidenceInterval {
  double mean = 0;
  double half_width = 0;
  double confidence = 0;
  double lo() const noexcept { return mean - half_width; }
  double hi() const noexcept { return mean + half_width; }
  bool contains(double x) const noexcept { return lo() <= x && x <= hi(); }
};

class BatchMeans {
 public:
  /// `batch_size` observations per batch; the first `warmup` observations
  /// are discarded entirely.
  explicit BatchMeans(std::uint64_t batch_size, std::uint64_t warmup = 0);

  void add(double x);

  std::uint64_t observation_count() const noexcept { return observations_; }
  std::uint64_t discarded_count() const noexcept { return discarded_; }
  std::uint64_t batch_count() const noexcept { return batch_means_.size(); }
  const std::vector<double>& batch_means() const noexcept {
    return batch_means_;
  }

  /// Grand mean of completed batches (NaN with no complete batch).
  double mean() const noexcept;
  /// Variance across batch means.
  double batch_variance() const noexcept;

  /// Student-t confidence interval over batch means; requires >= 2 batches.
  ConfidenceInterval interval(double confidence = 0.95) const;

  /// Sequential stopping rule: at least `min_batches` complete batches and
  /// CI half-width <= rel_half_width * |mean|.
  bool converged(double rel_half_width, double confidence = 0.95,
                 std::uint64_t min_batches = 10) const;

  /// Lag-1 autocorrelation of the batch-mean sequence (NaN if < 3 batches).
  double lag1_autocorrelation() const;

 private:
  std::uint64_t batch_size_;
  std::uint64_t warmup_;
  std::uint64_t discarded_ = 0;
  std::uint64_t observations_ = 0;
  double current_sum_ = 0;
  std::uint64_t current_count_ = 0;
  std::vector<double> batch_means_;
};

}  // namespace probemon::stats
