#include "stats/student_t.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace probemon::stats {

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("normal_quantile: p must be in (0,1)");
  }
  // Peter Acklam's rational approximation with one Halley refinement step.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // Halley refinement using the normal CDF via erfc.
  const double e =
      0.5 * std::erfc(-x / std::numbers::sqrt2) - p;
  const double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double student_t_quantile(double p, int dof) {
  if (dof < 1) throw std::invalid_argument("student_t_quantile: dof >= 1");
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("student_t_quantile: p must be in (0,1)");
  }
  if (dof == 1) {
    // Cauchy quantile.
    return std::tan(std::numbers::pi * (p - 0.5));
  }
  if (dof == 2) {
    const double a = 4.0 * p * (1.0 - p);
    return 2.0 * (p - 0.5) * std::sqrt(2.0 / a);
  }
  // Hill's (1970) expansion around the normal quantile.
  const double z = normal_quantile(p);
  const double g = static_cast<double>(dof);
  const double z2 = z * z;
  const double t1 = z * (z2 + 1.0) / (4.0 * g);
  const double t2 = z * (5.0 * z2 * z2 + 16.0 * z2 + 3.0) / (96.0 * g * g);
  const double t3 =
      z * (3.0 * z2 * z2 * z2 + 19.0 * z2 * z2 + 17.0 * z2 - 15.0) /
      (384.0 * g * g * g);
  const double t4 = z *
                    (79.0 * z2 * z2 * z2 * z2 + 776.0 * z2 * z2 * z2 +
                     1482.0 * z2 * z2 - 1920.0 * z2 - 945.0) /
                    (92160.0 * g * g * g * g);
  return z + t1 + t2 + t3 + t4;
}

double student_t_critical(double confidence, int dof) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("student_t_critical: confidence in (0,1)");
  }
  return student_t_quantile(0.5 + confidence / 2.0, dof);
}

}  // namespace probemon::stats
