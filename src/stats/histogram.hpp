// Histograms and streaming quantiles.
//
//   * Histogram: fixed-width bins over [lo, hi) with under/overflow bins,
//     exact count bookkeeping, and interpolated quantiles.
//   * P2Quantile: Jain & Chlamtac's P^2 algorithm — O(1) memory streaming
//     estimate of a single quantile; used for detection-latency p99 where
//     storing all samples would be wasteful.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace probemon::stats {

class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

  /// Interpolated quantile q in [0,1]; counts under/overflow at the edges.
  double quantile(double q) const;

  /// Multi-line ASCII rendering (for bench/exploratory output).
  std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// P^2 single-quantile streaming estimator (Jain & Chlamtac 1985).
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);
  std::uint64_t count() const noexcept { return n_; }
  /// Current estimate; exact for the first five samples.
  double value() const;

 private:
  double parabolic(int i, double d) const;
  double linear(int i, double d) const;

  double q_;
  std::uint64_t n_ = 0;
  double heights_[5]{};
  double positions_[5]{};
  double desired_[5]{};
  double increments_[5]{};
};

}  // namespace probemon::stats
