#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace probemon::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi > lo required");
  if (bins == 0) throw std::invalid_argument("Histogram: bins > 0 required");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
  ++counts_[idx];
}

double Histogram::quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("Histogram::quantile: q in [0,1]");
  }
  if (total_ == 0) return std::numeric_limits<double>::quiet_NaN();
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_bar_width));
    os << util::pad_left(util::format_fixed(bin_lo(i), 3), 10) << " .. "
       << util::pad_left(util::format_fixed(bin_hi(i), 3), 10) << " | "
       << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  if (underflow_ || overflow_) {
    os << "(underflow " << underflow_ << ", overflow " << overflow_ << ")\n";
  }
  return os.str();
}

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0 && q < 1.0)) {
    throw std::invalid_argument("P2Quantile: q in (0,1)");
  }
  desired_[0] = 1;
  desired_[1] = 1 + 2 * q;
  desired_[2] = 1 + 4 * q;
  desired_[3] = 3 + 2 * q;
  desired_[4] = 5;
  increments_[0] = 0;
  increments_[1] = q / 2;
  increments_[2] = q;
  increments_[3] = (1 + q) / 2;
  increments_[4] = 1;
}

double P2Quantile::parabolic(int i, double d) const {
  return heights_[i] +
         d / (positions_[i + 1] - positions_[i - 1]) *
             ((positions_[i] - positions_[i - 1] + d) *
                  (heights_[i + 1] - heights_[i]) /
                  (positions_[i + 1] - positions_[i]) +
              (positions_[i + 1] - positions_[i] - d) *
                  (heights_[i] - heights_[i - 1]) /
                  (positions_[i] - positions_[i - 1]));
}

double P2Quantile::linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    heights_[n_++] = x;
    if (n_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    }
    return;
  }
  ++n_;
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (d <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      double candidate = parabolic(i, sign);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = linear(i, sign);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (n_ < 5) {
    // Exact small-sample quantile on the sorted prefix.
    std::vector<double> v(heights_, heights_ + n_);
    std::sort(v.begin(), v.end());
    const double idx = q_ * static_cast<double>(n_ - 1);
    const auto i = static_cast<std::size_t>(idx);
    const double frac = idx - static_cast<double>(i);
    if (i + 1 < v.size()) return v[i] + frac * (v[i + 1] - v[i]);
    return v[i];
  }
  return heights_[2];
}

}  // namespace probemon::stats
