// Quantiles of the standard normal and Student-t distributions.
//
// Needed for batch-means confidence intervals (the paper's steady-state
// analysis used CI half-width 0.1 at confidence 0.95). We implement:
//   * normal_quantile: Acklam's rational approximation (|eps| < 1.15e-9).
//   * student_t_quantile: exact closed forms for dof 1 and 2, and the
//     Hill (1970) asymptotic expansion otherwise — accurate to ~1e-6 for
//     dof >= 3, far tighter than any simulation noise here.
#pragma once

namespace probemon::stats {

/// Inverse CDF of N(0,1); p in (0,1).
double normal_quantile(double p);

/// Inverse CDF of Student-t with `dof` degrees of freedom; p in (0,1).
double student_t_quantile(double p, int dof);

/// Two-sided critical value: t such that P(|T| <= t) = confidence.
double student_t_critical(double confidence, int dof);

}  // namespace probemon::stats
