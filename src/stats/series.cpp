#include "stats/series.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace probemon::stats {

void TimeSeries::add(double t, double value) {
  if (!samples_.empty() && t < samples_.back().t) {
    throw std::logic_error("TimeSeries::add: time reversed");
  }
  samples_.push_back(Sample{t, value});
}

TimeSeries TimeSeries::slice(double t0, double t1) const {
  TimeSeries out(name_);
  auto lo = std::lower_bound(
      samples_.begin(), samples_.end(), t0,
      [](const Sample& s, double t) { return s.t < t; });
  for (auto it = lo; it != samples_.end() && it->t < t1; ++it) {
    out.samples_.push_back(*it);
  }
  return out;
}

Welford TimeSeries::summary() const {
  Welford w;
  for (const auto& s : samples_) w.add(s.value);
  return w;
}

Welford TimeSeries::summary(double t0, double t1) const {
  Welford w;
  for (const auto& s : samples_) {
    if (s.t >= t0 && s.t < t1) w.add(s.value);
  }
  return w;
}

double TimeSeries::value_at(double t) const {
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](double tt, const Sample& s) { return tt < s.t; });
  if (it == samples_.begin()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return std::prev(it)->value;
}

TimeSeries TimeSeries::resample(double t0, double t1, double dt) const {
  if (!(dt > 0)) throw std::invalid_argument("resample: dt > 0");
  TimeSeries out(name_);
  for (double t = t0; t <= t1 + 1e-12; t += dt) {
    out.add(t, value_at(t));
  }
  return out;
}

TimeSeries TimeSeries::decimate(std::size_t max_points) const {
  if (max_points < 2 || samples_.size() <= max_points) return *this;
  TimeSeries out(name_);
  const double stride = static_cast<double>(samples_.size() - 1) /
                        static_cast<double>(max_points - 1);
  for (std::size_t i = 0; i < max_points; ++i) {
    const auto idx = static_cast<std::size_t>(
        std::llround(static_cast<double>(i) * stride));
    out.samples_.push_back(samples_[std::min(idx, samples_.size() - 1)]);
  }
  return out;
}

RateMeter::RateMeter(double window, double sample_every)
    : window_(window), sample_every_(sample_every), next_sample_t_(0) {
  if (!(window > 0)) throw std::invalid_argument("RateMeter: window > 0");
  if (!(sample_every > 0)) {
    throw std::invalid_argument("RateMeter: sample_every > 0");
  }
}

void RateMeter::record(double t) {
  flush(t);
  if (!events_.empty() && t < events_.back()) {
    throw std::logic_error("RateMeter::record: time reversed");
  }
  events_.push_back(t);
  ++total_events_;
}

void RateMeter::flush(double t) {
  if (!started_) {
    next_sample_t_ = sample_every_;
    started_ = true;
  }
  while (next_sample_t_ <= t) {
    series_.add(next_sample_t_, rate_at(next_sample_t_));
    next_sample_t_ += sample_every_;
    // Garbage-collect events that can no longer matter.
    const double horizon = next_sample_t_ - window_;
    while (tail_ < events_.size() && events_[tail_] <= horizon - window_) {
      ++tail_;
    }
    if (tail_ > 65536 && tail_ > events_.size() / 2) {
      events_.erase(events_.begin(),
                    events_.begin() + static_cast<std::ptrdiff_t>(tail_));
      tail_ = 0;
    }
  }
}

double RateMeter::rate_at(double t) const {
  // Count events in (t - window, t].
  auto lo = std::upper_bound(events_.begin() + static_cast<std::ptrdiff_t>(tail_),
                             events_.end(), t - window_);
  auto hi = std::upper_bound(lo, events_.end(), t);
  return static_cast<double>(hi - lo) / window_;
}

double jain_fairness(const std::vector<double>& xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0, sum2 = 0;
  for (double x : xs) {
    if (x < 0) throw std::invalid_argument("jain_fairness: negative share");
    sum += x;
    sum2 += x * x;
  }
  if (sum2 == 0) return 1.0;  // all-zero: vacuously fair
  return sum * sum / (static_cast<double>(xs.size()) * sum2);
}

}  // namespace probemon::stats
