// Online moment accumulation (Welford / Pébay update formulas).
//
// Numerically stable single-pass mean/variance/skewness/kurtosis with O(1)
// state, plus min/max. Supports merging two accumulators (parallel batch
// reduction) via the pairwise update. Used for every scalar metric the
// simulations report.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace probemon::stats {

class Welford {
 public:
  void add(double x) noexcept {
    const double n1 = static_cast<double>(n_);
    ++n_;
    const double n = static_cast<double>(n_);
    const double delta = x - m1_;
    const double delta_n = delta / n;
    const double delta_n2 = delta_n * delta_n;
    const double term1 = delta * delta_n * n1;
    m1_ += delta_n;
    m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) +
           6.0 * delta_n2 * m2_ - 4.0 * delta_n * m3_;
    m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
    m2_ += term1;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merge another accumulator into this one (Pébay's formulas).
  void merge(const Welford& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double n = na + nb;
    const double delta = other.m1_ - m1_;
    const double delta2 = delta * delta;
    const double delta3 = delta2 * delta;
    const double delta4 = delta2 * delta2;

    const double m1 = (na * m1_ + nb * other.m1_) / n;
    const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
    const double m3 = m3_ + other.m3_ +
                      delta3 * na * nb * (na - nb) / (n * n) +
                      3.0 * delta * (na * other.m2_ - nb * m2_) / n;
    const double m4 =
        m4_ + other.m4_ +
        delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
        6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
        4.0 * delta * (na * other.m3_ - nb * m3_) / n;

    n_ += other.n_;
    m1_ = m1;
    m2_ = m2;
    m3_ = m3;
    m4_ = m4;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  std::uint64_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }

  double mean() const noexcept {
    return n_ ? m1_ : std::numeric_limits<double>::quiet_NaN();
  }
  /// Sample (Bessel-corrected) variance.
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1)
                  : std::numeric_limits<double>::quiet_NaN();
  }
  /// Population variance (divide by n).
  double population_variance() const noexcept {
    return n_ > 0 ? m2_ / static_cast<double>(n_)
                  : std::numeric_limits<double>::quiet_NaN();
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

  double skewness() const noexcept {
    if (n_ < 2 || m2_ <= 0) return std::numeric_limits<double>::quiet_NaN();
    const double n = static_cast<double>(n_);
    return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
  }
  /// Excess kurtosis.
  double kurtosis() const noexcept {
    if (n_ < 2 || m2_ <= 0) return std::numeric_limits<double>::quiet_NaN();
    const double n = static_cast<double>(n_);
    return n * m4_ / (m2_ * m2_) - 3.0;
  }

  double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  void reset() noexcept { *this = Welford{}; }

 private:
  std::uint64_t n_ = 0;
  double m1_ = 0, m2_ = 0, m3_ = 0, m4_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace probemon::stats
