// Time-series recording: the raw material for every figure.
//
//   * TimeSeries: append-only (t, value) samples with slicing, resampling,
//     and summary statistics over windows — used for the per-CP probe
//     frequency traces in Figs 2-4 and the device-load trace in Fig 5.
//   * RateMeter: converts point events (probe arrivals) into a windowed
//     rate signal, i.e. the "device load in probes/s" the paper plots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/welford.hpp"

namespace probemon::stats {

struct Sample {
  double t;
  double value;
};

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Append a sample; time must be non-decreasing.
  void add(double t, double value);

  bool empty() const noexcept { return samples_.empty(); }
  std::size_t size() const noexcept { return samples_.size(); }
  const Sample& operator[](std::size_t i) const { return samples_[i]; }
  const std::vector<Sample>& samples() const noexcept { return samples_; }
  const Sample& front() const { return samples_.front(); }
  const Sample& back() const { return samples_.back(); }

  /// Samples with t in [t0, t1).
  TimeSeries slice(double t0, double t1) const;

  /// Value-moment summary over all samples (count-weighted).
  Welford summary() const;
  /// Summary over a window.
  Welford summary(double t0, double t1) const;

  /// Piecewise-constant (sample-and-hold) value at time t; NaN before the
  /// first sample.
  double value_at(double t) const;

  /// Resample as sample-and-hold on a regular grid [t0, t1] with step dt.
  TimeSeries resample(double t0, double t1, double dt) const;

  /// Keep at most `max_points` samples via uniform stride decimation
  /// (first/last always kept). Useful before CSV export of long runs.
  TimeSeries decimate(std::size_t max_points) const;

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

/// Sliding/fixed-window event-rate estimator.
///
/// `record(t)` marks one event (e.g. a probe arriving at the device).
/// The instantaneous rate at time t is (#events in (t - window, t]) /
/// window. `series()` returns the rate sampled every `sample_every`
/// seconds, which is what Fig 5 plots.
class RateMeter {
 public:
  RateMeter(double window, double sample_every);

  void record(double t);
  /// Advance measurement to time t (emits rate samples up to t).
  void flush(double t);

  double window() const noexcept { return window_; }
  const TimeSeries& series() const noexcept { return series_; }
  TimeSeries& mutable_series() noexcept { return series_; }

  /// Rate over (t - window, t] given events recorded so far.
  double rate_at(double t) const;

  std::uint64_t event_count() const noexcept { return total_events_; }

 private:
  double window_;
  double sample_every_;
  double next_sample_t_;
  bool started_ = false;
  std::vector<double> events_;  // event times, ascending
  std::size_t tail_ = 0;        // first event inside current window
  std::uint64_t total_events_ = 0;
  TimeSeries series_;
};

/// Jain's fairness index over non-negative allocations:
/// (sum x)^2 / (n * sum x^2); 1.0 = perfectly fair, 1/n = one hog.
double jain_fairness(const std::vector<double>& xs);

}  // namespace probemon::stats
