// Ordinary least-squares line fit over (x, y) samples.
//
// Used to *quantify* trends the paper describes qualitatively: Fig 2's
// "one CP is probing less and less frequent" is a negative slope of the
// frequency series; a recovered CP would show slope >= 0.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace probemon::stats {

class LinearFit {
 public:
  void add(double x, double y) noexcept {
    ++n_;
    sx_ += x;
    sy_ += y;
    sxx_ += x * x;
    sxy_ += x * y;
    syy_ += y * y;
  }

  std::uint64_t count() const noexcept { return n_; }

  /// Slope of the least-squares line (NaN with < 2 points or zero x
  /// variance).
  double slope() const noexcept {
    const double n = static_cast<double>(n_);
    const double denom = n * sxx_ - sx_ * sx_;
    if (n_ < 2 || denom == 0) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return (n * sxy_ - sx_ * sy_) / denom;
  }

  double intercept() const noexcept {
    if (n_ < 2) return std::numeric_limits<double>::quiet_NaN();
    const double n = static_cast<double>(n_);
    return (sy_ - slope() * sx_) / n;
  }

  /// Pearson correlation coefficient r (NaN if degenerate).
  double correlation() const noexcept {
    const double n = static_cast<double>(n_);
    const double vx = n * sxx_ - sx_ * sx_;
    const double vy = n * syy_ - sy_ * sy_;
    if (n_ < 2 || vx <= 0 || vy <= 0) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return (n * sxy_ - sx_ * sy_) / std::sqrt(vx * vy);
  }

  /// Predicted y at x.
  double at(double x) const noexcept { return intercept() + slope() * x; }

 private:
  std::uint64_t n_ = 0;
  double sx_ = 0, sy_ = 0, sxx_ = 0, sxy_ = 0, syy_ = 0;
};

}  // namespace probemon::stats
