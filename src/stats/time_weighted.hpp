// Time-weighted statistics of a piecewise-constant signal.
//
// For metrics like "mean network buffer occupancy" (the paper reports
// ~0.004) the right estimator weights each value by how long the signal
// held it, not by how many times it changed. Record transitions with
// set(t, value); query the integral average over the observation window.
#pragma once

#include <cmath>
#include <limits>
#include <stdexcept>

namespace probemon::stats {

class TimeWeighted {
 public:
  /// Record that the signal takes `value` from time `t` onward.
  /// Times must be non-decreasing.
  void set(double t, double value) {
    if (has_value_) {
      if (t < last_t_) throw std::logic_error("TimeWeighted: time reversed");
      accumulate_to(t);
    } else {
      start_t_ = t;
      min_ = max_ = value;
    }
    last_t_ = t;
    value_ = value;
    has_value_ = true;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  /// Time-average over [start, t]; requires t >= last set() time.
  double mean_until(double t) const {
    if (!has_value_) return std::numeric_limits<double>::quiet_NaN();
    if (t < last_t_) throw std::logic_error("TimeWeighted: time reversed");
    const double total = (t - start_t_);
    if (total <= 0) return value_;
    const double area = area_ + value_ * (t - last_t_);
    return area / total;
  }

  /// Time-weighted variance over [start, t] (population style).
  double variance_until(double t) const {
    if (!has_value_) return std::numeric_limits<double>::quiet_NaN();
    const double total = (t - start_t_);
    if (total <= 0) return 0.0;
    const double area = area_ + value_ * (t - last_t_);
    const double area2 = area2_ + value_ * value_ * (t - last_t_);
    const double mu = area / total;
    return std::max(0.0, area2 / total - mu * mu);
  }

  double current() const noexcept { return value_; }
  double min() const noexcept {
    return has_value_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const noexcept {
    return has_value_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  bool empty() const noexcept { return !has_value_; }

 private:
  void accumulate_to(double t) {
    area_ += value_ * (t - last_t_);
    area2_ += value_ * value_ * (t - last_t_);
  }

  bool has_value_ = false;
  double start_t_ = 0, last_t_ = 0;
  double value_ = 0;
  double area_ = 0, area2_ = 0;
  double min_ = 0, max_ = 0;
};

}  // namespace probemon::stats
