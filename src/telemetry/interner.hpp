// LabelInterner: append-only string -> u32 id table with lock-free reads.
//
// Fleet-scale registries hang millions of label sets off a handful of
// distinct strings ("device", "transport", per-entity id values). The
// interner stores each distinct string once and hands out a dense u32
// id; hot-path registration and per-entity label sets then carry ids
// instead of allocating and comparing strings, and the sharded registry
// keys its maps by id sequences (see sharded_registry.hpp).
//
// Concurrency contract:
//   * intern() — lock-free fast path when the string is already known
//     (probe a published open-addressed table); takes the writer mutex
//     only on a miss to append. Ids are dense, starting at 0, and never
//     change or disappear.
//   * str(id) / size() — always lock-free: storage is block-based (no
//     reallocation ever moves a published string) and the element count
//     is released after the string is fully constructed.
//
// Id 0 is always the empty string, so "no help text" needs no sentinel.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace probemon::telemetry {

class LabelInterner {
 public:
  LabelInterner();

  LabelInterner(const LabelInterner&) = delete;
  LabelInterner& operator=(const LabelInterner&) = delete;

  /// Find-or-append. Throws std::length_error past kMaxStrings distinct
  /// strings (2^22 — a capacity backstop, not a tuning knob).
  std::uint32_t intern(std::string_view s) PROBEMON_EXCLUDES(write_mutex_);

  /// Lock-free id -> string. `id` must have come from intern(); an
  /// out-of-range id returns an empty view.
  std::string_view str(std::uint32_t id) const noexcept;

  /// Distinct strings interned so far (lock-free).
  std::size_t size() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  /// Process-wide interner. Registries default to this one so ids are
  /// comparable across registries (merge, collector, sweep workers).
  static LabelInterner& global();

  static constexpr std::size_t kMaxStrings = std::size_t{1} << 22;

 private:
  static constexpr std::size_t kBlockShift = 10;
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;
  static constexpr std::size_t kMaxBlocks = kMaxStrings / kBlockSize;

  struct Block {
    std::string slots[kBlockSize];
  };

  /// Open-addressed id table (slot = id + 1, 0 = empty). Grown by
  /// publishing a rehashed copy; old tables are retired, not freed,
  /// so lock-free readers never race a destructor.
  struct Table {
    explicit Table(std::size_t cap)
        : capacity(cap),
          slots(std::make_unique<std::atomic<std::uint32_t>[]>(cap)) {}
    const std::size_t capacity;  ///< power of two
    std::unique_ptr<std::atomic<std::uint32_t>[]> slots;
  };

  static std::size_t hash(std::string_view s) noexcept {
    return std::hash<std::string_view>{}(s);
  }

  /// Probe `table` for `s`. Returns id, or UINT32_MAX on miss.
  std::uint32_t find_in(const Table& table, std::string_view s,
                        std::size_t h) const noexcept;
  void insert_slot(Table& table, std::uint32_t id, std::size_t h) noexcept;

  util::Mutex write_mutex_{"telemetry.LabelInterner"};
  // count_/table_/blocks_ are the lock-free publication points (release
  // stores under write_mutex_, acquire loads anywhere) — deliberately
  // not GUARDED_BY; the mutex only serializes writers.
  std::atomic<std::uint32_t> count_{0};
  std::atomic<Table*> table_;
  /// current + retired
  std::vector<std::unique_ptr<Table>> tables_ PROBEMON_GUARDED_BY(write_mutex_);
  std::vector<std::unique_ptr<Block>> block_storage_
      PROBEMON_GUARDED_BY(write_mutex_);
  std::atomic<Block*> blocks_[kMaxBlocks] = {};
};

/// Interned label set: (name id, value id) pairs in registration order.
using LabelIds = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

}  // namespace probemon::telemetry
