// Bridges: bind existing components' internal tallies into a Registry.
//
// Components that already count things (the DES scheduler, simulations,
// runtime devices) should not grow a telemetry dependency; instead these
// helpers register *callback* metrics that read the component's inline
// accessors at snapshot time. The component must outlive the registry
// entries (remove() them first otherwise).
//
// Header-only on purpose: everything called here is an inline accessor,
// so the telemetry library keeps zero link dependencies on des/.
#pragma once

#include <string>

#include "des/scheduler.hpp"
#include "des/simulation.hpp"
#include "telemetry/registry.hpp"

namespace probemon::telemetry {

/// Scheduler health: events executed, live queue depth, and the queue's
/// high-water mark (peak outstanding events — the DES analogue of a
/// server's max in-flight requests).
inline void instrument_scheduler(Registry& registry,
                                 const des::Scheduler& scheduler,
                                 const Labels& labels = {}) {
  registry.counter_callback(
      "probemon_des_events_executed_total",
      [&scheduler] { return static_cast<double>(scheduler.executed_count()); },
      "Events executed by the DES scheduler", labels);
  registry.gauge_callback(
      "probemon_des_queue_depth",
      [&scheduler] { return static_cast<double>(scheduler.pending_count()); },
      "Live (non-cancelled) pending events", labels);
  registry.gauge_callback(
      "probemon_des_queue_high_water",
      [&scheduler] {
        return static_cast<double>(scheduler.queue_high_water());
      },
      "Peak live pending events over the scheduler lifetime", labels);
  // Event-pool occupancy: slots only ever grow, so a steady-state model
  // must show probemon_des_pool_slots flat — the "kernel has stopped
  // allocating" health signal.
  registry.gauge_callback(
      "probemon_des_pool_slots",
      [&scheduler] { return static_cast<double>(scheduler.pool_slots()); },
      "Event-slot pool capacity (monotone)", labels);
  registry.gauge_callback(
      "probemon_des_pool_in_use",
      [&scheduler] { return static_cast<double>(scheduler.pool_in_use()); },
      "Event-pool slots currently holding a pending event", labels);
  registry.counter_callback(
      "probemon_des_callback_heap_spills_total",
      [] {
        return static_cast<double>(util::inline_function_heap_allocations());
      },
      "Callables too large for the InlineFunction buffer (process-wide)",
      labels);
}

/// Everything instrument_scheduler binds, plus virtual time and the
/// sim-time/wall-time speedup ratio of run_until()/run_all() calls.
inline void instrument_simulation(Registry& registry,
                                  const des::Simulation& sim,
                                  const Labels& labels = {}) {
  instrument_scheduler(registry, sim.scheduler(), labels);
  registry.gauge_callback(
      "probemon_des_sim_time_seconds", [&sim] { return sim.now(); },
      "Current virtual time", labels);
  registry.gauge_callback(
      "probemon_des_speedup_ratio", [&sim] { return sim.speedup_ratio(); },
      "Virtual seconds simulated per wall-clock second", labels);
}

}  // namespace probemon::telemetry
