// Bridges: bind existing components' internal tallies into a Registry.
//
// Components that already count things (the DES scheduler, simulations,
// runtime devices) should not grow a telemetry dependency; instead these
// helpers register *callback* metrics that read the component's inline
// accessors at snapshot time. The component must outlive the registry
// entries (remove() them first otherwise).
//
// Header-only on purpose: everything called here is an inline accessor,
// so the telemetry library keeps zero link dependencies on des/.
#pragma once

#include <string>

#include "core/entity_arena.hpp"
#include "des/scheduler.hpp"
#include "des/simulation.hpp"
#include "telemetry/registry.hpp"
#include "util/lock_order.hpp"

namespace probemon::telemetry {

/// Scheduler health: events executed, live queue depth, and the queue's
/// high-water mark (peak outstanding events — the DES analogue of a
/// server's max in-flight requests).
inline void instrument_scheduler(Registry& registry,
                                 const des::Scheduler& scheduler,
                                 const Labels& labels = {}) {
  registry.counter_callback(
      "probemon_des_events_executed_total",
      [&scheduler] { return static_cast<double>(scheduler.executed_count()); },
      "Events executed by the DES scheduler", labels);
  registry.gauge_callback(
      "probemon_des_queue_depth",
      [&scheduler] { return static_cast<double>(scheduler.pending_count()); },
      "Live (non-cancelled) pending events", labels);
  registry.gauge_callback(
      "probemon_des_queue_high_water",
      [&scheduler] {
        return static_cast<double>(scheduler.queue_high_water());
      },
      "Peak live pending events over the scheduler lifetime", labels);
  // Event-pool occupancy: slots only ever grow, so a steady-state model
  // must show probemon_des_pool_slots flat — the "kernel has stopped
  // allocating" health signal.
  registry.gauge_callback(
      "probemon_des_pool_slots",
      [&scheduler] { return static_cast<double>(scheduler.pool_slots()); },
      "Event-slot pool capacity (monotone)", labels);
  registry.gauge_callback(
      "probemon_des_pool_in_use",
      [&scheduler] { return static_cast<double>(scheduler.pool_in_use()); },
      "Event-pool slots currently holding a pending event", labels);
  registry.counter_callback(
      "probemon_des_callback_heap_spills_total",
      [] {
        return static_cast<double>(util::inline_function_heap_allocations());
      },
      "Callables too large for the InlineFunction buffer (process-wide)",
      labels);
  // Timer residency across the two-level hierarchy: most timers should
  // sit in the fine or coarse wheel; a growing overflow count means the
  // coarse span (~36 h at defaults) is being outrun.
  registry.gauge_callback(
      "probemon_des_wheel_fine_resident",
      [&scheduler] { return static_cast<double>(scheduler.fine_resident()); },
      "Pending events resident in the fine wheel", labels);
  registry.gauge_callback(
      "probemon_des_wheel_coarse_resident",
      [&scheduler] {
        return static_cast<double>(scheduler.coarse_resident());
      },
      "Pending events resident in the coarse wheel", labels);
  registry.gauge_callback(
      "probemon_des_wheel_overflow_resident",
      [&scheduler] {
        return static_cast<double>(scheduler.overflow_resident());
      },
      "Pending events beyond the coarse span (overflow heap)", labels);
}

/// Everything instrument_scheduler binds, plus virtual time and the
/// sim-time/wall-time speedup ratio of run_until()/run_all() calls.
inline void instrument_simulation(Registry& registry,
                                  const des::Simulation& sim,
                                  const Labels& labels = {}) {
  instrument_scheduler(registry, sim.scheduler(), labels);
  registry.gauge_callback(
      "probemon_des_sim_time_seconds", [&sim] { return sim.now(); },
      "Current virtual time", labels);
  registry.gauge_callback(
      "probemon_des_speedup_ratio", [&sim] { return sim.speedup_ratio(); },
      "Virtual seconds simulated per wall-clock second", labels);
}

/// Entity-arena occupancy: slot capacity (monotone), live entities, and
/// lifetime high-water marks for the device/CP slabs plus the shared
/// service-queue node pool. At steady state slots must plateau — the
/// fleet-scale "entities stopped allocating" signal, mirroring
/// probemon_des_pool_slots.
inline void instrument_entity_arena(Registry& registry,
                                    const core::EntityArena& arena,
                                    const Labels& labels = {}) {
  registry.gauge_callback(
      "probemon_entity_arena_device_slots",
      [&arena] { return static_cast<double>(arena.device_slots()); },
      "Device slab capacity (monotone)", labels);
  registry.gauge_callback(
      "probemon_entity_arena_device_in_use",
      [&arena] { return static_cast<double>(arena.device_in_use()); },
      "Live device entities", labels);
  registry.gauge_callback(
      "probemon_entity_arena_device_high_water",
      [&arena] { return static_cast<double>(arena.device_high_water()); },
      "Peak live device entities", labels);
  registry.gauge_callback(
      "probemon_entity_arena_cp_slots",
      [&arena] { return static_cast<double>(arena.cp_slots()); },
      "Control-point slab capacity (monotone)", labels);
  registry.gauge_callback(
      "probemon_entity_arena_cp_in_use",
      [&arena] { return static_cast<double>(arena.cp_in_use()); },
      "Live control-point entities", labels);
  registry.gauge_callback(
      "probemon_entity_arena_cp_high_water",
      [&arena] { return static_cast<double>(arena.cp_high_water()); },
      "Peak live control-point entities", labels);
  registry.gauge_callback(
      "probemon_entity_arena_queue_pool_slots",
      [&arena] { return static_cast<double>(arena.queue_pool_slots()); },
      "Shared service-queue node pool capacity (monotone)", labels);
  registry.gauge_callback(
      "probemon_entity_arena_queue_pool_in_use",
      [&arena] { return static_cast<double>(arena.queue_pool_in_use()); },
      "Service-queue nodes currently holding a queued probe", labels);
  registry.gauge_callback(
      "probemon_entity_arena_queue_pool_high_water",
      [&arena] { return static_cast<double>(arena.queue_pool_high_water()); },
      "Peak queued probes across all devices", labels);
}

/// Lock-order detector health (util::LockOrderRegistry): cycles seen by
/// the PROBEMON_CHECKED acquisition hooks. Stays 0 in production builds
/// (the hooks compile out), but the series existing everywhere keeps
/// dashboards/alert rules uniform across build flavours. The registry
/// is a process singleton, so this is safe on any store.
inline void instrument_lock_order(MetricStore& store,
                                  const Labels& labels = {}) {
  store.counter_callback(
      "probemon_lock_order_violations_total",
      [] {
        return static_cast<double>(
            util::LockOrderRegistry::instance().violations());
      },
      "Lock-order cycles detected by the checked-build deadlock detector",
      labels);
}

}  // namespace probemon::telemetry
