#include "telemetry/registry.hpp"

#include <cstring>
#include <stdexcept>

namespace probemon::telemetry {

namespace detail {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  return valid_metric_name(name) && name.find(':') == std::string::npos;
}

std::string make_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

namespace {

std::uint64_t double_bits(double v) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

void fill_histogram(Sample& s, const Histogram& h) {
  s.bounds = h.upper_bounds();
  s.buckets.reserve(h.bucket_count());
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    s.buckets.push_back(h.bucket(i));
  }
  s.count = h.count();
  s.sum = h.sum();
}

}  // namespace

// Counters fingerprint as the value itself; gauges as the bit pattern
// (set() to the identical value is not a change); histograms mix count
// and sum so replayed/reset states with equal counts still register.
std::uint64_t fingerprint_of(const Counter* counter, const Gauge* gauge,
                             const Histogram* histogram, bool has_callback,
                             double callback_value) {
  if (has_callback) return double_bits(callback_value);
  if (counter != nullptr) return counter->value();
  if (gauge != nullptr) return double_bits(gauge->value());
  if (histogram != nullptr) {
    return histogram->count() * 0x100000001b3ULL ^
           double_bits(histogram->sum());
  }
  return 0;
}

Sample sample_of(const std::string& name, const std::string& help,
                 const Labels& labels, MetricType type, const Counter* counter,
                 const Gauge* gauge, const Histogram* histogram,
                 bool has_callback, double callback_value) {
  Sample s;
  s.name = name;
  s.help = help;
  s.labels = labels;
  s.type = type;
  if (has_callback) {
    s.value = callback_value;
  } else if (counter != nullptr) {
    s.value = static_cast<double>(counter->value());
  } else if (gauge != nullptr) {
    s.value = gauge->value();
  } else if (histogram != nullptr) {
    fill_histogram(s, *histogram);
  }
  return s;
}

}  // namespace detail

const char* to_string(MetricType type) noexcept {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

void MetricStore::merge_from(const MetricStore& other) {
  if (&other == this) return;
  other.visit_owned([this](const EntryView& view) { absorb(view); });
}

Registry::Entry& Registry::find_or_create(const std::string& name,
                                          const std::string& help,
                                          const Labels& labels,
                                          MetricType type, bool is_callback,
                                          bool from_merge) {
  if (!detail::valid_metric_name(name)) {
    throw std::invalid_argument("Registry: invalid metric name '" + name +
                                "'");
  }
  for (const auto& [k, v] : labels) {
    if (!detail::valid_label_name(k)) {
      throw std::invalid_argument("Registry: invalid label name '" + k + "'");
    }
  }
  auto [it, inserted] = entries_.try_emplace(detail::make_key(name, labels));
  Entry& entry = it->second;
  if (inserted) {
    entry.name = name;
    entry.help = help;
    entry.labels = labels;
    entry.type = type;
    entry.help_from_merge = from_merge;
    return entry;
  }
  if (entry.type != type) {
    throw std::logic_error("Registry: '" + name + "' already registered as " +
                           std::string(to_string(entry.type)));
  }
  const bool was_callback = static_cast<bool>(entry.callback);
  if (was_callback != is_callback) {
    throw std::logic_error("Registry: '" + name +
                           "' mixes owned and callback registration");
  }
  // Help text: an explicit registration beats (and un-stales) help that
  // only arrived via merge_from; merges never overwrite existing help.
  if (!help.empty()) {
    if (entry.help.empty()) {
      entry.help = help;
      entry.help_from_merge = from_merge;
    } else if (entry.help_from_merge && !from_merge) {
      entry.help = help;
      entry.help_from_merge = false;
    }
  }
  return entry;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  util::MutexLock lock(mutex_);
  Entry& entry =
      find_or_create(name, help, labels, MetricType::kCounter, false);
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  util::MutexLock lock(mutex_);
  Entry& entry = find_or_create(name, help, labels, MetricType::kGauge, false);
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               const std::string& help, const Labels& labels) {
  util::MutexLock lock(mutex_);
  Entry& entry =
      find_or_create(name, help, labels, MetricType::kHistogram, false);
  if (!entry.histogram) {
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *entry.histogram;
}

void Registry::gauge_callback(const std::string& name,
                              std::function<double()> fn,
                              const std::string& help, const Labels& labels) {
  if (!fn) throw std::invalid_argument("Registry: empty callback");
  util::MutexLock lock(mutex_);
  Entry& entry = find_or_create(name, help, labels, MetricType::kGauge, true);
  entry.callback = std::move(fn);
}

void Registry::counter_callback(const std::string& name,
                                std::function<double()> fn,
                                const std::string& help,
                                const Labels& labels) {
  if (!fn) throw std::invalid_argument("Registry: empty callback");
  util::MutexLock lock(mutex_);
  Entry& entry =
      find_or_create(name, help, labels, MetricType::kCounter, true);
  entry.callback = std::move(fn);
}

bool Registry::remove(const std::string& name, const Labels& labels) {
  util::MutexLock lock(mutex_);
  return entries_.erase(detail::make_key(name, labels)) > 0;
}

std::size_t Registry::size() const {
  util::MutexLock lock(mutex_);
  return entries_.size();
}

std::vector<Sample> Registry::snapshot() const {
  util::MutexLock lock(mutex_);
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.push_back(detail::sample_of(entry.name, entry.help, entry.labels, entry.type,
                            entry.counter.get(), entry.gauge.get(),
                            entry.histogram.get(),
                            static_cast<bool>(entry.callback),
                            entry.callback ? entry.callback() : 0.0));
  }
  // std::map iterates keys in order; key order == (name, labels) order.
  return out;
}

std::vector<Sample> Registry::snapshot_delta(std::uint64_t& since,
                                             bool full) const {
  util::MutexLock lock(mutex_);
  const std::uint64_t epoch = ++scrape_epoch_;
  std::vector<Sample> out;
  for (const auto& [key, entry] : entries_) {
    const bool has_callback = static_cast<bool>(entry.callback);
    const double callback_value = has_callback ? entry.callback() : 0.0;
    const std::uint64_t fp =
        detail::fingerprint_of(entry.counter.get(), entry.gauge.get(),
                       entry.histogram.get(), has_callback, callback_value);
    if (entry.change_epoch == 0 || fp != entry.fingerprint) {
      entry.fingerprint = fp;
      entry.change_epoch = epoch;
    }
    if (full || entry.change_epoch > since) {
      out.push_back(detail::sample_of(entry.name, entry.help, entry.labels, entry.type,
                              entry.counter.get(), entry.gauge.get(),
                              entry.histogram.get(), has_callback,
                              callback_value));
    }
  }
  since = epoch;
  return out;
}

void Registry::visit_owned(
    const std::function<void(const EntryView&)>& fn) const {
  util::MutexLock lock(mutex_);
  for (const auto& [key, entry] : entries_) {
    if (entry.callback) continue;  // snapshot-time closures stay home
    EntryView view;
    view.name = &entry.name;
    view.help = &entry.help;
    view.labels = &entry.labels;
    view.type = entry.type;
    view.counter = entry.counter.get();
    view.gauge = entry.gauge.get();
    view.histogram = entry.histogram.get();
    fn(view);
  }
}

void Registry::absorb(const EntryView& view) {
  util::MutexLock lock(mutex_);
  Entry& entry = find_or_create(*view.name, *view.help, *view.labels,
                                view.type, false, /*from_merge=*/true);
  if (view.counter != nullptr) {
    if (!entry.counter) entry.counter = std::make_unique<Counter>();
    entry.counter->inc(view.counter->value());
  } else if (view.gauge != nullptr) {
    if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
    entry.gauge->set(view.gauge->value());
  } else if (view.histogram != nullptr) {
    if (!entry.histogram) {
      entry.histogram =
          std::make_unique<Histogram>(view.histogram->upper_bounds());
    }
    entry.histogram->merge_from(*view.histogram);
  }
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace probemon::telemetry
