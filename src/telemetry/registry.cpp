#include "telemetry/registry.hpp"

#include <stdexcept>

namespace probemon::telemetry {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  return valid_metric_name(name) && name.find(':') == std::string::npos;
}

/// Map key: name + label pairs with unprintable separators so distinct
/// label sets can never collide with a crafted name.
std::string make_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

}  // namespace

const char* to_string(MetricType type) noexcept {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

Registry::Entry& Registry::find_or_create(const std::string& name,
                                          const std::string& help,
                                          const Labels& labels,
                                          MetricType type, bool is_callback) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("Registry: invalid metric name '" + name +
                                "'");
  }
  for (const auto& [k, v] : labels) {
    if (!valid_label_name(k)) {
      throw std::invalid_argument("Registry: invalid label name '" + k + "'");
    }
  }
  auto [it, inserted] = entries_.try_emplace(make_key(name, labels));
  Entry& entry = it->second;
  if (inserted) {
    entry.name = name;
    entry.help = help;
    entry.labels = labels;
    entry.type = type;
    return entry;
  }
  if (entry.type != type) {
    throw std::logic_error("Registry: '" + name + "' already registered as " +
                           std::string(to_string(entry.type)));
  }
  const bool was_callback = static_cast<bool>(entry.callback);
  if (was_callback != is_callback) {
    throw std::logic_error("Registry: '" + name +
                           "' mixes owned and callback registration");
  }
  if (entry.help.empty()) entry.help = help;
  return entry;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  std::lock_guard lock(mutex_);
  Entry& entry =
      find_or_create(name, help, labels, MetricType::kCounter, false);
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  std::lock_guard lock(mutex_);
  Entry& entry = find_or_create(name, help, labels, MetricType::kGauge, false);
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               const std::string& help, const Labels& labels) {
  std::lock_guard lock(mutex_);
  Entry& entry =
      find_or_create(name, help, labels, MetricType::kHistogram, false);
  if (!entry.histogram) {
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *entry.histogram;
}

void Registry::gauge_callback(const std::string& name,
                              std::function<double()> fn,
                              const std::string& help, const Labels& labels) {
  if (!fn) throw std::invalid_argument("Registry: empty callback");
  std::lock_guard lock(mutex_);
  Entry& entry = find_or_create(name, help, labels, MetricType::kGauge, true);
  entry.callback = std::move(fn);
}

void Registry::counter_callback(const std::string& name,
                                std::function<double()> fn,
                                const std::string& help,
                                const Labels& labels) {
  if (!fn) throw std::invalid_argument("Registry: empty callback");
  std::lock_guard lock(mutex_);
  Entry& entry =
      find_or_create(name, help, labels, MetricType::kCounter, true);
  entry.callback = std::move(fn);
}

bool Registry::remove(const std::string& name, const Labels& labels) {
  std::lock_guard lock(mutex_);
  return entries_.erase(make_key(name, labels)) > 0;
}

std::size_t Registry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::vector<Sample> Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    Sample s;
    s.name = entry.name;
    s.help = entry.help;
    s.labels = entry.labels;
    s.type = entry.type;
    if (entry.callback) {
      s.value = entry.callback();
    } else if (entry.counter) {
      s.value = static_cast<double>(entry.counter->value());
    } else if (entry.gauge) {
      s.value = entry.gauge->value();
    } else if (entry.histogram) {
      const Histogram& h = *entry.histogram;
      s.bounds = h.upper_bounds();
      s.buckets.reserve(h.bucket_count());
      for (std::size_t i = 0; i < h.bucket_count(); ++i) {
        s.buckets.push_back(h.bucket(i));
      }
      s.count = h.count();
      s.sum = h.sum();
    }
    out.push_back(std::move(s));
  }
  // std::map iterates keys in order; key order == (name, labels) order.
  return out;
}

void Registry::merge_from(const Registry& other) {
  if (&other == this) return;
  std::scoped_lock lock(mutex_, other.mutex_);
  for (const auto& [key, src] : other.entries_) {
    if (src.callback) continue;  // snapshot-time closures stay with their owner
    auto [it, inserted] = entries_.try_emplace(key);
    Entry& dst = it->second;
    if (inserted) {
      dst.name = src.name;
      dst.help = src.help;
      dst.labels = src.labels;
      dst.type = src.type;
    } else if (dst.type != src.type || dst.callback) {
      throw std::logic_error("Registry::merge_from: '" + src.name +
                             "' conflicts with an existing registration");
    }
    if (src.counter) {
      if (!dst.counter) dst.counter = std::make_unique<Counter>();
      dst.counter->inc(src.counter->value());
    } else if (src.gauge) {
      if (!dst.gauge) dst.gauge = std::make_unique<Gauge>();
      dst.gauge->set(src.gauge->value());
    } else if (src.histogram) {
      if (!dst.histogram) {
        dst.histogram =
            std::make_unique<Histogram>(src.histogram->upper_bounds());
      }
      dst.histogram->merge_from(*src.histogram);
    }
  }
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace probemon::telemetry
