// Query expressions over TimeSeriesHistory: the tiny PromQL-flavoured
// grammar shared by the /query endpoint and the alert engine's rules.
//
//   expr     := fn '(' [q ','] series ')' | series
//   fn       := rate | increase | avg | min | max | last | quantile
//   series   := name [ '{' k '="' v '"' {, ...} '}' ] [ '[' range ']' ]
//   range    := number [ 's' | 'm' | 'h' ]          (default unit: s)
//
// Examples:
//   probemon_watches
//   rate(probemon_presence_transitions_total{state="absent"}[120])
//   quantile(0.99, probemon_detection_latency_seconds[60s])
//   avg(probemon_device_experienced_load[30])
//
// parse_query throws std::invalid_argument with a byte position on any
// malformed input; eval_query is pure over the history's sampled state
// (NaN = insufficient data).
#pragma once

#include <string>

#include "telemetry/history/history.hpp"

namespace probemon::telemetry {

enum class QueryFn { kLast, kRate, kIncrease, kAvg, kMin, kMax, kQuantile };

const char* to_string(QueryFn fn) noexcept;

struct QueryExpr {
  QueryFn fn = QueryFn::kLast;
  double q = 0.0;  ///< quantile() only
  std::string series;
  Labels labels;
  double range_s = 0.0;  ///< 0 = unset; eval uses the supplied default
};

/// Parse `text`; throws std::invalid_argument on malformed input.
QueryExpr parse_query(const std::string& text);

/// Evaluate against sampled history. `default_range_s` applies when the
/// expression carries no [range]. Returns NaN for "no data".
double eval_query(const QueryExpr& expr, const TimeSeriesHistory& history,
                  double default_range_s);

}  // namespace probemon::telemetry
