// TimeSeriesHistory: fixed-retention ring-buffer history over registry
// series, with range queries (rate / increase / avg / min / max /
// histogram-quantile) evaluated over a trailing window.
//
// The registry answers "what is the value now"; this class answers
// "what happened over the last N seconds" — which is what SLO rules
// (detection-latency p99, false-alarm rate, load vs beta*L_nom) need.
//
// Time is always passed in by the caller: a DES experiment samples from
// a scheduler event (Simulation::every), the threaded runtime samples
// from a ticker thread (runtime/history_ticker.hpp). The class itself
// never reads a clock, so identical sample sequences yield identical
// query results — DES alert timelines are reproducible byte-for-byte.
// tools/lint.py enforces the no-wall-clock rule over this directory.
//
// Storage: per tracked series, a ring of `Config::slots` points, each
// point one `sample(t)` call — with the intended cadence of one call
// per `Config::sample_period_s` this is a retention of
// slots * sample_period_s seconds (default 512 x 1 s). Counters and
// gauges store the value; histograms store (count, sum, buckets), so
// quantile-over-window can difference two cumulative states.
//
// Thread safety: all members take an internal mutex; one sampler thread
// plus concurrent HTTP query threads is the supported pattern.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::telemetry {

struct HistoryConfig {
  /// Intended sampling cadence, seconds. Purely descriptive (the
  /// caller drives sample()); used as the default query range unit
  /// and reported by sample_period_s().
  double sample_period_s = 1.0;
  /// Ring capacity: number of retained samples per tracked series.
  std::size_t slots = 512;
};

class TimeSeriesHistory {
 public:
  using Config = HistoryConfig;

  /// One retained observation of one series.
  struct Point {
    double t = 0.0;
    double value = 0.0;              ///< counter / gauge reading
    // Histogram-only cumulative state:
    std::uint64_t count = 0;
    double sum = 0.0;
    std::vector<std::uint64_t> buckets;  ///< non-cumulative, +Inf last
  };

  /// `store` must outlive the history.
  explicit TimeSeriesHistory(const MetricStore& store,
                             HistoryConfig config = {});

  TimeSeriesHistory(const TimeSeriesHistory&) = delete;
  TimeSeriesHistory& operator=(const TimeSeriesHistory&) = delete;

  /// Select one series (exact name + labels) for sampling. Unknown
  /// series are fine: points accumulate once the series appears.
  void track(const std::string& name, const Labels& labels = {})
      PROBEMON_EXCLUDES(mutex_);
  /// Select every series whose name starts with `prefix`.
  void track_prefix(const std::string& prefix) PROBEMON_EXCLUDES(mutex_);

  /// Take one sample of every selected series at time `t` (monotonically
  /// non-decreasing across calls; equal times overwrite the newest
  /// point so replayed ticks stay idempotent).
  void sample(double t) PROBEMON_EXCLUDES(mutex_);

  double sample_period_s() const noexcept { return config_.sample_period_s; }
  std::size_t slots() const noexcept { return config_.slots; }
  /// Series currently holding at least one point.
  std::size_t series_count() const PROBEMON_EXCLUDES(mutex_);
  /// Total sample() calls taken.
  std::uint64_t samples_taken() const PROBEMON_EXCLUDES(mutex_);
  /// t of the newest point across all series (0 before any sample).
  double last_sample_time() const PROBEMON_EXCLUDES(mutex_);
  /// Approximate bytes retained across all rings (capacity, not fill) —
  /// the bench's bytes/window figure divides this by slots().
  std::size_t retained_bytes() const PROBEMON_EXCLUDES(mutex_);

  // --- Queries --------------------------------------------------------------
  // All queries evaluate over points with t in [as_of - range_s, as_of]
  // where as_of = last_sample_time(). They return NaN when the window
  // holds too few points (range queries need >= 2; point queries >= 1);
  // JSON writers render NaN as null.

  /// Per-second increase of a counter over the window, reset-corrected
  /// like Prometheus rate(): negative jumps restart accumulation.
  double rate(const std::string& name, const Labels& labels,
              double range_s) const PROBEMON_EXCLUDES(mutex_);
  /// Absolute reset-corrected increase over the window.
  double increase(const std::string& name, const Labels& labels,
                  double range_s) const PROBEMON_EXCLUDES(mutex_);
  double avg(const std::string& name, const Labels& labels,
             double range_s) const PROBEMON_EXCLUDES(mutex_);
  double min(const std::string& name, const Labels& labels,
             double range_s) const PROBEMON_EXCLUDES(mutex_);
  double max(const std::string& name, const Labels& labels,
             double range_s) const PROBEMON_EXCLUDES(mutex_);
  /// Newest sampled value regardless of range.
  double last(const std::string& name, const Labels& labels) const
      PROBEMON_EXCLUDES(mutex_);
  /// Quantile (q in [0,1]) of histogram observations that happened
  /// inside the window: differences the newest and oldest cumulative
  /// bucket states in range, then interpolates linearly within the
  /// bucket holding rank q (the +Inf bucket clamps to the largest
  /// finite bound). NaN when no observations fell inside the window.
  double quantile(double q, const std::string& name, const Labels& labels,
                  double range_s) const PROBEMON_EXCLUDES(mutex_);

  /// Raw points of one series in the window, oldest first (value field
  /// only; histogram series report count as value). Empty when unknown.
  std::vector<Point> points(const std::string& name, const Labels& labels,
                            double range_s) const PROBEMON_EXCLUDES(mutex_);

 private:
  struct SeriesRing {
    MetricType type = MetricType::kCounter;
    std::vector<double> bounds;  ///< histogram finite upper bounds
    std::vector<Point> ring;     ///< capacity config_.slots once full
    std::size_t head = 0;        ///< index of oldest point
    std::size_t size = 0;

    void push(const Point& point, std::size_t capacity);
    /// Points in [t_min, +inf), oldest first.
    std::vector<Point> window(double t_min) const;
  };

  bool selected(const std::string& key, const std::string& name) const
      PROBEMON_REQUIRES(mutex_);
  const SeriesRing* find(const std::string& name, const Labels& labels) const
      PROBEMON_REQUIRES(mutex_);
  /// Oldest+newest in-range points; false when fewer than two.
  static bool window_ends(const std::vector<Point>& points, Point& oldest,
                          Point& newest);

  const MetricStore& store_;
  Config config_;

  mutable util::Mutex mutex_{"telemetry.TimeSeriesHistory"};
  /// make_key of exact selections
  std::vector<std::string> tracked_keys_ PROBEMON_GUARDED_BY(mutex_);
  std::vector<std::string> tracked_prefixes_ PROBEMON_GUARDED_BY(mutex_);
  /// key = detail::make_key
  std::map<std::string, SeriesRing> series_ PROBEMON_GUARDED_BY(mutex_);
  std::uint64_t samples_taken_ PROBEMON_GUARDED_BY(mutex_) = 0;
  double last_sample_time_ PROBEMON_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace probemon::telemetry
