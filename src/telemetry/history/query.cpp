#include "telemetry/history/query.hpp"

#include <cctype>
#include <limits>
#include <stdexcept>

namespace probemon::telemetry {

const char* to_string(QueryFn fn) noexcept {
  switch (fn) {
    case QueryFn::kLast:
      return "last";
    case QueryFn::kRate:
      return "rate";
    case QueryFn::kIncrease:
      return "increase";
    case QueryFn::kAvg:
      return "avg";
    case QueryFn::kMin:
      return "min";
    case QueryFn::kMax:
      return "max";
    case QueryFn::kQuantile:
      return "quantile";
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  QueryExpr parse() {
    skip_ws();
    QueryExpr expr;
    const std::string ident = read_ident("expression");
    skip_ws();
    if (peek() == '(') {
      expr.fn = fn_of(ident);
      ++pos_;
      skip_ws();
      if (expr.fn == QueryFn::kQuantile) {
        expr.q = read_number("quantile q");
        if (!(expr.q >= 0.0 && expr.q <= 1.0)) {
          fail("quantile q must be in [0, 1]");
        }
        skip_ws();
        expect(',', "',' after quantile q");
        skip_ws();
      }
      read_series(expr);
      skip_ws();
      expect(')', "')'");
    } else {
      expr.fn = QueryFn::kLast;
      expr.series = ident;
      read_series_tail(expr);
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after expression");
    if (expr.series.empty() || !detail::valid_metric_name(expr.series)) {
      fail("invalid series name '" + expr.series + "'");
    }
    return expr;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("query parse error at byte " +
                                std::to_string(pos_) + ": " + what);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void expect(char c, const std::string& what) {
    if (peek() != c) fail("expected " + what);
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  static bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
           c == ':';
  }

  std::string read_ident(const std::string& what) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && ident_char(text_[pos_])) ++pos_;
    if (pos_ == start) fail("expected " + what);
    return text_.substr(start, pos_ - start);
  }

  double read_number(const std::string& what) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected " + what);
    const std::string token = text_.substr(start, pos_ - start);
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(token, &used);
    } catch (const std::exception&) {
      fail("malformed number '" + token + "'");
    }
    if (used != token.size()) fail("malformed number '" + token + "'");
    return value;
  }

  QueryFn fn_of(const std::string& ident) {
    if (ident == "rate") return QueryFn::kRate;
    if (ident == "increase") return QueryFn::kIncrease;
    if (ident == "avg") return QueryFn::kAvg;
    if (ident == "min") return QueryFn::kMin;
    if (ident == "max") return QueryFn::kMax;
    if (ident == "last") return QueryFn::kLast;
    if (ident == "quantile") return QueryFn::kQuantile;
    fail("unknown function '" + ident + "'");
  }

  void read_series(QueryExpr& expr) {
    expr.series = read_ident("series name");
    read_series_tail(expr);
  }

  void read_series_tail(QueryExpr& expr) {
    skip_ws();
    if (peek() == '{') {
      ++pos_;
      skip_ws();
      while (peek() != '}') {
        const std::string label = read_ident("label name");
        skip_ws();
        expect('=', "'=' in label matcher");
        skip_ws();
        expect('"', "'\"' opening label value");
        const std::size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
        if (pos_ == text_.size()) fail("unterminated label value");
        expr.labels.emplace_back(label, text_.substr(start, pos_ - start));
        ++pos_;  // closing quote
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          skip_ws();
        } else if (peek() != '}') {
          fail("expected ',' or '}' in label matchers");
        }
      }
      ++pos_;  // '}'
      skip_ws();
    }
    if (peek() == '[') {
      ++pos_;
      skip_ws();
      double value = read_number("range");
      skip_ws();
      const char unit = peek();
      if (unit == 's') {
        ++pos_;
      } else if (unit == 'm') {
        value *= 60.0;
        ++pos_;
      } else if (unit == 'h') {
        value *= 3600.0;
        ++pos_;
      }
      skip_ws();
      expect(']', "']' closing range");
      if (!(value > 0.0)) fail("range must be > 0");
      expr.range_s = value;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

QueryExpr parse_query(const std::string& text) { return Parser(text).parse(); }

double eval_query(const QueryExpr& expr, const TimeSeriesHistory& history,
                  double default_range_s) {
  const double range =
      expr.range_s > 0.0 ? expr.range_s : default_range_s;
  switch (expr.fn) {
    case QueryFn::kLast:
      return history.last(expr.series, expr.labels);
    case QueryFn::kRate:
      return history.rate(expr.series, expr.labels, range);
    case QueryFn::kIncrease:
      return history.increase(expr.series, expr.labels, range);
    case QueryFn::kAvg:
      return history.avg(expr.series, expr.labels, range);
    case QueryFn::kMin:
      return history.min(expr.series, expr.labels, range);
    case QueryFn::kMax:
      return history.max(expr.series, expr.labels, range);
    case QueryFn::kQuantile:
      return history.quantile(expr.q, expr.series, expr.labels, range);
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace probemon::telemetry
