#include "telemetry/history/history.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace probemon::telemetry {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

TimeSeriesHistory::TimeSeriesHistory(const MetricStore& store, Config config)
    : store_(store), config_(config) {
  if (!(config_.sample_period_s > 0.0)) {
    throw std::invalid_argument("history sample_period_s must be > 0");
  }
  if (config_.slots < 2) {
    throw std::invalid_argument("history needs at least 2 slots");
  }
}

void TimeSeriesHistory::track(const std::string& name, const Labels& labels) {
  util::MutexLock lock(mutex_);
  std::string key = detail::make_key(name, labels);
  if (std::find(tracked_keys_.begin(), tracked_keys_.end(), key) ==
      tracked_keys_.end()) {
    tracked_keys_.push_back(std::move(key));
  }
}

void TimeSeriesHistory::track_prefix(const std::string& prefix) {
  util::MutexLock lock(mutex_);
  if (std::find(tracked_prefixes_.begin(), tracked_prefixes_.end(), prefix) ==
      tracked_prefixes_.end()) {
    tracked_prefixes_.push_back(prefix);
  }
}

bool TimeSeriesHistory::selected(const std::string& key,
                                 const std::string& name) const {
  if (std::find(tracked_keys_.begin(), tracked_keys_.end(), key) !=
      tracked_keys_.end()) {
    return true;
  }
  for (const auto& prefix : tracked_prefixes_) {
    if (name.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

void TimeSeriesHistory::SeriesRing::push(const Point& point,
                                         std::size_t capacity) {
  if (size > 0) {
    Point& newest = ring[(head + size - 1) % ring.size()];
    if (point.t <= newest.t) {  // replayed / duplicate tick: overwrite
      newest = point;
      return;
    }
  }
  if (size < capacity) {
    ring.push_back(point);
    ++size;
    return;
  }
  ring[head] = point;  // overwrite oldest
  head = (head + 1) % ring.size();
}

std::vector<TimeSeriesHistory::Point> TimeSeriesHistory::SeriesRing::window(
    double t_min) const {
  std::vector<Point> out;
  out.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    const Point& point = ring[(head + i) % ring.size()];
    if (point.t >= t_min) out.push_back(point);
  }
  return out;
}

void TimeSeriesHistory::sample(double t) {
  const std::vector<Sample> snapshot = store_.snapshot();
  util::MutexLock lock(mutex_);
  for (const Sample& s : snapshot) {
    const std::string key = detail::make_key(s.name, s.labels);
    if (!selected(key, s.name)) continue;
    SeriesRing& ring = series_[key];
    ring.type = s.type;
    Point point;
    point.t = t;
    point.value = s.value;
    if (s.type == MetricType::kHistogram) {
      ring.bounds = s.bounds;
      point.count = s.count;
      point.sum = s.sum;
      point.buckets = s.buckets;
      point.value = static_cast<double>(s.count);
    }
    ring.push(point, config_.slots);
  }
  ++samples_taken_;
  if (t > last_sample_time_) last_sample_time_ = t;
}

std::size_t TimeSeriesHistory::series_count() const {
  util::MutexLock lock(mutex_);
  return series_.size();
}

std::uint64_t TimeSeriesHistory::samples_taken() const {
  util::MutexLock lock(mutex_);
  return samples_taken_;
}

double TimeSeriesHistory::last_sample_time() const {
  util::MutexLock lock(mutex_);
  return last_sample_time_;
}

std::size_t TimeSeriesHistory::retained_bytes() const {
  util::MutexLock lock(mutex_);
  std::size_t bytes = 0;
  for (const auto& [key, ring] : series_) {
    std::size_t per_point = sizeof(Point);
    if (ring.type == MetricType::kHistogram) {
      per_point += (ring.bounds.size() + 1) * sizeof(std::uint64_t);
    }
    bytes += key.size() + sizeof(SeriesRing) + config_.slots * per_point;
  }
  return bytes;
}

const TimeSeriesHistory::SeriesRing* TimeSeriesHistory::find(
    const std::string& name, const Labels& labels) const {
  auto it = series_.find(detail::make_key(name, labels));
  return it == series_.end() ? nullptr : &it->second;
}

bool TimeSeriesHistory::window_ends(const std::vector<Point>& points,
                                    Point& oldest, Point& newest) {
  if (points.size() < 2) return false;
  oldest = points.front();
  newest = points.back();
  return newest.t > oldest.t;
}

double TimeSeriesHistory::increase(const std::string& name,
                                   const Labels& labels,
                                   double range_s) const {
  util::MutexLock lock(mutex_);
  const SeriesRing* ring = find(name, labels);
  if (ring == nullptr) return kNaN;
  const auto points = ring->window(last_sample_time_ - range_s);
  if (points.size() < 2) return kNaN;
  // Reset-corrected: a drop means the counter restarted, so the new
  // reading is itself the increase since the reset.
  double total = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double delta = points[i].value - points[i - 1].value;
    total += delta >= 0.0 ? delta : points[i].value;
  }
  return total;
}

double TimeSeriesHistory::rate(const std::string& name, const Labels& labels,
                               double range_s) const {
  const double total = increase(name, labels, range_s);
  if (std::isnan(total)) return kNaN;
  util::MutexLock lock(mutex_);
  const SeriesRing* ring = find(name, labels);
  const auto points = ring->window(last_sample_time_ - range_s);
  const double span = points.back().t - points.front().t;
  return span > 0.0 ? total / span : kNaN;
}

double TimeSeriesHistory::avg(const std::string& name, const Labels& labels,
                              double range_s) const {
  util::MutexLock lock(mutex_);
  const SeriesRing* ring = find(name, labels);
  if (ring == nullptr) return kNaN;
  const auto points = ring->window(last_sample_time_ - range_s);
  if (points.empty()) return kNaN;
  double total = 0.0;
  for (const Point& point : points) total += point.value;
  return total / static_cast<double>(points.size());
}

double TimeSeriesHistory::min(const std::string& name, const Labels& labels,
                              double range_s) const {
  util::MutexLock lock(mutex_);
  const SeriesRing* ring = find(name, labels);
  if (ring == nullptr) return kNaN;
  const auto points = ring->window(last_sample_time_ - range_s);
  if (points.empty()) return kNaN;
  double best = points.front().value;
  for (const Point& point : points) best = std::min(best, point.value);
  return best;
}

double TimeSeriesHistory::max(const std::string& name, const Labels& labels,
                              double range_s) const {
  util::MutexLock lock(mutex_);
  const SeriesRing* ring = find(name, labels);
  if (ring == nullptr) return kNaN;
  const auto points = ring->window(last_sample_time_ - range_s);
  if (points.empty()) return kNaN;
  double best = points.front().value;
  for (const Point& point : points) best = std::max(best, point.value);
  return best;
}

double TimeSeriesHistory::last(const std::string& name,
                               const Labels& labels) const {
  util::MutexLock lock(mutex_);
  const SeriesRing* ring = find(name, labels);
  if (ring == nullptr || ring->size == 0) return kNaN;
  return ring->ring[(ring->head + ring->size - 1) % ring->ring.size()].value;
}

double TimeSeriesHistory::quantile(double q, const std::string& name,
                                   const Labels& labels,
                                   double range_s) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("quantile q must be in [0, 1]");
  }
  util::MutexLock lock(mutex_);
  const SeriesRing* ring = find(name, labels);
  if (ring == nullptr || ring->type != MetricType::kHistogram) return kNaN;
  const auto points = ring->window(last_sample_time_ - range_s);
  Point oldest;
  Point newest;
  if (!window_ends(points, oldest, newest)) return kNaN;
  const std::size_t n = ring->bounds.size() + 1;  // +Inf bucket last
  if (oldest.buckets.size() != n || newest.buckets.size() != n) return kNaN;
  // Observations that happened inside the window, per bucket.
  std::vector<std::uint64_t> delta(n, 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    delta[i] = newest.buckets[i] >= oldest.buckets[i]
                   ? newest.buckets[i] - oldest.buckets[i]
                   : newest.buckets[i];  // reset-corrected like increase()
    total += delta[i];
  }
  if (total == 0) return kNaN;
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double in_bucket = static_cast<double>(delta[i]);
    if (cumulative + in_bucket < rank && i + 1 < n) {
      cumulative += in_bucket;
      continue;
    }
    if (i + 1 == n) {
      // +Inf bucket: clamp to the largest finite bound (or NaN when the
      // histogram has no finite bound at all).
      return ring->bounds.empty() ? kNaN : ring->bounds.back();
    }
    const double lo = i == 0 ? 0.0 : ring->bounds[i - 1];
    const double hi = ring->bounds[i];
    if (in_bucket <= 0.0) return hi;
    const double fraction = (rank - cumulative) / in_bucket;
    return lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
  }
  return kNaN;
}

std::vector<TimeSeriesHistory::Point> TimeSeriesHistory::points(
    const std::string& name, const Labels& labels, double range_s) const {
  util::MutexLock lock(mutex_);
  const SeriesRing* ring = find(name, labels);
  if (ring == nullptr) return {};
  return ring->window(last_sample_time_ - range_s);
}

}  // namespace probemon::telemetry
