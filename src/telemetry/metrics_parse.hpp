// Parser for the JSON metrics documents emitted by samples_to_json()
// and the agent→collector push protocol (runtime/metrics_push.hpp).
//
// The document shape is:
//
//   {
//     "agent":  "node-7",      // optional: reporting agent id
//     "full":   true,          // optional: absolute state, not a delta
//     "metrics": [
//       {"name": "...", "type": "counter", "help": "...",
//        "labels": {"device": "7"}, "value": 42},
//       {"name": "...", "type": "histogram", "count": 3, "sum": 1.5,
//        "bounds": [0.1, 1.0], "buckets": [1, 1, 1]},
//       ...
//     ]
//   }
//
// Unknown top-level and per-metric keys are ignored (forward
// compatibility with newer agents); malformed JSON or metrics missing
// required fields throw std::runtime_error with a position-annotated
// message. This is the one place the repo parses JSON — everything else
// only emits it (json.hpp).
#pragma once

#include <string>
#include <string_view>

#include "telemetry/registry.hpp"

namespace probemon::telemetry {

/// One parsed push/scrape document.
struct MetricsDocument {
  std::vector<Sample> samples;
  std::string agent;  ///< "" when the document carries no agent id
  bool full = false;  ///< absolute state (collector resets the agent view)
};

/// Parse a metrics JSON document. Throws std::runtime_error on
/// malformed input.
MetricsDocument parse_metrics_json(std::string_view text);

}  // namespace probemon::telemetry
