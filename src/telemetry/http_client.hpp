// Minimal blocking HTTP/1.1 client for loopback telemetry traffic.
//
// Exists for exactly two callers: the metrics pusher
// (runtime/metrics_push.hpp) POSTing delta reports to a collector, and
// tests driving HttpServer end-to-end. One request per connection
// (Connection: close, mirroring the server), IPv4 dotted-quad hosts
// only, no TLS, no redirects — a deliberate non-library.
#pragma once

#include <cstdint>
#include <string>

namespace probemon::telemetry {

struct HttpResult {
  /// HTTP status, or 0 when the request never completed (connect /
  /// send / receive failure — `body` then holds the errno text).
  int status = 0;
  std::string body;
  /// Raw response header block (status line through the blank line),
  /// for callers that check Content-Length / Content-Type (HEAD).
  std::string headers;

  bool ok() const noexcept { return status >= 200 && status < 300; }
};

/// GET `target` (path + optional query) from host:port.
HttpResult http_get(const std::string& host, std::uint16_t port,
                    const std::string& target, double timeout_s = 2.0);

/// HEAD `target`: status + headers only, body stays empty.
HttpResult http_head(const std::string& host, std::uint16_t port,
                     const std::string& target, double timeout_s = 2.0);

/// POST `body` to `target` with the given Content-Type.
HttpResult http_post(const std::string& host, std::uint16_t port,
                     const std::string& target, const std::string& body,
                     const std::string& content_type =
                         "application/json; charset=utf-8",
                     double timeout_s = 2.0);

}  // namespace probemon::telemetry
