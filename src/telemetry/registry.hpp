// Registry: named, labelled metric instances with point-in-time snapshots.
//
// Registration (finding or creating a metric by name + labels) takes a
// mutex and returns a stable reference; callers hold that reference and
// update it lock-free afterwards. The intended pattern is therefore
// "register once at setup, increment forever":
//
//   auto& probes = registry.counter("probemon_cp_probes_sent_total",
//                                   "Probes transmitted by CPs",
//                                   {{"device", "7"}});
//   ...
//   probes.inc();                      // hot path, no registry involved
//
// Besides owned metrics, registries accept *callback* metrics — a
// function evaluated at snapshot time — for values some component
// already tracks (scheduler event counts, device load). The callback's
// captures must outlive the registry or be removed via remove().
//
// Two storage cores implement the shared MetricStore interface:
//
//   * Registry        (this header)           — one mutex, one ordered
//     map; right for tens-to-thousands of series.
//   * ShardedRegistry (sharded_registry.hpp)  — N lock-independent
//     shards keyed by interned ids; right for fleet-scale cardinality.
//
// Snapshots from both are byte-identical for the same contents: sorted
// by (name, labels) in the same key encoding.
//
// Delta scrapes: every store carries a scrape-epoch / dirty-generation
// mechanism. snapshot_delta(since) bumps the store's scrape epoch,
// stamps each entry whose value fingerprint moved since the last scrape
// with the new epoch, and returns only entries stamped after `since` —
// so a scraper that keeps its own `since` cursor pays O(changed) for
// serialization, not O(total). See export.hpp's DeltaExporter.
//
// Naming follows Prometheus conventions: names match
// [a-zA-Z_:][a-zA-Z0-9_:]*, label names [a-zA-Z_][a-zA-Z0-9_]*, and the
// same name must always carry the same type and help text (enforced,
// throws std::logic_error on conflict).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metric.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::telemetry {

/// Label set, e.g. {{"device", "7"}, {"protocol", "dcpp"}}. Order given
/// at registration is preserved in exposition.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

const char* to_string(MetricType type) noexcept;

/// Point-in-time value of one metric instance.
struct Sample {
  std::string name;
  std::string help;
  Labels labels;
  MetricType type = MetricType::kCounter;
  double value = 0.0;  ///< counter / gauge reading
  // Histogram-only:
  std::vector<double> bounds;           ///< finite upper bounds
  std::vector<std::uint64_t> buckets;   ///< non-cumulative, +Inf last
  std::uint64_t count = 0;
  double sum = 0.0;
};

namespace detail {
bool valid_metric_name(const std::string& name);
bool valid_label_name(const std::string& name);
/// Sort/map key: name + label pairs with unprintable separators so
/// distinct label sets can never collide with a crafted name. Both
/// storage cores order snapshots by this key byte-wise.
std::string make_key(const std::string& name, const Labels& labels);
/// Value fingerprint for delta scrapes (see snapshot_delta): any
/// observable mutation moves it.
std::uint64_t fingerprint_of(const Counter* counter, const Gauge* gauge,
                             const Histogram* histogram, bool has_callback,
                             double callback_value);
/// Materialize one Sample from an entry's parts (shared by both cores).
Sample sample_of(const std::string& name, const std::string& help,
                 const Labels& labels, MetricType type, const Counter* counter,
                 const Gauge* gauge, const Histogram* histogram,
                 bool has_callback, double callback_value);
}  // namespace detail

/// Storage-core interface shared by Registry and ShardedRegistry:
/// registration, snapshots (full and delta) and deterministic merging.
class MetricStore {
 public:
  virtual ~MetricStore() = default;

  /// Find-or-create. Throws std::invalid_argument on a malformed name or
  /// label, std::logic_error if the name is already registered with a
  /// different type.
  virtual Counter& counter(const std::string& name,
                           const std::string& help = "",
                           const Labels& labels = {}) = 0;
  virtual Gauge& gauge(const std::string& name, const std::string& help = "",
                       const Labels& labels = {}) = 0;
  virtual Histogram& histogram(const std::string& name,
                               std::vector<double> bounds,
                               const std::string& help = "",
                               const Labels& labels = {}) = 0;

  /// Callback metrics: `fn` is evaluated under the store's lock at
  /// snapshot time. Re-registering the same name+labels replaces the
  /// callback (so a reconstructed component can rebind safely).
  virtual void gauge_callback(const std::string& name,
                              std::function<double()> fn,
                              const std::string& help = "",
                              const Labels& labels = {}) = 0;
  virtual void counter_callback(const std::string& name,
                                std::function<double()> fn,
                                const std::string& help = "",
                                const Labels& labels = {}) = 0;

  /// Drop one metric instance. Returns true if it existed. Use before a
  /// callback's captures die. References previously returned for the
  /// instance dangle afterwards.
  virtual bool remove(const std::string& name, const Labels& labels = {}) = 0;

  virtual std::size_t size() const = 0;

  /// Consistent point-in-time copy, sorted by (name, labels).
  virtual std::vector<Sample> snapshot() const = 0;

  /// Delta scrape: advance the store's scrape epoch, restamp entries
  /// whose value changed, and return entries changed since `since`
  /// (sorted like snapshot()); `since` is updated to the new epoch so
  /// the next call continues from here. `full` returns every entry but
  /// still advances the cursor — the "?full=1" escape hatch. since == 0
  /// always yields a full snapshot (first scrape). Multiple independent
  /// scrapers each keep their own cursor.
  virtual std::vector<Sample> snapshot_delta(std::uint64_t& since,
                                             bool full = false) const = 0;

  /// Fold another store's owned metrics into this one (counters add
  /// exactly in u64, gauges take the source value, histograms merge
  /// bucket-wise; callback metrics are skipped — their captures belong
  /// to the source). Entries are visited in (name, labels) order, so
  /// the result is deterministic for any source type or shard count.
  /// This is the sweep-runner barrier step and the collector's
  /// aggregation step. Throws std::logic_error when a source entry
  /// conflicts with an existing registration (different type, or an
  /// owned/callback mismatch). Not safe against *concurrent* merges in
  /// opposite directions.
  void merge_from(const MetricStore& other);

 protected:
  /// One owned entry, materialized for the merge engine.
  struct EntryView {
    const std::string* name = nullptr;
    const std::string* help = nullptr;
    const Labels* labels = nullptr;
    MetricType type = MetricType::kCounter;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  /// Visit every owned (non-callback) entry in (name, labels) order with
  /// the store's locks held for the duration of the walk.
  virtual void visit_owned(
      const std::function<void(const EntryView&)>& fn) const = 0;
  /// Merge one source entry into this store (find-or-create + fold).
  virtual void absorb(const EntryView& view) = 0;
};

class Registry : public MetricStore {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const std::string& help = "",
                   const Labels& labels = {}) override
      PROBEMON_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name, const std::string& help = "",
               const Labels& labels = {}) override PROBEMON_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "",
                       const Labels& labels = {}) override
      PROBEMON_EXCLUDES(mutex_);

  void gauge_callback(const std::string& name, std::function<double()> fn,
                      const std::string& help = "",
                      const Labels& labels = {}) override
      PROBEMON_EXCLUDES(mutex_);
  void counter_callback(const std::string& name, std::function<double()> fn,
                        const std::string& help = "",
                        const Labels& labels = {}) override
      PROBEMON_EXCLUDES(mutex_);

  bool remove(const std::string& name, const Labels& labels = {}) override
      PROBEMON_EXCLUDES(mutex_);

  std::size_t size() const override PROBEMON_EXCLUDES(mutex_);

  std::vector<Sample> snapshot() const override PROBEMON_EXCLUDES(mutex_);
  std::vector<Sample> snapshot_delta(std::uint64_t& since, bool full = false)
      const override PROBEMON_EXCLUDES(mutex_);

  /// Process-wide default registry (independent instances remain first
  /// class; the global is a convenience for examples and ad-hoc tools).
  static Registry& global();

 protected:
  void visit_owned(const std::function<void(const EntryView&)>& fn)
      const override PROBEMON_EXCLUDES(mutex_);
  void absorb(const EntryView& view) override PROBEMON_EXCLUDES(mutex_);

 private:
  PROBEMON_TSA_SELFTEST_HOOK
  struct Entry {
    std::string name;
    std::string help;
    Labels labels;
    MetricType type = MetricType::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;  ///< exclusive with the three above
    /// Help text inherited from merge_from, not an explicit
    /// registration; a later explicit registration may replace it (so a
    /// remove + merge cycle cannot resurrect stale help — see
    /// tests/test_telemetry.cpp RemoveThenMerge*).
    bool help_from_merge = false;
    // Delta-scrape bookkeeping (guarded by the registry mutex; mutable
    // because observing change is logically const):
    mutable std::uint64_t fingerprint = 0;
    mutable std::uint64_t change_epoch = 0;  ///< 0 = never scraped
  };

  Entry& find_or_create(const std::string& name, const std::string& help,
                        const Labels& labels, MetricType type,
                        bool is_callback, bool from_merge = false)
      PROBEMON_REQUIRES(mutex_);

  mutable util::Mutex mutex_{"telemetry.Registry"};
  /// key = detail::make_key
  std::map<std::string, Entry> entries_ PROBEMON_GUARDED_BY(mutex_);
  mutable std::uint64_t scrape_epoch_ PROBEMON_GUARDED_BY(mutex_) = 0;
};

}  // namespace probemon::telemetry
