// Registry: named, labelled metric instances with point-in-time snapshots.
//
// Registration (finding or creating a metric by name + labels) takes a
// mutex and returns a stable reference; callers hold that reference and
// update it lock-free afterwards. The intended pattern is therefore
// "register once at setup, increment forever":
//
//   auto& probes = registry.counter("probemon_cp_probes_sent_total",
//                                   "Probes transmitted by CPs",
//                                   {{"device", "7"}});
//   ...
//   probes.inc();                      // hot path, no registry involved
//
// Besides owned metrics, the registry accepts *callback* metrics — a
// function evaluated at snapshot time — for values some component
// already tracks (scheduler event counts, device load). The callback's
// captures must outlive the registry or be removed via remove().
//
// Naming follows Prometheus conventions: names match
// [a-zA-Z_:][a-zA-Z0-9_:]*, label names [a-zA-Z_][a-zA-Z0-9_]*, and the
// same name must always carry the same type and help text (enforced,
// throws std::logic_error on conflict).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metric.hpp"

namespace probemon::telemetry {

/// Label set, e.g. {{"device", "7"}, {"protocol", "dcpp"}}. Order given
/// at registration is preserved in exposition.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

const char* to_string(MetricType type) noexcept;

/// Point-in-time value of one metric instance.
struct Sample {
  std::string name;
  std::string help;
  Labels labels;
  MetricType type = MetricType::kCounter;
  double value = 0.0;  ///< counter / gauge reading
  // Histogram-only:
  std::vector<double> bounds;           ///< finite upper bounds
  std::vector<std::uint64_t> buckets;   ///< non-cumulative, +Inf last
  std::uint64_t count = 0;
  double sum = 0.0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. Throws std::invalid_argument on a malformed name or
  /// label, std::logic_error if the name is already registered with a
  /// different type.
  Counter& counter(const std::string& name, const std::string& help = "",
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help = "",
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "",
                       const Labels& labels = {});

  /// Callback metrics: `fn` is evaluated under the registry mutex at
  /// snapshot time. Re-registering the same name+labels replaces the
  /// callback (so a reconstructed component can rebind safely).
  void gauge_callback(const std::string& name, std::function<double()> fn,
                      const std::string& help = "", const Labels& labels = {});
  void counter_callback(const std::string& name, std::function<double()> fn,
                        const std::string& help = "",
                        const Labels& labels = {});

  /// Drop one metric instance. Returns true if it existed. Use before a
  /// callback's captures die.
  bool remove(const std::string& name, const Labels& labels = {});

  std::size_t size() const;

  /// Consistent point-in-time copy, sorted by (name, labels).
  std::vector<Sample> snapshot() const;

  /// Fold another registry's owned metrics into this one (counters add
  /// exactly in u64, gauges take the source value, histograms merge
  /// bucket-wise; callback metrics are skipped — their captures belong
  /// to the source). This is the sweep-runner barrier step: one Registry
  /// per worker during the run, merged in deterministic (worker-id)
  /// order afterwards.
  void merge_from(const Registry& other);

  /// Process-wide default registry (independent instances remain first
  /// class; the global is a convenience for examples and ad-hoc tools).
  static Registry& global();

 private:
  struct Entry {
    std::string name;
    std::string help;
    Labels labels;
    MetricType type = MetricType::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;  ///< exclusive with the three above
  };

  Entry& find_or_create(const std::string& name, const std::string& help,
                        const Labels& labels, MetricType type,
                        bool is_callback);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< key = name + encoded labels
};

}  // namespace probemon::telemetry
