#include "telemetry/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cctype>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "telemetry/export.hpp"
#include "telemetry/json.hpp"

namespace probemon::telemetry {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    default: return "Status";
  }
}

/// Split "path?a=1&b=2" into request.path / request.query. No
/// percent-decoding: every route this server exists for uses plain
/// token values (`format=chrome`).
void parse_target(const std::string& target, HttpRequest& request) {
  const std::size_t qmark = target.find('?');
  request.path = target.substr(0, qmark);
  if (qmark == std::string::npos) return;
  std::size_t pos = qmark + 1;
  while (pos <= target.size()) {
    std::size_t amp = target.find('&', pos);
    if (amp == std::string::npos) amp = target.size();
    const std::string pair = target.substr(pos, amp - pos);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        request.query[pair] = "";
      } else {
        request.query[pair.substr(0, eq)] = pair.substr(eq + 1);
      }
    }
    pos = amp + 1;
  }
}

/// Parse the request line out of the buffered head. Returns false on a
/// malformed line.
bool parse_request_line(const std::string& head, HttpRequest& request) {
  const std::size_t eol = head.find("\r\n");
  const std::string line =
      head.substr(0, eol == std::string::npos ? head.size() : eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  request.method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  if (line.compare(sp2 + 1, 5, "HTTP/") != 0) return false;
  parse_target(target, request);
  return true;
}

/// Case-insensitive Content-Length lookup in the raw header block.
/// Returns false when absent; throws nothing (malformed digits -> false).
bool find_content_length(const std::string& head, std::size_t& out) {
  std::size_t pos = head.find("\r\n");
  const std::size_t end = head.find("\r\n\r\n");
  while (pos != std::string::npos && pos < end) {
    pos += 2;
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = end;
    const std::string line = head.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = line.substr(0, colon);
      std::transform(name.begin(), name.end(), name.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (name == "content-length") {
        std::size_t value = 0;
        bool any = false;
        for (std::size_t i = colon + 1; i < line.size(); ++i) {
          const char c = line[i];
          if (c == ' ' || c == '\t') {
            if (any) break;
            continue;
          }
          if (c < '0' || c > '9') return false;
          value = value * 10 + static_cast<std::size_t>(c - '0');
          any = true;
        }
        if (!any) return false;
        out = value;
        return true;
      }
    }
    pos = eol;
  }
  return false;
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; nothing useful to do
    }
    off += static_cast<std::size_t>(n);
  }
}

void write_response(int fd, const HttpResponse& response,
                    const std::string& allow = "", bool head_only = false) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + ' ' +
                     status_text(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  // HEAD advertises the length of the body a GET would have returned,
  // but sends no body (RFC 9110 §9.3.2) — curl -I Content-Length checks
  // see the real size.
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  if (!allow.empty()) head += "Allow: " + allow + "\r\n";
  head += "Connection: close\r\n\r\n";
  write_all(fd, head_only ? head : head + response.body);
}

}  // namespace

HttpResponse error_response(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.content_type = "text/plain; charset=utf-8";
  response.body = message;
  if (response.body.empty() || response.body.back() != '\n') {
    response.body += '\n';
  }
  return response;
}

HttpResponse json_error_response(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json; charset=utf-8";
  JsonWriter w;
  w.begin_object();
  w.key("error");
  w.value(message);
  w.key("status");
  w.value(status);
  w.end_object();
  response.body = w.str() + '\n';
  return response;
}

static bool parse_cursor_flag(const std::map<std::string, std::string>& query,
                              bool& full, std::string& error) {
  const auto it = query.find("full");
  if (it == query.end()) {
    full = false;
    return true;
  }
  if (it->second == "0" || it->second == "1") {
    full = it->second == "1";
    return true;
  }
  error = "full must be 0 or 1 (got '" + it->second + "')";
  return false;
}

HttpServer::HttpServer() : HttpServer(Config{}) {}

HttpServer::HttpServer(Config config) : config_(config) {
  if (config_.workers < 1) {
    throw std::invalid_argument("HttpServer: need at least one worker");
  }
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(const std::string& path, HttpHandler handler) {
  if (path.empty() || path[0] != '/') {
    throw std::invalid_argument("HttpServer: route must start with '/'");
  }
  if (!handler) throw std::invalid_argument("HttpServer: empty handler");
  util::MutexLock lock(mutex_);
  handlers_[path].get = std::move(handler);
}

void HttpServer::handle_post(const std::string& path, HttpHandler handler) {
  if (path.empty() || path[0] != '/') {
    throw std::invalid_argument("HttpServer: route must start with '/'");
  }
  if (!handler) throw std::invalid_argument("HttpServer: empty handler");
  util::MutexLock lock(mutex_);
  handlers_[path].post = std::move(handler);
}

void HttpServer::start() {
  util::MutexLock lock(mutex_);
  if (running_) return;
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::system_error(errno, std::generic_category(),
                            "HttpServer: socket");
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  // A collector restarting on a fixed port can race its predecessor's
  // listen fd closing; SO_REUSEADDR handles TIME_WAIT but not a bind
  // attempted while the old socket is literally still open, so retry
  // EADDRINUSE briefly instead of failing the whole restart.
  const auto bind_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.bind_retry_window_s));
  while (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    if (err != EADDRINUSE ||
        std::chrono::steady_clock::now() >= bind_deadline) {
      close(fd);
      throw std::system_error(err, std::generic_category(),
                              "HttpServer: bind");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (listen(fd, config_.listen_backlog) != 0) {
    const int err = errno;
    close(fd);
    throw std::system_error(err, std::generic_category(),
                            "HttpServer: listen");
  }
  socklen_t len = sizeof addr;
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    close(fd);
    throw std::system_error(err, std::generic_category(),
                            "HttpServer: getsockname");
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  running_ = true;
  stopping_ = false;
  started_at_ = std::chrono::steady_clock::now();
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void HttpServer::stop() {
  std::thread acceptor;
  std::vector<std::thread> workers;
  {
    util::MutexLock lock(mutex_);
    if (!running_) return;
    stopping_ = true;
    // Closing the listen socket kicks accept_loop out of poll/accept.
    close(listen_fd_);
    listen_fd_ = -1;
    acceptor = std::move(acceptor_);
    workers = std::move(workers_);
    workers_.clear();
  }
  cv_.notify_all();
  if (acceptor.joinable()) acceptor.join();
  for (auto& w : workers) w.join();
  util::MutexLock lock(mutex_);
  for (int fd : pending_) close(fd);
  pending_.clear();
  running_ = false;
  stopping_ = false;
  port_ = 0;
}

bool HttpServer::running() const {
  util::MutexLock lock(mutex_);
  return running_ && !stopping_;
}

std::uint16_t HttpServer::port() const {
  util::MutexLock lock(mutex_);
  return port_;
}

std::uint64_t HttpServer::requests_served() const {
  util::MutexLock lock(mutex_);
  return requests_;
}

double HttpServer::uptime_seconds() const {
  util::MutexLock lock(mutex_);
  if (!running_) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_at_)
      .count();
}

std::vector<std::string> HttpServer::routes() const {
  util::MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(handlers_.size());
  for (const auto& [path, route] : handlers_) out.push_back(path);
  return out;
}

std::uint64_t HttpServer::connections_accepted() const {
  util::MutexLock lock(mutex_);
  return accepted_;
}

std::uint64_t HttpServer::connections_shed() const {
  util::MutexLock lock(mutex_);
  return shed_;
}

std::size_t HttpServer::accept_backlog() const {
  util::MutexLock lock(mutex_);
  return pending_.size();
}

void HttpServer::instrument(Registry& registry) {
  registry.gauge_callback(
      "probemon_http_accept_backlog",
      [this] { return static_cast<double>(accept_backlog()); },
      "Accepted connections queued for a worker thread");
  registry.counter_callback(
      "probemon_http_connections_accepted_total",
      [this] { return static_cast<double>(connections_accepted()); },
      "Connections accepted into the worker queue");
  registry.counter_callback(
      "probemon_http_connections_shed_total",
      [this] { return static_cast<double>(connections_shed()); },
      "Connections closed unserved because the queue was full");
}

void HttpServer::accept_loop() {
  for (;;) {
    int fd;
    {
      util::MutexLock lock(mutex_);
      if (stopping_) return;
      fd = listen_fd_;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int conn = accept(fd, nullptr, nullptr);
    if (conn < 0) continue;  // stop() closed the socket, or a stray error
    // Bound how long a silent client can pin a worker.
    timeval timeout{2, 0};
    setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
    bool enqueued = false;
    {
      util::MutexLock lock(mutex_);
      if (!stopping_) {
        if (pending_.size() < config_.max_pending) {
          pending_.push_back(conn);
          ++accepted_;
          enqueued = true;
        } else {
          ++shed_;  // queue full: overload, not shutdown
        }
      }
    }
    if (enqueued) {
      cv_.notify_one();
    } else {
      close(conn);  // overload (or shutdown): shed instead of queueing
    }
  }
}

void HttpServer::worker_loop() {
  for (;;) {
    int fd;
    {
      util::MutexLock lock(mutex_);
      while (!stopping_ && pending_.empty()) cv_.wait(mutex_);
      if (pending_.empty()) return;  // stopping
      fd = pending_.front();
      pending_.pop_front();
    }
    serve_connection(fd);
    close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  // Read until the end of the header block (any body bytes that arrive
  // in the same segments are kept for the POST path below).
  std::string data;
  char buf[1024];
  std::size_t header_end;
  while ((header_end = data.find("\r\n\r\n")) == std::string::npos) {
    if (data.size() > config_.max_request_bytes) {
      write_response(fd, error_response(431, "request head too large"));
      return;
    }
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client vanished or stalled past SO_RCVTIMEO
    }
    data.append(buf, static_cast<std::size_t>(n));
  }

  HttpRequest request;
  if (!parse_request_line(data, request)) {
    write_response(fd, error_response(400, "malformed request line"));
    return;
  }

  Route route;
  bool routed = false;
  {
    util::MutexLock lock(mutex_);
    ++requests_;
    auto it = handlers_.find(request.path);
    if (it != handlers_.end()) {
      route = it->second;
      routed = true;
    }
  }
  // HEAD runs the GET handler (headers need the real Content-Length)
  // and suppresses the body on the wire.
  const bool head = request.method == "HEAD";
  if (request.method != "GET" && request.method != "POST" && !head) {
    write_response(fd, error_response(405, "method not supported"),
                   "GET, HEAD, POST");
    return;
  }
  if (!routed) {
    write_response(fd, error_response(404, "no route for " + request.path),
                   "", head);
    return;
  }
  const std::string allow = route.get && route.post ? "GET, HEAD, POST"
                            : route.post            ? "POST"
                                                    : "GET, HEAD";
  const HttpHandler& handler =
      request.method == "POST" ? route.post : route.get;
  if (!handler) {
    write_response(fd,
                   error_response(405, request.method + " not supported on " +
                                           request.path),
                   allow, head);
    return;
  }

  if (request.method == "POST") {
    std::size_t content_length = 0;
    if (!find_content_length(data, content_length)) {
      write_response(fd, error_response(411, "POST requires Content-Length"));
      return;
    }
    if (content_length > config_.max_body_bytes) {
      write_response(fd,
                     error_response(413, "body exceeds " +
                                             std::to_string(
                                                 config_.max_body_bytes) +
                                             " bytes"));
      return;
    }
    const std::size_t body_start = header_end + 4;
    while (data.size() - body_start < content_length) {
      const ssize_t n = recv(fd, buf, sizeof buf, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return;  // body never arrived in full
      }
      data.append(buf, static_cast<std::size_t>(n));
    }
    request.body = data.substr(body_start, content_length);
  }

  try {
    write_response(fd, handler(request), "", head);
  } catch (const std::exception& e) {
    write_response(
        fd, error_response(500, std::string("handler error: ") + e.what()), "",
        head);
  }
}

void register_metrics_routes(HttpServer& server, const MetricStore& store) {
  // One DeltaExporter per route pair; the routes share the store but
  // keep independent per-format cursors. shared_ptr so both closures
  // (and replacements registered later) own the state.
  auto exporter = std::make_shared<DeltaExporter>(store);
  server.handle("/metrics", [exporter](const HttpRequest& request) {
    bool full = false;
    std::string error;
    if (!parse_cursor_flag(request.query, full, error)) {
      return json_error_response(400, error);
    }
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        exporter->prometheus(full)};
  });
  server.handle("/metrics.json", [exporter](const HttpRequest& request) {
    bool full = false;
    std::string error;
    if (!parse_cursor_flag(request.query, full, error)) {
      return json_error_response(400, error);
    }
    return HttpResponse{200, "application/json; charset=utf-8",
                        exporter->json(full)};
  });
}

void register_trace_routes(HttpServer& server,
                           const ProbeCycleTracer& tracer) {
  server.handle("/trace", [&tracer](const HttpRequest& request) {
    auto it = request.query.find("format");
    const std::string format = it == request.query.end() ? "json" : it->second;
    if (format == "chrome") {
      return HttpResponse{200, "application/json; charset=utf-8",
                          tracer.to_chrome_trace()};
    }
    if (format != "json") {
      return error_response(400, "unknown format '" + format +
                                     "' (expected json or chrome)");
    }
    const auto since_it = request.query.find("since");
    if (since_it == request.query.end()) {
      return HttpResponse{200, "application/json; charset=utf-8",
                          tracer.to_json()};
    }
    std::uint64_t cursor = 0;
    if (since_it->second.empty()) {
      return json_error_response(400, "since must be a non-negative integer");
    }
    for (char c : since_it->second) {
      if (c < '0' || c > '9') {
        return json_error_response(400,
                                   "since must be a non-negative integer "
                                   "(got '" +
                                       since_it->second + "')");
      }
      cursor = cursor * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return HttpResponse{200, "application/json; charset=utf-8",
                        tracer.to_json_since(cursor)};
  });
}

}  // namespace probemon::telemetry
