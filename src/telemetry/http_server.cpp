#include "telemetry/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "telemetry/export.hpp"

namespace probemon::telemetry {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    default: return "Status";
  }
}

/// Split "path?a=1&b=2" into request.path / request.query. No
/// percent-decoding: every route this server exists for uses plain
/// token values (`format=chrome`).
void parse_target(const std::string& target, HttpRequest& request) {
  const std::size_t qmark = target.find('?');
  request.path = target.substr(0, qmark);
  if (qmark == std::string::npos) return;
  std::size_t pos = qmark + 1;
  while (pos <= target.size()) {
    std::size_t amp = target.find('&', pos);
    if (amp == std::string::npos) amp = target.size();
    const std::string pair = target.substr(pos, amp - pos);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        request.query[pair] = "";
      } else {
        request.query[pair.substr(0, eq)] = pair.substr(eq + 1);
      }
    }
    pos = amp + 1;
  }
}

/// Parse the request line out of the buffered head. Returns false on a
/// malformed line.
bool parse_request_line(const std::string& head, HttpRequest& request) {
  const std::size_t eol = head.find("\r\n");
  const std::string line =
      head.substr(0, eol == std::string::npos ? head.size() : eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  request.method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  if (line.compare(sp2 + 1, 5, "HTTP/") != 0) return false;
  parse_target(target, request);
  return true;
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; nothing useful to do
    }
    off += static_cast<std::size_t>(n);
  }
}

void write_response(int fd, const HttpResponse& response,
                    const std::string& allow = "") {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + ' ' +
                     status_text(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  if (!allow.empty()) head += "Allow: " + allow + "\r\n";
  head += "Connection: close\r\n\r\n";
  write_all(fd, head + response.body);
}

}  // namespace

HttpServer::HttpServer() : HttpServer(Config{}) {}

HttpServer::HttpServer(Config config) : config_(config) {
  if (config_.workers < 1) {
    throw std::invalid_argument("HttpServer: need at least one worker");
  }
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(const std::string& path, HttpHandler handler) {
  if (path.empty() || path[0] != '/') {
    throw std::invalid_argument("HttpServer: route must start with '/'");
  }
  if (!handler) throw std::invalid_argument("HttpServer: empty handler");
  std::lock_guard lock(mutex_);
  handlers_[path] = std::move(handler);
}

void HttpServer::start() {
  std::lock_guard lock(mutex_);
  if (running_) return;
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::system_error(errno, std::generic_category(),
                            "HttpServer: socket");
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      listen(fd, 16) != 0) {
    const int err = errno;
    close(fd);
    throw std::system_error(err, std::generic_category(),
                            "HttpServer: bind/listen");
  }
  socklen_t len = sizeof addr;
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    close(fd);
    throw std::system_error(err, std::generic_category(),
                            "HttpServer: getsockname");
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  running_ = true;
  stopping_ = false;
  started_at_ = std::chrono::steady_clock::now();
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void HttpServer::stop() {
  std::thread acceptor;
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    stopping_ = true;
    // Closing the listen socket kicks accept_loop out of poll/accept.
    close(listen_fd_);
    listen_fd_ = -1;
    acceptor = std::move(acceptor_);
    workers = std::move(workers_);
    workers_.clear();
  }
  cv_.notify_all();
  if (acceptor.joinable()) acceptor.join();
  for (auto& w : workers) w.join();
  std::lock_guard lock(mutex_);
  for (int fd : pending_) close(fd);
  pending_.clear();
  running_ = false;
  stopping_ = false;
  port_ = 0;
}

bool HttpServer::running() const {
  std::lock_guard lock(mutex_);
  return running_ && !stopping_;
}

std::uint16_t HttpServer::port() const {
  std::lock_guard lock(mutex_);
  return port_;
}

std::uint64_t HttpServer::requests_served() const {
  std::lock_guard lock(mutex_);
  return requests_;
}

double HttpServer::uptime_seconds() const {
  std::lock_guard lock(mutex_);
  if (!running_) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_at_)
      .count();
}

std::vector<std::string> HttpServer::routes() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(handlers_.size());
  for (const auto& [path, handler] : handlers_) out.push_back(path);
  return out;
}

void HttpServer::accept_loop() {
  for (;;) {
    int fd;
    {
      std::lock_guard lock(mutex_);
      if (stopping_) return;
      fd = listen_fd_;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int conn = accept(fd, nullptr, nullptr);
    if (conn < 0) continue;  // stop() closed the socket, or a stray error
    // Bound how long a silent client can pin a worker.
    timeval timeout{2, 0};
    setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
    bool enqueued = false;
    {
      std::lock_guard lock(mutex_);
      if (!stopping_ && pending_.size() < config_.max_pending) {
        pending_.push_back(conn);
        enqueued = true;
      }
    }
    if (enqueued) {
      cv_.notify_one();
    } else {
      close(conn);  // overload (or shutdown): shed instead of queueing
    }
  }
}

void HttpServer::worker_loop() {
  for (;;) {
    int fd;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping
      fd = pending_.front();
      pending_.pop_front();
    }
    serve_connection(fd);
    close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  // Read until the end of the header block; the request body (which
  // GETs don't carry) is ignored.
  std::string head;
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos) {
    if (head.size() > config_.max_request_bytes) {
      write_response(fd, {431, "text/plain; charset=utf-8",
                          "request head too large\n"});
      return;
    }
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client vanished or stalled past SO_RCVTIMEO
    }
    head.append(buf, static_cast<std::size_t>(n));
  }

  HttpRequest request;
  if (!parse_request_line(head, request)) {
    write_response(fd, {400, "text/plain; charset=utf-8",
                        "malformed request line\n"});
    return;
  }

  HttpHandler handler;
  {
    std::lock_guard lock(mutex_);
    ++requests_;
    auto it = handlers_.find(request.path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (request.method != "GET") {
    write_response(fd, {405, "text/plain; charset=utf-8",
                        "only GET is supported\n"},
                   "GET");
    return;
  }
  if (!handler) {
    write_response(fd, {404, "text/plain; charset=utf-8",
                        "no route for " + request.path + "\n"});
    return;
  }
  try {
    write_response(fd, handler(request));
  } catch (const std::exception& e) {
    write_response(fd, {500, "text/plain; charset=utf-8",
                        std::string("handler error: ") + e.what() + "\n"});
  }
}

void register_metrics_routes(HttpServer& server, const Registry& registry) {
  server.handle("/metrics", [&registry](const HttpRequest&) {
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        to_prometheus(registry)};
  });
  server.handle("/metrics.json", [&registry](const HttpRequest&) {
    return HttpResponse{200, "application/json", to_json(registry)};
  });
}

void register_trace_routes(HttpServer& server,
                           const ProbeCycleTracer& tracer) {
  server.handle("/trace", [&tracer](const HttpRequest& request) {
    auto it = request.query.find("format");
    const std::string format = it == request.query.end() ? "json" : it->second;
    if (format == "chrome") {
      return HttpResponse{200, "application/json", tracer.to_chrome_trace()};
    }
    if (format == "json") {
      return HttpResponse{200, "application/json", tracer.to_json()};
    }
    return HttpResponse{400, "text/plain; charset=utf-8",
                        "unknown format '" + format +
                            "' (expected json or chrome)\n"};
  });
}

}  // namespace probemon::telemetry
