#include "telemetry/interner.hpp"

#include <stdexcept>

namespace probemon::telemetry {

namespace {
constexpr std::uint32_t kMiss = UINT32_MAX;
constexpr std::size_t kInitialTableCapacity = 256;
}  // namespace

LabelInterner::LabelInterner() {
  auto table = std::make_unique<Table>(kInitialTableCapacity);
  table_.store(table.get(), std::memory_order_release);
  tables_.push_back(std::move(table));
  intern("");  // id 0 == "" (empty help, empty value)
}

std::uint32_t LabelInterner::find_in(const Table& table, std::string_view s,
                                     std::size_t h) const noexcept {
  const std::size_t mask = table.capacity - 1;
  for (std::size_t probe = h & mask;; probe = (probe + 1) & mask) {
    const std::uint32_t slot =
        table.slots[probe].load(std::memory_order_acquire);
    if (slot == 0) return kMiss;
    const std::uint32_t id = slot - 1;
    if (str(id) == s) return id;
  }
}

void LabelInterner::insert_slot(Table& table, std::uint32_t id,
                                std::size_t h) noexcept {
  const std::size_t mask = table.capacity - 1;
  std::size_t probe = h & mask;
  while (table.slots[probe].load(std::memory_order_relaxed) != 0) {
    probe = (probe + 1) & mask;
  }
  table.slots[probe].store(id + 1, std::memory_order_release);
}

std::uint32_t LabelInterner::intern(std::string_view s) {
  const std::size_t h = hash(s);
  {
    const Table* table = table_.load(std::memory_order_acquire);
    const std::uint32_t id = find_in(*table, s, h);
    if (id != kMiss) return id;
  }

  util::MutexLock lock(write_mutex_);
  // Re-probe under the lock: another thread may have appended `s`, or
  // published a grown table, between our miss and the lock.
  Table* table = table_.load(std::memory_order_relaxed);
  const std::uint32_t existing = find_in(*table, s, h);
  if (existing != kMiss) return existing;

  const std::uint32_t id = count_.load(std::memory_order_relaxed);
  if (id >= kMaxStrings) {
    throw std::length_error("LabelInterner: over " +
                            std::to_string(kMaxStrings) +
                            " distinct strings — label cardinality leak?");
  }

  const std::size_t block_index = id >> kBlockShift;
  Block* block = blocks_[block_index].load(std::memory_order_relaxed);
  if (block == nullptr) {
    auto owned = std::make_unique<Block>();
    block = owned.get();
    block_storage_.push_back(std::move(owned));
    blocks_[block_index].store(block, std::memory_order_release);
  }
  block->slots[id & (kBlockSize - 1)] = std::string(s);
  count_.store(id + 1, std::memory_order_release);

  // Grow at 70% load *before* inserting so the publish slot exists.
  if ((id + 1) * 10 >= table->capacity * 7) {
    auto grown = std::make_unique<Table>(table->capacity * 2);
    for (std::uint32_t i = 0; i <= id; ++i) {
      insert_slot(*grown, i, hash(str(i)));
    }
    table = grown.get();
    table_.store(table, std::memory_order_release);
    tables_.push_back(std::move(grown));  // old table retired, not freed
  } else {
    insert_slot(*table, id, h);
  }
  return id;
}

std::string_view LabelInterner::str(std::uint32_t id) const noexcept {
  if (id >= count_.load(std::memory_order_acquire)) return {};
  const Block* block =
      blocks_[id >> kBlockShift].load(std::memory_order_acquire);
  return block->slots[id & (kBlockSize - 1)];
}

LabelInterner& LabelInterner::global() {
  static LabelInterner interner;
  return interner;
}

}  // namespace probemon::telemetry
