// ProbeCycleTracer: span-like records of individual probe cycles.
//
// Metrics aggregate; traces explain. One ProbeCycleTrace covers a full
// bounded-retransmission cycle (paper Fig 1) from the first probe send
// to its resolution — reply accepted, or the device declared absent
// after exhausting retransmissions:
//
//   start ──probe──► (timeout ──probe──►)*  ──► end
//                                              success? rtt, attempts
//
// The tracer keeps the most recent N records in a ring buffer behind a
// mutex. Commit happens once per cycle (≥ tens of milliseconds apart per
// CP), so a mutex is plenty; the hot per-probe path stays in
// telemetry::Counter territory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::telemetry {

struct ProbeCycleTrace {
  net::NodeId cp = net::kInvalidNode;      ///< probing control point
  net::NodeId device = net::kInvalidNode;  ///< probed device
  std::uint64_t cycle = 0;                 ///< CP-local cycle sequence no.
  double start = 0.0;     ///< transport-clock time of the first send
  double end = 0.0;       ///< reply acceptance / absence declaration
  std::uint8_t attempts = 0;  ///< probes sent (1 = no retransmission)
  bool success = false;       ///< false = device declared absent
  /// Last-probe-send → reply latency (seconds); 0 for failed cycles.
  double rtt = 0.0;
  /// Per-attempt send instants (size == attempts when populated;
  /// sends[0] == start). Lets the Chrome-trace export mark each
  /// retransmission inside the cycle span.
  std::vector<double> sends;
};

class ProbeCycleTracer {
 public:
  explicit ProbeCycleTracer(std::size_t capacity = 1024);

  void record(const ProbeCycleTrace& trace) PROBEMON_EXCLUDES(mutex_);

  /// Retained traces, oldest first.
  std::vector<ProbeCycleTrace> snapshot() const PROBEMON_EXCLUDES(mutex_);

  /// Delta snapshot: traces recorded after `cursor` (a recorded()
  /// count from a previous call; 0 = from the beginning), oldest
  /// first, bounded by what the ring still retains. `cursor` is
  /// updated to the current recorded() so the next call continues from
  /// here. Records that aged out of the ring between calls are lost —
  /// detectable as recorded() advancing by more than the returned
  /// size.
  std::vector<ProbeCycleTrace> snapshot_since(std::uint64_t& cursor) const
      PROBEMON_EXCLUDES(mutex_);

  /// Total traces ever recorded (≥ snapshot().size()).
  std::uint64_t recorded() const PROBEMON_EXCLUDES(mutex_);
  std::size_t capacity() const noexcept { return capacity_; }

  /// Snapshot as a JSON array (one object per trace).
  std::string to_json() const;

  /// Delta scrape document: {"next": <new cursor>, "traces": [...]}
  /// with only the traces recorded after `cursor` (see
  /// snapshot_since). The /trace?since=N route sits on this.
  std::string to_json_since(std::uint64_t& cursor) const;

  /// Snapshot in Chrome trace-event format (JSON object with a
  /// `traceEvents` array), loadable in Perfetto / chrome://tracing.
  /// Each cycle becomes a complete event (ph "X") on track pid=device,
  /// tid=cp, with instant events (ph "i") for every probe send;
  /// metadata events name the tracks. Timestamps are the transport
  /// clock converted to microseconds.
  std::string to_chrome_trace() const;

 private:
  const std::size_t capacity_;
  mutable util::Mutex mutex_{"telemetry.ProbeCycleTracer"};
  std::vector<ProbeCycleTrace> ring_ PROBEMON_GUARDED_BY(mutex_);
  /// ring slot the next record lands in
  std::size_t next_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::uint64_t recorded_ PROBEMON_GUARDED_BY(mutex_) = 0;
};

}  // namespace probemon::telemetry
