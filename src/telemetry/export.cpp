#include "telemetry/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace probemon::telemetry {

namespace {

/// Prometheus sample-value formatting: integral values without decimals,
/// non-finite values as the spec's literals.
std::string fmt_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return json_number(v);
}

/// Prometheus label-value escaping: \, ", and newline.
std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string label_block(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label(v);
    out += '"';
  }
  out += '}';
  return out;
}

/// Labels + one extra pair appended (histogram `le`).
std::string label_block_with(const Labels& labels, const std::string& key,
                             const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return label_block(extended);
}

void emit_family_header(std::string& out, const Sample& s,
                        std::string& last_name) {
  if (s.name == last_name) return;
  last_name = s.name;
  if (!s.help.empty()) {
    out += "# HELP " + s.name + ' ' + s.help + '\n';
  }
  out += "# TYPE " + s.name + ' ';
  out += to_string(s.type);
  out += '\n';
}

}  // namespace

std::string samples_to_prometheus(const std::vector<Sample>& samples) {
  std::string out;
  std::string last_name;
  for (const Sample& s : samples) {
    emit_family_header(out, s, last_name);
    if (s.type != MetricType::kHistogram) {
      out += s.name + label_block(s.labels) + ' ' + fmt_value(s.value) + '\n';
      continue;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      cumulative += s.buckets[i];
      const std::string le =
          i < s.bounds.size() ? fmt_value(s.bounds[i]) : "+Inf";
      out += s.name + "_bucket" + label_block_with(s.labels, "le", le) + ' ' +
             std::to_string(cumulative) + '\n';
    }
    out += s.name + "_sum" + label_block(s.labels) + ' ' + fmt_value(s.sum) +
           '\n';
    out += s.name + "_count" + label_block(s.labels) + ' ' +
           std::to_string(s.count) + '\n';
  }
  return out;
}

void write_samples_json(JsonWriter& w, const std::vector<Sample>& samples) {
  w.key("metrics");
  w.begin_array();
  for (const Sample& s : samples) {
    w.begin_object();
    w.key("name");
    w.value(s.name);
    w.key("type");
    w.value(to_string(s.type));
    if (!s.help.empty()) {
      w.key("help");
      w.value(s.help);
    }
    if (!s.labels.empty()) {
      w.key("labels");
      w.begin_object();
      for (const auto& [k, v] : s.labels) {
        w.key(k);
        w.value(v);
      }
      w.end_object();
    }
    if (s.type != MetricType::kHistogram) {
      w.key("value");
      w.value(s.value);
    } else {
      w.key("count");
      w.value(s.count);
      w.key("sum");
      w.value(s.sum);
      w.key("bounds");
      w.begin_array();
      for (double b : s.bounds) w.value(b);
      w.end_array();
      w.key("buckets");
      w.begin_array();
      for (std::uint64_t c : s.buckets) w.value(c);
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
}

std::string samples_to_json(const std::vector<Sample>& samples) {
  JsonWriter w;
  w.begin_object();
  write_samples_json(w, samples);
  w.end_object();
  return w.str();
}

std::string to_prometheus(const MetricStore& store) {
  return samples_to_prometheus(store.snapshot());
}

std::string to_json(const MetricStore& store) {
  return samples_to_json(store.snapshot());
}

std::string render_human(const MetricStore& store) {
  const auto samples = store.snapshot();
  // Align the value column on the longest name+labels.
  std::size_t width = 0;
  std::vector<std::string> keys;
  keys.reserve(samples.size());
  for (const Sample& s : samples) {
    keys.push_back(s.name + label_block(s.labels));
    width = std::max(width, keys.back().size());
  }
  std::string out;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    out += keys[i];
    out.append(width - keys[i].size() + 2, ' ');
    if (s.type != MetricType::kHistogram) {
      out += fmt_value(s.value);
    } else {
      const double mean =
          s.count ? s.sum / static_cast<double>(s.count) : 0.0;
      char buf[96];
      std::snprintf(buf, sizeof buf, "count=%llu mean=%.6g sum=%.6g",
                    static_cast<unsigned long long>(s.count), mean, s.sum);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

std::string DeltaExporter::prometheus(bool full) {
  util::MutexLock lock(mutex_);
  return samples_to_prometheus(store_.snapshot_delta(prometheus_since_, full));
}

std::string DeltaExporter::json(bool full) {
  util::MutexLock lock(mutex_);
  return samples_to_json(store_.snapshot_delta(json_since_, full));
}

std::vector<Sample> DeltaExporter::delta_samples(bool full) {
  util::MutexLock lock(mutex_);
  return store_.snapshot_delta(samples_since_, full);
}

PeriodicReporter::PeriodicReporter(const MetricStore& store, double period_s,
                                   util::LogLevel level)
    : store_(store), period_s_(period_s), level_(level) {}

PeriodicReporter::~PeriodicReporter() { stop(); }

void PeriodicReporter::set_snapshot_file(std::string path) {
  util::MutexLock lock(mutex_);
  snapshot_path_ = std::move(path);
}

void PeriodicReporter::write_snapshot_file() {
  std::string path;
  {
    util::MutexLock lock(mutex_);
    path = snapshot_path_;
  }
  if (path.empty()) return;
  // Write-then-rename so a reader (or a crash mid-write) never sees a
  // half-written exposition.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      PROBEMON_LOG(util::LogLevel::kWarn)
          << "PeriodicReporter: cannot write " << tmp;
      return;
    }
    out << to_prometheus(store_);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    PROBEMON_LOG(util::LogLevel::kWarn)
        << "PeriodicReporter: rename to " << path << " failed: "
        << ec.message();
  }
}

void PeriodicReporter::start() {
  util::MutexLock lock(mutex_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { run(); });
}

void PeriodicReporter::stop() {
  std::thread worker;
  {
    util::MutexLock lock(mutex_);
    if (!started_) return;
    stop_ = true;
    worker = std::move(thread_);
  }
  cv_.notify_all();
  if (worker.joinable()) worker.join();
  write_snapshot_file();  // final state, even if no tick ever fired
  util::MutexLock lock(mutex_);
  started_ = false;
}

void PeriodicReporter::run() {
  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(period_s_));
  for (;;) {
    {
      util::MutexLock lock(mutex_);
      const auto deadline = std::chrono::steady_clock::now() + period;
      while (!stop_) {
        if (cv_.wait_until(mutex_, deadline) == std::cv_status::timeout) {
          break;
        }
      }
      if (stop_) return;
    }
    // Render and write outside the lock: neither touches guarded state,
    // and a slow sink must not block set_snapshot_file()/stop().
    PROBEMON_LOG(level_) << "telemetry snapshot\n" << render_human(store_);
    write_snapshot_file();
  }
}

}  // namespace probemon::telemetry
