// Metric primitives: the lock-free hot path of the telemetry subsystem.
//
// Protocol threads (CP loops, transport delivery threads, device
// handlers) record through these objects; snapshotting, naming and
// exposition live in registry.hpp / export.hpp. Everything here is a
// plain atomic update so instrumentation can sit on paths that fire
// tens of thousands of times per second:
//
//   * Counter    — monotonically increasing u64 (relaxed fetch_add).
//   * Gauge      — last-written double (relaxed store; add() via CAS).
//   * Histogram  — fixed upper-bound buckets, Prometheus `le` semantics
//                  (observation x lands in the first bucket with
//                  x <= upper_bound, else the implicit +Inf bucket),
//                  plus an exact count and CAS-accumulated sum. This is
//                  the concurrent sibling of stats::Histogram: same
//                  bucket bookkeeping, no interpolated quantiles (those
//                  belong to offline analysis).
//
// Relaxed ordering is deliberate: metrics are monitoring data, not
// synchronization. Cross-metric skew in a snapshot (a counter read a few
// nanoseconds before its sibling) is acceptable; each individual value
// is always exact because every increment uses an atomic RMW.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace probemon::telemetry {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Ingestion/replay only (collector absorbing an agent's absolute
  /// reading): overwrites the value, breaking monotonicity for local
  /// observers. Never call on a counter that live code increments.
  void reset(std::uint64_t v = 0) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  void sub(double d) noexcept { add(-d); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing; a final
  /// +Inf bucket is implicit.
  explicit Histogram(std::vector<double> upper_bounds)
      : bounds_(std::move(upper_bounds)) {
    if (bounds_.empty()) {
      throw std::invalid_argument("Histogram: no buckets");
    }
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
      if (!(bounds_[i] > bounds_[i - 1])) {
        throw std::invalid_argument("Histogram: bounds must increase");
      }
    }
    counts_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }

  void observe(double x) noexcept {
    std::size_t lo = 0, hi = bounds_.size();  // branchless-ish binary search
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (x <= bounds_[mid]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    counts_[lo].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + x,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Fold another histogram's observations into this one. The bucket
  /// layouts must match (same bounds) or the merge is meaningless.
  void merge_from(const Histogram& other) {
    if (other.bounds_ != bounds_) {
      throw std::logic_error("Histogram::merge_from: bucket bounds differ");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i].fetch_add(other.counts_[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    double d = other.sum_.load(std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + d,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Ingestion/replay only (collector absorbing an agent's absolute
  /// state): overwrite all bucket counts, the total count and the sum.
  /// `buckets` must have bucket_count() entries (+Inf last). Never call
  /// on a histogram that live code observes into.
  void reset_to(const std::vector<std::uint64_t>& buckets,
                std::uint64_t count, double sum) {
    if (buckets.size() != counts_.size()) {
      throw std::invalid_argument("Histogram::reset_to: bucket count differs");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i].store(buckets[i], std::memory_order_relaxed);
    }
    count_.store(count, std::memory_order_relaxed);
    sum_.store(sum, std::memory_order_relaxed);
  }

  const std::vector<double>& upper_bounds() const noexcept { return bounds_; }
  /// Number of buckets including the implicit +Inf one.
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  /// Non-cumulative count of bucket i (i == bucket_count()-1 is +Inf).
  std::uint64_t bucket(std::size_t i) const {
    return counts_.at(i).load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// `count` buckets at start, start+width, ... (Prometheus helper).
  static std::vector<double> linear_buckets(double start, double width,
                                            std::size_t count) {
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(start + width * static_cast<double>(i));
    }
    return out;
  }
  /// `count` buckets at start, start*factor, ... ; factor > 1.
  static std::vector<double> exponential_buckets(double start, double factor,
                                                 std::size_t count) {
    std::vector<double> out;
    out.reserve(count);
    double b = start;
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(b);
      b *= factor;
    }
    return out;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

}  // namespace probemon::telemetry
