#include "telemetry/sharded_registry.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "util/thread_annotations.hpp"

namespace probemon::telemetry {

namespace {

struct Key {
  std::uint32_t name = 0;
  LabelIds labels;
  bool operator==(const Key& other) const {
    return name == other.name && labels == other.labels;
  }
};

struct KeyHash {
  std::size_t operator()(const Key& key) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(key.name);
    for (const auto& [k, v] : key.labels) {
      mix(k);
      mix(v);
    }
    return static_cast<std::size_t>(h);
  }
};

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

struct ShardedRegistry::Entry {
  std::uint32_t help = 0;  ///< interned; 0 = none
  MetricType type = MetricType::kCounter;
  bool help_from_merge = false;  ///< see Registry::Entry
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
  std::function<double()> callback;
  std::size_t scan_index = 0;  ///< this entry's slot in Shard::scan
};

/// Hot change-detection state, one slot per entry, kept in a
/// contiguous per-shard vector. The delta scrape must fingerprint
/// every series to find the changed ones; chasing unordered_map nodes
/// for that costs a cache miss per entry, while sweeping this array is
/// sequential (the metric objects themselves are allocated in
/// registration order, so the one remaining indirection prefetches
/// well). Slots hold pointers into the map's nodes, which are
/// address-stable until erased; remove() swap-deletes the slot and
/// patches the moved entry's scan_index.
struct ShardedRegistry::ScanSlot {
  const Counter* counter = nullptr;
  const Gauge* gauge = nullptr;
  const Histogram* histogram = nullptr;
  const std::function<double()>* callback = nullptr;
  const void* key = nullptr;  ///< const Key* (TU-local type)
  Entry* entry = nullptr;
  std::uint64_t fingerprint = 0;
  std::uint64_t change_epoch = 0;  ///< 0 = never scraped
};

struct ShardedRegistry::Shard {
  mutable util::Mutex mutex{"telemetry.ShardedRegistry.shard"};
  std::unordered_map<Key, Entry, KeyHash> entries PROBEMON_GUARDED_BY(mutex);
  std::vector<ScanSlot> scan PROBEMON_GUARDED_BY(mutex);

  /// Keep the slot's metric pointers in sync after lazy creation.
  void sync_slot(Entry& entry) PROBEMON_REQUIRES(mutex) {
    ScanSlot& slot = scan[entry.scan_index];
    slot.counter = entry.counter.get();
    slot.gauge = entry.gauge.get();
    slot.histogram = entry.histogram.get();
    slot.callback = entry.callback ? &entry.callback : nullptr;
  }
};

ShardedRegistry::ShardedRegistry(std::size_t shards, LabelInterner* interner)
    : interner_(interner),
      shard_count_(round_up_pow2(shards == 0 ? 1 : shards)),
      shards_(std::make_unique<Shard[]>(shard_count_)) {}

ShardedRegistry::~ShardedRegistry() = default;

ShardedRegistry::Shard& ShardedRegistry::shard_for(
    std::uint32_t name, const LabelIds& labels) const noexcept {
  const Key key{name, labels};
  return shards_[KeyHash{}(key) & (shard_count_ - 1)];
}

std::uint32_t ShardedRegistry::intern_name(std::string_view name) {
  const std::string s(name);
  if (!detail::valid_metric_name(s)) {
    throw std::invalid_argument("ShardedRegistry: invalid metric name '" + s +
                                "'");
  }
  return interner_->intern(name);
}

std::uint32_t ShardedRegistry::intern_label_name(std::string_view name) {
  const std::string s(name);
  if (!detail::valid_label_name(s)) {
    throw std::invalid_argument("ShardedRegistry: invalid label name '" + s +
                                "'");
  }
  return interner_->intern(name);
}

std::uint32_t ShardedRegistry::intern(std::string_view value) {
  return interner_->intern(value);
}

LabelIds ShardedRegistry::intern_labels(const Labels& labels) {
  LabelIds out;
  out.reserve(labels.size());
  for (const auto& [k, v] : labels) {
    out.emplace_back(intern_label_name(k), interner_->intern(v));
  }
  return out;
}

ShardedRegistry::Entry& ShardedRegistry::find_or_create(
    Shard& shard, std::uint32_t name, const LabelIds& labels,
    std::uint32_t help_id, MetricType type, bool is_callback,
    bool from_merge) PROBEMON_REQUIRES(shard.mutex) {
  auto [it, inserted] = shard.entries.try_emplace(Key{name, labels});
  Entry& entry = it->second;
  if (inserted) {
    entry.help = help_id;
    entry.type = type;
    entry.help_from_merge = from_merge;
    entry.scan_index = shard.scan.size();
    ScanSlot slot;
    slot.key = &it->first;
    slot.entry = &entry;
    shard.scan.push_back(slot);
    return entry;
  }
  if (entry.type != type) {
    throw std::logic_error("ShardedRegistry: '" +
                           std::string(interner_->str(name)) +
                           "' already registered as " +
                           std::string(to_string(entry.type)));
  }
  const bool was_callback = static_cast<bool>(entry.callback);
  if (was_callback != is_callback) {
    throw std::logic_error("ShardedRegistry: '" +
                           std::string(interner_->str(name)) +
                           "' mixes owned and callback registration");
  }
  // Same help policy as Registry: explicit registrations beat (and
  // un-stale) help inherited from a merge.
  if (help_id != 0) {
    if (entry.help == 0) {
      entry.help = help_id;
      entry.help_from_merge = from_merge;
    } else if (entry.help_from_merge && !from_merge) {
      entry.help = help_id;
      entry.help_from_merge = false;
    }
  }
  return entry;
}

Counter& ShardedRegistry::counter_ids(std::uint32_t name,
                                      const LabelIds& labels,
                                      std::uint32_t help_id) {
  Shard& shard = shard_for(name, labels);
  util::MutexLock lock(shard.mutex);
  Entry& entry = find_or_create(shard, name, labels, help_id,
                                MetricType::kCounter, false, false);
  if (!entry.counter) {
    entry.counter = std::make_unique<Counter>();
    shard.sync_slot(entry);
  }
  return *entry.counter;
}

Gauge& ShardedRegistry::gauge_ids(std::uint32_t name, const LabelIds& labels,
                                  std::uint32_t help_id) {
  Shard& shard = shard_for(name, labels);
  util::MutexLock lock(shard.mutex);
  Entry& entry = find_or_create(shard, name, labels, help_id,
                                MetricType::kGauge, false, false);
  if (!entry.gauge) {
    entry.gauge = std::make_unique<Gauge>();
    shard.sync_slot(entry);
  }
  return *entry.gauge;
}

Histogram& ShardedRegistry::histogram_ids(std::uint32_t name,
                                          std::vector<double> bounds,
                                          const LabelIds& labels,
                                          std::uint32_t help_id) {
  Shard& shard = shard_for(name, labels);
  util::MutexLock lock(shard.mutex);
  Entry& entry = find_or_create(shard, name, labels, help_id,
                                MetricType::kHistogram, false, false);
  if (!entry.histogram) {
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
    shard.sync_slot(entry);
  }
  return *entry.histogram;
}

Counter& ShardedRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  return counter_ids(intern_name(name), intern_labels(labels),
                     help.empty() ? 0 : interner_->intern(help));
}

Gauge& ShardedRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  return gauge_ids(intern_name(name), intern_labels(labels),
                   help.empty() ? 0 : interner_->intern(help));
}

Histogram& ShardedRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help,
                                      const Labels& labels) {
  return histogram_ids(intern_name(name), std::move(bounds),
                       intern_labels(labels),
                       help.empty() ? 0 : interner_->intern(help));
}

void ShardedRegistry::gauge_callback(const std::string& name,
                                     std::function<double()> fn,
                                     const std::string& help,
                                     const Labels& labels) {
  if (!fn) throw std::invalid_argument("ShardedRegistry: empty callback");
  const std::uint32_t name_id = intern_name(name);
  const LabelIds label_ids = intern_labels(labels);
  const std::uint32_t help_id = help.empty() ? 0 : interner_->intern(help);
  Shard& shard = shard_for(name_id, label_ids);
  util::MutexLock lock(shard.mutex);
  Entry& entry = find_or_create(shard, name_id, label_ids, help_id,
                                MetricType::kGauge, true, false);
  entry.callback = std::move(fn);
  shard.sync_slot(entry);
}

void ShardedRegistry::counter_callback(const std::string& name,
                                       std::function<double()> fn,
                                       const std::string& help,
                                       const Labels& labels) {
  if (!fn) throw std::invalid_argument("ShardedRegistry: empty callback");
  const std::uint32_t name_id = intern_name(name);
  const LabelIds label_ids = intern_labels(labels);
  const std::uint32_t help_id = help.empty() ? 0 : interner_->intern(help);
  Shard& shard = shard_for(name_id, label_ids);
  util::MutexLock lock(shard.mutex);
  Entry& entry = find_or_create(shard, name_id, label_ids, help_id,
                                MetricType::kCounter, true, false);
  entry.callback = std::move(fn);
  shard.sync_slot(entry);
}

bool ShardedRegistry::remove(const std::string& name, const Labels& labels) {
  const std::uint32_t name_id = interner_->intern(name);
  LabelIds label_ids;
  label_ids.reserve(labels.size());
  for (const auto& [k, v] : labels) {
    label_ids.emplace_back(interner_->intern(k), interner_->intern(v));
  }
  Shard& shard = shard_for(name_id, label_ids);
  util::MutexLock lock(shard.mutex);
  auto it = shard.entries.find(Key{name_id, label_ids});
  if (it == shard.entries.end()) return false;
  const std::size_t idx = it->second.scan_index;
  shard.scan[idx] = shard.scan.back();
  shard.scan[idx].entry->scan_index = idx;
  shard.scan.pop_back();
  shard.entries.erase(it);
  return true;
}

std::size_t ShardedRegistry::size() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    util::MutexLock lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

void ShardedRegistry::materialize(std::uint32_t name, const LabelIds& labels,
                                  std::string& name_out,
                                  Labels& labels_out) const {
  name_out.assign(interner_->str(name));
  labels_out.clear();
  labels_out.reserve(labels.size());
  for (const auto& [k, v] : labels) {
    labels_out.emplace_back(std::string(interner_->str(k)),
                            std::string(interner_->str(v)));
  }
}

namespace {

/// Sort materialized samples into Registry's (name, labels) key order.
void sort_samples(std::vector<Sample>& samples) {
  std::vector<std::string> keys;
  keys.reserve(samples.size());
  for (const Sample& s : samples) {
    keys.push_back(detail::make_key(s.name, s.labels));
  }
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&keys](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
  std::vector<Sample> sorted;
  sorted.reserve(samples.size());
  for (std::size_t i : order) sorted.push_back(std::move(samples[i]));
  samples = std::move(sorted);
}

}  // namespace

std::vector<Sample> ShardedRegistry::snapshot() const {
  std::vector<Sample> out;
  std::string name;
  Labels labels;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    util::MutexLock lock(shard.mutex);
    for (const ScanSlot& slot : shard.scan) {
      const Key& key = *static_cast<const Key*>(slot.key);
      materialize(key.name, key.labels, name, labels);
      const bool has_callback = slot.callback != nullptr;
      out.push_back(detail::sample_of(
          name, std::string(interner_->str(slot.entry->help)), labels,
          slot.entry->type, slot.counter, slot.gauge, slot.histogram,
          has_callback, has_callback ? (*slot.callback)() : 0.0));
    }
  }
  sort_samples(out);
  return out;
}

std::vector<Sample> ShardedRegistry::snapshot_delta(std::uint64_t& since,
                                                    bool full) const {
  const std::uint64_t epoch =
      scrape_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::vector<Sample> out;
  std::string name;
  Labels labels;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    util::MutexLock lock(shard.mutex);
    for (ScanSlot& slot : shard.scan) {
      const bool has_callback = slot.callback != nullptr;
      const double callback_value = has_callback ? (*slot.callback)() : 0.0;
      const std::uint64_t fp =
          detail::fingerprint_of(slot.counter, slot.gauge, slot.histogram,
                                 has_callback, callback_value);
      if (slot.change_epoch == 0 || fp != slot.fingerprint) {
        slot.fingerprint = fp;
        slot.change_epoch = epoch;
      }
      if (full || slot.change_epoch > since) {
        const Key& key = *static_cast<const Key*>(slot.key);
        materialize(key.name, key.labels, name, labels);
        out.push_back(detail::sample_of(
            name, std::string(interner_->str(slot.entry->help)), labels,
            slot.entry->type, slot.counter, slot.gauge, slot.histogram,
            has_callback, callback_value));
      }
    }
  }
  sort_samples(out);
  since = epoch;
  return out;
}

// TSA cannot model a variable-length lock set (one capability per
// shard, count chosen at runtime), so the whole-store walk opts out of
// the analysis; the AllShardsLock RAII below still guarantees balanced
// acquire/release (including on exceptions thrown by `fn`), and the
// lock-order registry still observes the walk in checked builds — the
// ascending-index acquisition order keeps it cycle-free.
void ShardedRegistry::visit_owned(
    const std::function<void(const EntryView&)>& fn) const PROBEMON_NO_TSA {
  // Lock every shard for the walk so the merge sees one consistent
  // point in time, then visit in (name, labels) key order for
  // deterministic merge results.
  struct AllShardsLock {
    const ShardedRegistry& reg;
    explicit AllShardsLock(const ShardedRegistry& r) PROBEMON_NO_TSA : reg(r) {
      for (std::size_t i = 0; i < reg.shard_count_; ++i) {
        reg.shards_[i].mutex.lock();
      }
    }
    ~AllShardsLock() PROBEMON_NO_TSA {
      for (std::size_t i = reg.shard_count_; i-- > 0;) {
        reg.shards_[i].mutex.unlock();
      }
    }
  };
  AllShardsLock locks(*this);
  struct Item {
    std::string key;
    const Key* entry_key;
    const Entry* entry;
  };
  std::vector<Item> items;
  std::string name;
  Labels labels;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    for (const auto& [key, entry] : shards_[i].entries) {
      if (entry.callback) continue;
      materialize(key.name, key.labels, name, labels);
      items.push_back({detail::make_key(name, labels), &key, &entry});
    }
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.key < b.key; });
  std::string help;
  for (const Item& item : items) {
    materialize(item.entry_key->name, item.entry_key->labels, name, labels);
    help.assign(interner_->str(item.entry->help));
    EntryView view;
    view.name = &name;
    view.help = &help;
    view.labels = &labels;
    view.type = item.entry->type;
    view.counter = item.entry->counter.get();
    view.gauge = item.entry->gauge.get();
    view.histogram = item.entry->histogram.get();
    fn(view);
  }
}

void ShardedRegistry::absorb(const EntryView& view) {
  const std::uint32_t name_id = interner_->intern(*view.name);
  LabelIds label_ids;
  label_ids.reserve(view.labels->size());
  for (const auto& [k, v] : *view.labels) {
    label_ids.emplace_back(interner_->intern(k), interner_->intern(v));
  }
  const std::uint32_t help_id =
      view.help->empty() ? 0 : interner_->intern(*view.help);
  Shard& shard = shard_for(name_id, label_ids);
  util::MutexLock lock(shard.mutex);
  Entry& entry = find_or_create(shard, name_id, label_ids, help_id, view.type,
                                false, /*from_merge=*/true);
  if (view.counter != nullptr) {
    if (!entry.counter) {
      entry.counter = std::make_unique<Counter>();
      shard.sync_slot(entry);
    }
    entry.counter->inc(view.counter->value());
  } else if (view.gauge != nullptr) {
    if (!entry.gauge) {
      entry.gauge = std::make_unique<Gauge>();
      shard.sync_slot(entry);
    }
    entry.gauge->set(view.gauge->value());
  } else if (view.histogram != nullptr) {
    if (!entry.histogram) {
      entry.histogram =
          std::make_unique<Histogram>(view.histogram->upper_bounds());
      shard.sync_slot(entry);
    }
    entry.histogram->merge_from(*view.histogram);
  }
}

}  // namespace probemon::telemetry
