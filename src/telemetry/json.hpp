// Minimal JSON writer (header-only).
//
// Exists so the telemetry exporters and the bench JSON summaries don't
// each hand-roll escaping. Emission only — this repo never parses JSON.
// Numbers print with up to 17 significant digits (round-trip exact for
// doubles); NaN and infinities, which JSON cannot represent, emit null.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace probemon::telemetry {

/// Append `s` as a quoted JSON string to `out`.
inline void json_escape(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

inline std::string json_number(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  // Integral doubles print without exponent/decimals: counters stay
  // readable ("42" not "4.2e+01").
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Incremental writer for one JSON document. Tracks comma placement;
/// nesting correctness is the caller's job (kept deliberately dumb).
class JsonWriter {
 public:
  void begin_object() {
    comma();
    out_ += '{';
    first_ = true;
  }
  void end_object() {
    out_ += '}';
    first_ = false;
  }
  void begin_array() {
    comma();
    out_ += '[';
    first_ = true;
  }
  void end_array() {
    out_ += ']';
    first_ = false;
  }
  void key(const std::string& k) {
    comma();
    json_escape(out_, k);
    out_ += ':';
    first_ = true;  // value follows without a comma
  }
  void value(const std::string& v) {
    comma();
    json_escape(out_, v);
  }
  void value(const char* v) { value(std::string(v)); }
  void value(double v) {
    comma();
    out_ += json_number(v);
  }
  void value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
  }
  void value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v) {
    comma();
    out_ += v ? "true" : "false";
  }

  const std::string& str() const noexcept { return out_; }

 private:
  void comma() {
    if (!first_) out_ += ',';
    first_ = false;
  }

  std::string out_;
  bool first_ = true;
};

}  // namespace probemon::telemetry
