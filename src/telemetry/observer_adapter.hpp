// ObserverAdapter: DES protocol events -> telemetry metrics.
//
// scenario::Metrics answers the paper's offline questions (fairness
// tables, figure traces); this adapter answers the operational ones —
// the same quantities, but as live counters/histograms a snapshot can
// export mid-run. It implements core::ProtocolObserver so a DES
// experiment and the threaded runtime report through one metric
// vocabulary (see docs/observability.md).
//
// Use alongside scenario::Metrics via core::ObserverFanout when both
// views are wanted.
#pragma once

#include "core/observer.hpp"
#include "telemetry/registry.hpp"

namespace probemon::telemetry {

class ObserverAdapter final : public core::ProtocolObserver {
 public:
  /// Registers its metric families on `registry` (which must outlive
  /// the adapter). `labels` is attached to every family, e.g.
  /// {{"protocol", "sapp"}}.
  explicit ObserverAdapter(Registry& registry, const Labels& labels = {});

  void on_probe_sent(net::NodeId cp, net::NodeId device, double t,
                     std::uint8_t attempt) override;
  void on_probe_received(net::NodeId device, net::NodeId cp,
                         double t) override;
  void on_cycle_success(net::NodeId cp, net::NodeId device, double t,
                        std::uint8_t attempts) override;
  void on_delay_updated(net::NodeId cp, double t, double delay) override;
  void on_device_declared_absent(net::NodeId cp, net::NodeId device,
                                 double t) override;
  void on_absence_learned(net::NodeId cp, net::NodeId device,
                          double t) override;
  void on_delta_changed(net::NodeId device, double t,
                        std::uint64_t delta) override;

 private:
  Counter& probes_sent_;
  Counter& retransmissions_;
  Counter& probes_received_;
  Counter& cycles_succeeded_;
  Counter& absences_declared_;
  Counter& absences_learned_;
  Counter& delta_changes_;
  Histogram& delay_;
};

}  // namespace probemon::telemetry
