// ObserverAdapter: DES protocol events -> telemetry metrics.
//
// scenario::Metrics answers the paper's offline questions (fairness
// tables, figure traces); this adapter answers the operational ones —
// the same quantities, but as live counters/histograms a snapshot can
// export mid-run. It implements core::ProtocolObserver so a DES
// experiment and the threaded runtime report through one metric
// vocabulary (see docs/observability.md).
//
// Use alongside scenario::Metrics via core::ObserverFanout when both
// views are wanted.
#pragma once

#include <unordered_map>

#include "core/observer.hpp"
#include "telemetry/probe_tracer.hpp"
#include "telemetry/registry.hpp"

namespace probemon::telemetry {

class ObserverAdapter final : public core::ProtocolObserver {
 public:
  /// Registers its metric families on `registry` (which must outlive
  /// the adapter). `labels` is attached to every family, e.g.
  /// {{"protocol", "sapp"}}.
  explicit ObserverAdapter(Registry& registry, const Labels& labels = {});

  /// Record the instant the monitored device actually departed (e.g.
  /// scenario::Experiment::schedule_device_departure's t). Once set,
  /// every subsequent absence declaration observes departure-to-
  /// detection latency into probemon_detection_latency_seconds — the
  /// series the default `detection_latency_p99` alert rule queries.
  void set_device_departure_time(double t) { departure_time_ = t; }

  void on_probe_sent(net::NodeId cp, net::NodeId device, double t,
                     std::uint8_t attempt) override;
  void on_probe_received(net::NodeId device, net::NodeId cp,
                         double t) override;
  void on_cycle_success(net::NodeId cp, net::NodeId device, double t,
                        std::uint8_t attempts) override;
  void on_delay_updated(net::NodeId cp, double t, double delay) override;
  void on_device_declared_absent(net::NodeId cp, net::NodeId device,
                                 double t) override;
  void on_absence_learned(net::NodeId cp, net::NodeId device,
                          double t) override;
  void on_delta_changed(net::NodeId device, double t,
                        std::uint64_t delta) override;

 private:
  Counter& probes_sent_;
  Counter& retransmissions_;
  Counter& probes_received_;
  Counter& cycles_succeeded_;
  Counter& absences_declared_;
  Counter& absences_learned_;
  Counter& delta_changes_;
  Histogram& delay_;
  Histogram& detection_latency_;
  double departure_time_ = -1.0;  ///< < 0: no departure recorded
};

/// CycleTraceObserver: DES protocol events -> ProbeCycleTrace records.
///
/// Assembles the per-probe observer stream back into full cycle spans
/// (first send, retransmissions, resolution) and commits each completed
/// cycle to a ProbeCycleTracer — so a simulation run yields the same
/// trace artifact as the threaded runtime, and the Chrome-trace export
/// (`ProbeCycleTracer::to_chrome_trace()`) works on both.
///
/// Not internally synchronized: the DES kernel delivers observer events
/// from its single run loop. The tracer itself is thread-safe, so
/// snapshotting concurrently from another thread is fine.
class CycleTraceObserver final : public core::ProtocolObserver {
 public:
  /// `tracer` must outlive the observer.
  explicit CycleTraceObserver(ProbeCycleTracer& tracer) : tracer_(tracer) {}

  void on_probe_sent(net::NodeId cp, net::NodeId device, double t,
                     std::uint8_t attempt) override;
  void on_cycle_success(net::NodeId cp, net::NodeId device, double t,
                        std::uint8_t attempts) override;
  void on_device_declared_absent(net::NodeId cp, net::NodeId device,
                                 double t) override;

  /// Cycles currently in flight (first send seen, no resolution yet).
  std::size_t open_cycles() const { return open_.size(); }

 private:
  ProbeCycleTracer& tracer_;
  std::unordered_map<net::NodeId, ProbeCycleTrace> open_;  ///< keyed by CP
  std::unordered_map<net::NodeId, std::uint64_t> next_cycle_;
};

}  // namespace probemon::telemetry
