#include "telemetry/observer_adapter.hpp"

namespace probemon::telemetry {

namespace {
// Inter-cycle delays span delta_min=0.02 s to delta_max=10 s (paper
// defaults); exponential buckets cover the whole band.
std::vector<double> delay_buckets() {
  return Histogram::exponential_buckets(0.02, 2.0, 10);  // 0.02 .. 10.24
}
}  // namespace

ObserverAdapter::ObserverAdapter(Registry& registry, const Labels& labels)
    : probes_sent_(registry.counter("probemon_sim_probes_sent_total",
                                    "Probes transmitted by simulated CPs",
                                    labels)),
      retransmissions_(
          registry.counter("probemon_sim_retransmissions_total",
                           "Probe retransmissions (attempt > 0)", labels)),
      probes_received_(
          registry.counter("probemon_sim_probes_received_total",
                           "Probes accepted by simulated devices", labels)),
      cycles_succeeded_(
          registry.counter("probemon_sim_cycles_succeeded_total",
                           "Probe cycles completed by a reply", labels)),
      absences_declared_(registry.counter(
          "probemon_sim_absences_declared_total",
          "Devices declared absent after exhausted retransmissions", labels)),
      absences_learned_(registry.counter(
          "probemon_sim_absences_learned_total",
          "Absences learned via gossip dissemination", labels)),
      delta_changes_(registry.counter(
          "probemon_sim_delta_changes_total",
          "SAPP device Delta adaptations (overload control)", labels)),
      delay_(registry.histogram("probemon_sim_cycle_delay_seconds",
                                delay_buckets(),
                                "Inter-probe-cycle delays chosen by CPs",
                                labels)),
      // Same name + buckets as PresenceService's runtime histogram, so
      // the default alert ruleset works over either registry.
      detection_latency_(registry.histogram(
          "probemon_detection_latency_seconds",
          Histogram::exponential_buckets(0.01, 2.0, 11),
          "First unanswered probe to absence declaration", labels)) {}

void ObserverAdapter::on_probe_sent(net::NodeId, net::NodeId, double,
                                    std::uint8_t attempt) {
  probes_sent_.inc();
  if (attempt > 0) retransmissions_.inc();
}

void ObserverAdapter::on_probe_received(net::NodeId, net::NodeId, double) {
  probes_received_.inc();
}

void ObserverAdapter::on_cycle_success(net::NodeId, net::NodeId, double,
                                       std::uint8_t) {
  cycles_succeeded_.inc();
}

void ObserverAdapter::on_delay_updated(net::NodeId, double, double delay) {
  delay_.observe(delay);
}

void ObserverAdapter::on_device_declared_absent(net::NodeId, net::NodeId,
                                                double t) {
  absences_declared_.inc();
  // With a known departure instant, declarations after it measure true
  // departure-to-detection latency; declarations before it (false
  // alarms) and runs without a departure record nothing here.
  if (departure_time_ >= 0.0 && t >= departure_time_) {
    detection_latency_.observe(t - departure_time_);
  }
}

void ObserverAdapter::on_absence_learned(net::NodeId, net::NodeId, double) {
  absences_learned_.inc();
}

void ObserverAdapter::on_delta_changed(net::NodeId, double, std::uint64_t) {
  delta_changes_.inc();
}

void CycleTraceObserver::on_probe_sent(net::NodeId cp, net::NodeId device,
                                       double t, std::uint8_t attempt) {
  if (attempt == 0) {
    ProbeCycleTrace trace;
    trace.cp = cp;
    trace.device = device;
    trace.cycle = ++next_cycle_[cp];
    trace.start = t;
    trace.sends.push_back(t);
    trace.attempts = 1;
    open_[cp] = std::move(trace);
    return;
  }
  auto it = open_.find(cp);
  if (it == open_.end()) return;  // observer attached mid-cycle
  it->second.sends.push_back(t);
  it->second.attempts = static_cast<std::uint8_t>(it->second.sends.size());
}

void CycleTraceObserver::on_cycle_success(net::NodeId cp, net::NodeId,
                                          double t, std::uint8_t attempts) {
  auto it = open_.find(cp);
  if (it == open_.end()) return;
  ProbeCycleTrace trace = std::move(it->second);
  open_.erase(it);
  trace.end = t;
  trace.success = true;
  if (attempts) trace.attempts = attempts;
  if (!trace.sends.empty()) trace.rtt = t - trace.sends.back();
  tracer_.record(trace);
}

void CycleTraceObserver::on_device_declared_absent(net::NodeId cp,
                                                   net::NodeId, double t) {
  auto it = open_.find(cp);
  if (it == open_.end()) return;
  ProbeCycleTrace trace = std::move(it->second);
  open_.erase(it);
  trace.end = t;
  trace.success = false;
  trace.rtt = 0.0;
  tracer_.record(trace);
}

}  // namespace probemon::telemetry
