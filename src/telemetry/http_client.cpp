#include "telemetry/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace probemon::telemetry {

namespace {

HttpResult fail_with_errno(const char* what) {
  HttpResult result;
  result.status = 0;
  result.body = std::string(what) + ": " + std::strerror(errno);
  return result;
}

void set_timeouts(int fd, double timeout_s) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_s);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_s - std::floor(timeout_s)) * 1e6);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

HttpResult request(const std::string& host, std::uint16_t port,
                   const std::string& head_and_body, double timeout_s) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail_with_errno("socket");
  set_timeouts(fd, timeout_s);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    HttpResult result;
    result.body = "bad host '" + host + "' (IPv4 dotted quad expected)";
    return result;
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const HttpResult result = fail_with_errno("connect");
    close(fd);
    return result;
  }

  std::size_t off = 0;
  while (off < head_and_body.size()) {
    const ssize_t n = send(fd, head_and_body.data() + off,
                           head_and_body.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      const HttpResult result = fail_with_errno("send");
      close(fd);
      return result;
    }
    off += static_cast<std::size_t>(n);
  }

  // Connection: close — the response is simply everything until EOF.
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  close(fd);

  HttpResult result;
  if (response.compare(0, 5, "HTTP/") != 0) {
    result.body = "malformed response";
    return result;
  }
  const std::size_t sp = response.find(' ');
  if (sp == std::string::npos || sp + 4 > response.size()) {
    result.body = "malformed status line";
    return result;
  }
  result.status = std::atoi(response.c_str() + sp + 1);
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    result.headers = response.substr(0, header_end + 2);
    result.body = response.substr(header_end + 4);
  } else {
    result.headers = response;
  }
  return result;
}

}  // namespace

HttpResult http_get(const std::string& host, std::uint16_t port,
                    const std::string& target, double timeout_s) {
  const std::string req = "GET " + target +
                          " HTTP/1.1\r\n"
                          "Host: " +
                          host +
                          "\r\n"
                          "Connection: close\r\n\r\n";
  return request(host, port, req, timeout_s);
}

HttpResult http_head(const std::string& host, std::uint16_t port,
                     const std::string& target, double timeout_s) {
  const std::string req = "HEAD " + target +
                          " HTTP/1.1\r\n"
                          "Host: " +
                          host +
                          "\r\n"
                          "Connection: close\r\n\r\n";
  return request(host, port, req, timeout_s);
}

HttpResult http_post(const std::string& host, std::uint16_t port,
                     const std::string& target, const std::string& body,
                     const std::string& content_type, double timeout_s) {
  const std::string req = "POST " + target +
                          " HTTP/1.1\r\n"
                          "Host: " +
                          host +
                          "\r\n"
                          "Content-Type: " +
                          content_type +
                          "\r\n"
                          "Content-Length: " +
                          std::to_string(body.size()) +
                          "\r\n"
                          "Connection: close\r\n\r\n" +
                          body;
  return request(host, port, req, timeout_s);
}

}  // namespace probemon::telemetry
