// ShardedRegistry: the fleet-scale MetricStore.
//
// Registry (registry.hpp) serializes every registration behind one
// mutex and keys its map by freshly-built strings — fine for tens of
// series, hostile to a million per-entity label sets. ShardedRegistry
// stripes entries across N lock-independent shards:
//
//   * Names, help text and label strings are interned once in a
//     LabelInterner (u32 ids, lock-free reads); entries are keyed by
//     id sequences, so registration compares and hashes a few u32s
//     instead of allocating key strings.
//   * The shard for an entry is a hash of its interned (name, labels)
//     key, so concurrent registration from many threads only contends
//     when two entries land on the same shard.
//   * The id-based overloads (counter_ids() etc.) skip string handling
//     entirely — the hot path for per-entity registration loops:
//
//       const auto name = reg.intern_name("probemon_entity_rtt_total");
//       const auto dev = reg.intern_label_name("device");
//       for (auto& e : fleet) {
//         e.rtt = &reg.counter_ids(name, {{dev, reg.intern(e.id_str)}});
//       }
//
// Snapshots (full and delta) are byte-identical to Registry's for the
// same contents: entries are materialized to strings and sorted by the
// same (name, labels) key encoding. Everything else — validation
// rules, callback semantics, merge_from determinism, scrape epochs —
// matches the MetricStore contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>

#include "telemetry/interner.hpp"
#include "telemetry/registry.hpp"

namespace probemon::telemetry {

class ShardedRegistry : public MetricStore {
 public:
  /// `shards` is rounded up to a power of two. All registries sharing
  /// `interner` (default: the process-wide one) have comparable ids.
  explicit ShardedRegistry(std::size_t shards = kDefaultShards,
                           LabelInterner* interner = &LabelInterner::global());
  ~ShardedRegistry() override;

  ShardedRegistry(const ShardedRegistry&) = delete;
  ShardedRegistry& operator=(const ShardedRegistry&) = delete;

  static constexpr std::size_t kDefaultShards = 16;

  // --- string API (MetricStore): interns, then routes by ids ---------
  Counter& counter(const std::string& name, const std::string& help = "",
                   const Labels& labels = {}) override;
  Gauge& gauge(const std::string& name, const std::string& help = "",
               const Labels& labels = {}) override;
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "",
                       const Labels& labels = {}) override;
  void gauge_callback(const std::string& name, std::function<double()> fn,
                      const std::string& help = "",
                      const Labels& labels = {}) override;
  void counter_callback(const std::string& name, std::function<double()> fn,
                        const std::string& help = "",
                        const Labels& labels = {}) override;
  bool remove(const std::string& name, const Labels& labels = {}) override;

  // --- id API: allocation-free find path for per-entity loops --------
  /// Intern a metric/label name with validation (throws
  /// std::invalid_argument like the string API) — call once at setup.
  std::uint32_t intern_name(std::string_view name);
  std::uint32_t intern_label_name(std::string_view name);
  /// Intern an arbitrary label value (no validation needed).
  std::uint32_t intern(std::string_view value);
  /// Intern a whole label set.
  LabelIds intern_labels(const Labels& labels);

  /// Find-or-create by interned ids. `name` must come from
  /// intern_name(), label-name ids from intern_label_name(); help_id 0
  /// means no help text.
  Counter& counter_ids(std::uint32_t name, const LabelIds& labels = {},
                       std::uint32_t help_id = 0);
  Gauge& gauge_ids(std::uint32_t name, const LabelIds& labels = {},
                   std::uint32_t help_id = 0);
  Histogram& histogram_ids(std::uint32_t name, std::vector<double> bounds,
                           const LabelIds& labels = {},
                           std::uint32_t help_id = 0);

  std::size_t size() const override;
  std::size_t shard_count() const noexcept { return shard_count_; }
  LabelInterner& interner() const noexcept { return *interner_; }

  std::vector<Sample> snapshot() const override;
  std::vector<Sample> snapshot_delta(std::uint64_t& since,
                                     bool full = false) const override;

 protected:
  void visit_owned(
      const std::function<void(const EntryView&)>& fn) const override;
  void absorb(const EntryView& view) override;

 private:
  struct Shard;
  struct Entry;
  struct ScanSlot;

  Shard& shard_for(std::uint32_t name, const LabelIds& labels) const noexcept;
  /// Caller must hold shard.mutex — the REQUIRES annotation lives on
  /// the definition (Shard is incomplete at this declaration).
  Entry& find_or_create(Shard& shard, std::uint32_t name,
                        const LabelIds& labels, std::uint32_t help_id,
                        MetricType type, bool is_callback, bool from_merge);
  /// Resolve an entry's interned ids back to strings.
  void materialize(std::uint32_t name, const LabelIds& labels,
                   std::string& name_out, Labels& labels_out) const;

  LabelInterner* interner_;
  std::size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;
  mutable std::atomic<std::uint64_t> scrape_epoch_{0};
};

}  // namespace probemon::telemetry
