#include "telemetry/probe_tracer.hpp"

#include <algorithm>

#include "telemetry/json.hpp"

namespace probemon::telemetry {

ProbeCycleTracer::ProbeCycleTracer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

void ProbeCycleTracer::record(const ProbeCycleTrace& trace) {
  std::lock_guard lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(trace);
  } else {
    ring_[next_] = trace;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<ProbeCycleTrace> ProbeCycleTracer::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<ProbeCycleTrace> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // not yet wrapped: insertion order is age order
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t ProbeCycleTracer::recorded() const {
  std::lock_guard lock(mutex_);
  return recorded_;
}

std::string ProbeCycleTracer::to_json() const {
  const auto traces = snapshot();
  JsonWriter w;
  w.begin_array();
  for (const auto& t : traces) {
    w.begin_object();
    w.key("cp");
    w.value(static_cast<std::uint64_t>(t.cp));
    w.key("device");
    w.value(static_cast<std::uint64_t>(t.device));
    w.key("cycle");
    w.value(t.cycle);
    w.key("start");
    w.value(t.start);
    w.key("end");
    w.value(t.end);
    w.key("attempts");
    w.value(static_cast<std::uint64_t>(t.attempts));
    w.key("success");
    w.value(t.success);
    w.key("rtt");
    w.value(t.rtt);
    w.end_object();
  }
  w.end_array();
  return w.str();
}

}  // namespace probemon::telemetry
