#include "telemetry/probe_tracer.hpp"

#include <algorithm>

#include "telemetry/json.hpp"

namespace probemon::telemetry {

ProbeCycleTracer::ProbeCycleTracer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

void ProbeCycleTracer::record(const ProbeCycleTrace& trace) {
  util::MutexLock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(trace);
  } else {
    ring_[next_] = trace;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<ProbeCycleTrace> ProbeCycleTracer::snapshot() const {
  util::MutexLock lock(mutex_);
  std::vector<ProbeCycleTrace> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // not yet wrapped: insertion order is age order
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::vector<ProbeCycleTrace> ProbeCycleTracer::snapshot_since(
    std::uint64_t& cursor) const {
  util::MutexLock lock(mutex_);
  const std::uint64_t fresh =
      cursor < recorded_ ? recorded_ - cursor : 0;
  const std::size_t take =
      static_cast<std::size_t>(std::min<std::uint64_t>(fresh, ring_.size()));
  std::vector<ProbeCycleTrace> out;
  out.reserve(take);
  // The newest record sits at slot next_-1; walk the last `take`
  // records in age order.
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t idx =
        (next_ + ring_.size() - take + i) % ring_.size();
    out.push_back(ring_[idx]);
  }
  cursor = recorded_;
  return out;
}

std::uint64_t ProbeCycleTracer::recorded() const {
  util::MutexLock lock(mutex_);
  return recorded_;
}

namespace {

void write_trace_array(JsonWriter& w,
                       const std::vector<ProbeCycleTrace>& traces) {
  w.begin_array();
  for (const auto& t : traces) {
    w.begin_object();
    w.key("cp");
    w.value(static_cast<std::uint64_t>(t.cp));
    w.key("device");
    w.value(static_cast<std::uint64_t>(t.device));
    w.key("cycle");
    w.value(t.cycle);
    w.key("start");
    w.value(t.start);
    w.key("end");
    w.value(t.end);
    w.key("attempts");
    w.value(static_cast<std::uint64_t>(t.attempts));
    w.key("success");
    w.value(t.success);
    w.key("rtt");
    w.value(t.rtt);
    if (!t.sends.empty()) {
      w.key("sends");
      w.begin_array();
      for (double s : t.sends) w.value(s);
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
}

}  // namespace

std::string ProbeCycleTracer::to_json() const {
  JsonWriter w;
  write_trace_array(w, snapshot());
  return w.str();
}

std::string ProbeCycleTracer::to_json_since(std::uint64_t& cursor) const {
  const auto traces = snapshot_since(cursor);
  JsonWriter w;
  w.begin_object();
  w.key("next");
  w.value(cursor);
  w.key("traces");
  write_trace_array(w, traces);
  w.end_object();
  return w.str();
}

namespace {

/// Transport-clock seconds -> trace-event microseconds.
double to_us(double t) { return t * 1e6; }

void chrome_event_common(JsonWriter& w, const char* name, const char* cat,
                         const char* ph, double ts, net::NodeId pid,
                         net::NodeId tid) {
  w.key("name");
  w.value(name);
  w.key("cat");
  w.value(cat);
  w.key("ph");
  w.value(ph);
  w.key("ts");
  w.value(ts);
  w.key("pid");
  w.value(static_cast<std::uint64_t>(pid));
  w.key("tid");
  w.value(static_cast<std::uint64_t>(tid));
}

void chrome_metadata(JsonWriter& w, const char* name, net::NodeId pid,
                     net::NodeId tid, const std::string& label) {
  w.begin_object();
  w.key("name");
  w.value(name);
  w.key("ph");
  w.value("M");
  w.key("ts");
  w.value(0.0);
  w.key("pid");
  w.value(static_cast<std::uint64_t>(pid));
  w.key("tid");
  w.value(static_cast<std::uint64_t>(tid));
  w.key("args");
  w.begin_object();
  w.key("name");
  w.value(label);
  w.end_object();
  w.end_object();
}

}  // namespace

std::string ProbeCycleTracer::to_chrome_trace() const {
  const auto traces = snapshot();
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  // Metadata: one "process" per device, one "thread" per probing CP,
  // emitted once per distinct track.
  std::vector<std::pair<net::NodeId, net::NodeId>> seen;
  for (const auto& t : traces) {
    const std::pair<net::NodeId, net::NodeId> track{t.device, t.cp};
    if (std::find(seen.begin(), seen.end(), track) != seen.end()) continue;
    if (std::find_if(seen.begin(), seen.end(), [&](const auto& s) {
          return s.first == t.device;
        }) == seen.end()) {
      chrome_metadata(w, "process_name", t.device, 0,
                      "device " + std::to_string(t.device));
    }
    chrome_metadata(w, "thread_name", t.device, t.cp,
                    "cp " + std::to_string(t.cp));
    seen.push_back(track);
  }
  for (const auto& t : traces) {
    // The cycle span: first send -> resolution.
    w.begin_object();
    chrome_event_common(w, t.success ? "probe cycle" : "absence declared",
                        "probe_cycle", "X", to_us(t.start), t.device, t.cp);
    w.key("dur");
    w.value(to_us(t.end - t.start));
    w.key("args");
    w.begin_object();
    w.key("cycle");
    w.value(t.cycle);
    w.key("attempts");
    w.value(static_cast<std::uint64_t>(t.attempts));
    w.key("success");
    w.value(t.success);
    w.key("rtt_s");
    w.value(t.rtt);
    w.end_object();
    w.end_object();
    // Instant markers for every probe send; retransmissions stand out
    // as extra ticks inside the span.
    for (std::size_t a = 0; a < t.sends.size(); ++a) {
      w.begin_object();
      chrome_event_common(w, a == 0 ? "probe" : "retransmission",
                          "probe_send", "i", to_us(t.sends[a]), t.device,
                          t.cp);
      w.key("s");
      w.value("t");
      w.end_object();
    }
  }
  w.end_array();
  w.key("displayTimeUnit");
  w.value("ms");
  w.end_object();
  return w.str();
}

}  // namespace probemon::telemetry
