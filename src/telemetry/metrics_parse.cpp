#include "telemetry/metrics_parse.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <variant>
#include <vector>

namespace probemon::telemetry {

namespace {

// Tiny generic JSON value model — the documents are small (one push
// body), so a DOM parse keeps the extraction code readable.
struct Value;
using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;  // order kept

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v =
      nullptr;

  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_array() const { return std::holds_alternative<Array>(v); }
  bool is_object() const { return std::holds_alternative<Object>(v); }

  const std::string& as_string() const { return std::get<std::string>(v); }
  double as_number() const { return std::get<double>(v); }
  const Array& as_array() const { return std::get<Array>(v); }
  const Object& as_object() const { return std::get<Object>(v); }

  const Value* find(std::string_view key) const {
    for (const auto& [k, val] : as_object()) {
      if (k == key) return &val;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("metrics JSON: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value{parse_string()};
      case 't':
        if (consume_literal("true")) return Value{true};
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value{false};
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value{nullptr};
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object out;
    if (peek() == '}') {
      ++pos_;
      return Value{std::move(out)};
    }
    while (true) {
      std::string key = parse_string_at_peek();
      expect(':');
      out.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Value{std::move(out)};
  }

  Value parse_array() {
    expect('[');
    Array out;
    if (peek() == ']') {
      ++pos_;
      return Value{std::move(out)};
    }
    while (true) {
      out.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Value{std::move(out)};
  }

  std::string parse_string_at_peek() {
    if (peek() != '"') fail("expected string key");
    return parse_string();
  }

  std::string parse_string() {
    // pos_ is at the opening quote (caller peeked it).
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Our emitter only writes \u00xx for control bytes; decode
          // BMP code points as UTF-8 for completeness.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) fail("bad number '" + num + "'");
    return Value{v};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

MetricType type_from(const std::string& s) {
  if (s == "counter") return MetricType::kCounter;
  if (s == "gauge") return MetricType::kGauge;
  if (s == "histogram") return MetricType::kHistogram;
  throw std::runtime_error("metrics JSON: unknown metric type '" + s + "'");
}

Sample sample_from(const Value& v) {
  if (!v.is_object()) {
    throw std::runtime_error("metrics JSON: metric entry is not an object");
  }
  Sample s;
  const Value* name = v.find("name");
  const Value* type = v.find("type");
  if (name == nullptr || !name->is_string() || type == nullptr ||
      !type->is_string()) {
    throw std::runtime_error(
        "metrics JSON: metric entry missing string 'name'/'type'");
  }
  s.name = name->as_string();
  s.type = type_from(type->as_string());
  if (const Value* help = v.find("help"); help != nullptr) {
    if (!help->is_string()) {
      throw std::runtime_error("metrics JSON: 'help' must be a string");
    }
    s.help = help->as_string();
  }
  if (const Value* labels = v.find("labels"); labels != nullptr) {
    if (!labels->is_object()) {
      throw std::runtime_error("metrics JSON: 'labels' must be an object");
    }
    for (const auto& [k, lv] : labels->as_object()) {
      if (!lv.is_string()) {
        throw std::runtime_error("metrics JSON: label '" + k +
                                 "' must be a string");
      }
      s.labels.emplace_back(k, lv.as_string());
    }
  }
  if (s.type != MetricType::kHistogram) {
    const Value* value = v.find("value");
    if (value == nullptr || !value->is_number()) {
      throw std::runtime_error("metrics JSON: '" + s.name +
                               "' missing numeric 'value'");
    }
    s.value = value->as_number();
    return s;
  }
  const Value* count = v.find("count");
  const Value* sum = v.find("sum");
  const Value* bounds = v.find("bounds");
  const Value* buckets = v.find("buckets");
  if (count == nullptr || !count->is_number() || sum == nullptr ||
      !sum->is_number() || bounds == nullptr || !bounds->is_array() ||
      buckets == nullptr || !buckets->is_array()) {
    throw std::runtime_error("metrics JSON: histogram '" + s.name +
                             "' missing count/sum/bounds/buckets");
  }
  s.count = static_cast<std::uint64_t>(count->as_number());
  s.sum = sum->as_number();
  for (const Value& b : bounds->as_array()) {
    if (!b.is_number()) {
      throw std::runtime_error("metrics JSON: non-numeric bound in '" +
                               s.name + "'");
    }
    s.bounds.push_back(b.as_number());
  }
  for (const Value& b : buckets->as_array()) {
    if (!b.is_number()) {
      throw std::runtime_error("metrics JSON: non-numeric bucket in '" +
                               s.name + "'");
    }
    s.buckets.push_back(static_cast<std::uint64_t>(b.as_number()));
  }
  if (s.buckets.size() != s.bounds.size() + 1) {
    throw std::runtime_error("metrics JSON: histogram '" + s.name + "' has " +
                             std::to_string(s.buckets.size()) +
                             " buckets for " + std::to_string(s.bounds.size()) +
                             " bounds (want bounds+1)");
  }
  return s;
}

}  // namespace

MetricsDocument parse_metrics_json(std::string_view text) {
  const Value doc = Parser(text).parse_document();
  if (!doc.is_object()) {
    throw std::runtime_error("metrics JSON: document is not an object");
  }
  MetricsDocument out;
  if (const Value* agent = doc.find("agent"); agent != nullptr) {
    if (!agent->is_string()) {
      throw std::runtime_error("metrics JSON: 'agent' must be a string");
    }
    out.agent = agent->as_string();
  }
  if (const Value* full = doc.find("full"); full != nullptr) {
    if (!std::holds_alternative<bool>(full->v)) {
      throw std::runtime_error("metrics JSON: 'full' must be a boolean");
    }
    out.full = std::get<bool>(full->v);
  }
  const Value* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    throw std::runtime_error("metrics JSON: missing 'metrics' array");
  }
  out.samples.reserve(metrics->as_array().size());
  for (const Value& m : metrics->as_array()) {
    out.samples.push_back(sample_from(m));
  }
  return out;
}

}  // namespace probemon::telemetry
