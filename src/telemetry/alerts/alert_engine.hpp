// AlertEngine: declarative SLO rules over TimeSeriesHistory, evaluated
// through a pending -> firing -> resolved state machine.
//
// A rule is an expression (telemetry/history/query.hpp grammar), a
// comparison against a threshold, and a `for_s` hysteresis: the
// condition must hold continuously for `for_s` seconds of evaluation
// time before the alert fires — the alerting analogue of the paper's
// "repeat the probe before declaring absence" rule, trading detection
// latency against false alarms exactly like TOF/TOS do.
//
// State machine per alert instance:
//
//   inactive --breach--> pending --held for_s--> firing
//   pending --clear--> inactive
//   firing  --clear--> resolved --breach--> pending (or firing if
//                                           for_s == 0)
//
// `resolved` is sticky until the next breach so operators see that an
// alert existed; NaN expression values (insufficient history) never
// breach.
//
// Besides expression rules the engine accepts *condition* rules driven
// externally per labelled instance (set_condition) — the collector uses
// these for per-agent `agent_absent` alerts where the breach signal is
// its adaptive staleness deadline, not a history query.
//
// Like the history, the engine never reads a clock: evaluate(t) /
// set_condition(..., t) take caller time, so DES alert timelines are
// deterministic (tools/lint.py no-wall-clock covers this directory).
//
// bind_registry() exports probemon_alerts_firing{rule=...} gauges so
// the alert state itself is scrapeable/pushable like any other series.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/history/query.hpp"
#include "telemetry/registry.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::telemetry {

enum class AlertState { kInactive, kPending, kFiring, kResolved };

const char* to_string(AlertState state) noexcept;

enum class AlertOp { kGt, kGe, kLt, kLe };

const char* to_string(AlertOp op) noexcept;

struct AlertRule {
  std::string name;  ///< unique; also the `rule` label on exports
  /// Query expression (empty for externally-driven condition rules).
  std::string expr;
  AlertOp op = AlertOp::kGt;
  double threshold = 0.0;
  /// Hysteresis: breach must hold this long before pending -> firing.
  double for_s = 0.0;
  Labels labels;        ///< extra labels echoed on every instance
  std::string summary;  ///< human description for the /alerts payload
};

class AlertEngine {
 public:
  /// `history` may be null when only condition rules are used; it must
  /// outlive the engine otherwise. `default_range_s` applies to rule
  /// expressions without an explicit [range].
  explicit AlertEngine(const TimeSeriesHistory* history = nullptr,
                       double default_range_s = 60.0);

  AlertEngine(const AlertEngine&) = delete;
  AlertEngine& operator=(const AlertEngine&) = delete;

  /// Add an expression rule (parsed now; throws std::invalid_argument
  /// on a malformed expr, std::logic_error on a duplicate name).
  void add_rule(const AlertRule& rule) PROBEMON_EXCLUDES(mutex_);
  /// Add a rule whose breach signal arrives via set_condition().
  void add_condition_rule(const AlertRule& rule) PROBEMON_EXCLUDES(mutex_);

  std::size_t rule_count() const PROBEMON_EXCLUDES(mutex_);

  /// Export probemon_alerts_firing{rule=...} (1 firing / 0 otherwise)
  /// into `registry` (must outlive the engine). Gauges appear as
  /// instances appear; condition-rule instance gauges carry the
  /// instance labels too and are dropped by remove_condition().
  void bind_registry(MetricStore& registry) PROBEMON_EXCLUDES(mutex_);

  /// Evaluate every expression rule against the history at time `t`.
  void evaluate(double t) PROBEMON_EXCLUDES(mutex_);

  /// Drive one labelled instance of a condition rule: `breached` is the
  /// caller's signal, `value` is echoed into the status (e.g. observed
  /// staleness). Unknown rule names throw std::logic_error.
  void set_condition(const std::string& rule, const Labels& instance_labels,
                     bool breached, double value, double t)
      PROBEMON_EXCLUDES(mutex_);
  /// Drop one condition instance entirely (agent forgotten): removes
  /// its status and its registry gauge. Returns true if it existed.
  bool remove_condition(const std::string& rule,
                        const Labels& instance_labels)
      PROBEMON_EXCLUDES(mutex_);

  struct AlertStatus {
    std::string rule;
    Labels labels;  ///< rule labels + condition instance labels
    AlertState state = AlertState::kInactive;
    double value = 0.0;  ///< last evaluated expression / condition value
    double threshold = 0.0;
    AlertOp op = AlertOp::kGt;
    std::string expr;
    std::string summary;
    double pending_since = 0.0;
    double firing_since = 0.0;
    double resolved_at = 0.0;
    std::uint64_t fire_count = 0;  ///< pending->firing transitions
  };

  /// Every known instance, sorted by (rule, labels) — deterministic.
  std::vector<AlertStatus> snapshot() const PROBEMON_EXCLUDES(mutex_);
  /// Time of the latest evaluate()/set_condition() call.
  double last_eval_time() const PROBEMON_EXCLUDES(mutex_);

 private:
  struct Instance {
    Labels labels;  ///< instance labels only (condition rules)
    AlertState state = AlertState::kInactive;
    double value = 0.0;
    double pending_since = 0.0;
    double firing_since = 0.0;
    double resolved_at = 0.0;
    std::uint64_t fire_count = 0;
  };

  struct Rule {
    AlertRule spec;
    bool condition = false;  ///< externally driven
    QueryExpr parsed;        ///< expression rules only
    std::map<std::string, Instance> instances;  ///< key = make_key(labels)
  };

  void step(Rule& rule, Instance& instance, bool breached, double value,
            double t) PROBEMON_REQUIRES(mutex_);
  void export_gauge(const Rule& rule, const Instance& instance)
      PROBEMON_REQUIRES(mutex_);
  Labels instance_labels(const Rule& rule, const Instance& instance) const;

  const TimeSeriesHistory* history_;
  double default_range_s_;

  mutable util::Mutex mutex_{"telemetry.AlertEngine"};
  /// keyed by rule name
  std::map<std::string, Rule> rules_ PROBEMON_GUARDED_BY(mutex_);
  MetricStore* registry_ PROBEMON_GUARDED_BY(mutex_) = nullptr;
  double last_eval_time_ PROBEMON_GUARDED_BY(mutex_) = 0.0;
};

/// Deterministic JSON for the /alerts endpoint:
///   {"as_of":T,"alerts":[{"rule":...,"state":"firing",...},...]}
/// `state_filter` empty = all; otherwise one of inactive / pending /
/// firing / resolved.
std::string alerts_to_json(const AlertEngine& engine,
                           const std::string& state_filter = "");

}  // namespace probemon::telemetry
