#include "telemetry/alerts/default_rules.hpp"

#include <cmath>

#include "telemetry/json.hpp"

namespace probemon::telemetry {

namespace {

/// `name{k="v",...}[Ns]` selector for the rule expression grammar.
std::string selector(const std::string& name, const Labels& labels,
                     double range_s) {
  std::string out = name;
  if (!labels.empty()) {
    out += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out += ',';
      first = false;
      out += k;
      out += "=\"";
      out += v;
      out += '"';
    }
    out += '}';
  }
  out += '[';
  out += json_number(range_s);
  out += "s]";
  return out;
}

}  // namespace

std::vector<AlertRule> default_presence_rules(const DefaultRuleParams& params) {
  std::vector<AlertRule> rules;

  AlertRule latency;
  latency.name = "detection_latency_p99";
  latency.expr = "quantile(0.99, " +
                 selector(params.detection_latency_series,
                          params.detection_latency_labels,
                          params.detection_latency_window_s) +
                 ")";
  latency.op = AlertOp::kGt;
  latency.threshold = params.detection_latency_budget_s;
  latency.for_s = params.detection_latency_for_s;
  latency.summary = "p99 departure-to-detection latency over budget";
  rules.push_back(std::move(latency));

  AlertRule false_alarms;
  false_alarms.name = "false_alarm_rate";
  false_alarms.expr =
      "rate(" +
      selector(params.absence_counter_series, params.absence_counter_labels,
               params.false_alarm_window_s) +
      ")";
  false_alarms.op = AlertOp::kGt;
  false_alarms.threshold = params.false_alarm_budget_per_s;
  false_alarms.for_s = params.false_alarm_for_s;
  false_alarms.summary = "absence declarations per second over budget";
  rules.push_back(std::move(false_alarms));

  AlertRule load;
  load.name = "device_load";
  load.expr = "avg(" +
              selector(params.load_series, params.load_labels,
                       params.load_window_s) +
              ")";
  load.op = AlertOp::kGt;
  load.threshold = params.load_beta * params.load_l_nom;
  load.for_s = params.load_for_s;
  load.summary = "device experienced load above beta * L_nom";
  rules.push_back(std::move(load));

  return rules;
}

std::vector<std::pair<std::string, Labels>> default_rule_series(
    const DefaultRuleParams& params) {
  return {
      {params.detection_latency_series, params.detection_latency_labels},
      {params.absence_counter_series, params.absence_counter_labels},
      {params.load_series, params.load_labels},
  };
}

}  // namespace probemon::telemetry
