// The shipped ruleset: the paper's quality budgets as alert rules.
//
// The DSN'05 evaluation judges a presence protocol on three axes —
// how fast a departure is detected, how often presence is declared
// lost by mistake, and whether the device's experienced load stays
// within beta * L_nom. These rules encode exactly those budgets over
// the metric families the repo already exports, so both the DES
// dashboard and the threaded runtime alert on the same contract the
// invariant auditor checks offline.
//
// The load rule's beta / window defaults mirror check::AuditConfig
// (load_beta = 1.5, load_window = 30 s); telemetry cannot include the
// auditor (probemon_check links probemon_telemetry), so callers that
// run an auditor should copy its configured values into
// DefaultRuleParams to keep the two in lockstep.
#pragma once

#include <string>
#include <vector>

#include "telemetry/alerts/alert_engine.hpp"

namespace probemon::telemetry {

struct DefaultRuleParams {
  // --- detection_latency_p99 ------------------------------------------------
  /// Histogram of departure -> declared-absent latencies.
  std::string detection_latency_series = "probemon_detection_latency_seconds";
  Labels detection_latency_labels;
  /// Budget: p99 detection latency must stay under this many seconds.
  double detection_latency_budget_s = 30.0;
  double detection_latency_window_s = 60.0;
  double detection_latency_for_s = 0.0;

  // --- false_alarm_rate -----------------------------------------------------
  /// Counter of absence declarations; its rate is the false-alarm rate
  /// whenever the device is actually present.
  std::string absence_counter_series = "probemon_presence_transitions_total";
  Labels absence_counter_labels = {{"state", "absent"}};
  /// Budget: absence declarations per second over the window.
  double false_alarm_budget_per_s = 0.05;
  double false_alarm_window_s = 120.0;
  double false_alarm_for_s = 0.0;

  // --- device_load ----------------------------------------------------------
  /// Gauge of the device's experienced probe load (probes/s).
  std::string load_series = "probemon_device_experienced_load";
  Labels load_labels;
  /// The paper's bound: avg load over the window <= beta * l_nom.
  double load_l_nom = 10.0;
  double load_beta = 1.5;
  double load_window_s = 30.0;
  double load_for_s = 0.0;
};

/// The three budget rules, ready for AlertEngine::add_rule().
std::vector<AlertRule> default_presence_rules(
    const DefaultRuleParams& params = {});

/// The series the default rules read — pass to
/// TimeSeriesHistory::track() so the rules have data.
std::vector<std::pair<std::string, Labels>> default_rule_series(
    const DefaultRuleParams& params = {});

}  // namespace probemon::telemetry
