#include "telemetry/alerts/alert_engine.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "telemetry/json.hpp"

namespace probemon::telemetry {

const char* to_string(AlertState state) noexcept {
  switch (state) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
    case AlertState::kResolved:
      return "resolved";
  }
  return "?";
}

const char* to_string(AlertOp op) noexcept {
  switch (op) {
    case AlertOp::kGt:
      return ">";
    case AlertOp::kGe:
      return ">=";
    case AlertOp::kLt:
      return "<";
    case AlertOp::kLe:
      return "<=";
  }
  return "?";
}

namespace {

bool compare(AlertOp op, double value, double threshold) {
  switch (op) {
    case AlertOp::kGt:
      return value > threshold;
    case AlertOp::kGe:
      return value >= threshold;
    case AlertOp::kLt:
      return value < threshold;
    case AlertOp::kLe:
      return value <= threshold;
  }
  return false;
}

}  // namespace

AlertEngine::AlertEngine(const TimeSeriesHistory* history,
                         double default_range_s)
    : history_(history), default_range_s_(default_range_s) {
  if (!(default_range_s_ > 0.0)) {
    throw std::invalid_argument("alert default_range_s must be > 0");
  }
}

void AlertEngine::add_rule(const AlertRule& rule) {
  if (rule.name.empty()) throw std::invalid_argument("alert rule needs a name");
  QueryExpr parsed = parse_query(rule.expr);  // throws on malformed expr
  util::MutexLock lock(mutex_);
  auto [it, inserted] = rules_.emplace(rule.name, Rule{});
  if (!inserted) {
    throw std::logic_error("duplicate alert rule '" + rule.name + "'");
  }
  it->second.spec = rule;
  it->second.parsed = std::move(parsed);
  // Expression rules have exactly one instance, present from the start
  // so /alerts shows the rule as inactive rather than omitting it.
  it->second.instances.emplace(std::string(), Instance{});
  if (registry_ != nullptr) {
    export_gauge(it->second, it->second.instances.begin()->second);
  }
}

void AlertEngine::add_condition_rule(const AlertRule& rule) {
  if (rule.name.empty()) throw std::invalid_argument("alert rule needs a name");
  util::MutexLock lock(mutex_);
  auto [it, inserted] = rules_.emplace(rule.name, Rule{});
  if (!inserted) {
    throw std::logic_error("duplicate alert rule '" + rule.name + "'");
  }
  it->second.spec = rule;
  it->second.condition = true;
}

std::size_t AlertEngine::rule_count() const {
  util::MutexLock lock(mutex_);
  return rules_.size();
}

void AlertEngine::bind_registry(MetricStore& registry) {
  util::MutexLock lock(mutex_);
  registry_ = &registry;
  for (const auto& [name, rule] : rules_) {
    for (const auto& [key, instance] : rule.instances) {
      export_gauge(rule, instance);
    }
  }
}

Labels AlertEngine::instance_labels(const Rule& rule,
                                    const Instance& instance) const {
  Labels labels;
  labels.emplace_back("rule", rule.spec.name);
  for (const auto& label : rule.spec.labels) labels.push_back(label);
  for (const auto& label : instance.labels) labels.push_back(label);
  return labels;
}

void AlertEngine::export_gauge(const Rule& rule, const Instance& instance) {
  if (registry_ == nullptr) return;
  registry_
      ->gauge("probemon_alerts_firing",
              "1 while the alert rule instance is firing, else 0",
              instance_labels(rule, instance))
      .set(instance.state == AlertState::kFiring ? 1.0 : 0.0);
}

void AlertEngine::step(Rule& rule, Instance& instance, bool breached,
                       double value, double t) {
  instance.value = value;
  switch (instance.state) {
    case AlertState::kInactive:
    case AlertState::kResolved:
      if (breached) {
        instance.pending_since = t;
        if (rule.spec.for_s <= 0.0) {
          instance.state = AlertState::kFiring;
          instance.firing_since = t;
          ++instance.fire_count;
        } else {
          instance.state = AlertState::kPending;
        }
      }
      break;
    case AlertState::kPending:
      if (!breached) {
        instance.state = AlertState::kInactive;
      } else if (t - instance.pending_since >= rule.spec.for_s) {
        instance.state = AlertState::kFiring;
        instance.firing_since = t;
        ++instance.fire_count;
      }
      break;
    case AlertState::kFiring:
      if (!breached) {
        instance.state = AlertState::kResolved;
        instance.resolved_at = t;
      }
      break;
  }
  export_gauge(rule, instance);
}

void AlertEngine::evaluate(double t) {
  util::MutexLock lock(mutex_);
  last_eval_time_ = t;
  for (auto& [name, rule] : rules_) {
    if (rule.condition) continue;
    double value = std::numeric_limits<double>::quiet_NaN();
    if (history_ != nullptr) {
      value = eval_query(rule.parsed, *history_, default_range_s_);
    }
    // NaN (insufficient history) never breaches; a firing alert whose
    // data window empties resolves rather than staying stuck.
    const bool breached =
        !std::isnan(value) && compare(rule.spec.op, value, rule.spec.threshold);
    step(rule, rule.instances[std::string()], breached, value, t);
  }
}

void AlertEngine::set_condition(const std::string& rule_name,
                                const Labels& instance_labels, bool breached,
                                double value, double t) {
  util::MutexLock lock(mutex_);
  auto it = rules_.find(rule_name);
  if (it == rules_.end() || !it->second.condition) {
    throw std::logic_error("unknown condition rule '" + rule_name + "'");
  }
  if (t > last_eval_time_) last_eval_time_ = t;
  const std::string key = detail::make_key("i", instance_labels);
  auto [inst_it, inserted] = it->second.instances.emplace(key, Instance{});
  if (inserted) inst_it->second.labels = instance_labels;
  step(it->second, inst_it->second, breached, value, t);
}

bool AlertEngine::remove_condition(const std::string& rule_name,
                                   const Labels& labels) {
  util::MutexLock lock(mutex_);
  auto it = rules_.find(rule_name);
  if (it == rules_.end() || !it->second.condition) return false;
  const std::string key = detail::make_key("i", labels);
  auto inst_it = it->second.instances.find(key);
  if (inst_it == it->second.instances.end()) return false;
  if (registry_ != nullptr) {
    registry_->remove("probemon_alerts_firing",
                      instance_labels(it->second, inst_it->second));
  }
  it->second.instances.erase(inst_it);
  return true;
}

std::vector<AlertEngine::AlertStatus> AlertEngine::snapshot() const {
  util::MutexLock lock(mutex_);
  std::vector<AlertStatus> out;
  for (const auto& [name, rule] : rules_) {
    for (const auto& [key, instance] : rule.instances) {
      AlertStatus status;
      status.rule = rule.spec.name;
      status.labels = instance_labels(rule, instance);
      status.state = instance.state;
      status.value = instance.value;
      status.threshold = rule.spec.threshold;
      status.op = rule.spec.op;
      status.expr = rule.spec.expr;
      status.summary = rule.spec.summary;
      status.pending_since = instance.pending_since;
      status.firing_since = instance.firing_since;
      status.resolved_at = instance.resolved_at;
      status.fire_count = instance.fire_count;
      out.push_back(std::move(status));
    }
  }
  // rules_ is name-ordered and instances key-ordered, so `out` is
  // already deterministically sorted by (rule, instance labels).
  return out;
}

double AlertEngine::last_eval_time() const {
  util::MutexLock lock(mutex_);
  return last_eval_time_;
}

std::string alerts_to_json(const AlertEngine& engine,
                           const std::string& state_filter) {
  JsonWriter w;
  w.begin_object();
  w.key("as_of");
  w.value(engine.last_eval_time());
  w.key("alerts");
  w.begin_array();
  for (const auto& status : engine.snapshot()) {
    if (!state_filter.empty() && state_filter != to_string(status.state)) {
      continue;
    }
    w.begin_object();
    w.key("rule");
    w.value(status.rule);
    w.key("state");
    w.value(to_string(status.state));
    w.key("value");
    w.value(status.value);
    w.key("threshold");
    w.value(status.threshold);
    w.key("op");
    w.value(to_string(status.op));
    if (!status.expr.empty()) {
      w.key("expr");
      w.value(status.expr);
    }
    if (!status.summary.empty()) {
      w.key("summary");
      w.value(status.summary);
    }
    w.key("labels");
    w.begin_object();
    for (const auto& [k, v] : status.labels) {
      w.key(k);
      w.value(v);
    }
    w.end_object();
    w.key("pending_since");
    w.value(status.pending_since);
    w.key("firing_since");
    w.value(status.firing_since);
    w.key("resolved_at");
    w.value(status.resolved_at);
    w.key("fire_count");
    w.value(status.fire_count);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace probemon::telemetry
