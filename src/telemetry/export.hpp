// Exporters: turn a MetricStore snapshot into something a consumer
// reads.
//
//   * to_prometheus() — Prometheus text exposition format 0.0.4, the
//     de-facto scrape format (HELP/TYPE headers, `le`-labelled
//     cumulative histogram buckets, _sum/_count series).
//   * to_json()       — machine-readable snapshot for bench summaries,
//     offline diffing and the agent→collector push protocol
//     (runtime/metrics_push.hpp).
//   * render_human()  — aligned plain text for humans and log files.
//   * DeltaExporter   — the O(changed) scrape path: keeps one `since`
//     cursor per output format and serializes only series whose value
//     moved since that format's last scrape (see
//     MetricStore::snapshot_delta). This is what /metrics and
//     /metrics.json sit on.
//   * PeriodicReporter — a background thread that logs render_human()
//     output through util::Logger at a fixed period; the poor
//     operator's dashboard until a real scrape endpoint exists.
//
// The samples_* free functions serialize an already-taken snapshot, so
// delta and full scrapes, collectors and file writers all share one
// formatter per format.
#pragma once

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/registry.hpp"
#include "util/logging.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::telemetry {

/// Prometheus text exposition (version 0.0.4) of one snapshot. The
/// samples must be snapshot()-sorted (family headers are emitted on
/// name change).
std::string samples_to_prometheus(const std::vector<Sample>& samples);

/// Emit `"metrics": [...]` into an in-progress JSON object — the
/// building block for snapshot documents and collector push bodies.
void write_samples_json(JsonWriter& w, const std::vector<Sample>& samples);

/// JSON snapshot: array of metric objects under {"metrics": [...]}.
/// Round-trips through parse_metrics_json (metrics_parse.hpp).
std::string samples_to_json(const std::vector<Sample>& samples);

/// Full-snapshot conveniences over the samples_* formatters.
std::string to_prometheus(const MetricStore& store);
std::string to_json(const MetricStore& store);

/// Aligned human-readable rendering (one line per metric; histograms
/// summarized as count/mean/max-bucket).
std::string render_human(const MetricStore& store);

/// O(changed) scrape front-end for one MetricStore.
///
/// Each output format keeps an independent `since` cursor, so a
/// Prometheus scraper and a JSON scraper hitting the same exporter each
/// see every change exactly once. The first scrape of a format (and any
/// scrape with full=true) returns the complete snapshot; subsequent
/// scrapes return only series whose value changed in between. Thread
/// safe; concurrent scrapes of the same format serialize on an internal
/// mutex so the cursor advances consistently.
class DeltaExporter {
 public:
  explicit DeltaExporter(const MetricStore& store) : store_(store) {}

  DeltaExporter(const DeltaExporter&) = delete;
  DeltaExporter& operator=(const DeltaExporter&) = delete;

  std::string prometheus(bool full = false) PROBEMON_EXCLUDES(mutex_);
  std::string json(bool full = false) PROBEMON_EXCLUDES(mutex_);

  /// Raw delta snapshot on a caller-independent third cursor (used by
  /// the metrics pusher, which serializes itself).
  std::vector<Sample> delta_samples(bool full = false)
      PROBEMON_EXCLUDES(mutex_);

 private:
  const MetricStore& store_;
  util::Mutex mutex_{"telemetry.DeltaExporter"};
  std::uint64_t prometheus_since_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::uint64_t json_since_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::uint64_t samples_since_ PROBEMON_GUARDED_BY(mutex_) = 0;
};

/// Logs render_human() every `period_s` seconds via PLOG at `level`.
/// start() idempotent; stop() (or destruction) joins the thread.
///
/// With set_snapshot_file(), each tick additionally writes the
/// Prometheus exposition to a file (replaced atomically via a temp file
/// + rename), and once more on stop() — so a long run always leaves an
/// up-to-date post-mortem artifact on disk even if the process is later
/// killed.
class PeriodicReporter {
 public:
  PeriodicReporter(const MetricStore& store, double period_s,
                   util::LogLevel level = util::LogLevel::kInfo);
  ~PeriodicReporter();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  /// Snapshot-to-disk target (empty = disabled, the default). Safe to
  /// call any time; takes effect from the next tick.
  void set_snapshot_file(std::string path) PROBEMON_EXCLUDES(mutex_);

  void start() PROBEMON_EXCLUDES(mutex_);
  void stop() PROBEMON_EXCLUDES(mutex_);

 private:
  void run() PROBEMON_EXCLUDES(mutex_);
  void write_snapshot_file() PROBEMON_EXCLUDES(mutex_);

  const MetricStore& store_;
  const double period_s_;
  const util::LogLevel level_;
  util::Mutex mutex_{"telemetry.PeriodicReporter"};
  util::CondVar cv_;
  std::string snapshot_path_ PROBEMON_GUARDED_BY(mutex_);
  bool stop_ PROBEMON_GUARDED_BY(mutex_) = false;
  bool started_ PROBEMON_GUARDED_BY(mutex_) = false;
  std::thread thread_ PROBEMON_GUARDED_BY(mutex_);
};

}  // namespace probemon::telemetry
