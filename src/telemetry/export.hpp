// Exporters: turn a Registry snapshot into something a consumer reads.
//
//   * to_prometheus() — Prometheus text exposition format 0.0.4, the
//     de-facto scrape format (HELP/TYPE headers, `le`-labelled
//     cumulative histogram buckets, _sum/_count series).
//   * to_json()       — machine-readable snapshot for bench summaries
//     and offline diffing.
//   * render_human()  — aligned plain text for humans and log files.
//   * PeriodicReporter — a background thread that logs render_human()
//     output through util::Logger at a fixed period; the poor
//     operator's dashboard until a real scrape endpoint exists.
#pragma once

#include <string>
#include <thread>
#include <condition_variable>
#include <mutex>

#include "telemetry/registry.hpp"
#include "util/logging.hpp"

namespace probemon::telemetry {

/// Prometheus text exposition (version 0.0.4) of the whole registry.
std::string to_prometheus(const Registry& registry);

/// JSON snapshot: array of metric objects under {"metrics": [...]}.
std::string to_json(const Registry& registry);

/// Aligned human-readable rendering (one line per metric; histograms
/// summarized as count/mean/max-bucket).
std::string render_human(const Registry& registry);

/// Logs render_human() every `period_s` seconds via PLOG at `level`.
/// start() idempotent; stop() (or destruction) joins the thread.
///
/// With set_snapshot_file(), each tick additionally writes the
/// Prometheus exposition to a file (replaced atomically via a temp file
/// + rename), and once more on stop() — so a long run always leaves an
/// up-to-date post-mortem artifact on disk even if the process is later
/// killed.
class PeriodicReporter {
 public:
  PeriodicReporter(const Registry& registry, double period_s,
                   util::LogLevel level = util::LogLevel::kInfo);
  ~PeriodicReporter();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  /// Snapshot-to-disk target (empty = disabled, the default). Safe to
  /// call any time; takes effect from the next tick.
  void set_snapshot_file(std::string path);

  void start();
  void stop();

 private:
  void run();
  void write_snapshot_file();

  const Registry& registry_;
  const double period_s_;
  const util::LogLevel level_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::string snapshot_path_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace probemon::telemetry
