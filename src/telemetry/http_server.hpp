// HttpServer: a dependency-free HTTP/1.1 endpoint for live telemetry.
//
// The exporters (export.hpp) turn a MetricStore into text; this server
// puts that text on a socket so a running system can be inspected with
// curl, a Prometheus scraper, or a browser while it runs. Scope is
// deliberately tiny — exact-path routes, GET plus bounded-body POST
// (for the metrics-push ingest route), Connection: close — because the
// consumer is an operator, a scraper or a pushing agent, not a web app.
//
// Threading: start() spawns one blocking accept loop plus a small fixed
// pool of workers draining a bounded connection queue (connections
// beyond the bound are closed immediately — overload sheds instead of
// queueing without limit). Handlers run on worker threads and must be
// thread-safe; the telemetry snapshot paths they typically call
// (MetricStore::snapshot(), ProbeCycleTracer::snapshot()) already are.
// stop() (or destruction) closes the listen socket, drains the queue
// and joins every thread; it is idempotent and safe to call while
// requests are in flight.
//
//   HttpServer server({.port = 0});        // 0 = ephemeral
//   register_metrics_routes(server, registry);
//   register_trace_routes(server, tracer);
//   server.start();
//   std::cout << "serving on :" << server.port() << '\n';
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/probe_tracer.hpp"
#include "telemetry/registry.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::telemetry {

struct HttpRequest {
  std::string method;  ///< upper-case as received, e.g. "GET"
  std::string path;    ///< request target without the query string
  std::map<std::string, std::string> query;  ///< parsed ?k=v&k2=v2
  std::string body;    ///< POST payload ("" for GET)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Uniform error body: every error path goes through here so status
/// pages always carry an explicit charset and a Content-Length that
/// matches the body actually sent.
HttpResponse error_response(int status, const std::string& message);

/// Same, as `{"error": message, "status": N}` for JSON routes whose
/// clients parse the body (e.g. malformed ?since= / ?full= cursors).
HttpResponse json_error_response(int status, const std::string& message);

class HttpServer {
 public:
  struct Config {
    std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
    int workers = 2;         ///< connection-handling threads
    /// Accepted connections waiting for a worker beyond this are closed.
    std::size_t max_pending = 64;
    /// Request head (request line + headers) size cap; larger -> 431.
    std::size_t max_request_bytes = 8192;
    /// POST body size cap; larger -> 413. Metrics-push bodies from a
    /// chatty agent fit in well under a megabyte.
    std::size_t max_body_bytes = 4u << 20;
    /// listen(2) backlog. Raise it for collectors scraped by many
    /// agents at once; the kernel queue absorbs connect bursts that
    /// land between accept() calls.
    int listen_backlog = 16;
    /// On EADDRINUSE, retry the bind for this long before giving up —
    /// a restarting collector often races its predecessor's listen
    /// socket closing (SO_REUSEADDR alone does not cover a bind that
    /// lands while the old fd is still open).
    double bind_retry_window_s = 1.0;
  };

  HttpServer();  // all-default Config
  explicit HttpServer(Config config);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register (or replace) the GET handler for an exact path. Safe to
  /// call before start() or while serving.
  void handle(const std::string& path, HttpHandler handler)
      PROBEMON_EXCLUDES(mutex_);
  /// Register (or replace) the POST handler for an exact path. A path
  /// may carry both a GET and a POST handler; a method without a
  /// handler answers 405 with an Allow header listing what exists.
  void handle_post(const std::string& path, HttpHandler handler)
      PROBEMON_EXCLUDES(mutex_);

  /// Bind 127.0.0.1, start the accept loop and workers. Throws
  /// std::system_error if the port cannot be bound. Idempotent.
  void start() PROBEMON_EXCLUDES(mutex_);
  /// Shut down and join all threads. Idempotent; called by ~HttpServer.
  void stop() PROBEMON_EXCLUDES(mutex_);

  bool running() const PROBEMON_EXCLUDES(mutex_);
  /// Bound port (valid after start(); 0 before).
  std::uint16_t port() const PROBEMON_EXCLUDES(mutex_);
  /// Requests answered (any status) since construction.
  std::uint64_t requests_served() const PROBEMON_EXCLUDES(mutex_);
  /// Seconds since start() (0 when not running).
  double uptime_seconds() const PROBEMON_EXCLUDES(mutex_);

  /// Registered paths, sorted — lets an index route list its siblings.
  std::vector<std::string> routes() const PROBEMON_EXCLUDES(mutex_);

  /// Connections accepted into the worker queue since construction.
  std::uint64_t connections_accepted() const PROBEMON_EXCLUDES(mutex_);
  /// Connections closed unserved because the queue was full.
  std::uint64_t connections_shed() const PROBEMON_EXCLUDES(mutex_);
  /// Accepted connections currently waiting for a worker.
  std::size_t accept_backlog() const PROBEMON_EXCLUDES(mutex_);

  /// Export the server's own health on `registry`:
  /// probemon_http_accept_backlog (gauge: connections queued for a
  /// worker — a persistently non-zero value means the worker pool is
  /// undersized for the scrape load),
  /// probemon_http_connections_accepted_total and
  /// probemon_http_connections_shed_total. Callback-backed; the
  /// registry must outlive the server.
  void instrument(Registry& registry) PROBEMON_EXCLUDES(mutex_);

 private:
  struct Route {
    HttpHandler get;
    HttpHandler post;
  };

  void accept_loop() PROBEMON_EXCLUDES(mutex_);
  void worker_loop() PROBEMON_EXCLUDES(mutex_);
  void serve_connection(int fd) PROBEMON_EXCLUDES(mutex_);

  const Config config_;
  mutable util::Mutex mutex_{"telemetry.HttpServer"};
  util::CondVar cv_;
  std::map<std::string, Route> handlers_ PROBEMON_GUARDED_BY(mutex_);
  /// accepted fds awaiting a worker
  std::deque<int> pending_ PROBEMON_GUARDED_BY(mutex_);
  bool running_ PROBEMON_GUARDED_BY(mutex_) = false;
  bool stopping_ PROBEMON_GUARDED_BY(mutex_) = false;
  int listen_fd_ PROBEMON_GUARDED_BY(mutex_) = -1;
  std::uint16_t port_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::uint64_t requests_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::uint64_t accepted_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::uint64_t shed_ PROBEMON_GUARDED_BY(mutex_) = 0;
  std::chrono::steady_clock::time_point started_at_
      PROBEMON_GUARDED_BY(mutex_){};
  std::thread acceptor_ PROBEMON_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_ PROBEMON_GUARDED_BY(mutex_);
};

/// `/metrics` (Prometheus text exposition 0.0.4) and `/metrics.json`
/// (the to_json() snapshot) over `store`, which must outlive the
/// server.
///
/// Both routes are *delta scrapes* by default: each keeps its own
/// DeltaExporter cursor, so the first request returns the full
/// snapshot and later requests return only series whose value changed
/// since that route's previous scrape — O(changed) bytes at
/// fleet-scale cardinality. `?full=1` forces a complete snapshot (and
/// still advances the cursor). Note the cursor is per-route, not
/// per-client: point exactly one scraper at each route, or use ?full=1.
void register_metrics_routes(HttpServer& server, const MetricStore& store);

/// `/trace` over `tracer` (must outlive the server): the probe-cycle
/// ring as a JSON array by default, or Chrome trace-event format for
/// `?format=chrome` (load the saved body in Perfetto or
/// chrome://tracing). Unknown formats -> 400. `?since=N` (json format
/// only) returns {"next": M, "traces": [...]} with only traces
/// recorded after cursor N — pass the previous response's "next" to
/// tail the ring incrementally.
void register_trace_routes(HttpServer& server, const ProbeCycleTracer& tracer);

}  // namespace probemon::telemetry
