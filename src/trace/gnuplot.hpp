// Gnuplot script generation — regenerates the paper's figures from the
// CSV files the bench binaries emit.
#pragma once

#include <string>
#include <vector>

namespace probemon::trace {

struct GnuplotSeries {
  std::string csv_path;  ///< file produced by write_csv / write_csv_aligned
  int column = 2;        ///< 1-based data column (1 is time)
  std::string title;
};

struct GnuplotFigure {
  std::string title;
  std::string xlabel = "t (sec)";
  std::string ylabel;
  std::vector<GnuplotSeries> series;
  /// Optional fixed ranges; empty string = auto.
  std::string xrange;  ///< e.g. "[0:20000]"
  std::string yrange;  ///< e.g. "[0:14]"
  /// Plot style: "lines", "steps", "points".
  std::string style = "steps";
};

/// Render a .gp script that plots `figure` to <output_png>.
std::string render_gnuplot(const GnuplotFigure& figure,
                           const std::string& output_png);

/// Write the script to a file; throws std::runtime_error on I/O failure.
void write_gnuplot_file(const std::string& path, const GnuplotFigure& figure,
                        const std::string& output_png);

}  // namespace probemon::trace
