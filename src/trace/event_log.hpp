// Persistent protocol event log.
//
// EventLog is a ProtocolObserver that records every protocol event as a
// typed row. Logs can be saved to / loaded from a simple line format
// and *replayed* into any other observer — so a single expensive run
// can be re-analyzed offline with different Metrics settings, diffed
// across code versions, or inspected by hand.
//
// File format (one event per line, '|'-separated):
//   kind|t|a|b|value|extra
// where kind is a stable short tag (see EventKind), a/b are node ids,
// value is a double (delay/0), extra an integer (attempt/delta/0).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/observer.hpp"

namespace probemon::trace {

enum class EventKind : std::uint8_t {
  kProbeSent,
  kProbeReceived,
  kCycleSuccess,
  kDelayUpdated,
  kDeclaredAbsent,
  kAbsenceLearned,
  kDeltaChanged,
};

const char* to_tag(EventKind kind) noexcept;
/// Returns false if the tag is unknown.
bool from_tag(const std::string& tag, EventKind& out);

struct Event {
  EventKind kind;
  double t = 0;
  net::NodeId a = net::kInvalidNode;  ///< acting node (CP, or device)
  net::NodeId b = net::kInvalidNode;  ///< counterpart (device, or CP)
  double value = 0;                   ///< delay for kDelayUpdated
  std::uint64_t extra = 0;            ///< attempt / delta

  bool operator==(const Event&) const = default;
};

class EventLog final : public core::ProtocolObserver {
 public:
  // --- ProtocolObserver ---------------------------------------------------
  void on_probe_sent(net::NodeId cp, net::NodeId device, double t,
                     std::uint8_t attempt) override;
  void on_probe_received(net::NodeId device, net::NodeId cp,
                         double t) override;
  void on_cycle_success(net::NodeId cp, net::NodeId device, double t,
                        std::uint8_t attempts) override;
  void on_delay_updated(net::NodeId cp, double t, double delay) override;
  void on_device_declared_absent(net::NodeId cp, net::NodeId device,
                                 double t) override;
  void on_absence_learned(net::NodeId cp, net::NodeId device,
                          double t) override;
  void on_delta_changed(net::NodeId device, double t,
                        std::uint64_t delta) override;

  // --- Access ---------------------------------------------------------------
  const std::vector<Event>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Count of events of one kind.
  std::size_t count(EventKind kind) const;

  /// Re-issue every recorded event, in order, into `sink`.
  void replay(core::ProtocolObserver& sink) const;

  // --- Persistence ------------------------------------------------------------
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;
  /// Throws std::runtime_error on malformed input.
  static EventLog load(std::istream& is);
  static EventLog load_file(const std::string& path);

 private:
  std::vector<Event> events_;
};

}  // namespace probemon::trace
