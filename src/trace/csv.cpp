#include "trace/csv.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace probemon::trace {

void write_csv(std::ostream& os, const stats::TimeSeries& series) {
  os << "t," << (series.name().empty() ? "value" : series.name()) << '\n';
  for (const auto& s : series.samples()) {
    os << util::format_double(s.t, 9) << ',' << util::format_double(s.value, 9)
       << '\n';
  }
}

void write_csv_aligned(std::ostream& os,
                       const std::vector<const stats::TimeSeries*>& series,
                       double t0, double t1, double dt) {
  if (!(dt > 0)) throw std::invalid_argument("write_csv_aligned: dt > 0");
  os << 't';
  for (std::size_t i = 0; i < series.size(); ++i) {
    os << ',' << (series[i]->name().empty()
                      ? "series" + std::to_string(i)
                      : series[i]->name());
  }
  os << '\n';
  for (double t = t0; t <= t1 + 1e-12; t += dt) {
    os << util::format_double(t, 9);
    for (const auto* s : series) {
      const double v = s->value_at(t);
      os << ',';
      if (!std::isnan(v)) os << util::format_double(v, 9);
    }
    os << '\n';
  }
}

namespace {
std::ofstream open_or_throw(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  return f;
}
}  // namespace

void write_csv_file(const std::string& path,
                    const stats::TimeSeries& series) {
  auto f = open_or_throw(path);
  write_csv(f, series);
}

void write_csv_aligned_file(
    const std::string& path,
    const std::vector<const stats::TimeSeries*>& series, double t0, double t1,
    double dt) {
  auto f = open_or_throw(path);
  write_csv_aligned(f, series, t0, t1, dt);
}

}  // namespace probemon::trace
