#include "trace/gnuplot.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace probemon::trace {

std::string render_gnuplot(const GnuplotFigure& figure,
                           const std::string& output_png) {
  std::ostringstream os;
  os << "set terminal pngcairo size 900,600\n";
  os << "set output '" << output_png << "'\n";
  os << "set title '" << figure.title << "'\n";
  os << "set xlabel '" << figure.xlabel << "'\n";
  os << "set ylabel '" << figure.ylabel << "'\n";
  os << "set datafile separator ','\n";
  os << "set key outside right\n";
  if (!figure.xrange.empty()) os << "set xrange " << figure.xrange << '\n';
  if (!figure.yrange.empty()) os << "set yrange " << figure.yrange << '\n';
  os << "plot ";
  for (std::size_t i = 0; i < figure.series.size(); ++i) {
    const auto& s = figure.series[i];
    if (i) os << ", \\\n     ";
    os << "'" << s.csv_path << "' using 1:" << s.column << " with "
       << figure.style << " title '" << s.title << "'";
  }
  os << '\n';
  return os.str();
}

void write_gnuplot_file(const std::string& path, const GnuplotFigure& figure,
                        const std::string& output_png) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  f << render_gnuplot(figure, output_png);
}

}  // namespace probemon::trace
