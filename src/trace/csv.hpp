// CSV export of recorded time-series — the per-figure bench binaries
// write their raw traces so the paper's plots can be regenerated with
// any plotting tool (see trace/gnuplot.hpp for ready-made scripts).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "stats/series.hpp"

namespace probemon::trace {

/// Write one series as "t,value" rows with a header line.
void write_csv(std::ostream& os, const stats::TimeSeries& series);

/// Write several series column-aligned on a common time grid
/// [t0, t1] step dt (sample-and-hold interpolation):
/// "t,name1,name2,...". Empty cells for series not yet started.
void write_csv_aligned(std::ostream& os,
                       const std::vector<const stats::TimeSeries*>& series,
                       double t0, double t1, double dt);

/// Convenience: write to a file path; throws std::runtime_error on
/// failure to open.
void write_csv_file(const std::string& path, const stats::TimeSeries& series);
void write_csv_aligned_file(
    const std::string& path,
    const std::vector<const stats::TimeSeries*>& series, double t0, double t1,
    double dt);

}  // namespace probemon::trace
