// Aligned text tables for bench output — every experiment binary prints
// its paper-vs-measured rows through this.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace probemon::trace {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);
  /// Convenience for mixed cells: doubles are formatted to `decimals`.
  class RowBuilder;
  RowBuilder row();

  std::size_t row_count() const noexcept { return rows_.size(); }

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

class Table::RowBuilder {
 public:
  explicit RowBuilder(Table& table) : table_(table) {}
  ~RowBuilder();
  RowBuilder(const RowBuilder&) = delete;
  RowBuilder& operator=(const RowBuilder&) = delete;

  RowBuilder& cell(const std::string& text);
  RowBuilder& cell(const char* text);
  RowBuilder& cell(double value, int decimals = 3);
  RowBuilder& cell(std::uint64_t value);
  RowBuilder& cell(int value);

 private:
  Table& table_;
  std::vector<std::string> cells_;
};

}  // namespace probemon::trace
