#include "trace/event_log.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace probemon::trace {

const char* to_tag(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kProbeSent: return "probe_sent";
    case EventKind::kProbeReceived: return "probe_recv";
    case EventKind::kCycleSuccess: return "cycle_ok";
    case EventKind::kDelayUpdated: return "delay";
    case EventKind::kDeclaredAbsent: return "absent";
    case EventKind::kAbsenceLearned: return "learned";
    case EventKind::kDeltaChanged: return "delta";
  }
  return "?";
}

bool from_tag(const std::string& tag, EventKind& out) {
  static const std::pair<const char*, EventKind> kTags[] = {
      {"probe_sent", EventKind::kProbeSent},
      {"probe_recv", EventKind::kProbeReceived},
      {"cycle_ok", EventKind::kCycleSuccess},
      {"delay", EventKind::kDelayUpdated},
      {"absent", EventKind::kDeclaredAbsent},
      {"learned", EventKind::kAbsenceLearned},
      {"delta", EventKind::kDeltaChanged},
  };
  for (const auto& [name, kind] : kTags) {
    if (tag == name) {
      out = kind;
      return true;
    }
  }
  return false;
}

void EventLog::on_probe_sent(net::NodeId cp, net::NodeId device, double t,
                             std::uint8_t attempt) {
  events_.push_back(Event{EventKind::kProbeSent, t, cp, device, 0, attempt});
}
void EventLog::on_probe_received(net::NodeId device, net::NodeId cp,
                                 double t) {
  events_.push_back(Event{EventKind::kProbeReceived, t, device, cp, 0, 0});
}
void EventLog::on_cycle_success(net::NodeId cp, net::NodeId device, double t,
                                std::uint8_t attempts) {
  events_.push_back(
      Event{EventKind::kCycleSuccess, t, cp, device, 0, attempts});
}
void EventLog::on_delay_updated(net::NodeId cp, double t, double delay) {
  events_.push_back(
      Event{EventKind::kDelayUpdated, t, cp, net::kInvalidNode, delay, 0});
}
void EventLog::on_device_declared_absent(net::NodeId cp, net::NodeId device,
                                         double t) {
  events_.push_back(Event{EventKind::kDeclaredAbsent, t, cp, device, 0, 0});
}
void EventLog::on_absence_learned(net::NodeId cp, net::NodeId device,
                                  double t) {
  events_.push_back(Event{EventKind::kAbsenceLearned, t, cp, device, 0, 0});
}
void EventLog::on_delta_changed(net::NodeId device, double t,
                                std::uint64_t delta) {
  events_.push_back(
      Event{EventKind::kDeltaChanged, t, device, net::kInvalidNode, 0, delta});
}

std::size_t EventLog::count(EventKind kind) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

void EventLog::replay(core::ProtocolObserver& sink) const {
  for (const auto& e : events_) {
    switch (e.kind) {
      case EventKind::kProbeSent:
        sink.on_probe_sent(e.a, e.b, e.t, static_cast<std::uint8_t>(e.extra));
        break;
      case EventKind::kProbeReceived:
        sink.on_probe_received(e.a, e.b, e.t);
        break;
      case EventKind::kCycleSuccess:
        sink.on_cycle_success(e.a, e.b, e.t,
                              static_cast<std::uint8_t>(e.extra));
        break;
      case EventKind::kDelayUpdated:
        sink.on_delay_updated(e.a, e.t, e.value);
        break;
      case EventKind::kDeclaredAbsent:
        sink.on_device_declared_absent(e.a, e.b, e.t);
        break;
      case EventKind::kAbsenceLearned:
        sink.on_absence_learned(e.a, e.b, e.t);
        break;
      case EventKind::kDeltaChanged:
        sink.on_delta_changed(e.a, e.t, e.extra);
        break;
    }
  }
}

void EventLog::save(std::ostream& os) const {
  for (const auto& e : events_) {
    os << to_tag(e.kind) << '|' << util::format_double(e.t, 9) << '|' << e.a
       << '|' << e.b << '|' << util::format_double(e.value, 9) << '|'
       << e.extra << '\n';
  }
}

void EventLog::save_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  save(f);
}

EventLog EventLog::load(std::istream& is) {
  EventLog log;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag, t, a, b, value, extra;
    if (!std::getline(fields, tag, '|') || !std::getline(fields, t, '|') ||
        !std::getline(fields, a, '|') || !std::getline(fields, b, '|') ||
        !std::getline(fields, value, '|') ||
        !std::getline(fields, extra)) {
      throw std::runtime_error("event log: malformed line " +
                               std::to_string(line_no));
    }
    Event e;
    if (!from_tag(tag, e.kind)) {
      throw std::runtime_error("event log: unknown tag '" + tag +
                               "' on line " + std::to_string(line_no));
    }
    try {
      e.t = std::stod(t);
      e.a = static_cast<net::NodeId>(std::stoul(a));
      e.b = static_cast<net::NodeId>(std::stoul(b));
      e.value = std::stod(value);
      e.extra = std::stoull(extra);
    } catch (const std::exception&) {
      throw std::runtime_error("event log: bad field on line " +
                               std::to_string(line_no));
    }
    log.events_.push_back(e);
  }
  return log;
}

EventLog EventLog::load_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  return load(f);
}

}  // namespace probemon::trace
