#include "trace/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace probemon::trace {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

Table::RowBuilder Table::row() { return RowBuilder(*this); }

Table::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

Table::RowBuilder& Table::RowBuilder::cell(const std::string& text) {
  cells_.push_back(text);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(const char* text) {
  cells_.emplace_back(text);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(double value, int decimals) {
  cells_.push_back(util::format_fixed(value, decimals));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(std::uint64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(int value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << util::pad_right(cell, widths[c]) << " | ";
    }
    os << '\n';
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << " \n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace probemon::trace
