#include "scenario/experiment.hpp"

#include <stdexcept>

#include "check/contract.hpp"

namespace probemon::scenario {

namespace {

// Derive the audit configuration from the experiment's protocol: exact
// invariants matching what the configured protocol promises, plus the
// opt-in load window.
check::AuditConfig make_audit_config(const ExperimentConfig& config) {
  check::AuditConfig audit;
  switch (config.protocol) {
    case Protocol::kSapp:
      audit.timeouts = config.sapp_cp.timeouts;
      audit.audit_delay_clamp = true;
      audit.delta_min = config.sapp_cp.delta_min;
      audit.delta_max = config.sapp_cp.delta_max;
      audit.load_beta = config.sapp_cp.beta;
      if (config.audit_load_window > 0) {
        audit.load_l_nom = config.sapp_device.l_nom;
      }
      break;
    case Protocol::kDcpp:
      audit.timeouts = config.dcpp_cp.timeouts;
      audit.audit_dcpp = true;
      audit.dcpp = config.dcpp_device;
      if (config.audit_load_window > 0) {
        audit.load_l_nom = config.dcpp_device.l_nom();
      }
      break;
    case Protocol::kFixedRate:
      // The deliberately naive baseline: only the protocol-agnostic
      // cycle-shape and counter checks apply (it overloads by design).
      audit.timeouts = config.fixed_cp.timeouts;
      break;
  }
  if (config.audit_load_window > 0) {
    audit.load_window = config.audit_load_window;
  }
  return audit;
}

}  // namespace

const char* to_string(Protocol protocol) noexcept {
  switch (protocol) {
    case Protocol::kSapp: return "SAPP";
    case Protocol::kDcpp: return "DCPP";
    case Protocol::kFixedRate: return "FixedRate";
  }
  return "?";
}

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)),
      sim_(config_.seed, config_.scheduler),
      metrics_(config_.metrics),
      fanout_({&metrics_}),
      churn_rng_(sim_.fork_rng("experiment.churn")),
      jitter_rng_(sim_.fork_rng("experiment.jitter")) {
  if (config_.audit_invariants) {
    auditor_ =
        std::make_unique<check::InvariantAuditor>(make_audit_config(config_));
    fanout_.add(auditor_.get());
  }

  auto delay = config_.delay_factory ? config_.delay_factory()
                                     : net::make_three_mode_delay();
  auto loss =
      config_.loss_factory ? config_.loss_factory() : net::make_no_loss();
  network_ = std::make_unique<net::Network>(sim_.scheduler(), sim_.rng(),
                                            config_.network, std::move(delay),
                                            std::move(loss));

  switch (config_.protocol) {
    case Protocol::kSapp:
    case Protocol::kFixedRate:
      device_ = std::make_unique<core::SappDevice>(
          sim_, *network_, entities_, config_.sapp_device, &fanout_);
      break;
    case Protocol::kDcpp:
      device_ = std::make_unique<core::DcppDevice>(
          sim_, *network_, entities_, config_.dcpp_device, &fanout_);
      break;
  }

  for (std::size_t i = 0; i < config_.initial_cps; ++i) {
    initial_cp_ids_.push_back(add_cp());
  }
}

Experiment::~Experiment() = default;

net::NodeId Experiment::add_cp() {
  std::unique_ptr<core::ControlPointBase> cp;
  switch (config_.protocol) {
    case Protocol::kSapp:
      cp = std::make_unique<core::SappControlPoint>(
          sim_, *network_, entities_, device_->id(), config_.sapp_cp,
          &fanout_);
      break;
    case Protocol::kDcpp:
      cp = std::make_unique<core::DcppControlPoint>(
          sim_, *network_, entities_, device_->id(), config_.dcpp_cp,
          &fanout_);
      break;
    case Protocol::kFixedRate:
      cp = std::make_unique<core::FixedRateControlPoint>(
          sim_, *network_, entities_, device_->id(), config_.fixed_cp,
          &fanout_);
      break;
  }
  if (config_.dissemination) {
    cp->enable_dissemination(config_.dissemination_ttl);
  }
  const double jitter = config_.join_jitter_max > 0
                            ? jitter_rng_.uniform(0.0, config_.join_jitter_max)
                            : 0.0;
  cp->start(jitter);
  const net::NodeId id = cp->id();
  cps_.emplace(id, std::move(cp));
  metrics_.record_active_cps(sim_.now(), cps_.size());
  return id;
}

void Experiment::remove_random_cp() {
  if (cps_.empty()) return;
  const auto idx = churn_rng_.uniform_u64(0, cps_.size() - 1);
  auto it = cps_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(idx));
  remove_cp(it->first);
}

void Experiment::remove_cp(net::NodeId id) {
  auto it = cps_.find(id);
  if (it == cps_.end()) return;
  cps_.erase(it);  // CP destructor stops timers and detaches
  metrics_.record_active_cps(sim_.now(), cps_.size());
}

void Experiment::set_active_cp_count(std::size_t n) {
  while (cps_.size() < n) add_cp();
  while (cps_.size() > n) remove_random_cp();
}

std::vector<net::NodeId> Experiment::active_cp_ids() const {
  std::vector<net::NodeId> out;
  out.reserve(cps_.size());
  for (const auto& [id, cp] : cps_) out.push_back(id);
  return out;
}

const core::ControlPointBase* Experiment::cp(net::NodeId id) const {
  auto it = cps_.find(id);
  return it == cps_.end() ? nullptr : it->second.get();
}

void Experiment::schedule_device_departure(double t, bool graceful) {
  sim_.at(t, [this, graceful] {
    metrics_.set_device_departure_time(sim_.now());
    if (graceful) {
      device_->leave_gracefully();
    } else {
      device_->go_silent();
    }
  });
}

void Experiment::install_churn(std::unique_ptr<ChurnModel> churn) {
  if (!churn) throw std::invalid_argument("install_churn: null model");
  churn->install(*this);
  churn_.push_back(std::move(churn));
}

void Experiment::run_until(double t) { sim_.run_until(t); }

void Experiment::finish() {
  metrics_.finish(sim_.now());
  // In checked builds a single invariant violation anywhere in the run
  // fails loudly, with the auditor's tally as the diagnostic; in normal
  // builds violations stay observable through auditor().
  PROBEMON_INVARIANT(!auditor_ || auditor_->total_violations() == 0,
                     auditor_->summary());
}

}  // namespace probemon::scenario
