// Experiment driver: one device, a dynamic population of CPs, a network,
// and a Metrics collector, wired exactly like the paper's studies
// ("the entire model ... consists of the parallel composition of a number
// of CPs, one device, and a network process").
#pragma once

// Config-time factories below are the one sanctioned std::function use:
// they run once at Experiment construction, never per event.
#include <functional>  // NOLINT(no-std-function)
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/invariant_auditor.hpp"
#include "core/observer_fanout.hpp"
#include "core/probemon.hpp"
#include "scenario/metrics.hpp"
#include "scenario/sweep.hpp"

namespace probemon::scenario {

enum class Protocol {
  kSapp,
  kDcpp,
  /// Naive fixed-period probing — the strawman the paper's intro
  /// dismisses; kept as the experimental baseline (bench A12). Uses a
  /// SAPP device (the pc payload is simply ignored by the CPs).
  kFixedRate,
};

const char* to_string(Protocol protocol) noexcept;

struct ExperimentConfig {
  Protocol protocol = Protocol::kSapp;
  std::uint64_t seed = 1;
  std::size_t initial_cps = 20;

  core::SappDeviceConfig sapp_device{};
  core::SappCpConfig sapp_cp{};
  core::DcppDeviceConfig dcpp_device{};
  core::DcppCpConfig dcpp_cp{};
  core::FixedRateCpConfig fixed_cp{};

  net::NetworkConfig network{};
  MetricsConfig metrics{};

  /// DES kernel selection (timer-wheel vs reference-heap backend, wheel
  /// geometry). The equivalence tests run identical experiments on both
  /// backends and diff the traces.
  des::SchedulerConfig scheduler{};

  /// Network model factories; defaults: paper three-mode delay, no loss.
  /// Invoked once per Experiment at construction — setup code, not the
  /// per-event path, so the type-erased callable's allocation is fine.
  std::function<net::DelayModelPtr()> delay_factory;  // NOLINT(no-std-function)
  std::function<net::LossModelPtr()> loss_factory;  // NOLINT(no-std-function)

  /// Max start jitter for joining CPs. CPs power on at independent
  /// moments in any real network, and a strictly synchronous start
  /// stampedes the serial device (every first probe of a 20-CP burst
  /// queues behind up to 0.2 s of computation, blowing the TOF budget).
  /// Set to 0 to reproduce the paper's deliberate worst-case synchronous
  /// joins (Fig 5), which stay answerable because DCPP replies are cheap.
  double join_jitter_max = 1.0;

  /// Gossip absence notifications over the overlay (extension).
  bool dissemination = false;
  std::uint8_t dissemination_ttl = 2;

  /// Attach a check::InvariantAuditor to the protocol event stream,
  /// auditing the paper's exact invariants for the configured protocol
  /// (DCPP grant formula / nt monotonicity, SAPP delay clamp, probe-
  /// cycle shape; see docs/static_analysis.md). Violations are counted
  /// on auditor(); in PROBEMON_CHECKED builds finish() aborts with the
  /// tally if any were recorded.
  bool audit_invariants = true;

  /// Additionally audit the device's sliding-window experienced load
  /// (<= beta * L_nom probes/s over this many seconds). 0 disables —
  /// the default, because unlike the exact checks this one is
  /// statistical: join bursts legitimately overshoot on short windows,
  /// and the FixedRate baseline overloads by design.
  double audit_load_window = 0.0;
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Attach an additional protocol-event sink (e.g. a trace::EventLog)
  /// alongside the built-in Metrics. The sink must outlive the
  /// experiment; events flow to it from the moment of the call.
  void add_observer(core::ProtocolObserver& observer) {
    fanout_.add(&observer);
  }

  des::Simulation& sim() noexcept { return sim_; }
  net::Network& network() noexcept { return *network_; }
  core::EntityArena& entities() noexcept { return entities_; }
  const core::EntityArena& entities() const noexcept { return entities_; }
  Metrics& metrics() noexcept { return metrics_; }
  const Metrics& metrics() const noexcept { return metrics_; }

  /// The attached invariant auditor (nullptr when
  /// config.audit_invariants is false).
  check::InvariantAuditor* auditor() noexcept { return auditor_.get(); }
  const check::InvariantAuditor* auditor() const noexcept {
    return auditor_.get();
  }
  core::DeviceBase& device() noexcept { return *device_; }
  const ExperimentConfig& config() const noexcept { return config_; }

  // --- CP population control ----------------------------------------------
  /// Create and start a new CP; returns its network id.
  net::NodeId add_cp();
  /// Remove a uniformly random active CP.
  void remove_random_cp();
  /// Remove a specific CP (no-op if not active).
  void remove_cp(net::NodeId id);
  /// Join/leave CPs until `n` are active (leavers picked at random).
  void set_active_cp_count(std::size_t n);

  std::size_t active_cp_count() const noexcept { return cps_.size(); }
  std::vector<net::NodeId> active_cp_ids() const;
  /// Active CP by id (nullptr if departed / unknown).
  const core::ControlPointBase* cp(net::NodeId id) const;

  /// Ids of the initially created CPs, in creation order — lets figure
  /// code label them cp_01, cp_02, ... like the paper's plots.
  const std::vector<net::NodeId>& initial_cp_ids() const noexcept {
    return initial_cp_ids_;
  }

  // --- Scripting ------------------------------------------------------------
  /// Schedule the device to depart at time t (silently by default);
  /// also informs Metrics so detection latencies can be computed.
  void schedule_device_departure(double t, bool graceful = false);

  /// Install a churn model (see churn.hpp); the experiment owns it.
  /// The model's install() is invoked immediately.
  class ChurnModel;
  void install_churn(std::unique_ptr<ChurnModel> churn);

  // --- Running ----------------------------------------------------------------
  /// Advance virtual time to t.
  void run_until(double t);
  /// Flush windowed metrics at the current time. Call once after the
  /// final run_until.
  void finish();

 private:
  ExperimentConfig config_;
  des::Simulation sim_;
  Metrics metrics_;
  std::unique_ptr<check::InvariantAuditor> auditor_;
  core::FanoutObserver fanout_;
  /// Declared before the entities that index into it: wrappers release
  /// their arena slots on destruction.
  core::EntityArena entities_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<core::DeviceBase> device_;
  std::map<net::NodeId, std::unique_ptr<core::ControlPointBase>> cps_;
  std::vector<net::NodeId> initial_cp_ids_;
  std::vector<std::unique_ptr<ChurnModel>> churn_;
  util::Rng churn_rng_;
  util::Rng jitter_rng_;
};

/// Batch entry point: run one Experiment per config in parallel on
/// `runner` (run_until(duration) + finish()), then reduce each finished
/// experiment to an R via `collect`. Results come back in config order,
/// so output is thread-count-invariant; each job builds its whole world
/// (scheduler, RNG streams, network, auditor) from its config alone.
template <class R, class Collect>
std::vector<R> run_experiment_batch(SweepRunner& runner,
                                    const std::vector<ExperimentConfig>& configs,
                                    double duration, Collect&& collect,
                                    telemetry::MetricStore* merge_into = nullptr) {
  return runner.map<R>(
      configs.size(),
      [&](std::size_t job, SweepWorkerContext& ctx) {
        Experiment exp(configs[job]);
        exp.run_until(duration);
        exp.finish();
        return collect(exp, ctx);
      },
      merge_into);
}

/// Strategy that drives CP joins/leaves over an experiment's lifetime.
class Experiment::ChurnModel {
 public:
  virtual ~ChurnModel() = default;
  /// Schedule the model's activity on exp.sim(). Called once.
  virtual void install(Experiment& exp) = 0;
  virtual std::string describe() const = 0;
};

}  // namespace probemon::scenario
