#include "scenario/sweep.hpp"

#include <chrono>
#include <string>

namespace probemon::scenario {

SweepRunner::SweepRunner(unsigned threads)
    : thread_count_(threads != 0 ? threads
                                 : std::max(1u,
                                            std::thread::hardware_concurrency())) {
  workers_.reserve(thread_count_);
  for (unsigned w = 0; w < thread_count_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

SweepRunner::~SweepRunner() {
  {
    util::MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void SweepRunner::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  for (;;) {
    util::ReleasableMutexLock lock(mutex_);
    while (!stop_ && generation_ == seen) work_cv_.wait(mutex_);
    if (stop_) return;
    seen = generation_;
    const std::size_t job_count = job_count_;
    const Job* job = job_;
    std::deque<telemetry::ShardedRegistry>* registries = registries_;
    std::vector<std::exception_ptr>* errors = errors_;
    lock.Release();

    SweepWorkerContext ctx{worker, &(*registries)[worker]};
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t j; (j = next_job_.fetch_add(
                             1, std::memory_order_relaxed)) < job_count;) {
      try {
        (*job)(j, ctx);
      } catch (...) {
        (*errors)[j] = std::current_exception();
      }
      jobs_completed_.fetch_add(1, std::memory_order_relaxed);
    }
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    busy_ns_.fetch_add(static_cast<std::uint64_t>(ns),
                       std::memory_order_relaxed);

    lock.Reacquire();
    if (++workers_done_ == thread_count_) done_cv_.notify_all();
  }
}

void SweepRunner::run(std::size_t job_count, const Job& fn,
                      telemetry::MetricStore* merge_into) {
  if (!fn) throw std::invalid_argument("SweepRunner::run: empty job");

  // One private registry per worker, fresh per batch so merges never
  // double-count across run() calls.
  std::deque<telemetry::ShardedRegistry> registries(thread_count_);
  std::vector<std::exception_ptr> errors(job_count);

  {
    util::MutexLock lock(mutex_);
    job_count_ = job_count;
    job_ = &fn;
    registries_ = &registries;
    errors_ = &errors;
    next_job_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();

  {
    util::MutexLock lock(mutex_);
    while (workers_done_ != thread_count_) done_cv_.wait(mutex_);
    job_ = nullptr;
    registries_ = nullptr;
    errors_ = nullptr;
  }

  if (merge_into != nullptr) {
    // Worker order: deterministic merge sequence. Counter/bucket values
    // are exact integer sums, so the *values* are thread-count-invariant
    // too (see the determinism contract in sweep.hpp).
    for (unsigned w = 0; w < thread_count_; ++w) {
      merge_into->merge_from(registries[w]);
    }
    merge_into->gauge("probemon_sweep_worker_busy_seconds",
                      "Cumulative wall-clock seconds workers spent in jobs")
        .set(busy_seconds());
    merge_into->gauge("probemon_sweep_threads",
                      "Worker threads in the sweep pool")
        .set(static_cast<double>(thread_count_));
    merge_into
        ->counter("probemon_sweep_jobs_total",
                  "Jobs completed by the sweep runner")
        .inc(job_count);
  }

  // Deterministic failure: the lowest-numbered job's exception wins,
  // regardless of which worker hit it first.
  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

double SweepRunner::busy_seconds() const noexcept {
  return static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
}

}  // namespace probemon::scenario
