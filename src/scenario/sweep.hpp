// SweepRunner: a deterministic parallel harness for replication sweeps.
//
// Every paper artifact is "run K independent replications / parameter
// points, then aggregate" — embarrassingly parallel, as long as nothing
// is shared. The runner gives each worker thread its own world: the job
// function constructs its own Simulation/Experiment (one Scheduler, one
// RNG stream seeded from the job id, one telemetry ShardedRegistry per
// worker), so no simulation state ever crosses a thread boundary.
//
// Determinism contract (verified by tests/test_sweep.cpp):
//   * Job results are collected into a vector indexed by job id —
//     byte-identical regardless of thread count or scheduling order,
//     because each job's output depends only on its id.
//   * Per-worker telemetry registries are merged at the barrier in
//     worker order. Counter values and histogram *bucket counts* are
//     exact u64 sums, identical for any thread count. Gauges (last-
//     write-wins) and histogram double `sum`s depend on which worker
//     ran which job; treat them as monitoring data, not results.
//   * Exceptions are captured per job and the lowest-numbered one is
//     rethrown after the barrier, so failure behaviour is also
//     independent of scheduling.
//
// Scheduling is work-sharing: workers pull the next job id from one
// atomic counter. With jobs >> threads this balances as well as
// work-stealing without per-worker deques, and job *assignment* is the
// only nondeterministic part — which the contract above makes harmless.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
// The Job callable below is the one sanctioned std::function here: a
// sweep dispatches whole replications, not per-event callbacks.
#include <functional>  // NOLINT(no-std-function)
#include <thread>
#include <vector>

#include "telemetry/sharded_registry.hpp"
#include "util/thread_annotations.hpp"

namespace probemon::scenario {

/// Handed to each job invocation: which worker is running it and that
/// worker's private telemetry registry (never shared, merge at barrier).
/// The registry is a ShardedRegistry, so jobs registering per-entity
/// series can use the interned-id API (counter_ids etc.) to stay off
/// the string path.
struct SweepWorkerContext {
  unsigned worker = 0;
  telemetry::ShardedRegistry* registry = nullptr;
};

class SweepRunner {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency().
  explicit SweepRunner(unsigned threads = 0);
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  unsigned thread_count() const noexcept { return thread_count_; }

  // One capture per sweep (amortized over thousands of replications), so
  // type erasure's heap cost is irrelevant here — unlike the event path.
  using Job =
      std::function<void(std::size_t job,  // NOLINT(no-std-function)
                         SweepWorkerContext& ctx)>;

  /// Run `fn` for every job id in [0, job_count); blocks until all jobs
  /// finish. When `merge_into` is non-null (any MetricStore — Registry
  /// or ShardedRegistry), each worker's registry is merged into it
  /// (worker order) and the runner's own health metrics
  /// (probemon_sweep_worker_busy_seconds, probemon_sweep_jobs_total)
  /// are registered there too.
  void run(std::size_t job_count, const Job& fn,
           telemetry::MetricStore* merge_into = nullptr)
      PROBEMON_EXCLUDES(mutex_);

  /// Map convenience: results land in a job-ordered vector (the
  /// determinism-friendly shape — see the header comment).
  template <class R, class F>
  std::vector<R> map(std::size_t job_count, F&& fn,
                     telemetry::MetricStore* merge_into = nullptr) {
    std::vector<R> out(job_count);
    run(
        job_count,
        [&](std::size_t job, SweepWorkerContext& ctx) {
          out[job] = fn(job, ctx);
        },
        merge_into);
    return out;
  }

  /// Cumulative wall-clock seconds workers spent inside jobs (all
  /// batches, all workers). Monitoring data: wall-clock, so not part of
  /// the determinism contract.
  double busy_seconds() const noexcept;
  /// Jobs completed over the runner's lifetime.
  std::uint64_t jobs_completed() const noexcept {
    return jobs_completed_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(unsigned worker) PROBEMON_EXCLUDES(mutex_);

  unsigned thread_count_;
  std::vector<std::thread> workers_;

  util::Mutex mutex_{"scenario.SweepRunner"};
  util::CondVar work_cv_;
  util::CondVar done_cv_;
  /// bumped per run() batch
  std::uint64_t generation_ PROBEMON_GUARDED_BY(mutex_) = 0;
  bool stop_ PROBEMON_GUARDED_BY(mutex_) = false;

  // Current batch (valid while workers_running_ > 0):
  std::size_t job_count_ PROBEMON_GUARDED_BY(mutex_) = 0;
  const Job* job_ PROBEMON_GUARDED_BY(mutex_) = nullptr;
  std::deque<telemetry::ShardedRegistry>* registries_
      PROBEMON_GUARDED_BY(mutex_) = nullptr;
  std::vector<std::exception_ptr>* errors_ PROBEMON_GUARDED_BY(mutex_) =
      nullptr;
  std::atomic<std::size_t> next_job_{0};
  unsigned workers_done_ PROBEMON_GUARDED_BY(mutex_) = 0;

  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
};

}  // namespace probemon::scenario
