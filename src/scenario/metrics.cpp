#include "scenario/metrics.hpp"

namespace probemon::scenario {

Metrics::Metrics(MetricsConfig config)
    : config_(config),
      load_(config.load_window, config.load_sample_every),
      active_cps_("active_cps") {}

void Metrics::on_probe_sent(net::NodeId cp, net::NodeId /*device*/,
                            double /*t*/, std::uint8_t /*attempt*/) {
  ++probes_sent_;
  ++cp_mut(cp).probes_sent;
}

void Metrics::on_probe_received(net::NodeId /*device*/, net::NodeId /*cp*/,
                                double t) {
  ++probes_received_;
  load_.record(t);
}

void Metrics::on_cycle_success(net::NodeId cp, net::NodeId /*device*/,
                               double /*t*/, std::uint8_t /*attempts*/) {
  ++cp_mut(cp).cycles_succeeded;
}

void Metrics::on_delay_updated(net::NodeId cp, double t, double delay) {
  auto& m = cp_mut(cp);
  if (config_.record_delay_series) m.delay_series.add(t, delay);
  m.last_delay = delay;
  if (t >= config_.warmup && delay > 0) {
    m.delay_moments.add(delay);
    m.frequency_moments.add(1.0 / delay);
  }
}

void Metrics::on_device_declared_absent(net::NodeId cp,
                                        net::NodeId /*device*/, double t) {
  auto& m = cp_mut(cp);
  if (!m.declared_absent_at) m.declared_absent_at = t;
}

void Metrics::on_absence_learned(net::NodeId cp, net::NodeId /*device*/,
                                 double t) {
  auto& m = cp_mut(cp);
  if (!m.learned_absent_at) m.learned_absent_at = t;
}

void Metrics::record_active_cps(double t, std::size_t count) {
  active_cps_.add(t, static_cast<double>(count));
}

void Metrics::finish(double t) { load_.flush(t); }

const CpMetrics* Metrics::cp(net::NodeId id) const {
  auto it = per_cp_.find(id);
  return it == per_cp_.end() ? nullptr : &it->second;
}

std::vector<double> Metrics::mean_delays() const {
  std::vector<double> out;
  for (const auto& [id, m] : per_cp_) {
    if (!m.delay_moments.empty()) out.push_back(m.delay_moments.mean());
  }
  return out;
}

std::vector<double> Metrics::mean_frequencies() const {
  std::vector<double> out;
  for (const auto& [id, m] : per_cp_) {
    if (!m.frequency_moments.empty()) {
      out.push_back(m.frequency_moments.mean());
    }
  }
  return out;
}

double Metrics::frequency_fairness() const {
  return stats::jain_fairness(mean_frequencies());
}

std::vector<double> Metrics::detection_latencies() const {
  std::vector<double> out;
  if (!device_departed_at_) return out;
  for (const auto& [id, m] : per_cp_) {
    if (m.declared_absent_at && *m.declared_absent_at >= *device_departed_at_) {
      out.push_back(*m.declared_absent_at - *device_departed_at_);
    }
  }
  return out;
}

}  // namespace probemon::scenario
