#include "scenario/churn.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace probemon::scenario {

BurstLeave::BurstLeave(double at, std::size_t leave_count)
    : at_(at), leave_count_(leave_count) {
  if (!(at >= 0)) throw std::invalid_argument("BurstLeave: at >= 0");
}

void BurstLeave::install(Experiment& exp) {
  exp.sim().at(at_, [this, &exp] {
    for (std::size_t i = 0; i < leave_count_ && exp.active_cp_count() > 0;
         ++i) {
      exp.remove_random_cp();
    }
  });
}

std::string BurstLeave::describe() const {
  std::ostringstream os;
  os << "burst-leave(" << leave_count_ << " @ t=" << at_ << ")";
  return os.str();
}

DynamicUniformChurn::DynamicUniformChurn(std::size_t min_cps,
                                         std::size_t max_cps, double rate)
    : min_cps_(min_cps), max_cps_(max_cps), rate_(rate) {
  if (min_cps == 0 || max_cps < min_cps) {
    throw std::invalid_argument("DynamicUniformChurn: 1 <= min <= max");
  }
  if (!(rate > 0)) throw std::invalid_argument("DynamicUniformChurn: rate>0");
}

void DynamicUniformChurn::install(Experiment& exp) {
  rng_ = exp.sim().fork_rng("churn.dynamic_uniform");
  schedule_next(exp);
}

void DynamicUniformChurn::schedule_next(Experiment& exp) {
  const double dt = -std::log(rng_.next_double_open0()) / rate_;
  exp.sim().after(dt, [this, &exp] {
    const auto target = static_cast<std::size_t>(
        rng_.uniform_u64(min_cps_, max_cps_));
    exp.set_active_cp_count(target);
    schedule_next(exp);
  });
}

std::string DynamicUniformChurn::describe() const {
  std::ostringstream os;
  os << "dynamic-uniform(U{" << min_cps_ << ".." << max_cps_ << "} @ Exp("
     << rate_ << "))";
  return os.str();
}

PoissonChurn::PoissonChurn(double join_rate, double leave_rate,
                           std::size_t min_cps, std::size_t max_cps)
    : join_rate_(join_rate),
      leave_rate_(leave_rate),
      min_cps_(min_cps),
      max_cps_(max_cps) {
  if (!(join_rate > 0) || !(leave_rate > 0)) {
    throw std::invalid_argument("PoissonChurn: rates > 0");
  }
  if (max_cps < min_cps) {
    throw std::invalid_argument("PoissonChurn: min <= max");
  }
}

void PoissonChurn::install(Experiment& exp) {
  rng_ = exp.sim().fork_rng("churn.poisson");
  schedule_join(exp);
  schedule_leave(exp);
}

void PoissonChurn::schedule_join(Experiment& exp) {
  const double dt = -std::log(rng_.next_double_open0()) / join_rate_;
  exp.sim().after(dt, [this, &exp] {
    if (exp.active_cp_count() < max_cps_) exp.add_cp();
    schedule_join(exp);
  });
}

void PoissonChurn::schedule_leave(Experiment& exp) {
  const double dt = -std::log(rng_.next_double_open0()) / leave_rate_;
  exp.sim().after(dt, [this, &exp] {
    if (exp.active_cp_count() > min_cps_) exp.remove_random_cp();
    schedule_leave(exp);
  });
}

std::string PoissonChurn::describe() const {
  std::ostringstream os;
  os << "poisson(join " << join_rate_ << "/s, leave " << leave_rate_
     << "/s, [" << min_cps_ << ", " << max_cps_ << "])";
  return os.str();
}

ScriptedChurn::ScriptedChurn(std::vector<Step> steps)
    : steps_(std::move(steps)) {
  double prev = -1;
  for (const auto& s : steps_) {
    if (s.at < prev) {
      throw std::invalid_argument("ScriptedChurn: steps must be ordered");
    }
    prev = s.at;
  }
}

void ScriptedChurn::install(Experiment& exp) {
  for (const auto& step : steps_) {
    exp.sim().at(step.at, [&exp, target = step.target] {
      exp.set_active_cp_count(target);
    });
  }
}

std::string ScriptedChurn::describe() const {
  std::ostringstream os;
  os << "scripted(" << steps_.size() << " steps)";
  return os.str();
}

}  // namespace probemon::scenario
