// CP churn models.
//
// Each model drives Experiment::add_cp / remove_* / set_active_cp_count
// through scheduled events. The paper's scenarios map to:
//   * StaticChurn          — sections 3's steady-state/transient studies
//   * BurstLeave           — Fig 4 (18 of 20 CPs leave at once)
//   * DynamicUniformChurn  — Fig 5 / section 5 worst case: #CPs redrawn
//                            from U{min..max} at Exp(rate) intervals
// plus two generic models for extension studies:
//   * PoissonChurn         — independent join/leave Poisson processes
//   * ScriptedChurn        — explicit (time, target #CPs) trajectory
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "scenario/experiment.hpp"
#include "util/rng.hpp"

namespace probemon::scenario {

/// No joins, no leaves after the initial population.
class StaticChurn final : public Experiment::ChurnModel {
 public:
  void install(Experiment&) override {}
  std::string describe() const override { return "static"; }
};

/// `leave_count` randomly chosen CPs leave simultaneously at time `at`.
class BurstLeave final : public Experiment::ChurnModel {
 public:
  BurstLeave(double at, std::size_t leave_count);
  void install(Experiment& exp) override;
  std::string describe() const override;

 private:
  double at_;
  std::size_t leave_count_;
};

/// Paper Fig 5: redraw the active CP count uniformly from {min..max}
/// every Exp(rate)-distributed interval (rate 0.05 => mean 20 s).
class DynamicUniformChurn final : public Experiment::ChurnModel {
 public:
  DynamicUniformChurn(std::size_t min_cps, std::size_t max_cps, double rate);
  void install(Experiment& exp) override;
  std::string describe() const override;

 private:
  void schedule_next(Experiment& exp);

  std::size_t min_cps_, max_cps_;
  double rate_;
  util::Rng rng_{0};  // re-seeded from the experiment at install
};

/// Independent Poisson join and leave streams, capped at max_cps and
/// floored at min_cps.
class PoissonChurn final : public Experiment::ChurnModel {
 public:
  PoissonChurn(double join_rate, double leave_rate, std::size_t min_cps,
               std::size_t max_cps);
  void install(Experiment& exp) override;
  std::string describe() const override;

 private:
  void schedule_join(Experiment& exp);
  void schedule_leave(Experiment& exp);

  double join_rate_, leave_rate_;
  std::size_t min_cps_, max_cps_;
  util::Rng rng_{0};
};

/// Explicit (time, target active count) steps, applied in order.
class ScriptedChurn final : public Experiment::ChurnModel {
 public:
  struct Step {
    double at;
    std::size_t target;
  };
  explicit ScriptedChurn(std::vector<Step> steps);
  void install(Experiment& exp) override;
  std::string describe() const override;

 private:
  std::vector<Step> steps_;
};

}  // namespace probemon::scenario
