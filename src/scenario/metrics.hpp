// Measurement collector for protocol experiments.
//
// Implements ProtocolObserver and turns the raw event stream into exactly
// the quantities the paper reports:
//   * device probe load over time (probes/s, windowed)   -> Fig 5
//   * per-CP inter-cycle delay / frequency traces         -> Figs 2-4
//   * per-CP delay moments (mean/variance)                -> section 3 table
//   * absence-detection latency per CP                    -> bench A5
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/observer.hpp"
#include "stats/series.hpp"
#include "stats/welford.hpp"

namespace probemon::scenario {

struct MetricsConfig {
  /// Device-load rate-meter window (s). Fig 5 plots a short-window rate.
  double load_window = 1.0;
  /// Device-load sampling period (s).
  double load_sample_every = 1.0;
  /// Record per-CP delay time-series (disable for long steady-state runs
  /// where only the moments matter).
  bool record_delay_series = true;
  /// Ignore delay samples before this time when accumulating moments
  /// (initial-transient truncation for steady-state estimates).
  double warmup = 0.0;
};

/// Everything measured about one CP.
struct CpMetrics {
  stats::TimeSeries delay_series;       ///< (t, delta) on every update
  stats::Welford delay_moments;         ///< post-warmup delta samples
  stats::Welford frequency_moments;     ///< post-warmup 1/delta samples
  double last_delay = 0.0;
  std::uint64_t cycles_succeeded = 0;
  std::uint64_t probes_sent = 0;
  std::optional<double> declared_absent_at;
  std::optional<double> learned_absent_at;
};

class Metrics final : public core::ProtocolObserver {
 public:
  explicit Metrics(MetricsConfig config = {});

  // --- ProtocolObserver ---------------------------------------------------
  void on_probe_sent(net::NodeId cp, net::NodeId device, double t,
                     std::uint8_t attempt) override;
  void on_probe_received(net::NodeId device, net::NodeId cp,
                         double t) override;
  void on_cycle_success(net::NodeId cp, net::NodeId device, double t,
                        std::uint8_t attempts) override;
  void on_delay_updated(net::NodeId cp, double t, double delay) override;
  void on_device_declared_absent(net::NodeId cp, net::NodeId device,
                                 double t) override;
  void on_absence_learned(net::NodeId cp, net::NodeId device,
                          double t) override;

  // --- Scenario bookkeeping ------------------------------------------------
  /// Record the moment the device actually departed (detection latencies
  /// are measured from here).
  void set_device_departure_time(double t) { device_departed_at_ = t; }
  /// Record a change in the number of active CPs (Fig 5's second curve).
  void record_active_cps(double t, std::size_t count);
  /// Flush windowed meters up to the end of the run.
  void finish(double t);

  // --- Results --------------------------------------------------------------
  const stats::RateMeter& device_load() const noexcept { return load_; }
  const stats::TimeSeries& active_cps_series() const noexcept {
    return active_cps_;
  }
  std::uint64_t total_probes_received() const noexcept {
    return probes_received_;
  }
  std::uint64_t total_probes_sent() const noexcept { return probes_sent_; }

  const std::map<net::NodeId, CpMetrics>& per_cp() const noexcept {
    return per_cp_;
  }
  const CpMetrics* cp(net::NodeId id) const;

  /// Mean post-warmup delay of every CP that produced samples, in NodeId
  /// order — the raw material for the section-3 unfairness table.
  std::vector<double> mean_delays() const;
  /// Mean post-warmup frequency (1/delay) per CP.
  std::vector<double> mean_frequencies() const;
  /// Jain fairness index over mean per-CP frequencies.
  double frequency_fairness() const;

  /// Detection latencies (t_detect - t_departed) of CPs that declared
  /// absence by probing; requires set_device_departure_time.
  std::vector<double> detection_latencies() const;

 private:
  CpMetrics& cp_mut(net::NodeId id) { return per_cp_[id]; }

  MetricsConfig config_;
  stats::RateMeter load_;
  stats::TimeSeries active_cps_;
  std::map<net::NodeId, CpMetrics> per_cp_;
  std::uint64_t probes_received_ = 0;
  std::uint64_t probes_sent_ = 0;
  std::optional<double> device_departed_at_;
};

}  // namespace probemon::scenario
