# Empty compiler generated dependencies file for bench_a3_dcpp_loss.
# This may be replaced when dependencies are built.
