file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_dcpp_loss.dir/bench_a3_dcpp_loss.cpp.o"
  "CMakeFiles/bench_a3_dcpp_loss.dir/bench_a3_dcpp_loss.cpp.o.d"
  "bench_a3_dcpp_loss"
  "bench_a3_dcpp_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_dcpp_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
