# Empty compiler generated dependencies file for bench_a4_dcpp_crossover.
# This may be replaced when dependencies are built.
