file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_dcpp_crossover.dir/bench_a4_dcpp_crossover.cpp.o"
  "CMakeFiles/bench_a4_dcpp_crossover.dir/bench_a4_dcpp_crossover.cpp.o.d"
  "bench_a4_dcpp_crossover"
  "bench_a4_dcpp_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_dcpp_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
