# Empty dependencies file for bench_f3_sapp_20cps.
# This may be replaced when dependencies are built.
