
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_f3_sapp_20cps.cpp" "bench/CMakeFiles/bench_f3_sapp_20cps.dir/bench_f3_sapp_20cps.cpp.o" "gcc" "bench/CMakeFiles/bench_f3_sapp_20cps.dir/bench_f3_sapp_20cps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/probemon_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/probemon_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/probemon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/probemon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/probemon_des.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/probemon_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/probemon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
