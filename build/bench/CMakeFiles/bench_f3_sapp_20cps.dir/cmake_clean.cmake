file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_sapp_20cps.dir/bench_f3_sapp_20cps.cpp.o"
  "CMakeFiles/bench_f3_sapp_20cps.dir/bench_f3_sapp_20cps.cpp.o.d"
  "bench_f3_sapp_20cps"
  "bench_f3_sapp_20cps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_sapp_20cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
