# Empty compiler generated dependencies file for bench_v1_substrate_validation.
# This may be replaced when dependencies are built.
