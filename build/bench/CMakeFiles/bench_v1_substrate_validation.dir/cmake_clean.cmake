file(REMOVE_RECURSE
  "CMakeFiles/bench_v1_substrate_validation.dir/bench_v1_substrate_validation.cpp.o"
  "CMakeFiles/bench_v1_substrate_validation.dir/bench_v1_substrate_validation.cpp.o.d"
  "bench_v1_substrate_validation"
  "bench_v1_substrate_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_v1_substrate_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
