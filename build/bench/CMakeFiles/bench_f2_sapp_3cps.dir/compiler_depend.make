# Empty compiler generated dependencies file for bench_f2_sapp_3cps.
# This may be replaced when dependencies are built.
