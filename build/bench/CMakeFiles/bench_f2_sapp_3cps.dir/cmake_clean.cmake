file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_sapp_3cps.dir/bench_f2_sapp_3cps.cpp.o"
  "CMakeFiles/bench_f2_sapp_3cps.dir/bench_f2_sapp_3cps.cpp.o.d"
  "bench_f2_sapp_3cps"
  "bench_f2_sapp_3cps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_sapp_3cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
