file(REMOVE_RECURSE
  "CMakeFiles/bench_a7_des_micro.dir/bench_a7_des_micro.cpp.o"
  "CMakeFiles/bench_a7_des_micro.dir/bench_a7_des_micro.cpp.o.d"
  "bench_a7_des_micro"
  "bench_a7_des_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a7_des_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
