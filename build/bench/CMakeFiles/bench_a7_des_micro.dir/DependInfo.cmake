
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_a7_des_micro.cpp" "bench/CMakeFiles/bench_a7_des_micro.dir/bench_a7_des_micro.cpp.o" "gcc" "bench/CMakeFiles/bench_a7_des_micro.dir/bench_a7_des_micro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/probemon_des.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/probemon_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/probemon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/probemon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
