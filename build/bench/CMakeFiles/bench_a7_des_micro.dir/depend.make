# Empty dependencies file for bench_a7_des_micro.
# This may be replaced when dependencies are built.
