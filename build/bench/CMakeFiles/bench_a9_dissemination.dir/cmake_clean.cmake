file(REMOVE_RECURSE
  "CMakeFiles/bench_a9_dissemination.dir/bench_a9_dissemination.cpp.o"
  "CMakeFiles/bench_a9_dissemination.dir/bench_a9_dissemination.cpp.o.d"
  "bench_a9_dissemination"
  "bench_a9_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a9_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
