# Empty dependencies file for bench_a9_dissemination.
# This may be replaced when dependencies are built.
