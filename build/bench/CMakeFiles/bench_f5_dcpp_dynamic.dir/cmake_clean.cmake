file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_dcpp_dynamic.dir/bench_f5_dcpp_dynamic.cpp.o"
  "CMakeFiles/bench_f5_dcpp_dynamic.dir/bench_f5_dcpp_dynamic.cpp.o.d"
  "bench_f5_dcpp_dynamic"
  "bench_f5_dcpp_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_dcpp_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
