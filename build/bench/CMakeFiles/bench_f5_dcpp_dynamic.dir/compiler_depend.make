# Empty compiler generated dependencies file for bench_f5_dcpp_dynamic.
# This may be replaced when dependencies are built.
