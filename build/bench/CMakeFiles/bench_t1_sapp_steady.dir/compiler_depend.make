# Empty compiler generated dependencies file for bench_t1_sapp_steady.
# This may be replaced when dependencies are built.
