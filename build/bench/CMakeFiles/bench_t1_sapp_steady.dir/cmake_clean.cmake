file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_sapp_steady.dir/bench_t1_sapp_steady.cpp.o"
  "CMakeFiles/bench_t1_sapp_steady.dir/bench_t1_sapp_steady.cpp.o.d"
  "bench_t1_sapp_steady"
  "bench_t1_sapp_steady.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_sapp_steady.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
