file(REMOVE_RECURSE
  "CMakeFiles/bench_a5_detection.dir/bench_a5_detection.cpp.o"
  "CMakeFiles/bench_a5_detection.dir/bench_a5_detection.cpp.o.d"
  "bench_a5_detection"
  "bench_a5_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
