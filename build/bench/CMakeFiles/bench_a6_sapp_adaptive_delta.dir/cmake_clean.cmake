file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_sapp_adaptive_delta.dir/bench_a6_sapp_adaptive_delta.cpp.o"
  "CMakeFiles/bench_a6_sapp_adaptive_delta.dir/bench_a6_sapp_adaptive_delta.cpp.o.d"
  "bench_a6_sapp_adaptive_delta"
  "bench_a6_sapp_adaptive_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_sapp_adaptive_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
