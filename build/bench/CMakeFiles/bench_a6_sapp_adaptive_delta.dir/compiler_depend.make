# Empty compiler generated dependencies file for bench_a6_sapp_adaptive_delta.
# This may be replaced when dependencies are built.
