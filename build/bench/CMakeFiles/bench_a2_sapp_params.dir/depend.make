# Empty dependencies file for bench_a2_sapp_params.
# This may be replaced when dependencies are built.
