file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_sapp_params.dir/bench_a2_sapp_params.cpp.o"
  "CMakeFiles/bench_a2_sapp_params.dir/bench_a2_sapp_params.cpp.o.d"
  "bench_a2_sapp_params"
  "bench_a2_sapp_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_sapp_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
