file(REMOVE_RECURSE
  "CMakeFiles/bench_a11_sapp_variance.dir/bench_a11_sapp_variance.cpp.o"
  "CMakeFiles/bench_a11_sapp_variance.dir/bench_a11_sapp_variance.cpp.o.d"
  "bench_a11_sapp_variance"
  "bench_a11_sapp_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a11_sapp_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
