# Empty compiler generated dependencies file for bench_a11_sapp_variance.
# This may be replaced when dependencies are built.
