# Empty dependencies file for bench_a12_naive_baseline.
# This may be replaced when dependencies are built.
