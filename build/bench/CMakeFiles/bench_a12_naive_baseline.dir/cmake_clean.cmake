file(REMOVE_RECURSE
  "CMakeFiles/bench_a12_naive_baseline.dir/bench_a12_naive_baseline.cpp.o"
  "CMakeFiles/bench_a12_naive_baseline.dir/bench_a12_naive_baseline.cpp.o.d"
  "bench_a12_naive_baseline"
  "bench_a12_naive_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a12_naive_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
