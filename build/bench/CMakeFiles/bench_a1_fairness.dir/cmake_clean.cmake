file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_fairness.dir/bench_a1_fairness.cpp.o"
  "CMakeFiles/bench_a1_fairness.dir/bench_a1_fairness.cpp.o.d"
  "bench_a1_fairness"
  "bench_a1_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
