# Empty compiler generated dependencies file for bench_f4_sapp_leave.
# This may be replaced when dependencies are built.
