file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_sapp_leave.dir/bench_f4_sapp_leave.cpp.o"
  "CMakeFiles/bench_f4_sapp_leave.dir/bench_f4_sapp_leave.cpp.o.d"
  "bench_f4_sapp_leave"
  "bench_f4_sapp_leave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_sapp_leave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
