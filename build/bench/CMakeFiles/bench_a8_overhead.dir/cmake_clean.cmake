file(REMOVE_RECURSE
  "CMakeFiles/bench_a8_overhead.dir/bench_a8_overhead.cpp.o"
  "CMakeFiles/bench_a8_overhead.dir/bench_a8_overhead.cpp.o.d"
  "bench_a8_overhead"
  "bench_a8_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a8_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
