# Empty compiler generated dependencies file for bench_a8_overhead.
# This may be replaced when dependencies are built.
