file(REMOVE_RECURSE
  "CMakeFiles/bench_a10_false_alarms.dir/bench_a10_false_alarms.cpp.o"
  "CMakeFiles/bench_a10_false_alarms.dir/bench_a10_false_alarms.cpp.o.d"
  "bench_a10_false_alarms"
  "bench_a10_false_alarms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a10_false_alarms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
