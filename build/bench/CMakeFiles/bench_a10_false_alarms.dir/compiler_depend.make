# Empty compiler generated dependencies file for bench_a10_false_alarms.
# This may be replaced when dependencies are built.
