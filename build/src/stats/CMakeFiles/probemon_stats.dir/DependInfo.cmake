
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/autocorr.cpp" "src/stats/CMakeFiles/probemon_stats.dir/autocorr.cpp.o" "gcc" "src/stats/CMakeFiles/probemon_stats.dir/autocorr.cpp.o.d"
  "/root/repo/src/stats/batch_means.cpp" "src/stats/CMakeFiles/probemon_stats.dir/batch_means.cpp.o" "gcc" "src/stats/CMakeFiles/probemon_stats.dir/batch_means.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/probemon_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/probemon_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/series.cpp" "src/stats/CMakeFiles/probemon_stats.dir/series.cpp.o" "gcc" "src/stats/CMakeFiles/probemon_stats.dir/series.cpp.o.d"
  "/root/repo/src/stats/student_t.cpp" "src/stats/CMakeFiles/probemon_stats.dir/student_t.cpp.o" "gcc" "src/stats/CMakeFiles/probemon_stats.dir/student_t.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/probemon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
