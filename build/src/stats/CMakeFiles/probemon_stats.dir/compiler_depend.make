# Empty compiler generated dependencies file for probemon_stats.
# This may be replaced when dependencies are built.
