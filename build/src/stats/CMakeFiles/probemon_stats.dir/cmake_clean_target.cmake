file(REMOVE_RECURSE
  "libprobemon_stats.a"
)
