file(REMOVE_RECURSE
  "CMakeFiles/probemon_stats.dir/autocorr.cpp.o"
  "CMakeFiles/probemon_stats.dir/autocorr.cpp.o.d"
  "CMakeFiles/probemon_stats.dir/batch_means.cpp.o"
  "CMakeFiles/probemon_stats.dir/batch_means.cpp.o.d"
  "CMakeFiles/probemon_stats.dir/histogram.cpp.o"
  "CMakeFiles/probemon_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/probemon_stats.dir/series.cpp.o"
  "CMakeFiles/probemon_stats.dir/series.cpp.o.d"
  "CMakeFiles/probemon_stats.dir/student_t.cpp.o"
  "CMakeFiles/probemon_stats.dir/student_t.cpp.o.d"
  "libprobemon_stats.a"
  "libprobemon_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probemon_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
