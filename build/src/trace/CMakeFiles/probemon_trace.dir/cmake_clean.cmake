file(REMOVE_RECURSE
  "CMakeFiles/probemon_trace.dir/csv.cpp.o"
  "CMakeFiles/probemon_trace.dir/csv.cpp.o.d"
  "CMakeFiles/probemon_trace.dir/event_log.cpp.o"
  "CMakeFiles/probemon_trace.dir/event_log.cpp.o.d"
  "CMakeFiles/probemon_trace.dir/gnuplot.cpp.o"
  "CMakeFiles/probemon_trace.dir/gnuplot.cpp.o.d"
  "CMakeFiles/probemon_trace.dir/table.cpp.o"
  "CMakeFiles/probemon_trace.dir/table.cpp.o.d"
  "libprobemon_trace.a"
  "libprobemon_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probemon_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
