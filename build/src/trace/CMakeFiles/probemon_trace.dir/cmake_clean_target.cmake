file(REMOVE_RECURSE
  "libprobemon_trace.a"
)
