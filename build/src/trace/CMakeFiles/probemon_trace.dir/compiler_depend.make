# Empty compiler generated dependencies file for probemon_trace.
# This may be replaced when dependencies are built.
