
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/csv.cpp" "src/trace/CMakeFiles/probemon_trace.dir/csv.cpp.o" "gcc" "src/trace/CMakeFiles/probemon_trace.dir/csv.cpp.o.d"
  "/root/repo/src/trace/event_log.cpp" "src/trace/CMakeFiles/probemon_trace.dir/event_log.cpp.o" "gcc" "src/trace/CMakeFiles/probemon_trace.dir/event_log.cpp.o.d"
  "/root/repo/src/trace/gnuplot.cpp" "src/trace/CMakeFiles/probemon_trace.dir/gnuplot.cpp.o" "gcc" "src/trace/CMakeFiles/probemon_trace.dir/gnuplot.cpp.o.d"
  "/root/repo/src/trace/table.cpp" "src/trace/CMakeFiles/probemon_trace.dir/table.cpp.o" "gcc" "src/trace/CMakeFiles/probemon_trace.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/probemon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/probemon_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/probemon_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/probemon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/probemon_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
