# Empty dependencies file for probemon_util.
# This may be replaced when dependencies are built.
