file(REMOVE_RECURSE
  "CMakeFiles/probemon_util.dir/cli.cpp.o"
  "CMakeFiles/probemon_util.dir/cli.cpp.o.d"
  "CMakeFiles/probemon_util.dir/distributions.cpp.o"
  "CMakeFiles/probemon_util.dir/distributions.cpp.o.d"
  "CMakeFiles/probemon_util.dir/logging.cpp.o"
  "CMakeFiles/probemon_util.dir/logging.cpp.o.d"
  "CMakeFiles/probemon_util.dir/rng.cpp.o"
  "CMakeFiles/probemon_util.dir/rng.cpp.o.d"
  "CMakeFiles/probemon_util.dir/strings.cpp.o"
  "CMakeFiles/probemon_util.dir/strings.cpp.o.d"
  "libprobemon_util.a"
  "libprobemon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probemon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
