file(REMOVE_RECURSE
  "libprobemon_util.a"
)
