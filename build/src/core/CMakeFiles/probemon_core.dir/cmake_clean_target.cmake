file(REMOVE_RECURSE
  "libprobemon_core.a"
)
