file(REMOVE_RECURSE
  "CMakeFiles/probemon_core.dir/control_point_base.cpp.o"
  "CMakeFiles/probemon_core.dir/control_point_base.cpp.o.d"
  "CMakeFiles/probemon_core.dir/dcpp_control_point.cpp.o"
  "CMakeFiles/probemon_core.dir/dcpp_control_point.cpp.o.d"
  "CMakeFiles/probemon_core.dir/dcpp_device.cpp.o"
  "CMakeFiles/probemon_core.dir/dcpp_device.cpp.o.d"
  "CMakeFiles/probemon_core.dir/device_base.cpp.o"
  "CMakeFiles/probemon_core.dir/device_base.cpp.o.d"
  "CMakeFiles/probemon_core.dir/probe_cycle.cpp.o"
  "CMakeFiles/probemon_core.dir/probe_cycle.cpp.o.d"
  "CMakeFiles/probemon_core.dir/sapp_control_point.cpp.o"
  "CMakeFiles/probemon_core.dir/sapp_control_point.cpp.o.d"
  "CMakeFiles/probemon_core.dir/sapp_device.cpp.o"
  "CMakeFiles/probemon_core.dir/sapp_device.cpp.o.d"
  "libprobemon_core.a"
  "libprobemon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probemon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
