
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/control_point_base.cpp" "src/core/CMakeFiles/probemon_core.dir/control_point_base.cpp.o" "gcc" "src/core/CMakeFiles/probemon_core.dir/control_point_base.cpp.o.d"
  "/root/repo/src/core/dcpp_control_point.cpp" "src/core/CMakeFiles/probemon_core.dir/dcpp_control_point.cpp.o" "gcc" "src/core/CMakeFiles/probemon_core.dir/dcpp_control_point.cpp.o.d"
  "/root/repo/src/core/dcpp_device.cpp" "src/core/CMakeFiles/probemon_core.dir/dcpp_device.cpp.o" "gcc" "src/core/CMakeFiles/probemon_core.dir/dcpp_device.cpp.o.d"
  "/root/repo/src/core/device_base.cpp" "src/core/CMakeFiles/probemon_core.dir/device_base.cpp.o" "gcc" "src/core/CMakeFiles/probemon_core.dir/device_base.cpp.o.d"
  "/root/repo/src/core/probe_cycle.cpp" "src/core/CMakeFiles/probemon_core.dir/probe_cycle.cpp.o" "gcc" "src/core/CMakeFiles/probemon_core.dir/probe_cycle.cpp.o.d"
  "/root/repo/src/core/sapp_control_point.cpp" "src/core/CMakeFiles/probemon_core.dir/sapp_control_point.cpp.o" "gcc" "src/core/CMakeFiles/probemon_core.dir/sapp_control_point.cpp.o.d"
  "/root/repo/src/core/sapp_device.cpp" "src/core/CMakeFiles/probemon_core.dir/sapp_device.cpp.o" "gcc" "src/core/CMakeFiles/probemon_core.dir/sapp_device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/probemon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/probemon_des.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/probemon_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/probemon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
