# Empty compiler generated dependencies file for probemon_core.
# This may be replaced when dependencies are built.
