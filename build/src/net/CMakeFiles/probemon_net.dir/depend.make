# Empty dependencies file for probemon_net.
# This may be replaced when dependencies are built.
