file(REMOVE_RECURSE
  "libprobemon_net.a"
)
