
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/delay_model.cpp" "src/net/CMakeFiles/probemon_net.dir/delay_model.cpp.o" "gcc" "src/net/CMakeFiles/probemon_net.dir/delay_model.cpp.o.d"
  "/root/repo/src/net/loss_model.cpp" "src/net/CMakeFiles/probemon_net.dir/loss_model.cpp.o" "gcc" "src/net/CMakeFiles/probemon_net.dir/loss_model.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/probemon_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/probemon_net.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/probemon_des.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/probemon_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/probemon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
