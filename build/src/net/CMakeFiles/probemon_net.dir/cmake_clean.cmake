file(REMOVE_RECURSE
  "CMakeFiles/probemon_net.dir/delay_model.cpp.o"
  "CMakeFiles/probemon_net.dir/delay_model.cpp.o.d"
  "CMakeFiles/probemon_net.dir/loss_model.cpp.o"
  "CMakeFiles/probemon_net.dir/loss_model.cpp.o.d"
  "CMakeFiles/probemon_net.dir/network.cpp.o"
  "CMakeFiles/probemon_net.dir/network.cpp.o.d"
  "libprobemon_net.a"
  "libprobemon_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probemon_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
