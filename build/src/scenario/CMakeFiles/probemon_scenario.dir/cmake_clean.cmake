file(REMOVE_RECURSE
  "CMakeFiles/probemon_scenario.dir/churn.cpp.o"
  "CMakeFiles/probemon_scenario.dir/churn.cpp.o.d"
  "CMakeFiles/probemon_scenario.dir/experiment.cpp.o"
  "CMakeFiles/probemon_scenario.dir/experiment.cpp.o.d"
  "CMakeFiles/probemon_scenario.dir/metrics.cpp.o"
  "CMakeFiles/probemon_scenario.dir/metrics.cpp.o.d"
  "libprobemon_scenario.a"
  "libprobemon_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probemon_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
