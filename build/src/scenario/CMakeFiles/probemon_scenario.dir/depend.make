# Empty dependencies file for probemon_scenario.
# This may be replaced when dependencies are built.
