file(REMOVE_RECURSE
  "libprobemon_scenario.a"
)
