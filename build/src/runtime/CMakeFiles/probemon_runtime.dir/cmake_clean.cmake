file(REMOVE_RECURSE
  "CMakeFiles/probemon_runtime.dir/inproc_transport.cpp.o"
  "CMakeFiles/probemon_runtime.dir/inproc_transport.cpp.o.d"
  "CMakeFiles/probemon_runtime.dir/presence_service.cpp.o"
  "CMakeFiles/probemon_runtime.dir/presence_service.cpp.o.d"
  "CMakeFiles/probemon_runtime.dir/rt_control_point.cpp.o"
  "CMakeFiles/probemon_runtime.dir/rt_control_point.cpp.o.d"
  "CMakeFiles/probemon_runtime.dir/rt_device.cpp.o"
  "CMakeFiles/probemon_runtime.dir/rt_device.cpp.o.d"
  "CMakeFiles/probemon_runtime.dir/udp_transport.cpp.o"
  "CMakeFiles/probemon_runtime.dir/udp_transport.cpp.o.d"
  "libprobemon_runtime.a"
  "libprobemon_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probemon_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
