# Empty dependencies file for probemon_runtime.
# This may be replaced when dependencies are built.
