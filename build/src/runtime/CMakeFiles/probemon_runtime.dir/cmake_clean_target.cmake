file(REMOVE_RECURSE
  "libprobemon_runtime.a"
)
