
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/inproc_transport.cpp" "src/runtime/CMakeFiles/probemon_runtime.dir/inproc_transport.cpp.o" "gcc" "src/runtime/CMakeFiles/probemon_runtime.dir/inproc_transport.cpp.o.d"
  "/root/repo/src/runtime/presence_service.cpp" "src/runtime/CMakeFiles/probemon_runtime.dir/presence_service.cpp.o" "gcc" "src/runtime/CMakeFiles/probemon_runtime.dir/presence_service.cpp.o.d"
  "/root/repo/src/runtime/rt_control_point.cpp" "src/runtime/CMakeFiles/probemon_runtime.dir/rt_control_point.cpp.o" "gcc" "src/runtime/CMakeFiles/probemon_runtime.dir/rt_control_point.cpp.o.d"
  "/root/repo/src/runtime/rt_device.cpp" "src/runtime/CMakeFiles/probemon_runtime.dir/rt_device.cpp.o" "gcc" "src/runtime/CMakeFiles/probemon_runtime.dir/rt_device.cpp.o.d"
  "/root/repo/src/runtime/udp_transport.cpp" "src/runtime/CMakeFiles/probemon_runtime.dir/udp_transport.cpp.o" "gcc" "src/runtime/CMakeFiles/probemon_runtime.dir/udp_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/probemon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/probemon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/probemon_util.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/probemon_des.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/probemon_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
