file(REMOVE_RECURSE
  "libprobemon_des.a"
)
