# Empty compiler generated dependencies file for probemon_des.
# This may be replaced when dependencies are built.
