file(REMOVE_RECURSE
  "CMakeFiles/probemon_des.dir/scheduler.cpp.o"
  "CMakeFiles/probemon_des.dir/scheduler.cpp.o.d"
  "CMakeFiles/probemon_des.dir/simulation.cpp.o"
  "CMakeFiles/probemon_des.dir/simulation.cpp.o.d"
  "libprobemon_des.a"
  "libprobemon_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probemon_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
