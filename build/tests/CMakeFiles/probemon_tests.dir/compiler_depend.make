# Empty compiler generated dependencies file for probemon_tests.
# This may be replaced when dependencies are built.
