
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline_and_regression.cpp" "tests/CMakeFiles/probemon_tests.dir/test_baseline_and_regression.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_baseline_and_regression.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/probemon_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_control_point.cpp" "tests/CMakeFiles/probemon_tests.dir/test_control_point.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_control_point.cpp.o.d"
  "/root/repo/tests/test_dcpp.cpp" "tests/CMakeFiles/probemon_tests.dir/test_dcpp.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_dcpp.cpp.o.d"
  "/root/repo/tests/test_distributions.cpp" "tests/CMakeFiles/probemon_tests.dir/test_distributions.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_distributions.cpp.o.d"
  "/root/repo/tests/test_event_log.cpp" "tests/CMakeFiles/probemon_tests.dir/test_event_log.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_event_log.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/probemon_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_logging.cpp" "tests/CMakeFiles/probemon_tests.dir/test_logging.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_logging.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/probemon_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_presence_service.cpp" "tests/CMakeFiles/probemon_tests.dir/test_presence_service.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_presence_service.cpp.o.d"
  "/root/repo/tests/test_probe_cycle.cpp" "tests/CMakeFiles/probemon_tests.dir/test_probe_cycle.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_probe_cycle.cpp.o.d"
  "/root/repo/tests/test_protocol_common.cpp" "tests/CMakeFiles/probemon_tests.dir/test_protocol_common.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_protocol_common.cpp.o.d"
  "/root/repo/tests/test_random_scenarios.cpp" "tests/CMakeFiles/probemon_tests.dir/test_random_scenarios.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_random_scenarios.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/probemon_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/probemon_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_sapp.cpp" "tests/CMakeFiles/probemon_tests.dir/test_sapp.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_sapp.cpp.o.d"
  "/root/repo/tests/test_scenario.cpp" "tests/CMakeFiles/probemon_tests.dir/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_scenario.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/probemon_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_series.cpp" "tests/CMakeFiles/probemon_tests.dir/test_series.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_series.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/probemon_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/probemon_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_udp_transport.cpp" "tests/CMakeFiles/probemon_tests.dir/test_udp_transport.cpp.o" "gcc" "tests/CMakeFiles/probemon_tests.dir/test_udp_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/probemon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/probemon_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/probemon_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/probemon_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/probemon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/probemon_des.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/probemon_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/probemon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
