file(REMOVE_RECURSE
  "CMakeFiles/realtime_runtime.dir/realtime_runtime.cpp.o"
  "CMakeFiles/realtime_runtime.dir/realtime_runtime.cpp.o.d"
  "realtime_runtime"
  "realtime_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
