# Empty dependencies file for realtime_runtime.
# This may be replaced when dependencies are built.
