# Empty dependencies file for smart_home_churn.
# This may be replaced when dependencies are built.
