file(REMOVE_RECURSE
  "CMakeFiles/smart_home_churn.dir/smart_home_churn.cpp.o"
  "CMakeFiles/smart_home_churn.dir/smart_home_churn.cpp.o.d"
  "smart_home_churn"
  "smart_home_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_home_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
