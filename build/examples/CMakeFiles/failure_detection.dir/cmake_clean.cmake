file(REMOVE_RECURSE
  "CMakeFiles/failure_detection.dir/failure_detection.cpp.o"
  "CMakeFiles/failure_detection.dir/failure_detection.cpp.o.d"
  "failure_detection"
  "failure_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
