# Empty dependencies file for failure_detection.
# This may be replaced when dependencies are built.
