# Empty dependencies file for presence_dashboard.
# This may be replaced when dependencies are built.
