file(REMOVE_RECURSE
  "CMakeFiles/presence_dashboard.dir/presence_dashboard.cpp.o"
  "CMakeFiles/presence_dashboard.dir/presence_dashboard.cpp.o.d"
  "presence_dashboard"
  "presence_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presence_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
