# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sapp_starvation.
