# Empty dependencies file for sapp_starvation.
# This may be replaced when dependencies are built.
