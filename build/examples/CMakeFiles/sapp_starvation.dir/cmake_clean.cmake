file(REMOVE_RECURSE
  "CMakeFiles/sapp_starvation.dir/sapp_starvation.cpp.o"
  "CMakeFiles/sapp_starvation.dir/sapp_starvation.cpp.o.d"
  "sapp_starvation"
  "sapp_starvation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sapp_starvation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
