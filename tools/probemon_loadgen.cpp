// probemon_loadgen — open-loop UDP probe generator for the async
// runtime.
//
// Drives a process that hosts AsyncDevice endpoints on an
// AsyncUdpTransport (e.g. examples/realtime_runtime --transport=reactor
// or bench_rt_scale's fleet) from the OUTSIDE, over real datagrams:
//
//   ./probemon_loadgen --target=PORT --rate=50000 --duration=10
//                      --devices=1000 --cps=16 --loss=0.01
//
// It encodes kProbe messages with the runtime's 48-byte wire codec,
// addressed round-robin to device NodeIds 1..--devices, from synthetic
// CP ids starting at 0x40000000 — the target transport learns each CP
// id from the datagram source address, which is how replies find their
// way back here. Pacing is OPEN-LOOP: probe k is due at k/rate seconds
// regardless of replies (it bursts to catch up after a stall, it never
// slows down), which is what makes it a stress tool rather than a
// well-behaved CP. --loss drops that fraction of scheduled probes
// before the socket (seeded, reproducible) to exercise the timeout
// paths of whatever is watching on the other side.
//
// RTT bookkeeping rides the Message.cycle field: each probe carries a
// sequence number, the device echoes it in the reply, and a ring of
// send timestamps turns the echo into a latency sample. The summary
// prints sent/replies/apparent-loss plus RTT p50/p99/max.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "runtime/udp_transport.hpp"
#include "util/cli.hpp"

using namespace probemon;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double percentile(std::vector<double>& sorted_samples, double q) {
  if (sorted_samples.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_samples.size() - 1));
  return sorted_samples[idx];
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto target = cli.get<std::uint64_t>("target", 0);
  const auto rate = cli.get<double>("rate", 10000.0);
  const auto duration = cli.get<double>("duration", 5.0);
  const auto devices = cli.get<std::uint64_t>("devices", 1);
  const auto cps = cli.get<std::uint64_t>("cps", 1);
  const auto loss = cli.get<double>("loss", 0.0);
  const auto seed = cli.get<std::uint64_t>("seed", 42);
  cli.finish("probemon_loadgen: open-loop UDP probe generator");
  if (target == 0 || target > 65535) {
    std::fprintf(stderr, "probemon_loadgen: --target=PORT is required\n");
    return 2;
  }
  if (rate <= 0.0 || devices == 0 || cps == 0 || loss < 0.0 || loss >= 1.0) {
    std::fprintf(stderr,
                 "probemon_loadgen: need --rate>0, --devices>0, --cps>0, "
                 "0<=--loss<1\n");
    return 2;
  }

  const int fd = socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    std::perror("probemon_loadgen: socket");
    return 1;
  }
  sockaddr_in dest{};
  dest.sin_family = AF_INET;
  dest.sin_port = htons(static_cast<std::uint16_t>(target));
  dest.sin_addr.s_addr = htonl(INADDR_LOOPBACK);

  // Ring of send timestamps keyed by sequence number; deep enough that
  // a reply arriving a full second late still finds its slot at the
  // highest supported rate.
  constexpr std::uint64_t kRing = 1 << 20;
  std::vector<double> sent_at(kRing, -1.0);
  std::vector<double> rtts;
  rtts.reserve(1 << 20);

  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  constexpr net::NodeId kCpBase = 0x40000000;

  std::uint64_t sent = 0, suppressed = 0, replies = 0, stale = 0,
                decode_errors = 0;
  std::uint64_t seq = 0;
  const double t_start = now_s();
  const double t_end = t_start + duration;
  double next_due = t_start;
  const double interval = 1.0 / rate;

  std::uint8_t buf[runtime::kUdpWireSize];
  while (true) {
    const double now = now_s();
    if (now >= t_end) break;

    // Send every probe that is due by now (open loop: catch-up bursts).
    while (next_due <= now) {
      next_due += interval;
      const std::uint64_t k = seq++;
      if (loss > 0.0 && uniform(rng) < loss) {
        ++suppressed;
        continue;
      }
      net::Message probe;
      probe.kind = net::MessageKind::kProbe;
      probe.from = kCpBase + static_cast<net::NodeId>(k % cps);
      probe.to = 1 + static_cast<net::NodeId>(k % devices);
      probe.cycle = k;
      runtime::udp_encode(probe, buf);
      sent_at[k % kRing] = now_s();
      if (sendto(fd, buf, sizeof buf, 0,
                 reinterpret_cast<const sockaddr*>(&dest),
                 sizeof dest) == static_cast<ssize_t>(sizeof buf)) {
        ++sent;
      }
    }

    // Drain replies.
    std::uint8_t in[runtime::kUdpWireSize + 16];
    ssize_t n;
    while ((n = recv(fd, in, sizeof in, 0)) > 0) {
      net::Message reply;
      if (static_cast<std::size_t>(n) != runtime::kUdpWireSize ||
          !runtime::udp_decode(in, static_cast<std::size_t>(n), reply)) {
        ++decode_errors;
        continue;
      }
      const double at = sent_at[reply.cycle % kRing];
      if (at < 0.0) {
        ++stale;
        continue;
      }
      ++replies;
      rtts.push_back(now_s() - at);
    }

    // Sleep until the next probe is due (bounded so reply draining
    // stays responsive at low rates).
    const double idle = std::min(next_due - now_s(), 0.01);
    if (idle > 0.0) {
      timespec ts{};
      ts.tv_sec = static_cast<time_t>(idle);
      ts.tv_nsec = static_cast<long>((idle - static_cast<double>(ts.tv_sec)) *
                                     1e9);
      nanosleep(&ts, nullptr);
    }
  }

  // Grace window for in-flight replies.
  const double t_grace = now_s() + 0.2;
  while (now_s() < t_grace) {
    std::uint8_t in[runtime::kUdpWireSize + 16];
    ssize_t n;
    while ((n = recv(fd, in, sizeof in, 0)) > 0) {
      net::Message reply;
      if (static_cast<std::size_t>(n) != runtime::kUdpWireSize ||
          !runtime::udp_decode(in, static_cast<std::size_t>(n), reply)) {
        ++decode_errors;
        continue;
      }
      const double at = sent_at[reply.cycle % kRing];
      if (at < 0.0) {
        ++stale;
        continue;
      }
      ++replies;
      rtts.push_back(now_s() - at);
    }
    timespec ts{0, 5'000'000};
    nanosleep(&ts, nullptr);
  }
  close(fd);

  std::sort(rtts.begin(), rtts.end());
  const double wall = now_s() - t_start;
  const double apparent_loss =
      sent == 0 ? 0.0
                : 1.0 - static_cast<double>(replies) / static_cast<double>(sent);
  std::printf("probemon_loadgen: target=127.0.0.1:%llu rate=%.0f/s "
              "wall=%.2fs\n",
              static_cast<unsigned long long>(target), rate, wall);
  std::printf("  sent      %llu (+%llu suppressed by --loss=%.3f)\n",
              static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(suppressed), loss);
  std::printf("  replies   %llu (apparent loss %.3f%%, stale %llu, "
              "decode errors %llu)\n",
              static_cast<unsigned long long>(replies),
              100.0 * apparent_loss, static_cast<unsigned long long>(stale),
              static_cast<unsigned long long>(decode_errors));
  if (!rtts.empty()) {
    std::printf("  rtt       p50 %.0fus  p99 %.0fus  max %.0fus\n",
                1e6 * percentile(rtts, 0.50), 1e6 * percentile(rtts, 0.99),
                1e6 * rtts.back());
  }
  return 0;
}
