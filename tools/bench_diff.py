#!/usr/bin/env python3
"""Compare two directories of bench_out/*.json summaries.

Every binary under bench/ writes a flat JSON summary (see
benchutil::JsonSummary) -- the headline paper-vs-measured numbers -- and
the google-benchmark binaries write a {"benchmarks": [...]} list. This
tool diffs two such directories metric by metric, prints the deltas, and
exits non-zero when any relative change exceeds the threshold, so a CI
run fails loudly on a regression:

    tools/bench_diff.py baseline_dir current_dir --threshold 10

Timing-noise keys (real_time, cpu_time, iterations, items_per_second)
are ignored by default; pass --ignore '' to gate on them too, or a
custom regex to ignore more.

Throughput gating: --higher-is-better REGEX marks matching keys as
one-sided -- they fail only when the current value drops below the
baseline by more than the threshold (improvements never fail). Keys
matched this way are exempted from --ignore, so the CI perf gate can
run with the default ignore list plus

    --higher-is-better 'items_per_second$' --threshold 40

to fail on a >40% throughput regression while tolerating noise-prone
absolute timings.

Footprint gating is the mirror image: --lower-is-better REGEX gates
matching keys (e.g. bytes_per_entity) one-sided against *increases*;
shrinking never fails. Both one-sided classes are exempt from --ignore.

Per-key thresholds: --max-regress-pct 'REGEX=PCT' (repeatable)
overrides --threshold for keys matching REGEX -- the first matching
override wins. Latency keys are noisier than throughput keys, so a
perf gate can hold throughput to 40% while giving p99 latency 300%:

    --higher-is-better 'probes_per_s$' --threshold 40 \\
    --max-regress-pct 'p99_reply_latency_s$=300'
"""

import argparse
import glob
import json
import math
import os
import re
import sys

DEFAULT_IGNORE = (r"(^|\.)(real_time|cpu_time|iterations|items_per_second"
                  r"|peak_rss_bytes)$")


def flatten(value, prefix=""):
    """Yield (key_path, scalar) pairs from nested JSON.

    Lists of objects carrying a "name" field (google-benchmark entries)
    are keyed by that name; other lists by index.
    """
    if isinstance(value, dict):
        for key, sub in value.items():
            yield from flatten(sub, f"{prefix}{key}.")
    elif isinstance(value, list):
        for i, sub in enumerate(value):
            tag = sub.get("name", str(i)) if isinstance(sub, dict) else str(i)
            yield from flatten(sub, f"{prefix}{tag}.")
    else:
        yield prefix.rstrip("."), value


def load_summary(path):
    with open(path) as fh:
        doc = json.load(fh)
    return dict(flatten(doc))


def fmt(value):
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def parse_overrides(specs):
    """Parse repeated 'REGEX=PCT' --max-regress-pct specs, in order."""
    overrides = []
    for spec in specs or []:
        regex, sep, pct = spec.rpartition("=")
        if not sep or not regex:
            raise SystemExit(
                f"bench_diff: bad --max-regress-pct '{spec}' "
                "(expected REGEX=PCT)")
        try:
            overrides.append((re.compile(regex), float(pct)))
        except (re.error, ValueError) as err:
            raise SystemExit(
                f"bench_diff: bad --max-regress-pct '{spec}' ({err})")
    return overrides


def threshold_for(key, overrides, default):
    for regex, pct in overrides:
        if regex.search(key):
            return pct
    return default


def diff_file(name, base, cur, args, report):
    failures = 0
    keys = sorted(set(base) | set(cur))
    ignore = re.compile(args.ignore) if args.ignore else None
    hib = re.compile(args.higher_is_better) if args.higher_is_better else None
    lib = re.compile(args.lower_is_better) if args.lower_is_better else None
    overrides = parse_overrides(args.max_regress_pct)
    for key in keys:
        if key == "experiment":
            continue
        want_high = bool(hib and hib.search(key))
        want_low = bool(lib and lib.search(key))
        one_sided = want_high or want_low
        if ignore and ignore.search(key) and not one_sided:
            continue
        if key not in base:
            # A series present in the candidate but absent from the
            # baseline cannot regress; report it (gating starts once
            # the baseline is refreshed to include it).
            note = ("; one-sided gate inactive until the baseline is "
                    "refreshed" if one_sided else "")
            report.append(f"  {name}:{key}: NEW, no baseline value "
                          f"(current={fmt(cur[key])}{note})")
            continue
        if key not in cur:
            report.append(f"  {name}:{key}: MISSING from current "
                          f"(baseline={fmt(base[key])})")
            failures += 1
            continue
        b, c = base[key], cur[key]
        numeric = isinstance(b, (int, float)) and isinstance(c, (int, float)) \
            and not isinstance(b, bool) and not isinstance(c, bool)
        if not numeric:
            if b != c:
                report.append(f"  {name}:{key}: {fmt(b)} -> {fmt(c)}")
                failures += 1
            continue
        delta = c - b
        if b == 0:
            if abs(delta) > args.abs_tolerance:
                report.append(f"  {name}:{key}: {fmt(b)} -> {fmt(c)} "
                              f"(baseline 0, |delta| > {args.abs_tolerance})"
                              "  FAIL")
                failures += 1
            continue
        pct = 100.0 * delta / abs(b)
        if want_low:
            signed = pct          # an increase is a regression
        elif want_high:
            signed = -pct         # a decrease is a regression
        else:
            signed = abs(pct)
        limit = threshold_for(key, overrides, args.threshold)
        exceeded = signed > limit
        if math.isnan(pct) or exceeded:
            limit_note = (f", limit {limit:g}%"
                          if limit != args.threshold else "")
            report.append(f"  {name}:{key}: {fmt(b)} -> {fmt(c)} "
                          f"({pct:+.2f}%{limit_note})  FAIL")
            failures += 1
        elif args.verbose and delta != 0:
            report.append(f"  {name}:{key}: {fmt(b)} -> {fmt(c)} "
                          f"({pct:+.2f}%)")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="directory of baseline *.json summaries")
    parser.add_argument("current", help="directory of current *.json summaries")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="max allowed relative change in %% (default 10)")
    parser.add_argument("--abs-tolerance", type=float, default=1e-9,
                        help="max allowed |delta| when the baseline is 0")
    parser.add_argument("--ignore", default=DEFAULT_IGNORE,
                        help="regex of metric keys to skip ('' = none; "
                             "default skips micro-bench timing keys)")
    parser.add_argument("--higher-is-better", default="",
                        help="regex of keys gated one-sided: fail only on a "
                             "decrease beyond the threshold (and never skip "
                             "them via --ignore)")
    parser.add_argument("--lower-is-better", default="",
                        help="regex of keys gated one-sided the other way: "
                             "fail only on an increase beyond the threshold "
                             "(footprint metrics; exempt from --ignore)")
    parser.add_argument("--max-regress-pct", action="append", default=[],
                        metavar="REGEX=PCT",
                        help="per-key threshold override (repeatable; first "
                             "matching REGEX wins) -- lets latency keys gate "
                             "looser than throughput keys")
    parser.add_argument("--verbose", action="store_true",
                        help="also print in-threshold changes")
    args = parser.parse_args()

    base_files = {os.path.basename(p): p
                  for p in glob.glob(os.path.join(args.baseline, "*.json"))}
    cur_files = {os.path.basename(p): p
                 for p in glob.glob(os.path.join(args.current, "*.json"))}
    if not base_files:
        print(f"bench_diff: no *.json in baseline dir {args.baseline}",
              file=sys.stderr)
        return 2

    failures = 0
    report = []
    for name in sorted(set(base_files) | set(cur_files)):
        if name not in cur_files:
            report.append(f"  {name}: MISSING from current")
            failures += 1
            continue
        if name not in base_files:
            report.append(f"  {name}: NEW (not in baseline)")
            continue
        try:
            base = load_summary(base_files[name])
            cur = load_summary(cur_files[name])
        except (json.JSONDecodeError, OSError) as err:
            report.append(f"  {name}: unreadable ({err})")
            failures += 1
            continue
        try:
            failures += diff_file(name, base, cur, args, report)
        except Exception as err:  # noqa: BLE001 -- a malformed summary
            # (mixed value types, nulls, ...) must fail with a readable
            # per-file line, never a traceback that hides which file.
            report.append(f"  {name}: diff failed "
                          f"({type(err).__name__}: {err})")
            failures += 1

    compared = len(set(base_files) & set(cur_files))
    print(f"bench_diff: compared {compared} summaries "
          f"(threshold {args.threshold}%)")
    for line in report:
        print(line)
    if failures:
        print(f"bench_diff: {failures} metric(s) beyond threshold -- FAIL")
        return 1
    print("bench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
