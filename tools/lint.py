#!/usr/bin/env python3
"""probemon custom lint: project rules no generic tool checks.

Rules (suppress a line with ``NOLINT(<rule>)`` plus a reason comment):

  no-wall-clock      src/des + src/core must be deterministic: all time
                     comes from the Scheduler/Simulation clock and all
                     randomness from util::Rng. Forbids rand()/srand(),
                     time(), clock(), gettimeofday and the std::chrono
                     clocks. (A DES that reads the wall clock is not
                     reproducible; the repo's determinism tests diff
                     whole runs bit-for-bit.) Also enforced over
                     src/telemetry/history + src/telemetry/alerts:
                     sampling and alert evaluation are caller-clocked
                     (sample(t)/evaluate(t)) so DES runs replay
                     byte-identically; wall-clock driving belongs in
                     runtime::HistoryTicker. The one sanctioned
                     monotonic seam — src/des/wall_clock.* — is
                     allowlisted via WALL_CLOCK_EXEMPT below.
  no-naked-new       Ownership is expressed with std::make_unique /
                     std::make_shared / containers; a naked `new`
                     expression leaks on exception paths.
  counter-registry   telemetry metric primitives (telemetry::Counter /
                     Gauge / Histogram) must be obtained from
                     telemetry::Registry so they appear in /metrics and
                     exports; constructing them directly bypasses
                     naming, labels and exposition. (Registry internals
                     under src/telemetry are exempt.)
  pragma-once        Every header starts with `#pragma once` (after any
                     leading comment block) — the repo's include-guard
                     convention.
  no-std-function    src/des + src/core are the allocation-free hot
                     path: event callbacks are util::InlineFunction
                     (48-byte small-buffer capture, spill-counted), and
                     a std::function sneaking back in silently
                     reintroduces per-event heap allocation. Forbids
                     std::function and the <functional> include in
                     those trees, plus src/scenario (experiment setup
                     feeds callables into the hot path; the two
                     sanctioned factory/job types carry NOLINTs).
  no-hot-path-alloc  The probe-cycle hot path (probe_cycle.*,
                     device_base.cpp, control_point_base.cpp under
                     src/core) runs once per event at fleet scale and
                     must not heap-allocate: entity state lives in the
                     EntityArena slabs, messages in pooled queue nodes,
                     callbacks in InlineFunction buffers. Forbids
                     std::make_unique / std::make_shared / .reset(new
                     in those files (naked new is already global).
  annotated-locks    src/ synchronizes through the TSA-annotated
                     wrappers in src/util/thread_annotations.hpp
                     (util::Mutex / MutexLock / ReleasableMutexLock /
                     SharedMutex / CondVar) so a clang
                     -Wthread-safety build can check lock discipline
                     and the PROBEMON_CHECKED lock-order detector sees
                     every acquisition. Raw std::mutex /
                     std::shared_mutex / std::lock_guard /
                     std::unique_lock / std::condition_variable (and
                     their includes) are forbidden outside the wrapper
                     header; the sanctioned few (the wrappers' own
                     internals, the lock-order detector itself) carry
                     NOLINT with a reason.
  no-string-labels   src/des + src/core must not build metric series
                     from raw strings: the string-keyed telemetry API
                     (registry.counter("name", ...) / telemetry::Labels
                     literals) allocates and hashes strings per call.
                     Hot paths intern names/labels once at setup and
                     use the *_ids interned-id overloads
                     (ShardedRegistry::counter_ids et al.), holding the
                     returned metric reference.

Usage:
  tools/lint.py                  # lint src/ under the repo root
  tools/lint.py --root DIR       # lint DIR/src (used by the ci.sh
                                 # self-test on a scratch tree)
  tools/lint.py path/to/file...  # lint specific files
  tools/lint.py --list-rules
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

# --- rule definitions -------------------------------------------------------

# no-wall-clock: matched against code lines of files whose path contains
# a src/des or src/core component.
WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bs?rand\s*\("), "rand()/srand() (use util::Rng)"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time() (use the simulation clock)"),
    (re.compile(r"\bclock\s*\(\s*\)"), "clock() (use the simulation clock)"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday (use the simulation clock)"),
    (re.compile(r"\bclock_gettime\b"),
     "clock_gettime (use the simulation clock)"),
    (re.compile(r"std::chrono::(?:system|steady|high_resolution)_clock"),
     "std::chrono clock (use the simulation clock)"),
]

# no-wall-clock allowlist: the single sanctioned monotonic-time seam.
# src/des/wall_clock.* exists precisely to re-clock the DES timer wheel
# off CLOCK_MONOTONIC for the real-time reactor; everything else in the
# zone stays caller-clocked. Matched with endswith() so the ci.sh
# self-test can exercise it on a scratch tree.
WALL_CLOCK_EXEMPT = (
    "src/des/wall_clock.hpp",
    "src/des/wall_clock.cpp",
)

NAKED_NEW = re.compile(r"(?<![\w.>])new\s+(?:\(\s*std::nothrow\s*\)\s*)?[A-Za-z_]")
PLACEMENT_NEW = re.compile(r"new\s*\(")  # placement new is not ownership

COUNTER_DIRECT = re.compile(
    r"(?:telemetry::(?:Counter|Gauge|Histogram)\s+[A-Za-z_]"
    r"|make_unique<\s*telemetry::(?:Counter|Gauge|Histogram)\b"
    r"|new\s+telemetry::(?:Counter|Gauge|Histogram)\b)")

PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\b")

# no-std-function: matched in src/des + src/core (the allocation-free
# event path) and src/scenario (its callables flow into that path).
# util::InlineFunction is the sanctioned callable there.
STD_FUNCTION = re.compile(r"\bstd::function\s*<")
FUNCTIONAL_INCLUDE = re.compile(r'^\s*#\s*include\s*<functional>')

# no-hot-path-alloc: the per-event files under src/core that every probe
# cycle touches. Allocation belongs in construction/setup code; these
# files execute once per event across million-entity fleets.
HOT_PATH_FILES = {
    "probe_cycle.hpp", "probe_cycle.cpp",
    "device_base.cpp", "control_point_base.cpp",
}
HOT_ALLOC = re.compile(
    r"std::make_(?:unique|shared)\s*<|\.\s*reset\s*\(\s*new\b")

# no-string-labels: matched in src/des + src/core. String-keyed metric
# lookups (name + label strings hashed per call) and telemetry::Labels
# literals belong in setup code; hot paths use interned ids. Note
# strip_noise() empties string literals, so the call pattern matches
# the surviving opening quote of the metric-name argument.
STRING_LABELS = re.compile(
    r"\.\s*(?:counter|gauge|histogram)\s*\(\s*\""
    r"|\btelemetry::Labels\b")

# annotated-locks: raw standard synchronization primitives, and their
# headers, anywhere under src/ except the wrapper header itself.
RAW_LOCKS = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex"
    r"|recursive_timed_mutex|shared_timed_mutex"
    r"|condition_variable(?:_any)?"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b")
LOCK_INCLUDE = re.compile(
    r"^\s*#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>")
ANNOTATED_LOCKS_EXEMPT = "src/util/thread_annotations.hpp"

NOLINT = re.compile(r"NOLINT\(([^)]*)\)")

RULES = {
    "no-wall-clock":
        "no rand()/time()/chrono clocks in src/des + src/core + "
        "src/telemetry/{history,alerts} (src/des/wall_clock.* is the "
        "allowlisted monotonic seam)",
    "no-naked-new": "no naked new expressions (use make_unique/containers)",
    "counter-registry": "telemetry metrics must come from the Registry",
    "pragma-once": "headers start with #pragma once",
    "no-std-function":
        "no std::function / <functional> in src/des + src/core + "
        "src/scenario (use util::InlineFunction)",
    "no-hot-path-alloc":
        "no heap allocation in the src/core probe-cycle hot-path files "
        "(arena slabs / pools / InlineFunction instead)",
    "no-string-labels":
        "no string-keyed metric lookups in src/des + src/core "
        "(intern at setup, use the *_ids overloads)",
    "annotated-locks":
        "no raw std::mutex/lock_guard/unique_lock/condition_variable in "
        "src/ (use the util::Mutex wrappers from "
        "src/util/thread_annotations.hpp)",
}


def strip_noise(line: str) -> str:
    """Remove string/char literals and // comments so patterns match code."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            i += 1
            out.append(quote)
            continue
        out.append(c)
        i += 1
    return "".join(out)


def suppressed(line: str, rule: str) -> bool:
    m = NOLINT.search(line)
    return bool(m) and rule in m.group(1)


class Finding:
    def __init__(self, path: pathlib.Path, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def lint_file(path: pathlib.Path, rel: pathlib.Path) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [Finding(rel, 0, "io", str(err))]

    findings: list[Finding] = []
    parts = rel.parts
    deterministic_zone = "src" in parts and ("des" in parts or "core" in parts)
    # History/alerts take time as an argument (sample(t)/evaluate(t));
    # reading a clock there would silently fork DES and wall-clock
    # behavior. They are NOT in deterministic_zone: string-keyed
    # registry access is fine in query-path code.
    wallclock_zone = (deterministic_zone or (
        "telemetry" in parts and ("history" in parts or "alerts" in parts))
    ) and not any(rel.as_posix().endswith(e) for e in WALL_CLOCK_EXEMPT)
    callback_zone = deterministic_zone or (
        "src" in parts and "scenario" in parts)
    hot_path = "src" in parts and "core" in parts and rel.name in HOT_PATH_FILES
    registry_exempt = "telemetry" in parts
    lock_zone = "src" in parts and not rel.as_posix().endswith(
        ANNOTATED_LOCKS_EXEMPT)
    lines = text.splitlines()

    in_block_comment = False
    for lineno, raw in enumerate(lines, start=1):
        line = raw
        # Crude but adequate block-comment tracking (the repo style uses
        # // comments; /* */ appears only in rare inline spots).
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0:
            end = line.find("*/", start + 2)
            if end < 0:
                in_block_comment = True
                line = line[:start]
            else:
                line = line[:start] + line[end + 2:]
        code = strip_noise(line)
        if not code.strip():
            continue

        if lock_zone and not suppressed(raw, "annotated-locks"):
            if RAW_LOCKS.search(code) or LOCK_INCLUDE.match(code):
                findings.append(Finding(
                    rel, lineno, "annotated-locks",
                    "raw standard lock primitive — use the TSA-annotated "
                    "util::Mutex/MutexLock/CondVar wrappers "
                    "(src/util/thread_annotations.hpp) so clang "
                    "-Wthread-safety and the lock-order detector see it"))

        if callback_zone and not suppressed(raw, "no-std-function"):
            if STD_FUNCTION.search(code) or FUNCTIONAL_INCLUDE.match(code):
                findings.append(Finding(
                    rel, lineno, "no-std-function",
                    "std::function allocates per capture — use "
                    "util::InlineFunction on the des/core/scenario "
                    "event path"))

        if hot_path and not suppressed(raw, "no-hot-path-alloc"):
            if HOT_ALLOC.search(code):
                findings.append(Finding(
                    rel, lineno, "no-hot-path-alloc",
                    "heap allocation in a probe-cycle hot-path file — "
                    "use the EntityArena slabs, pooled queue nodes, or "
                    "InlineFunction buffers"))

        if deterministic_zone and not suppressed(raw, "no-string-labels"):
            if STRING_LABELS.search(code):
                findings.append(Finding(
                    rel, lineno, "no-string-labels",
                    "string-keyed metric construction on the DES hot "
                    "path — intern names/labels at setup and use the "
                    "*_ids interned-id API"))

        if wallclock_zone and not suppressed(raw, "no-wall-clock"):
            for pattern, what in WALL_CLOCK_PATTERNS:
                if pattern.search(code):
                    findings.append(Finding(
                        rel, lineno, "no-wall-clock",
                        f"{what} — this tree must stay deterministic "
                        "(caller-supplied time only)"))

        if (NAKED_NEW.search(code) and not PLACEMENT_NEW.search(code)
                and not suppressed(raw, "no-naked-new")):
            findings.append(Finding(
                rel, lineno, "no-naked-new",
                "naked new expression (use std::make_unique or a container)"))

        if (not registry_exempt and COUNTER_DIRECT.search(code)
                and not suppressed(raw, "counter-registry")):
            findings.append(Finding(
                rel, lineno, "counter-registry",
                "construct telemetry metrics via telemetry::Registry "
                "(counter()/gauge()/histogram()) so they are exported"))

    if rel.suffix in (".hpp", ".h") and not suppressed(lines[0] if lines else "",
                                                       "pragma-once"):
        for raw in lines:
            stripped = raw.strip()
            if not stripped or stripped.startswith("//"):
                continue
            if PRAGMA_ONCE.match(raw):
                break
            findings.append(Finding(
                rel, 1, "pragma-once",
                "header does not start with #pragma once"))
            break

    return findings


def collect_files(root: pathlib.Path, paths: list[str]) -> list[pathlib.Path]:
    if paths:
        return [pathlib.Path(p).resolve() for p in paths]
    src = root / "src"
    if not src.is_dir():
        print(f"lint.py: no src/ under {root}", file=sys.stderr)
        sys.exit(2)
    return sorted(p for p in src.rglob("*")
                  if p.suffix in (".cpp", ".hpp", ".h") and p.is_file())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="tree to lint (default: repo root)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--json", type=pathlib.Path, metavar="FILE",
                        help="additionally write findings as JSON")
    parser.add_argument("paths", nargs="*",
                        help="specific files (default: <root>/src)")
    args = parser.parse_args()

    if args.list_rules:
        for rule, doc in RULES.items():
            print(f"{rule:18} {doc}")
        return 0

    root = args.root.resolve()
    findings: list[Finding] = []
    files = collect_files(root, args.paths)
    for path in files:
        try:
            rel = path.relative_to(root)
        except ValueError:
            rel = path
        findings.extend(lint_file(path, rel))

    for finding in findings:
        print(finding)
    if args.json:
        args.json.write_text(json.dumps({
            "files_scanned": len(files),
            "findings": [
                {"path": str(f.path), "line": f.line, "rule": f.rule,
                 "message": f.message}
                for f in findings
            ],
        }, indent=2) + "\n", encoding="utf-8")
    print(f"lint.py: {len(findings)} finding(s) in {len(files)} file(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
