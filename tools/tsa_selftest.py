#!/usr/bin/env python3
"""Thread-safety-annotation self-test: prove the annotations still bite.

A `-Wthread-safety` clang build passing proves nothing if the
annotations have quietly rotted away (a deleted GUARDED_BY produces no
warning anywhere). This harness demonstrates, per annotation on
telemetry::Registry and runtime::MetricsCollector, that the annotation
is *load-bearing*:

  phase A  for every guarded field / REQUIRES method in the manifest,
           compile a tiny probe TU that misuses it (reads the field /
           calls the method without the lock). Each probe must FAIL
           with a thread-safety diagnostic.
  phase B  recompile the same probe with -DPROBEMON_TSA_DISABLED (all
           macros expand to nothing). Each probe must now COMPILE —
           proving phase A's failure came from the annotation, not from
           an unrelated error in the probe.
  phase C  copy the header into a shadow include dir with that one
           annotation stripped, recompile the probe against it. The
           probe must COMPILE — i.e. removing any single annotation
           makes the enforcement disappear, so a build that still
           passes -Werror=thread-safety genuinely checked it.

The probes reach private members through the PROBEMON_TSA_SELFTEST_HOOK
friend declaration (src/util/thread_annotations.hpp), active only under
-DPROBEMON_TSA_SELFTEST=1.

The manifest below must cover every PROBEMON_GUARDED_BY / REQUIRES in
the two headers; the harness counts the annotations in the source and
fails with "unprobed annotation" if someone adds a guarded field
without extending the manifest.

Usage:
  tools/tsa_selftest.py [--clang clang++] [--root DIR] [--json FILE]
Exit status: 0 all probes behaved, 1 a probe misbehaved, 2 usage error,
3 clang not found (callers treat as a skip).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import shutil
import subprocess
import sys
import tempfile

# --- manifest ---------------------------------------------------------------
# One entry per annotation: the header it lives in, the annotated name
# (field or method), the annotation kind, and a probe body that misuses
# it. Probe bodies run inside `struct TsaSelftestProbe` with
# `using namespace probemon;` in scope and are never executed — only
# compiled. `tsa_sink` forces a by-reference use of a guarded field,
# which -Wthread-safety-reference (part of -Wthread-safety) rejects for
# any field type.

REGISTRY = "src/telemetry/registry.hpp"
COLLECTOR = "src/runtime/collector.hpp"

PROBE_PRELUDE = {
    REGISTRY: "#include \"telemetry/registry.hpp\"\n",
    COLLECTOR: "#include \"runtime/collector.hpp\"\n",
}

MANIFEST = [
    # --- telemetry::Registry ---
    (REGISTRY, "entries_", "guarded_by",
     "static void probe(telemetry::Registry& r) { tsa_sink(r.entries_); }"),
    (REGISTRY, "scrape_epoch_", "guarded_by",
     "static void probe(telemetry::Registry& r) {"
     " tsa_sink(r.scrape_epoch_); }"),
    (REGISTRY, "find_or_create", "requires",
     "static void probe(telemetry::Registry& r) {"
     " r.find_or_create(\"x\", \"\", {}, telemetry::MetricType::kCounter,"
     " false); }"),
    # --- runtime::MetricsCollector ---
    (COLLECTOR, "agents_", "guarded_by",
     "static void probe(runtime::MetricsCollector& c) {"
     " tsa_sink(c.agents_); }"),
    (COLLECTOR, "reports_", "guarded_by",
     "static void probe(runtime::MetricsCollector& c) {"
     " tsa_sink(c.reports_); }"),
    (COLLECTOR, "samples_", "guarded_by",
     "static void probe(runtime::MetricsCollector& c) {"
     " tsa_sink(c.samples_); }"),
    (COLLECTOR, "now_fn_", "guarded_by",
     "static void probe(runtime::MetricsCollector& c) {"
     " tsa_sink(c.now_fn_); }"),
    (COLLECTOR, "presence_by_agent_", "guarded_by",
     "static void probe(runtime::MetricsCollector& c) {"
     " tsa_sink(c.presence_by_agent_); }"),
    (COLLECTOR, "alert_engine_", "guarded_by",
     "static void probe(runtime::MetricsCollector& c) {"
     " tsa_sink(c.alert_engine_); }"),
    (COLLECTOR, "apply_sample", "requires",
     "static void probe(runtime::MetricsCollector& c,"
     " telemetry::Registry& view, const telemetry::Sample& s) {"
     " c.apply_sample(view, s, \"a\"); }"),
    (COLLECTOR, "remove_sample", "requires",
     "static void probe(runtime::MetricsCollector& c,"
     " telemetry::Registry& view, const telemetry::Sample& s) {"
     " c.remove_sample(view, s, \"a\"); }"),
    (COLLECTOR, "observe_push", "requires",
     "static void probe(runtime::MetricsCollector& c) {"
     " c.observe_push(\"a\", 1.0); }"),
    (COLLECTOR, "export_presence", "requires",
     "static void probe(runtime::MetricsCollector& c,"
     " const runtime::MetricsCollector::Presence& p) {"
     " c.export_presence(\"a\", p); }"),
]

ANNOTATION = re.compile(r"PROBEMON_(GUARDED_BY|REQUIRES)\(")


def probe_source(header: str, body: str) -> str:
    return (
        PROBE_PRELUDE[header]
        + "namespace probemon {\n"
        + "template <class T> void tsa_sink(const T&);\n"
        + "struct TsaSelftestProbe {\n"
        + body + "\n"
        + "};\n"
        + "}  // namespace probemon\n"
    )


def strip_annotation(text: str, name: str, kind: str) -> str | None:
    """Remove the one annotation attached to `name`; None if not found."""
    if kind == "guarded_by":
        pattern = re.compile(
            r"(\b" + re.escape(name) + r")\s+PROBEMON_GUARDED_BY\(\s*\w+\s*\)")
    else:  # requires: the annotation trails the declaration's param list
        pattern = re.compile(
            r"(\b" + re.escape(name) + r"\s*\([^;{]*?\))"
            r"\s*PROBEMON_REQUIRES\(\s*\w+\s*\)", re.S)
    stripped, n = pattern.subn(r"\1", text, count=1)
    return stripped if n == 1 else None


def compile_probe(clang: str, root: pathlib.Path, source: str,
                  extra_flags: list[str],
                  include_dirs: list[pathlib.Path]) -> tuple[bool, str]:
    with tempfile.NamedTemporaryFile("w", suffix=".cpp", delete=False) as f:
        f.write(source)
        tu = f.name
    try:
        cmd = [clang, "-std=c++20", "-fsyntax-only",
               "-Wthread-safety", "-Werror=thread-safety",
               "-DPROBEMON_TSA_SELFTEST=1"]
        for inc in include_dirs:
            cmd += ["-I", str(inc)]
        cmd += extra_flags + [tu]
        proc = subprocess.run(cmd, cwd=root, capture_output=True, text=True)
        return proc.returncode == 0, proc.stderr
    finally:
        os.unlink(tu)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clang", default=os.environ.get("CLANG_CXX",
                                                          "clang++"))
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent)
    parser.add_argument("--json", type=pathlib.Path, metavar="FILE")
    args = parser.parse_args()

    root = args.root.resolve()
    clang = shutil.which(args.clang)
    if clang is None:
        print(f"tsa_selftest.py: '{args.clang}' not found — the "
              "thread-safety self-test needs clang (install it or point "
              "CLANG_CXX/--clang at one)", file=sys.stderr)
        return 3

    src = root / "src"
    failures: list[str] = []
    results = []

    # Coverage: every annotation in the two headers must be in the
    # manifest, or the strip phase silently stops guarding new fields.
    for header in (REGISTRY, COLLECTOR):
        text = (root / header).read_text(encoding="utf-8")
        in_source = len(ANNOTATION.findall(text))
        in_manifest = sum(1 for h, *_ in MANIFEST if h == header)
        if in_source != in_manifest:
            failures.append(
                f"{header}: {in_source} GUARDED_BY/REQUIRES annotations in "
                f"the source but {in_manifest} probes in the manifest — "
                "add a probe for the new annotation")

    for header, name, kind, body in MANIFEST:
        source = probe_source(header, body)
        tag = f"{header}:{name}"

        ok_a, err_a = compile_probe(clang, root, source, [], [src])
        if ok_a:
            failures.append(f"{tag}: probe compiled with annotations ON — "
                            f"the {kind} annotation is not enforced")
        elif "thread-safety" not in err_a and "thread safety" not in err_a \
                and "requires holding" not in err_a:
            failures.append(f"{tag}: probe failed for a non-thread-safety "
                            f"reason:\n{err_a}")

        ok_b, err_b = compile_probe(clang, root, source,
                                    ["-DPROBEMON_TSA_DISABLED=1"], [src])
        if not ok_b:
            failures.append(f"{tag}: probe is broken — it does not compile "
                            f"even with annotations disabled:\n{err_b}")

        ok_c = None
        if ok_b:
            header_text = (root / header).read_text(encoding="utf-8")
            stripped = strip_annotation(header_text, name, kind)
            if stripped is None:
                failures.append(f"{tag}: could not locate the {kind} "
                                "annotation to strip (declaration moved?)")
            else:
                with tempfile.TemporaryDirectory() as shadow:
                    shadow_path = pathlib.Path(shadow) / \
                        pathlib.Path(header).relative_to("src")
                    shadow_path.parent.mkdir(parents=True, exist_ok=True)
                    shadow_path.write_text(stripped, encoding="utf-8")
                    ok_c, err_c = compile_probe(
                        clang, root, source, [],
                        [pathlib.Path(shadow), src])
                if not ok_c:
                    failures.append(
                        f"{tag}: probe still rejected after stripping the "
                        f"annotation — strip/probe mismatch:\n{err_c}")

        results.append({"header": header, "name": name, "kind": kind,
                        "enforced": not ok_a, "probe_valid": ok_b,
                        "strip_flips": bool(ok_c)})
        status = "OK" if not ok_a and ok_b and ok_c else "FAIL"
        print(f"  {status}  {tag} ({kind})")

    if args.json:
        args.json.write_text(json.dumps({
            "clang": clang,
            "probes": results,
            "failures": failures,
        }, indent=2) + "\n", encoding="utf-8")

    for failure in failures:
        print(f"tsa_selftest.py: {failure}", file=sys.stderr)
    print(f"tsa_selftest.py: {len(MANIFEST)} probes, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
