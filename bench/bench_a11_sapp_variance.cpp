// A11 — quantifying the paper's SAPP variance and starvation-trend
// observations (section 3 discusses them qualitatively):
//
//   * "some CPs have a high variance in their computed delays, whereas
//     others have only minimal variation. The most extreme case is a CP
//     with a mean delay of 8 and a variance of about 13.5."
//   * "one CP is probing less and less frequent" — a negative trend of
//     the frequency series.
//
// We report, per CP: delay mean/variance, frequency-trend slope over
// the transient (via OLS), and the delay series' decorrelation lag.
// --replications=N fans N independently-seeded replications over the
// SweepRunner (--threads) and aggregates the headline numbers; the
// default (1) reproduces the single-run report exactly.
#include <algorithm>
#include <iostream>
#include <vector>

#include "experiment_common.hpp"
#include "scenario/experiment.hpp"
#include "scenario/sweep.hpp"
#include "stats/autocorr.hpp"
#include "stats/regression.hpp"
#include "trace/table.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

using namespace probemon;

namespace {

struct CpRow {
  int index = 0;
  double delay_mean = 0;
  double delay_var = 0;
  double slope = 0;
  std::uint64_t decorrelation_lag = 0;
  bool starved = false;
};

struct Replication {
  double min_var = 1e18;
  double max_var = 0;
  int starving_trends = 0;
  std::vector<CpRow> rows;
};

Replication run_replication(std::uint64_t seed, double duration,
                            std::uint64_t k) {
  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kSapp;
  config.seed = seed;
  config.initial_cps = static_cast<std::size_t>(k);

  scenario::Experiment exp(config);
  exp.run_until(duration);
  exp.finish();

  Replication result;
  int index = 0;
  for (net::NodeId id : exp.initial_cp_ids()) {
    ++index;
    const auto* m = exp.metrics().cp(id);
    if (!m || m->delay_series.empty()) continue;

    stats::Welford delays;
    std::vector<double> delay_values;
    stats::LinearFit freq_trend;
    for (const auto& s : m->delay_series.samples()) {
      delays.add(s.value);
      delay_values.push_back(s.value);
      // Trend of 1/delay over the first half (the transient where
      // starvation develops).
      if (s.t < duration / 2 && s.value > 0) {
        freq_trend.add(s.t, 1.0 / s.value);
      }
    }
    result.min_var = std::min(result.min_var, delays.variance());
    result.max_var = std::max(result.max_var, delays.variance());
    const double slope = freq_trend.slope();
    const bool starved = delays.max() >= 9.9 && m->last_delay >= 9.9;
    if (starved && slope < 0) ++result.starving_trends;
    CpRow row;
    row.index = index;
    row.delay_mean = delays.mean();
    row.delay_var = delays.variance();
    row.slope = slope;
    row.decorrelation_lag = stats::decorrelation_lag(delay_values, 50);
    row.starved = starved;
    result.rows.push_back(row);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto seed = cli.get<std::uint64_t>("seed", 42);
  const double duration = cli.get<double>("duration", 20000.0);
  const auto k = cli.get<std::uint64_t>("cps", 20);
  const auto replications = cli.get<std::uint64_t>("replications", 1);
  const auto threads = cli.get<std::uint64_t>("threads", 0);
  cli.finish("A11: SAPP per-CP delay variance and starvation trends");

  benchutil::print_header(
      "A11", "SAPP delay variance and starvation-trend analysis (section 3)",
      "delay variance is wildly heterogeneous across CPs (paper's extreme "
      "case: mean 8, variance 13.5); starving CPs show a negative "
      "frequency trend that never turns around");

  // Replication r uses seed+r; results are collected in replication
  // order, so the output is identical for any --threads value.
  scenario::SweepRunner runner(static_cast<unsigned>(threads));
  const std::vector<Replication> reps = runner.map<Replication>(
      std::max<std::uint64_t>(replications, 1),
      [&](std::size_t job, scenario::SweepWorkerContext&) {
        return run_replication(seed + job, duration, k);
      });
  const Replication& base = reps.front();

  trace::Table table({"CP", "delay mean", "delay var",
                      "freq slope (1/s^2, first half)", "decorrelation lag",
                      "verdict"});
  for (const CpRow& row : base.rows) {
    table.row()
        .cell("cp_" + std::to_string(row.index))
        .cell(row.delay_mean, 3)
        .cell(row.delay_var, 3)
        .cell(row.slope * 1e3, 4)  // milli-units for readability
        .cell(row.decorrelation_lag)
        .cell(row.starved ? "starved" : "active");
  }
  table.print(std::cout);

  trace::Table expect({"check", "paper", "measured"});
  expect.row()
      .cell("variance heterogeneity (max/min)")
      .cell("extreme (13.5 vs ~0)")
      .cell(base.max_var < 1e-12
                ? std::string("n/a")
                : util::format_double(base.max_var, 3) + " / " +
                      util::format_double(base.min_var, 6));
  expect.row()
      .cell("starved CPs with negative freq trend")
      .cell("all of them (\"less and less frequent\")")
      .cell(std::to_string(base.starving_trends));
  expect.print(std::cout);
  std::cout << "\n(freq slope column is scaled by 1e3; a starving CP's "
               "frequency decays, so its slope is negative.)\n";

  benchutil::JsonSummary summary_json("bench_a11_sapp_variance");
  summary_json.set("cps", k);
  summary_json.set("duration_s", duration);
  summary_json.set("min_delay_variance", base.min_var);
  summary_json.set("max_delay_variance", base.max_var);
  summary_json.set("starved_cps_with_negative_trend",
                   static_cast<std::uint64_t>(base.starving_trends));
  if (reps.size() > 1) {
    stats::Welford max_vars;
    std::uint64_t starving_total = 0;
    for (const Replication& rep : reps) {
      max_vars.add(rep.max_var);
      starving_total += static_cast<std::uint64_t>(rep.starving_trends);
    }
    std::cout << "\nAcross " << reps.size() << " replications (seeds " << seed
              << ".." << seed + reps.size() - 1
              << "): max delay variance mean = "
              << util::format_double(max_vars.mean(), 3) << " (range "
              << util::format_double(max_vars.min(), 3) << " - "
              << util::format_double(max_vars.max(), 3)
              << "), starving CPs total = " << starving_total << ".\n";
    summary_json.set("replications", static_cast<std::uint64_t>(reps.size()));
    summary_json.set("max_delay_variance_mean", max_vars.mean());
    summary_json.set("starved_cps_total", starving_total);
  }

  benchutil::print_footer();
  return 0;
}
