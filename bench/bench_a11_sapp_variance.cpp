// A11 — quantifying the paper's SAPP variance and starvation-trend
// observations (section 3 discusses them qualitatively):
//
//   * "some CPs have a high variance in their computed delays, whereas
//     others have only minimal variation. The most extreme case is a CP
//     with a mean delay of 8 and a variance of about 13.5."
//   * "one CP is probing less and less frequent" — a negative trend of
//     the frequency series.
//
// We report, per CP: delay mean/variance, frequency-trend slope over
// the transient (via OLS), and the delay series' decorrelation lag.
#include <algorithm>
#include <iostream>

#include "experiment_common.hpp"
#include "scenario/experiment.hpp"
#include "stats/autocorr.hpp"
#include "stats/regression.hpp"
#include "trace/table.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

using namespace probemon;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto seed = cli.get<std::uint64_t>("seed", 42);
  const double duration = cli.get<double>("duration", 20000.0);
  const auto k = cli.get<std::uint64_t>("cps", 20);
  cli.finish("A11: SAPP per-CP delay variance and starvation trends");

  benchutil::print_header(
      "A11", "SAPP delay variance and starvation-trend analysis (section 3)",
      "delay variance is wildly heterogeneous across CPs (paper's extreme "
      "case: mean 8, variance 13.5); starving CPs show a negative "
      "frequency trend that never turns around");

  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kSapp;
  config.seed = seed;
  config.initial_cps = static_cast<std::size_t>(k);

  scenario::Experiment exp(config);
  exp.run_until(duration);
  exp.finish();

  trace::Table table({"CP", "delay mean", "delay var",
                      "freq slope (1/s^2, first half)", "decorrelation lag",
                      "verdict"});
  double min_var = 1e18, max_var = 0;
  int starving_trends = 0;
  int index = 0;
  for (net::NodeId id : exp.initial_cp_ids()) {
    ++index;
    const auto* m = exp.metrics().cp(id);
    if (!m || m->delay_series.empty()) continue;

    stats::Welford delays;
    std::vector<double> delay_values;
    stats::LinearFit freq_trend;
    for (const auto& s : m->delay_series.samples()) {
      delays.add(s.value);
      delay_values.push_back(s.value);
      // Trend of 1/delay over the first half (the transient where
      // starvation develops).
      if (s.t < duration / 2 && s.value > 0) {
        freq_trend.add(s.t, 1.0 / s.value);
      }
    }
    min_var = std::min(min_var, delays.variance());
    max_var = std::max(max_var, delays.variance());
    const double slope = freq_trend.slope();
    const bool starved = delays.max() >= 9.9 && m->last_delay >= 9.9;
    if (starved && slope < 0) ++starving_trends;
    table.row()
        .cell("cp_" + std::to_string(index))
        .cell(delays.mean(), 3)
        .cell(delays.variance(), 3)
        .cell(slope * 1e3, 4)  // milli-units for readability
        .cell(static_cast<std::uint64_t>(
            stats::decorrelation_lag(delay_values, 50)))
        .cell(starved ? "starved" : "active");
  }
  table.print(std::cout);

  trace::Table expect({"check", "paper", "measured"});
  expect.row()
      .cell("variance heterogeneity (max/min)")
      .cell("extreme (13.5 vs ~0)")
      .cell(max_var < 1e-12 ? std::string("n/a")
                            : util::format_double(max_var, 3) + " / " +
                                  util::format_double(min_var, 6));
  expect.row()
      .cell("starved CPs with negative freq trend")
      .cell("all of them (\"less and less frequent\")")
      .cell(std::to_string(starving_trends));
  expect.print(std::cout);
  std::cout << "\n(freq slope column is scaled by 1e3; a starving CP's "
               "frequency decays, so its slope is negative.)\n";

  benchutil::JsonSummary summary_json("bench_a11_sapp_variance");
  summary_json.set("cps", static_cast<std::uint64_t>(k));
  summary_json.set("duration_s", duration);
  summary_json.set("min_delay_variance", min_var);
  summary_json.set("max_delay_variance", max_var);
  summary_json.set("starved_cps_with_negative_trend",
                   static_cast<std::uint64_t>(starving_trends));

  benchutil::print_footer();
  return 0;
}
