// A10 — extension: false alarms under transient network outages.
//
// The paper's probe protocols declare a device absent after one
// unanswered cycle (4 probes, ~85 ms). That makes detection fast — the
// intro's "order of one second" — but any network outage longer than a
// probe cycle is indistinguishable from a crash. This bench quantifies
// the classic failure-detector completeness/accuracy trade-off the
// paper inherits: fraction of CPs that falsely declare a *present*
// device absent, as a function of outage duration.
#include <iostream>

#include "experiment_common.hpp"
#include "scenario/experiment.hpp"
#include "trace/table.hpp"
#include "util/cli.hpp"

using namespace probemon;

namespace {

struct Outcome {
  double false_alarm_fraction;  ///< CPs declaring absence during outage
  double mean_alarm_time;       ///< after outage start (s); -1 if none
};

Outcome run(scenario::Protocol protocol, double outage, std::uint64_t seed) {
  constexpr double kOutageStart = 300.0;
  constexpr std::size_t k = 12;
  scenario::ExperimentConfig config;
  config.protocol = protocol;
  config.seed = seed;
  config.initial_cps = k;
  config.metrics.record_delay_series = false;
  scenario::Experiment exp(config);
  if (outage > 0) {
    exp.network().schedule_outage(kOutageStart, kOutageStart + outage);
  }
  exp.run_until(kOutageStart + outage + 30.0);
  exp.finish();

  std::size_t alarms = 0;
  double total = 0;
  for (const auto& [id, m] : exp.metrics().per_cp()) {
    if (m.declared_absent_at) {
      ++alarms;
      total += *m.declared_absent_at - kOutageStart;
    }
  }
  return Outcome{static_cast<double>(alarms) / static_cast<double>(k),
                 alarms ? total / static_cast<double>(alarms) : -1.0};
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto seed = cli.get<std::uint64_t>("seed", 21);
  cli.finish("A10: false-alarm rate vs network outage duration");

  benchutil::print_header(
      "A10", "false alarms under transient network outages (extension)",
      "one unanswered probe cycle (~85 ms after the last scheduled probe) "
      "already means 'absent': outages longer than a CP's probing period "
      "+ 85 ms make every active CP raise a false alarm");

  benchutil::JsonSummary summary_json("bench_a10_false_alarms");
  trace::Table table(
      {"outage (s)", "protocol", "false-alarm fraction", "mean alarm t (s)"});
  for (double outage : {0.0, 0.05, 0.2, 0.5, 1.0, 3.0, 12.0}) {
    for (auto protocol :
         {scenario::Protocol::kSapp, scenario::Protocol::kDcpp}) {
      const Outcome o = run(protocol, outage, seed);
      table.row()
          .cell(outage, 2)
          .cell(scenario::to_string(protocol))
          .cell(o.false_alarm_fraction, 2)
          .cell(o.mean_alarm_time, 3);
      std::string tag = std::to_string(outage).substr(0, 4);
      for (char& c : tag) {
        if (c == '.') c = '_';
      }
      const std::string prefix =
          std::string(protocol == scenario::Protocol::kSapp ? "sapp" : "dcpp") +
          "_outage" + tag + "_";
      summary_json.set(prefix + "false_alarm_fraction",
                       o.false_alarm_fraction);
      summary_json.set(prefix + "mean_alarm_time_s", o.mean_alarm_time);
    }
  }
  table.print(std::cout);
  std::cout
      << "\nExpected: no alarms without an outage; DCPP (probing period "
         "max(k*0.1, 0.5) = 1.2 s at k = 12) rides out sub-second blips "
         "that catch only the CPs whose cycle fell inside the window, and "
         "alarms universally for outages past its period + 85 ms. SAPP's "
         "starved CPs (period 10 s) ride out even 3-s outages, its fast "
         "CP alarms within ~0.2 s -- unfairness shows up as wildly "
         "inconsistent failure verdicts across CPs.\n";
  benchutil::print_footer();
  return 0;
}
