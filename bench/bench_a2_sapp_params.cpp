// A2 — ablation: is SAPP's unfairness an artifact of the paper's
// parameter choice (alpha_inc = 2, alpha_dec = 3/2, beta = 3/2)?
//
// We sweep the adaptation constants around the paper's values and
// measure starvation and fairness at k = 10. The paper argues the
// problem is structural ("inherent fairness problem"), so no setting
// should rescue it.
#include <algorithm>
#include <iostream>
#include <iterator>

#include "experiment_common.hpp"
#include "scenario/experiment.hpp"
#include "trace/table.hpp"

using namespace probemon;

namespace {

struct Outcome {
  double jain;
  std::size_t starved;
  double load;
};

Outcome run(double alpha_inc, double alpha_dec, double beta,
            std::uint64_t seed) {
  constexpr double kDuration = 4000.0;
  constexpr double kWarmup = 1000.0;
  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kSapp;
  config.seed = seed;
  config.initial_cps = 10;
  config.sapp_cp.alpha_inc = alpha_inc;
  config.sapp_cp.alpha_dec = alpha_dec;
  config.sapp_cp.beta = beta;
  config.metrics.warmup = kWarmup;
  config.metrics.record_delay_series = false;
  config.metrics.load_window = 10.0;

  scenario::Experiment exp(config);
  exp.run_until(kDuration);
  exp.finish();

  std::size_t starved = 0;
  for (const double d : exp.metrics().mean_delays()) {
    if (d > 8.0) ++starved;
  }
  const auto load =
      exp.metrics().device_load().series().summary(kWarmup, kDuration);
  return Outcome{exp.metrics().frequency_fairness(), starved, load.mean()};
}

}  // namespace

int main() {
  benchutil::print_header(
      "A2", "SAPP parameter sensitivity (alpha_inc, alpha_dec, beta), k=10",
      "the fairness problem is structural, not a tuning artifact: every "
      "combination leaves Jain well below 1 and/or starves CPs");

  struct Combo {
    double ai, ad, b;
    const char* note;
  };
  const Combo combos[] = {
      {2.0, 1.5, 1.5, "paper values"},
      {1.5, 1.5, 1.5, "gentler increase"},
      {3.0, 1.5, 1.5, "harsher increase"},
      {2.0, 1.25, 1.5, "gentler decrease"},
      {2.0, 2.0, 1.5, "harsher decrease"},
      {2.0, 1.5, 1.2, "tight band"},
      {2.0, 1.5, 2.0, "loose band"},
      {1.5, 1.25, 2.0, "all gentle"},
  };

  benchutil::JsonSummary summary_json("bench_a2_sapp_params");
  trace::Table table({"alpha_inc", "alpha_dec", "beta", "note", "Jain",
                      "#starved (of 10)", "device load"});
  std::uint64_t seed = 1000;
  double best_jain = 0.0;
  std::size_t min_starved = 10;
  for (const auto& c : combos) {
    const Outcome o = run(c.ai, c.ad, c.b, seed++);
    best_jain = std::max(best_jain, o.jain);
    min_starved = std::min(min_starved, o.starved);
    table.row()
        .cell(c.ai, 2)
        .cell(c.ad, 2)
        .cell(c.b, 2)
        .cell(c.note)
        .cell(o.jain, 3)
        .cell(static_cast<std::uint64_t>(o.starved))
        .cell(o.load, 2);
  }
  table.print(std::cout);
  summary_json.set("combos", static_cast<std::uint64_t>(std::size(combos)));
  summary_json.set("best_jain_across_combos", best_jain);
  summary_json.set("min_starved_across_combos",
                   static_cast<std::uint64_t>(min_starved));
  std::cout << "\nExpected: no combination reaches the fair Jain ~1.0 that "
               "DCPP achieves (see A1); device load stays near L_nom.\n";
  benchutil::print_footer();
  return 0;
}
