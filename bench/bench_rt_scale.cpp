// bench_rt_scale — event-loop runtime scale gate over real UDP.
//
// Not a paper artifact: this gates the async reactor (ROADMAP item 1)
// the way bench_scale gates the DES kernel. Per endpoint tier N it
// stands up N/2 AsyncDcppDevice + N/2 watched control points — N
// endpoints total — on ONE EventLoop thread and ONE AsyncUdpTransport
// socket (real kernel UDP on 127.0.0.1, recvmmsg/sendmmsg batched),
// then measures a wall-clock window:
//
//   * probes_per_s / cycles_per_s — aggregate service counters, the
//     "can one loop thread carry the fleet" throughput witness;
//   * p99_reply_latency_s — interpolated from the
//     probemon_reply_latency_seconds histogram bucket deltas, the
//     "is it keeping up or just queueing" witness;
//   * cycle_success_rate plus the transport drop/error counters —
//     probes are real datagrams, so a loop that falls behind shows up
//     as timeouts and socket-buffer drops, not silent slowdown.
//
// Unlike bench_scale this is wall-clock driven and NOT deterministic,
// so it takes no part in the CI determinism self-diff; scripts/ci.sh
// gates it one-sided against bench/baseline/bench_rt_scale.json
// (throughput and success rate may not drop, p99 may not blow up past
// its per-key --max-regress-pct override).
//
//   ./bench_rt_scale --endpoints=1000,10000,50000 --duration=2
//
// DCPP pacing: one CP per device, d_min=0.2 → the device grants ~d_min
// per cycle → ~5 cycles/s per CP → 25k CPs drive ~125k probes/s
// through the socket (each cycle is one probe + one reply datagram).
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "experiment_common.hpp"
#include "runtime/event_loop/async_device.hpp"
#include "runtime/event_loop/async_presence.hpp"
#include "runtime/event_loop/async_udp.hpp"
#include "runtime/event_loop/event_loop.hpp"
#include "telemetry/registry.hpp"
#include "util/cli.hpp"

using namespace probemon;

namespace {

std::vector<std::uint64_t> parse_count_list(const std::string& spec) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    out.push_back(std::stoull(spec.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

/// Linear-interpolated quantile from the delta between two bucket
/// snapshots of the same histogram. Returns the last finite bound when
/// the quantile lands in the +Inf bucket, 0 when the window is empty.
double quantile_from_delta(const telemetry::Histogram& hist,
                           const std::vector<std::uint64_t>& before,
                           double q) {
  const auto& bounds = hist.upper_bounds();
  std::uint64_t total = 0;
  std::vector<std::uint64_t> delta(hist.bucket_count());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = hist.bucket(i) - before[i];
    total += delta[i];
  }
  if (total == 0) return 0.0;
  const auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    cum += delta[i];
    if (cum < target) continue;
    if (i + 1 == delta.size()) return bounds.back();  // +Inf bucket
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double frac = delta[i] == 0
                            ? 1.0
                            : (static_cast<double>(target) -
                               static_cast<double>(cum - delta[i])) /
                                  static_cast<double>(delta[i]);
    return lower + frac * (bounds[i] - lower);
  }
  return bounds.back();
}

struct TierResult {
  std::uint64_t endpoints = 0;
  std::uint64_t watches = 0;
  std::uint64_t watches_absent = 0;
  double wall_s = 0.0;
  double probes_per_s = 0.0;
  double cycles_per_s = 0.0;
  double success_rate = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  std::uint64_t failed_cycles = 0;
  std::uint64_t drops = 0;
  std::uint64_t recv_errors = 0;
  std::uint64_t send_errors = 0;
};

TierResult run_tier(std::uint64_t endpoints, double warmup_s,
                    double duration_s, double ramp_rate, double d_min) {
  const auto pairs = static_cast<std::size_t>(endpoints / 2);

  telemetry::Registry registry;
  runtime::EventLoop loop;
  runtime::AsyncUdpTransport transport(loop);

  // One CP per device; the device self-caps at l_nom = 1/delta_min and
  // grants ~d_min per cycle, so the fleet rate is pairs / d_min.
  core::DcppDeviceConfig device_config;
  device_config.delta_min = d_min / 10.0;
  device_config.d_min = d_min;

  std::vector<std::unique_ptr<runtime::AsyncDcppDevice>> devices;
  devices.reserve(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    devices.push_back(
        std::make_unique<runtime::AsyncDcppDevice>(transport, device_config));
  }

  runtime::AsyncPresenceService::TelemetryOptions telemetry;
  telemetry.registry = &registry;
  runtime::AsyncPresenceService service(transport, telemetry);

  // Watch the fleet before start() (inline, no loop hops), spreading
  // first cycles with golden-ratio jitter over a ramp window sized so
  // the start burst never exceeds `ramp_rate` first-probes/s — a
  // synchronized burst past loop capacity stretches replies beyond
  // TOF, and the resulting false absences STOP those watches (paper
  // semantics), silently thinning the fleet being measured.
  const double ramp_window =
      std::max(device_config.d_min, static_cast<double>(pairs) / ramp_rate);
  constexpr double kGolden = 0.618033988749895;
  core::DcppCpConfig cp_config;
  for (std::size_t i = 0; i < pairs; ++i) {
    const double jitter =
        std::fmod(static_cast<double>(i + 1) * kGolden, 1.0) * ramp_window;
    service.watch_dcpp(devices[i]->id(), cp_config, jitter);
  }

  loop.start();
  std::this_thread::sleep_for(
      std::chrono::duration<double>(warmup_s + ramp_window));

  const telemetry::Histogram* latency = service.reply_latency();
  std::vector<std::uint64_t> buckets_before(latency->bucket_count());
  for (std::size_t i = 0; i < buckets_before.size(); ++i) {
    buckets_before[i] = latency->bucket(i);
  }
  const auto stats0 = service.stats();
  const std::uint64_t drops0 = transport.unroutable_count();
  const std::uint64_t recv_err0 = transport.recv_error_count();
  const std::uint64_t send_err0 = transport.send_error_count();
  const double t0 = loop.now();

  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));

  const auto stats1 = service.stats();
  const double t1 = loop.now();

  TierResult r;
  r.endpoints = endpoints;
  r.watches = service.watch_count();
  for (const auto& info : service.snapshotWatches()) {
    if (info.state == runtime::Presence::kAbsent) ++r.watches_absent;
  }
  r.wall_s = t1 - t0;
  const auto probes = stats1.probes_sent - stats0.probes_sent;
  const auto ok = stats1.cycles_succeeded - stats0.cycles_succeeded;
  const auto failed = stats1.cycles_failed - stats0.cycles_failed;
  r.probes_per_s = static_cast<double>(probes) / r.wall_s;
  r.cycles_per_s = static_cast<double>(ok + failed) / r.wall_s;
  r.success_rate = ok + failed == 0
                       ? 0.0
                       : static_cast<double>(ok) /
                             static_cast<double>(ok + failed);
  r.p50_s = quantile_from_delta(*latency, buckets_before, 0.50);
  r.p99_s = quantile_from_delta(*latency, buckets_before, 0.99);
  r.failed_cycles = failed;
  r.drops = transport.unroutable_count() - drops0;
  r.recv_errors = transport.recv_error_count() - recv_err0;
  r.send_errors = transport.send_error_count() - send_err0;

  // Stop before teardown: devices/transport destructors are
  // loop-confined and require a stopped loop when called from here.
  loop.stop();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto endpoints_spec =
      cli.get<std::string>("endpoints", "1000,10000,50000");
  const auto duration = cli.get<double>("duration", 2.0);
  const auto warmup = cli.get<double>("warmup", 0.5);
  const auto ramp_rate = cli.get<double>("ramp-rate", 50000.0);
  // Per-CP cycle period (the device's d_min). endpoints/2 CPs probe at
  // 1/d_min each; keep the aggregate under what one loop thread
  // sustains (~130k cycles/s here) or false absences thin the fleet.
  const auto d_min = cli.get<double>("d-min", 0.2);
  cli.finish("bench_rt_scale: async UDP runtime throughput and latency");

  benchutil::print_header(
      "bench_rt_scale", "event-loop runtime scale gate",
      "one reactor thread carries 10^5 endpoints over real UDP with "
      "bounded reply latency");
  std::printf("endpoints=%s duration=%.1fs warmup=%.1fs (DCPP, d_min=%.2f "
              "-> ~%.1f cycles/s per CP)\n\n",
              endpoints_spec.c_str(), duration, warmup, d_min, 1.0 / d_min);
  std::printf("%10s %8s %12s %12s %9s %10s %10s %6s\n", "endpoints",
              "watches", "probes/s", "cycles/s", "success", "p50(us)",
              "p99(us)", "drops");

  benchutil::JsonSummary summary("bench_rt_scale");
  for (std::uint64_t n : parse_count_list(endpoints_spec)) {
    const TierResult r = run_tier(n, warmup, duration, ramp_rate, d_min);
    std::printf("%10llu %8llu %12.0f %12.0f %8.3f%% %10.0f %10.0f %6llu\n",
                static_cast<unsigned long long>(r.endpoints),
                static_cast<unsigned long long>(r.watches), r.probes_per_s,
                r.cycles_per_s, 100.0 * r.success_rate, 1e6 * r.p50_s,
                1e6 * r.p99_s, static_cast<unsigned long long>(r.drops));

    std::string prefix = "s";
    prefix += std::to_string(n);
    prefix += '.';
    summary.set(prefix + "endpoints", r.endpoints);
    summary.set(prefix + "watches", r.watches);
    summary.set(prefix + "watches_absent", r.watches_absent);
    summary.set(prefix + "wall_s", r.wall_s);
    summary.set(prefix + "probes_per_s", r.probes_per_s);
    summary.set(prefix + "cycles_per_s", r.cycles_per_s);
    summary.set(prefix + "cycle_success_rate", r.success_rate);
    summary.set(prefix + "p50_reply_latency_s", r.p50_s);
    summary.set(prefix + "p99_reply_latency_s", r.p99_s);
    summary.set(prefix + "failed_cycles", r.failed_cycles);
    summary.set(prefix + "drops", r.drops);
    summary.set(prefix + "recv_errors", r.recv_errors);
    summary.set(prefix + "send_errors", r.send_errors);
  }

  summary.write();
  std::printf("\nwrote %s\n", summary.path().c_str());
  benchutil::print_footer();
  return 0;
}
