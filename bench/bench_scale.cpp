// bench_scale — million-entity DES scale-out gate.
//
// Not a paper artifact: this gates the engine itself at fleet scale.
// The paper studies one device and k CPs; here we instantiate G
// independent device/CP groups (section 3's "groups are independent")
// inside ONE simulation and ONE network and ask three questions per
// entity tier N:
//
//   1. Throughput: events/s executed by the hierarchical-timer-wheel
//      scheduler with N live entities (devices self-cap at L_nom, so
//      total event rate scales linearly with the fleet).
//   2. Footprint: marginal bytes per entity, measured as the VmHWM
//      delta across the tier divided by the entity increment. Tiers
//      run ascending in one process, so each tier's world outgrows the
//      previous peak and the delta attributes to the new entities
//      (the previous tier's freed allocation is reused, giving a small
//      undercount — acceptable for a one-sided "did the footprint
//      blow up" gate). Only the FIRST protocol in --protocols gets
//      bytes_per_entity keys: later protocols run in the shadow of the
//      first one's high-water mark, where the delta is meaningless.
//   3. Determinism: s<N>.events / s<N>.delivered are exact logical
//      counts (seeded DES), byte-identical run to run — the CI
//      determinism self-diff gates them at threshold 0.
//
//   ./bench_scale --entities=10000,100000 --protocols=sapp,dcpp \
//                 --duration=10 --cps=4 --seed=42
//
// Writes bench_out/bench_scale.json (keys <proto>.s<N>.*), gated
// one-sided in scripts/ci.sh: events_per_s may not drop, and
// bytes_per_entity may not rise, beyond the perf threshold.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/probemon.hpp"
#include "experiment_common.hpp"
#include "net/delay_model.hpp"
#include "net/loss_model.hpp"
#include "util/cli.hpp"

using namespace probemon;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<std::uint64_t> parse_count_list(const std::string& spec) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    out.push_back(std::stoull(spec.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

std::vector<std::string> parse_name_list(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    out.push_back(spec.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

struct TierResult {
  std::uint64_t entities = 0;   ///< actual instantiated entity count
  std::uint64_t events = 0;     ///< scheduler events executed (exact)
  std::uint64_t delivered = 0;  ///< network deliveries (exact)
  double wall_s = 0.0;
  double events_per_s = 0.0;
};

/// Build a fleet of `n` entities (groups of 1 device + `cps` CPs), run
/// `duration` virtual seconds, return the logical and wall-clock tallies.
TierResult run_tier(const std::string& proto, std::uint64_t n,
                    std::uint64_t cps, double duration, std::uint64_t seed) {
  des::Simulation sim(seed);
  net::NetworkConfig ncfg;
  // The paper's 20 000-slot buffer is sized for one group; a fleet needs
  // room for every group's in-flight probes.
  ncfg.buffer_capacity = std::max<std::size_t>(20'000, n);
  net::Network network(sim.scheduler(), sim.rng(), ncfg,
                       net::make_three_mode_delay(), net::make_no_loss());
  core::EntityArena arena;

  const std::uint64_t group_size = cps + 1;
  const std::uint64_t groups = std::max<std::uint64_t>(1, n / group_size);

  std::vector<std::unique_ptr<core::DeviceBase>> devices;
  std::vector<std::unique_ptr<core::ControlPointBase>> points;
  devices.reserve(groups);
  points.reserve(groups * cps);

  // A polite fleet start: SAPP CPs begin at a 1 s delay (well inside
  // [delta_min, delta_max]) instead of the paper's single-group 10 s,
  // so a 10-virtual-second tier reaches steady probing; the golden-ratio
  // jitter desynchronizes the initial burst deterministically.
  core::SappCpConfig sapp_cp;
  sapp_cp.initial_delay = 1.0;
  const core::SappDeviceConfig sapp_dev;
  const core::DcppDeviceConfig dcpp_dev;
  const core::DcppCpConfig dcpp_cp;
  constexpr double kGolden = 0.618033988749895;

  std::uint64_t cp_index = 0;
  for (std::uint64_t g = 0; g < groups; ++g) {
    if (proto == "sapp") {
      devices.push_back(std::make_unique<core::SappDevice>(
          sim, network, arena, sapp_dev));
    } else {
      devices.push_back(std::make_unique<core::DcppDevice>(
          sim, network, arena, dcpp_dev));
    }
    const net::NodeId device_id = devices.back()->id();
    for (std::uint64_t c = 0; c < cps; ++c, ++cp_index) {
      if (proto == "sapp") {
        points.push_back(std::make_unique<core::SappControlPoint>(
            sim, network, arena, device_id, sapp_cp));
      } else {
        points.push_back(std::make_unique<core::DcppControlPoint>(
            sim, network, arena, device_id, dcpp_cp));
      }
      const double jitter =
          std::fmod(static_cast<double>(cp_index + 1) * kGolden, 1.0);
      points.back()->start(jitter);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  sim.run_until(duration);
  TierResult r;
  r.wall_s = seconds_since(start);
  r.entities = groups * group_size;
  r.events = sim.scheduler().executed_count();
  r.delivered = network.counters().delivered;
  r.events_per_s =
      r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto entities_spec =
      cli.get<std::string>("entities", "10000,100000");
  const auto protocols_spec = cli.get<std::string>("protocols", "sapp,dcpp");
  const auto duration = cli.get<double>("duration", 10.0);
  const auto cps = cli.get<std::uint64_t>("cps", 4);
  const auto seed = cli.get<std::uint64_t>("seed", 42);
  cli.finish("bench_scale: fleet-scale DES throughput and footprint");

  benchutil::print_header(
      "bench_scale", "engine scale gate (not a paper figure)",
      "timer-wheel DES sustains fleet-scale event rates at flat "
      "bytes/entity");
  benchutil::JsonSummary summary("bench_scale");
  summary.set("duration_s", duration);
  summary.set("cps_per_device", cps);
  summary.set("seed", seed);

  // Ascending tiers make each VmHWM delta attributable to the new tier.
  auto tiers = parse_count_list(entities_spec);
  std::sort(tiers.begin(), tiers.end());

  bool first_protocol = true;
  for (const std::string& proto : parse_name_list(protocols_spec)) {
    if (proto != "sapp" && proto != "dcpp") {
      std::fprintf(stderr, "bench_scale: unknown protocol '%s'\n",
                   proto.c_str());
      return 2;
    }
    std::uint64_t prev_entities = 0;
    for (const std::uint64_t n : tiers) {
      const std::uint64_t rss_before = benchutil::peak_rss_bytes();
      const TierResult r = run_tier(proto, n, cps, duration, seed);
      const std::uint64_t rss_after = benchutil::peak_rss_bytes();

      const std::string prefix = proto + ".s" + std::to_string(n) + ".";
      summary.set(prefix + "entities", r.entities);
      summary.set(prefix + "events", r.events);
      summary.set(prefix + "delivered", r.delivered);
      summary.set(prefix + "wall_s", r.wall_s);
      summary.set(prefix + "events_per_s", r.events_per_s);

      double bytes_per_entity = 0.0;
      if (first_protocol && rss_after > rss_before &&
          r.entities > prev_entities) {
        bytes_per_entity =
            static_cast<double>(rss_after - rss_before) /
            static_cast<double>(r.entities - prev_entities);
        summary.set(prefix + "bytes_per_entity", bytes_per_entity);
      }
      prev_entities = r.entities;

      std::printf(
          "%s n=%-8llu events %12llu | delivered %11llu | %7.3f s wall "
          "| %10.3g ev/s | %8.1f B/entity\n",
          proto.c_str(), static_cast<unsigned long long>(r.entities),
          static_cast<unsigned long long>(r.events),
          static_cast<unsigned long long>(r.delivered), r.wall_s,
          r.events_per_s, bytes_per_entity);
    }
    first_protocol = false;
  }

  summary.write();
  std::printf("wrote %s\n", summary.path().c_str());
  benchutil::print_footer();
  return 0;
}
