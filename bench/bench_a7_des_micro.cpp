// A7 — micro-benchmarks of the simulation substrate (google-benchmark).
//
// Not a paper artifact: these quantify the DES kernel, RNG and network
// layers so regressions in the substrate are visible independently of
// protocol behaviour.
#include <benchmark/benchmark.h>

#include "benchmark_json.hpp"
#include "des/scheduler.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

using namespace probemon;

namespace {

void BM_SchedulerScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Scheduler sched;
    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sched.schedule_at(static_cast<double>(i % 100), [&fired] { ++fired; });
    }
    sched.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Scheduler sched;
    std::vector<des::EventId> ids;
    ids.reserve(n);
    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(sched.schedule_at(static_cast<double>(i),
                                      [&fired] { ++fired; }));
    }
    // Cancel every other event (the timer-rearm pattern of probe cycles).
    for (std::size_t i = 0; i < n; i += 2) sched.cancel(ids[i]);
    sched.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerCancelHeavy)->Arg(100000);

void BM_RngNextDouble(benchmark::State& state) {
  util::Rng rng(1);
  double acc = 0;
  for (auto _ : state) {
    acc += rng.next_double();
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngNextDouble);

void BM_ExponentialSample(benchmark::State& state) {
  util::Rng rng(2);
  util::Exponential exp_dist(0.05);
  double acc = 0;
  for (auto _ : state) {
    acc += exp_dist.sample(rng);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ExponentialSample);

class NullClient final : public net::INetworkClient {
 public:
  void on_message(const net::Message&) override { ++received; }
  std::uint64_t received = 0;
};

void BM_NetworkSendDeliver(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    des::Simulation sim(3);
    auto network = net::Network::make_paper_default(sim.scheduler(),
                                                    sim.rng());
    NullClient a, b;
    const auto ida = network->attach(a);
    const auto idb = network->attach(b);
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i) {
      net::Message m;
      m.kind = net::MessageKind::kProbe;
      m.from = ida;
      m.to = idb;
      network->send(m);
    }
    sim.run_all();
    benchmark::DoNotOptimize(b.received);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_NetworkSendDeliver);

}  // namespace

// Custom main (instead of benchmark_main) so results also land in
// bench_out/bench_a7_des_micro.json like every other bench.
int main(int argc, char** argv) {
  return benchutil::run_benchmarks_with_json(argc, argv,
                                             "bench_a7_des_micro");
}
