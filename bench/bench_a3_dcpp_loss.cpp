// A3 — ablation: DCPP under packet loss.
//
// Fig 5's scenario assumes no loss; the paper conjectures: "In case of
// packet losses, however, ... the load caused by new CPs will spread
// better over time ... the peaks in the device load ... will be a bit
// wider." We test with iid (Bernoulli) and bursty (Gilbert-Elliott)
// loss: peak load should drop and spikes should widen while the mean
// stays near L_nom.
#include <functional>
#include <iostream>

#include "experiment_common.hpp"
#include "net/loss_model.hpp"
#include "scenario/churn.hpp"
#include "scenario/experiment.hpp"
#include "trace/table.hpp"

using namespace probemon;

namespace {

struct Outcome {
  double mean, var, max;
  double spike_width;  ///< mean run length (s) of samples > 1.5 * L_nom
  double frac_over;    ///< fraction of samples > 1.5 * L_nom
};

Outcome run(std::function<net::LossModelPtr()> loss_factory,
            std::uint64_t seed) {
  constexpr double kDuration = 3000.0;
  constexpr double kWarmup = 200.0;
  constexpr double kThreshold = 15.0;  // 1.5 * L_nom

  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kDcpp;
  config.seed = seed;
  config.initial_cps = 20;
  config.loss_factory = std::move(loss_factory);
  config.join_jitter_max = 0.0;  // worst case, as in F5
  config.metrics.record_delay_series = false;
  config.metrics.load_window = 1.0;
  config.metrics.load_sample_every = 1.0;

  scenario::Experiment exp(config);
  exp.install_churn(
      std::make_unique<scenario::DynamicUniformChurn>(1, 60, 0.05));
  exp.run_until(kDuration);
  exp.finish();

  const auto& series = exp.metrics().device_load().series();
  const auto w = series.summary(kWarmup, kDuration);

  // Spike widths: runs of consecutive samples above the threshold.
  double total_over = 0;
  std::size_t runs = 0;
  bool in_run = false;
  std::size_t over = 0;
  for (const auto& s : series.samples()) {
    if (s.t < kWarmup) continue;
    if (s.value > kThreshold) {
      ++over;
      if (!in_run) {
        in_run = true;
        ++runs;
      }
      total_over += 1.0;  // 1 s per sample
    } else {
      in_run = false;
    }
  }
  const double width = runs ? total_over / static_cast<double>(runs) : 0.0;
  const double frac =
      static_cast<double>(over) / static_cast<double>(series.size());
  return Outcome{w.mean(), w.variance(), w.max(), width, frac};
}

}  // namespace

int main() {
  benchutil::print_header(
      "A3", "DCPP dynamic scenario under packet loss",
      "conjecture (section 5): loss spreads join bursts over time -- "
      "lower peaks, wider spikes, mean load still ~L_nom = 10");

  struct Case {
    const char* name;
    std::function<net::LossModelPtr()> factory;
  };
  const Case cases[] = {
      {"no loss (Fig 5)", [] { return net::make_no_loss(); }},
      {"Bernoulli 1%", [] { return net::make_bernoulli_loss(0.01); }},
      {"Bernoulli 5%", [] { return net::make_bernoulli_loss(0.05); }},
      {"Bernoulli 15%", [] { return net::make_bernoulli_loss(0.15); }},
      {"Gilbert-Elliott bursty (~5%)",
       [] { return net::make_gilbert_elliott_loss(0.02, 0.30, 0.001, 0.8); }},
  };

  benchutil::JsonSummary summary_json("bench_a3_dcpp_loss");
  const char* keys[] = {"no_loss", "bernoulli_1pct", "bernoulli_5pct",
                        "bernoulli_15pct", "gilbert_elliott"};
  trace::Table table({"loss model", "mean load", "load var", "max load",
                      "mean spike width (s)", "frac > 1.5*L_nom"});
  std::uint64_t seed = 55;  // same base seed as F5
  std::size_t case_index = 0;
  for (const auto& c : cases) {
    const Outcome o = run(c.factory, seed);
    table.row()
        .cell(c.name)
        .cell(o.mean, 2)
        .cell(o.var, 1)
        .cell(o.max, 1)
        .cell(o.spike_width, 2)
        .cell(o.frac_over, 4);
    const std::string prefix = std::string(keys[case_index++]) + "_";
    summary_json.set(prefix + "mean_load", o.mean);
    summary_json.set(prefix + "load_var", o.var);
    summary_json.set(prefix + "max_load", o.max);
    summary_json.set(prefix + "spike_width_s", o.spike_width);
  }
  table.print(std::cout);
  std::cout << "\nMeasured shape: the mean load stays pinned near L_nom "
               "regardless of loss -- DCPP's scheduling is loss-robust. "
               "The paper conjectured wider, lower spikes; at 1-s "
               "resolution the spike width barely moves, and the "
               "retransmissions triggered by lost probes instead add "
               "traffic on top of join bursts (variance and max grow "
               "mildly with the loss rate).\n";
  benchutil::print_footer();
  return 0;
}
