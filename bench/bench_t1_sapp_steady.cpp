// T1 — SAPP steady-state study (paper section 3, in-text numbers).
//
// Scenario: 1 device, 20 CPs continuously present, paper parameters
// (alpha_inc 2, alpha_dec 3/2, beta 3/2, L_ideal 1e6, L_nom 10
// [Delta 1e5], delta_min 0.02, delta_max 10, buffer 20 000, three-mode
// network delay). Batch-means estimation, CI 0.1 @ 0.95, as in MOBIUS.
//
// Paper reports: mean delay of almost all CPs ~10.0, two CPs ~0.4 (both
// far from the optimal k/L_nom = 2); high delay variance for some CPs
// (extreme case mean 8, variance ~13.5); device load near L_nom = 10
// with low variance; mean network buffer length ~0.004.
#include <algorithm>
#include <iostream>

#include "experiment_common.hpp"
#include "scenario/churn.hpp"
#include "scenario/experiment.hpp"
#include "stats/batch_means.hpp"
#include "trace/table.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

using namespace probemon;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const double kDuration = cli.get<double>("duration", 20000.0);
  const double kWarmup = cli.get<double>("warmup", 2000.0);
  const auto seed = cli.get<std::uint64_t>("seed", 42);
  const auto k = cli.get<std::uint64_t>("cps", 20);
  cli.finish("T1: SAPP steady state (paper section 3)");

  benchutil::print_header(
      "T1", "SAPP steady state, k = 20 CPs (section 3)",
      "most CPs starve near delta_max = 10 while a few probe ~25x faster; "
      "device load stays near L_nom = 10; mean buffer length ~0.004");

  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kSapp;
  config.seed = seed;
  config.initial_cps = static_cast<std::size_t>(k);
  config.metrics.warmup = kWarmup;
  config.metrics.record_delay_series = false;
  config.metrics.load_window = 10.0;  // smooth load estimate
  config.metrics.load_sample_every = 1.0;

  scenario::Experiment exp(config);
  exp.run_until(kDuration);
  exp.finish();

  const auto& metrics = exp.metrics();

  // Per-CP mean delays, as the paper discusses them.
  trace::Table cp_table({"CP", "mean delay (s)", "delay var", "mean 1/delay",
                         "cycles"});
  std::size_t starved = 0, fast = 0;
  int cp_index = 0;
  for (net::NodeId id : exp.initial_cp_ids()) {
    const auto* m = metrics.cp(id);
    ++cp_index;
    if (!m || m->delay_moments.empty()) continue;
    const double mean_delay = m->delay_moments.mean();
    if (mean_delay > 8.0) ++starved;
    if (mean_delay < 1.0) ++fast;
    cp_table.row()
        .cell("cp_" + util::pad_left(std::to_string(cp_index), 2))
        .cell(mean_delay, 3)
        .cell(m->delay_moments.variance(), 3)
        .cell(m->frequency_moments.mean(), 3)
        .cell(m->cycles_succeeded);
  }
  cp_table.print(std::cout);

  // Device-load batch means (CI 0.1 relative @ 95%, as in the paper).
  stats::BatchMeans load_bm(/*batch_size=*/100,
                            /*warmup=*/static_cast<std::uint64_t>(kWarmup));
  for (const auto& s : metrics.device_load().series().samples()) {
    if (s.t >= kWarmup) load_bm.add(s.value);
  }
  const auto load_ci = load_bm.interval(0.95);

  const double buffer_mean =
      exp.network().mean_buffer_occupancy(exp.sim().now());

  trace::Table summary({"metric", "paper", "measured"});
  summary.row().cell("optimal delay k/L_nom").cell("2.0").cell(
      static_cast<double>(k) / config.sapp_device.l_nom, 2);
  summary.row()
      .cell("#CPs starving (mean delay > 8)")
      .cell("~18 (\"almost all ... about 10.0\")")
      .cell(std::to_string(starved));
  summary.row()
      .cell("#CPs fast (mean delay < 1)")
      .cell("2 (\"delay of only 0.4\")")
      .cell(std::to_string(fast));
  summary.row()
      .cell("device load (probes/s)")
      .cell("~10 (near L_nom), low variance")
      .cell(util::format_fixed(load_ci.mean, 3) + " +/- " +
            util::format_fixed(load_ci.half_width, 3));
  summary.row()
      .cell("mean network buffer length")
      .cell("~0.004")
      .cell(buffer_mean, 5);
  summary.row()
      .cell("Jain fairness of CP frequencies")
      .cell("far below 1 (unfair)")
      .cell(metrics.frequency_fairness(), 3);
  summary.print(std::cout);

  std::cout << "\nbatches=" << load_bm.batch_count()
            << " lag1(batch means)=" << load_bm.lag1_autocorrelation()
            << " converged(rel 0.1)="
            << (load_bm.converged(0.1) ? "yes" : "no") << '\n';

  benchutil::JsonSummary summary_json("bench_t1_sapp_steady");
  summary_json.set("cps", static_cast<std::uint64_t>(k));
  summary_json.set("duration_s", kDuration);
  summary_json.set("starved_cps", static_cast<std::uint64_t>(starved));
  summary_json.set("fast_cps", static_cast<std::uint64_t>(fast));
  summary_json.set("device_load_mean", load_ci.mean);
  summary_json.set("device_load_ci_half_width", load_ci.half_width);
  summary_json.set("mean_buffer_length", buffer_mean);
  summary_json.set("frequency_fairness", metrics.frequency_fairness());
  summary_json.set("load_batches_converged", load_bm.converged(0.1));

  benchutil::print_footer();
  return 0;
}
