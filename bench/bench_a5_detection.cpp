// A5 — ablation: absence-detection latency, SAPP vs DCPP.
//
// The protocols' purpose: "the absence of nodes should be detected
// quickly (e.g., in the order of one second)". A CP detects absence one
// failed cycle after its last scheduled probe, i.e. within
// (inter-probe delay) + TOF + 3*TOS of the departure, so detection
// latency is bounded by the probing period plus 0.085 s. SAPP's starved
// CPs (delay ~10 s) therefore detect very late; DCPP's bound is
// max(k*delta_min, d_min) + 0.085.
#include <algorithm>
#include <iostream>

#include "experiment_common.hpp"
#include "scenario/experiment.hpp"
#include "stats/histogram.hpp"
#include "stats/welford.hpp"
#include "trace/table.hpp"

using namespace probemon;

namespace {

struct Outcome {
  double first;   ///< first CP to notice
  double mean;
  double max;     ///< last CP to notice
  std::size_t detectors;
};

Outcome run(scenario::Protocol protocol, std::size_t k, std::uint64_t seed,
            double settle, double depart_at, double duration) {
  scenario::ExperimentConfig config;
  config.protocol = protocol;
  config.seed = seed;
  config.initial_cps = k;
  config.metrics.warmup = settle;
  config.metrics.record_delay_series = false;

  scenario::Experiment exp(config);
  exp.schedule_device_departure(depart_at);
  exp.run_until(duration);
  exp.finish();

  const auto lat = exp.metrics().detection_latencies();
  Outcome o{0, 0, 0, lat.size()};
  if (!lat.empty()) {
    stats::Welford w;
    for (double l : lat) w.add(l);
    o.first = w.min();
    o.mean = w.mean();
    o.max = w.max();
  }
  return o;
}

}  // namespace

int main() {
  benchutil::print_header(
      "A5", "absence-detection latency, SAPP vs DCPP (k = 10)",
      "detection happens one failed cycle after the last probe; DCPP's "
      "latency is tightly bounded by max(k*delta_min, d_min) + TOF+3*TOS; "
      "SAPP's starved CPs (delay up to delta_max = 10 s) detect very late");

  constexpr std::size_t k = 10;
  constexpr double kDepart = 600.0;
  constexpr double kDuration = 650.0;

  trace::Table table({"protocol", "#detecting CPs", "first detection (s)",
                      "mean detection (s)", "last detection (s)",
                      "analytic bound (s)"});

  const Outcome sapp = run(scenario::Protocol::kSapp, k, 71, 100.0, kDepart,
                           kDuration);
  const Outcome dcpp = run(scenario::Protocol::kDcpp, k, 72, 100.0, kDepart,
                           kDuration);

  // Failed-cycle tail: TOF + 3 * TOS.
  const double tail = 0.022 + 3 * 0.021;
  table.row()
      .cell("SAPP")
      .cell(static_cast<std::uint64_t>(sapp.detectors))
      .cell(sapp.first, 3)
      .cell(sapp.mean, 3)
      .cell(sapp.max, 3)
      .cell("delta_max + 0.085 = 10.085");
  table.row()
      .cell("DCPP")
      .cell(static_cast<std::uint64_t>(dcpp.detectors))
      .cell(dcpp.first, 3)
      .cell(dcpp.mean, 3)
      .cell(dcpp.max, 3)
      .cell("max(k*0.1, 0.5) + 0.085 = " +
            std::to_string(std::max(static_cast<double>(k) * 0.1, 0.5) +
                           tail)
                .substr(0, 5));
  table.print(std::cout);

  std::cout << "\nExpected: every CP detects; DCPP's last detection well "
               "under its bound; SAPP's spread is much larger because "
               "starved CPs probe rarely.\n";

  benchutil::JsonSummary summary_json("bench_a5_detection");
  summary_json.set("cps", static_cast<std::uint64_t>(k));
  summary_json.set("sapp_detectors", static_cast<std::uint64_t>(sapp.detectors));
  summary_json.set("sapp_first_detection_s", sapp.first);
  summary_json.set("sapp_mean_detection_s", sapp.mean);
  summary_json.set("sapp_last_detection_s", sapp.max);
  summary_json.set("dcpp_detectors", static_cast<std::uint64_t>(dcpp.detectors));
  summary_json.set("dcpp_first_detection_s", dcpp.first);
  summary_json.set("dcpp_mean_detection_s", dcpp.mean);
  summary_json.set("dcpp_last_detection_s", dcpp.max);
  summary_json.set("dcpp_analytic_bound_s",
                   std::max(static_cast<double>(k) * 0.1, 0.5) + tail);

  benchutil::print_footer();
  return 0;
}
