// F4 — paper Figure 4: 20 CPs, then 18 leave simultaneously; the two
// remaining CPs over 20 000 s.
//
// Paper: "Whereas in a static scenario with just two CPs, their
// frequencies are equal, we see that in this dynamic scenario, there is
// neither a load balance between the CPs nor a low variance."
#include <iostream>

#include "experiment_common.hpp"
#include "scenario/churn.hpp"
#include "scenario/experiment.hpp"
#include "stats/series.hpp"
#include "trace/csv.hpp"
#include "trace/gnuplot.hpp"
#include "trace/table.hpp"

using namespace probemon;

namespace {

/// Frequency series of a CP from its recorded delay updates.
stats::TimeSeries to_frequency(const scenario::CpMetrics& m,
                               std::string name) {
  stats::TimeSeries f(std::move(name));
  for (const auto& s : m.delay_series.samples()) {
    if (s.value > 0) f.add(s.t, 1.0 / s.value);
  }
  return f;
}

}  // namespace

int main() {
  benchutil::print_header(
      "F4", "SAPP: 18 of 20 CPs leave at once (Fig 4)",
      "after the mass leave the two survivors do NOT converge to the "
      "balanced two-CP solution: unequal frequencies, high variance");

  constexpr double kLeaveAt = 2000.0;
  constexpr double kDuration = 20000.0;

  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kSapp;
  config.seed = 7;
  config.initial_cps = 20;

  scenario::Experiment exp(config);
  // Keep two designated survivors; remove 18 specific others so the
  // figure tracks the same two CPs throughout.
  const auto ids = exp.initial_cp_ids();
  exp.sim().at(kLeaveAt, [&exp, ids] {
    for (std::size_t i = 2; i < ids.size(); ++i) exp.remove_cp(ids[i]);
  });
  exp.run_until(kDuration);
  exp.finish();

  // Reference: a truly static 2-CP run, which the paper says is balanced.
  scenario::ExperimentConfig ref_config = config;
  ref_config.initial_cps = 2;
  ref_config.seed = 8;
  ref_config.metrics.warmup = 2000.0;
  scenario::Experiment ref(ref_config);
  ref.run_until(kDuration);
  ref.finish();

  trace::Table table({"CP", "mean freq after leave", "freq var after leave",
                      "mean delay after leave"});
  std::vector<double> survivor_freqs;
  for (std::size_t i = 0; i < 2; ++i) {
    const auto* m = exp.metrics().cp(ids[i]);
    auto f = to_frequency(*m, "cp_0" + std::to_string(i + 1));
    const auto after = f.summary(kLeaveAt + 500.0, kDuration);
    survivor_freqs.push_back(after.mean());
    stats::Welford delays;
    for (const auto& s : m->delay_series.samples()) {
      if (s.t >= kLeaveAt + 500.0) delays.add(s.value);
    }
    table.row()
        .cell(f.name())
        .cell(after.mean(), 3)
        .cell(after.variance(), 3)
        .cell(delays.mean(), 3);
  }
  table.print(std::cout);

  const double ratio =
      std::max(survivor_freqs[0], survivor_freqs[1]) /
      std::max(1e-9, std::min(survivor_freqs[0], survivor_freqs[1]));

  std::vector<double> ref_freqs = ref.metrics().mean_frequencies();
  const double ref_jain = stats::jain_fairness(ref_freqs);

  trace::Table expect({"check", "paper", "measured"});
  expect.row()
      .cell("survivors balanced?")
      .cell("no: \"neither a load balance ... nor a low variance\"")
      .cell("freq ratio " + std::to_string(ratio).substr(0, 5));
  expect.row()
      .cell("static 2-CP reference (paper: balanced)")
      .cell("Jain ~1.0")
      .cell("Jain " + std::to_string(ref_jain).substr(0, 5) +
            " (deviation, see EXPERIMENTS.md)");
  expect.print(std::cout);

  const std::string dir = benchutil::out_dir();
  auto f1 = to_frequency(*exp.metrics().cp(ids[0]), "cp_01").decimate(4000);
  auto f2 = to_frequency(*exp.metrics().cp(ids[1]), "cp_02").decimate(4000);
  std::vector<const stats::TimeSeries*> ptrs{&f1, &f2};
  trace::write_csv_aligned_file(dir + "/f4_sapp_leave.csv", ptrs, 0.0,
                                kDuration, 10.0);
  trace::GnuplotFigure fig;
  fig.title = "20 CPs, 18 CPs leave, 2 CPs left [Fig 4]";
  fig.ylabel = "1/delay (1/sec)";
  fig.yrange = "[0:14]";
  fig.series.push_back({dir + "/f4_sapp_leave.csv", 2, "cp_01"});
  fig.series.push_back({dir + "/f4_sapp_leave.csv", 3, "cp_02"});
  trace::write_gnuplot_file(dir + "/f4_sapp_leave.gp", fig,
                            dir + "/f4_sapp_leave.png");
  std::cout << "\ntraces: " << dir << "/f4_sapp_leave.csv (+ .gp)\n";

  benchutil::JsonSummary summary_json("bench_f4_sapp_leave");
  summary_json.set("leave_at_s", kLeaveAt);
  summary_json.set("duration_s", kDuration);
  summary_json.set("survivor1_mean_freq", survivor_freqs[0]);
  summary_json.set("survivor2_mean_freq", survivor_freqs[1]);
  summary_json.set("survivor_freq_ratio", ratio);
  summary_json.set("static_2cp_reference_jain", ref_jain);

  benchutil::print_footer();
  return 0;
}
