// V1 — substrate validation against closed-form queueing theory.
//
// The paper closes by arguing that its analysis chain is trustworthy
// because MODEST has a formal semantics, and warns that ad-hoc
// simulators "have been found to exhibit contradictory results even in
// simple case studies" [Cavin et al. 2002]. We cannot port MODEST's
// semantics, but we can do the next best thing: check the DES kernel,
// the RNG, and the statistics pipeline against models with exact
// analytic answers.
//
//   1. M/M/1 queue: mean number in system = rho / (1 - rho); mean wait
//      W = 1 / (mu - lambda) (by Little's law).
//   2. M/D/1 queue: mean wait in queue Wq = rho / (2 mu (1 - rho)) —
//      distinguishes service-time variance handling.
//   3. Batch-means CI coverage on a dependent (AR-like) stream.
//   4. The paper-default three-mode delay's analytic mean vs sampled.
#include <cmath>
#include <functional>
#include <iostream>
#include <vector>

#include "des/simulation.hpp"
#include "experiment_common.hpp"
#include "stats/batch_means.hpp"
#include "stats/time_weighted.hpp"
#include "stats/welford.hpp"
#include "net/delay_model.hpp"
#include "trace/table.hpp"
#include "util/cli.hpp"
#include "util/distributions.hpp"

using namespace probemon;

namespace {

struct QueueResult {
  double mean_in_system;
  double mean_wait;  // sojourn time
};

/// Simulate a single-server queue with Poisson arrivals (rate lambda)
/// and iid service times drawn from `service`.
QueueResult simulate_queue(double lambda, const util::Distribution& service,
                           double horizon, std::uint64_t seed) {
  des::Simulation sim(seed);
  auto arrivals_rng = sim.fork_rng("arrivals");
  auto service_rng = sim.fork_rng("service");

  std::vector<double> queue;  // arrival times of waiting customers
  bool busy = false;
  stats::TimeWeighted in_system;
  stats::Welford waits;
  std::size_t in_system_count = 0;
  in_system.set(0.0, 0.0);

  std::function<void()> start_service = [&] {
    if (queue.empty()) {
      busy = false;
      return;
    }
    busy = true;
    const double arrival_t = queue.front();
    queue.erase(queue.begin());
    const double s = service.sample(service_rng);
    sim.after(s, [&, arrival_t] {
      waits.add(sim.now() - arrival_t);
      --in_system_count;
      in_system.set(sim.now(), static_cast<double>(in_system_count));
      start_service();
    });
  };

  std::function<void()> arrive = [&] {
    ++in_system_count;
    in_system.set(sim.now(), static_cast<double>(in_system_count));
    queue.push_back(sim.now());
    if (!busy) start_service();
    const double dt = -std::log(arrivals_rng.next_double_open0()) / lambda;
    sim.after(dt, arrive);
  };
  sim.after(-std::log(arrivals_rng.next_double_open0()) / lambda, arrive);
  sim.run_until(horizon);
  return QueueResult{in_system.mean_until(horizon), waits.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const double horizon = cli.get<double>("horizon", 1000000.0);
  const auto seed = cli.get<std::uint64_t>("seed", 7);
  cli.finish("V1: validate the DES/RNG/stats substrate against queueing theory");

  benchutil::print_header(
      "V1", "substrate validation (not a paper artifact)",
      "the DSN'05 authors stress trustworthy simulation semantics; this "
      "binary checks our kernel against closed-form queueing results");

  benchutil::JsonSummary summary_json("bench_v1_substrate_validation");
  summary_json.set("horizon_s", horizon);
  trace::Table table({"check", "analytic", "simulated", "rel err"});

  {
    // M/M/1, lambda = 0.7, mu = 1.0.
    const double lambda = 0.7, mu = 1.0;
    util::Exponential service(mu);
    const auto r = simulate_queue(lambda, service, horizon, seed);
    const double rho = lambda / mu;
    const double l_analytic = rho / (1 - rho);
    const double w_analytic = 1.0 / (mu - lambda);
    table.row()
        .cell("M/M/1 mean in system L")
        .cell(l_analytic, 4)
        .cell(r.mean_in_system, 4)
        .cell(std::fabs(r.mean_in_system - l_analytic) / l_analytic, 4);
    table.row()
        .cell("M/M/1 mean sojourn W")
        .cell(w_analytic, 4)
        .cell(r.mean_wait, 4)
        .cell(std::fabs(r.mean_wait - w_analytic) / w_analytic, 4);
    summary_json.set("mm1_l_rel_err",
                     std::fabs(r.mean_in_system - l_analytic) / l_analytic);
    summary_json.set("mm1_w_rel_err",
                     std::fabs(r.mean_wait - w_analytic) / w_analytic);
  }
  {
    // M/D/1, lambda = 0.7, deterministic service 1.0.
    const double lambda = 0.7, mu = 1.0;
    util::Constant service(1.0);
    const auto r = simulate_queue(lambda, service, horizon, seed + 1);
    const double rho = lambda / mu;
    const double wq = rho / (2 * mu * (1 - rho));
    const double w_analytic = wq + 1.0 / mu;
    table.row()
        .cell("M/D/1 mean sojourn W")
        .cell(w_analytic, 4)
        .cell(r.mean_wait, 4)
        .cell(std::fabs(r.mean_wait - w_analytic) / w_analytic, 4);
    summary_json.set("md1_w_rel_err",
                     std::fabs(r.mean_wait - w_analytic) / w_analytic);
  }
  {
    // Batch-means CI coverage on an autocorrelated stream (AR(1)).
    util::Rng rng(seed + 2);
    int covered = 0;
    const int runs = 200;
    for (int run = 0; run < runs; ++run) {
      stats::BatchMeans bm(200);  // long batches beat the correlation
      double x = 0;
      for (int i = 0; i < 20000; ++i) {
        x = 0.8 * x + rng.uniform(-1.0, 1.0);
        bm.add(x);
      }
      if (bm.interval(0.95).contains(0.0)) ++covered;
    }
    const double coverage = static_cast<double>(covered) / runs;
    table.row()
        .cell("batch-means 95% CI coverage, AR(1) phi=0.8")
        .cell(0.95, 2)
        .cell(coverage, 3)
        .cell(std::fabs(coverage - 0.95) / 0.95, 3);
    summary_json.set("batch_means_ci_coverage", coverage);
  }
  {
    // Three-mode delay mean: average of the three band midpoints.
    auto model = net::ThreeModeDelay::paper_default();
    util::Rng rng(seed + 3);
    stats::Welford w;
    for (int i = 0; i < 500000; ++i) w.add(model.sample(rng));
    const double analytic =
        ((0.00005 + 0.00015) / 2 + (0.00015 + 0.0003) / 2 +
         (0.0003 + 0.0005) / 2) /
        3.0;
    table.row()
        .cell("three-mode delay mean")
        .cell(analytic * 1e3, 4)
        .cell(w.mean() * 1e3, 4)
        .cell(std::fabs(w.mean() - analytic) / analytic, 4);
    summary_json.set("three_mode_delay_rel_err",
                     std::fabs(w.mean() - analytic) / analytic);
  }
  table.print(std::cout);
  std::cout << "\nAll relative errors should be < ~0.02 (the M/M/1 rows "
               "mix slowly at rho = 0.7; shrink with --horizon).\n";
  benchutil::print_footer();
  return 0;
}
