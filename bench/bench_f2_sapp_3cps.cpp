// F2 — paper Figure 2: probe frequencies of 3 CPs over 20 000 s.
//
// Paper: "after a short initial phase, one CP is probing less and less
// frequent, and is not recovering from this (undesired) situation";
// the two remaining CPs stabilize but keep a rather high variance.
#include <iostream>

#include "experiment_common.hpp"
#include "scenario/experiment.hpp"
#include "trace/csv.hpp"
#include "trace/gnuplot.hpp"
#include "trace/table.hpp"
#include "util/strings.hpp"

using namespace probemon;

int main() {
  benchutil::print_header(
      "F2", "SAPP transient, 3 CPs, 20 000 s (Fig 2)",
      "one of three CPs starves (frequency decays toward 1/delta_max = 0.1 "
      "and never recovers); the other two oscillate around higher values");

  constexpr double kDuration = 20000.0;

  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kSapp;
  config.seed = 3;
  config.initial_cps = 3;
  config.metrics.warmup = 0.0;

  scenario::Experiment exp(config);
  exp.run_until(kDuration);
  exp.finish();

  // Build per-CP frequency series (1/delay) like the paper plots.
  std::vector<stats::TimeSeries> freq;
  int index = 0;
  for (net::NodeId id : exp.initial_cp_ids()) {
    ++index;
    const auto* m = exp.metrics().cp(id);
    stats::TimeSeries f("cp_0" + std::to_string(index));
    if (m) {
      for (const auto& s : m->delay_series.samples()) {
        if (s.value > 0) f.add(s.t, 1.0 / s.value);
      }
    }
    freq.push_back(std::move(f));
  }

  trace::Table table({"CP", "final freq (1/s)", "mean freq (last 5000 s)",
                      "freq var (last 5000 s)", "starved?"});
  int starved_count = 0;
  for (const auto& f : freq) {
    const auto tail = f.summary(kDuration - 5000.0, kDuration);
    const double final_freq = f.empty() ? 0.0 : f.back().value;
    const bool starved = tail.mean() < 0.3;  // near 1/delta_max
    starved_count += starved ? 1 : 0;
    table.row()
        .cell(f.name())
        .cell(final_freq, 3)
        .cell(tail.mean(), 3)
        .cell(tail.variance(), 3)
        .cell(starved ? "YES" : "no");
  }
  table.print(std::cout);

  trace::Table expect({"check", "paper", "measured"});
  expect.row()
      .cell("#starving CPs (of 3)")
      .cell(">= 1 (\"one CP ... not recovering\")")
      .cell(std::to_string(starved_count));
  expect.print(std::cout);

  // CSV + gnuplot artifacts.
  const std::string dir = benchutil::out_dir();
  std::vector<const stats::TimeSeries*> ptrs;
  std::vector<stats::TimeSeries> decimated;
  decimated.reserve(freq.size());
  for (const auto& f : freq) decimated.push_back(f.decimate(4000));
  for (const auto& f : decimated) ptrs.push_back(&f);
  trace::write_csv_aligned_file(dir + "/f2_sapp_3cps.csv", ptrs, 0.0,
                                kDuration, 10.0);
  trace::GnuplotFigure fig;
  fig.title = "3 active Control Points (" + util::format_duration(kDuration) +
              ") [Fig 2]";
  fig.ylabel = "1/delay (1/sec)";
  fig.yrange = "[0:14]";
  for (std::size_t i = 0; i < decimated.size(); ++i) {
    fig.series.push_back({dir + "/f2_sapp_3cps.csv", static_cast<int>(i + 2),
                          decimated[i].name()});
  }
  trace::write_gnuplot_file(dir + "/f2_sapp_3cps.gp", fig,
                            dir + "/f2_sapp_3cps.png");
  std::cout << "\ntraces: " << dir << "/f2_sapp_3cps.csv (+ .gp)\n";

  benchutil::JsonSummary summary_json("bench_f2_sapp_3cps");
  summary_json.set("duration_s", kDuration);
  summary_json.set("starved_cps", static_cast<std::uint64_t>(starved_count));
  for (const auto& f : freq) {
    const auto tail = f.summary(kDuration - 5000.0, kDuration);
    summary_json.set(f.name() + "_final_freq",
                     f.empty() ? 0.0 : f.back().value);
    summary_json.set(f.name() + "_tail_mean_freq", tail.mean());
  }

  benchutil::print_footer();
  return 0;
}
