// A12 — the naive fixed-rate baseline vs the adaptive protocols.
//
// Paper introduction: "The simplest scheme one could consider is to
// regularly probe a device … This scheme, however, easily leads to
// over- or underloading of devices. The essence of both algorithms is
// therefore to automatically adapt the probing frequency."
//
// We measure device load vs population size for the naive prober
// (1 probe/s per CP, the obvious way to satisfy the 'detect within a
// second' requirement), SAPP and DCPP. The naive load grows linearly
// and crosses the device's capacity; the adaptive protocols pin it.
#include <iostream>

#include "experiment_common.hpp"
#include "scenario/experiment.hpp"
#include "trace/table.hpp"
#include "util/cli.hpp"

using namespace probemon;

namespace {

struct Outcome {
  double load;
  double detection_mean;
  std::size_t false_alarms;  ///< CPs whose first 'absent' predates departure
};

Outcome run(scenario::Protocol protocol, std::size_t k, std::uint64_t seed) {
  constexpr double kDepart = 1200.0;
  scenario::ExperimentConfig config;
  config.protocol = protocol;
  config.seed = seed;
  config.initial_cps = k;
  // A naive implementation shrugs off a failed cycle and keeps probing;
  // without this, queueing-induced false alarms silently thin out the
  // fixed-rate population at large k.
  config.fixed_cp.continue_after_absence = true;
  config.metrics.warmup = 300.0;
  config.metrics.record_delay_series = false;
  config.metrics.load_window = 10.0;
  scenario::Experiment exp(config);
  exp.schedule_device_departure(kDepart);
  exp.run_until(kDepart + 15.0);
  exp.finish();
  const auto load =
      exp.metrics().device_load().series().summary(300.0, kDepart);
  double detect = 0;
  const auto lat = exp.metrics().detection_latencies();
  for (double l : lat) detect += l;
  std::size_t false_alarms = 0;
  for (const auto& [id, m] : exp.metrics().per_cp()) {
    if (m.declared_absent_at && *m.declared_absent_at < kDepart) {
      ++false_alarms;
    }
  }
  return Outcome{
      load.mean(),
      lat.empty() ? -1.0 : detect / static_cast<double>(lat.size()),
      false_alarms};
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto seed = cli.get<std::uint64_t>("seed", 31);
  cli.finish("A12: naive fixed-rate baseline vs SAPP vs DCPP");

  benchutil::print_header(
      "A12", "naive fixed-rate probing vs the adaptive protocols (intro)",
      "fixed-rate load grows as k/period and tramples the device's "
      "L_nom = 10; SAPP and DCPP keep it bounded at every k");

  benchutil::JsonSummary summary_json("bench_a12_naive_baseline");
  trace::Table table({"k CPs", "protocol", "device load (cap 10)",
                      "mean detection latency (s)", "false alarms"});
  for (std::size_t k : {2u, 5u, 10u, 20u, 40u, 80u}) {
    for (auto protocol :
         {scenario::Protocol::kFixedRate, scenario::Protocol::kSapp,
          scenario::Protocol::kDcpp}) {
      const Outcome o = run(protocol, k, seed + k);
      table.row()
          .cell(static_cast<std::uint64_t>(k))
          .cell(scenario::to_string(protocol))
          .cell(o.load, 2)
          .cell(o.detection_mean, 3)
          .cell(static_cast<std::uint64_t>(o.false_alarms));
      const char* proto_tag =
          protocol == scenario::Protocol::kFixedRate
              ? "fixed"
              : (protocol == scenario::Protocol::kSapp ? "sapp" : "dcpp");
      const std::string prefix =
          "k" + std::to_string(k) + "_" + proto_tag + "_";
      summary_json.set(prefix + "load", o.load);
      summary_json.set(prefix + "mean_detection_s", o.detection_mean);
      summary_json.set(prefix + "false_alarms",
                       static_cast<std::uint64_t>(o.false_alarms));
    }
  }
  table.print(std::cout);
  std::cout
      << "\nExpected: FixedRate load = k probes/s; past the device's "
         "capacity (~10/s serial service) queueing delays blow the TOF "
         "budget and false alarms explode -- overload AND inaccuracy, the "
         "intro's point measured. SAPP and DCPP hold ~10 at every k; the "
         "price SAPP pays is detection latency (starved CPs), which DCPP "
         "avoids. (Detection means marked -1 are k where earlier false "
         "alarms consumed every CP's first verdict. FixedRate's load at "
         "k >= 40 exceeds k: past the serial device's capacity, timeouts "
         "spawn retransmissions that snowball into congestion collapse. "
         "SAPP's false alarms at k >= 40 are startup-transient "
         "casualties: its descent from delta_max overshoots the device "
         "before the adaptation spreads the population out.)\n";
  benchutil::print_footer();
  return 0;
}
