// A6 — extension: SAPP device-side overload control via Delta doubling.
//
// Paper section 2: "If the device finds that it is getting too many
// probes, it can, say, double its value of Delta. As a consequence, the
// CPs will consider the device more busy and adapt ... the probe load
// of the device will, in this example, eventually drop to one half of
// its previous value."
//
// Scenario: the device's true capacity shrinks at runtime (we model it
// by configuring the device's target l_nom below the initial CP-driven
// load). With adaptive Delta the device sheds load; without it the
// load stays where the CPs put it.
#include <iostream>

#include "experiment_common.hpp"
#include "scenario/experiment.hpp"
#include "trace/table.hpp"

using namespace probemon;

namespace {

struct Outcome {
  double early_load;  ///< mean load in (200, 600) s
  double late_load;   ///< mean load in (1400, 1800) s
  std::uint64_t final_delta;
};

Outcome run(bool adaptive, std::uint64_t seed) {
  constexpr double kDuration = 1800.0;
  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kSapp;
  config.seed = seed;
  config.initial_cps = 20;
  // Device wants only 5 probes/s but advertises Delta for l_nom = 10,
  // so CP-side adaptation alone settles near 10 — twice the device's
  // real capacity. Overload control must close the gap.
  config.sapp_device.adaptive_delta = adaptive;
  config.sapp_device.l_nom = 5.0;        // true capacity
  config.sapp_device.l_ideal = 0.5e6;    // keeps Delta = 1e5 as before
  config.sapp_device.overload_factor = 1.3;
  config.metrics.record_delay_series = false;
  config.metrics.load_window = 10.0;

  scenario::Experiment exp(config);
  exp.run_until(kDuration);
  exp.finish();

  const auto& series = exp.metrics().device_load().series();
  auto* device = dynamic_cast<core::SappDevice*>(&exp.device());
  return Outcome{series.summary(200.0, 600.0).mean(),
                 series.summary(1400.0, 1800.0).mean(),
                 device ? device->delta() : 0};
}

}  // namespace

int main() {
  benchutil::print_header(
      "A6", "SAPP device overload control (Delta doubling, section 2)",
      "doubling Delta makes CPs halve the probe load; without it the "
      "device is stuck with whatever the CP population delivers");

  const Outcome off = run(false, 600);
  const Outcome on = run(true, 600);

  trace::Table table({"adaptive Delta", "load t=200..600", "load t=1400..1800",
                      "final Delta", "load within 1.3x capacity (5/s)?"});
  table.row()
      .cell("off")
      .cell(off.early_load, 2)
      .cell(off.late_load, 2)
      .cell(off.final_delta)
      .cell(off.late_load <= 5.0 * 1.3 ? "yes" : "NO");
  table.row()
      .cell("on")
      .cell(on.early_load, 2)
      .cell(on.late_load, 2)
      .cell(on.final_delta)
      .cell(on.late_load <= 5.0 * 1.3 ? "yes" : "NO");
  table.print(std::cout);

  std::cout << "\nExpected: with adaptation ON the late load is roughly "
               "half the OFF load and within the device's capacity band; "
               "Delta ends above its base value.\n";

  benchutil::JsonSummary summary_json("bench_a6_sapp_adaptive_delta");
  summary_json.set("off_early_load", off.early_load);
  summary_json.set("off_late_load", off.late_load);
  summary_json.set("off_final_delta", off.final_delta);
  summary_json.set("on_early_load", on.early_load);
  summary_json.set("on_late_load", on.late_load);
  summary_json.set("on_final_delta", on.final_delta);
  summary_json.set("on_within_capacity_band", on.late_load <= 5.0 * 1.3);

  benchutil::print_footer();
  return 0;
}
