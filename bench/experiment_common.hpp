// Shared helpers for the experiment binaries under bench/.
//
// Every binary prints:
//   * a header naming the paper artifact it regenerates,
//   * the scenario parameters,
//   * a paper-vs-measured table,
// writes (when it has a time-series) CSV traces plus a gnuplot script
// into ./bench_out/ so the figure can be re-plotted, and emits a
// machine-readable ./bench_out/<name>.json metrics summary
// (JsonSummary) so CI and notebooks can diff headline numbers without
// scraping stdout.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"

namespace benchutil {

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status). Returns 0 on platforms without procfs — callers
/// treat 0 as "unavailable". Monotone over the process lifetime, so
/// tiered benches can attribute deltas to each tier.
inline std::uint64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::size_t pos = 6;
    while (pos < line.size() && !(line[pos] >= '0' && line[pos] <= '9')) {
      ++pos;
    }
    std::uint64_t kib = 0;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
      kib = kib * 10 + static_cast<std::uint64_t>(line[pos] - '0');
      ++pos;
    }
    return kib * 1024;
  }
  return 0;
}

/// Directory for CSV/gnuplot artifacts, created on first use.
inline std::string out_dir() {
  static const std::string dir = [] {
    std::filesystem::create_directories("bench_out");
    return std::string("bench_out");
  }();
  return dir;
}

inline void print_header(const std::string& experiment_id,
                         const std::string& paper_artifact,
                         const std::string& paper_claim) {
  std::cout << "==========================================================\n"
            << experiment_id << " -- " << paper_artifact << '\n'
            << "Paper: " << paper_claim << '\n'
            << "==========================================================\n";
}

inline void print_footer() { std::cout << '\n'; }

/// Machine-readable metrics summary of one experiment run. Collects
/// (key, value) pairs in insertion order and writes
/// bench_out/<name>.json on write() — or from the destructor, so a
/// bench cannot forget to emit its summary. Values keep their JSON
/// type (numbers stay numbers).
class JsonSummary {
 public:
  explicit JsonSummary(std::string name) : name_(std::move(name)) {}

  JsonSummary(const JsonSummary&) = delete;
  JsonSummary& operator=(const JsonSummary&) = delete;

  ~JsonSummary() {
    if (!written_) write();
  }

  void set(const std::string& key, double value) {
    entries_.emplace_back(key, probemon::telemetry::json_number(value));
  }
  void set(const std::string& key, int value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void set(const std::string& key, std::uint64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void set(const std::string& key, bool value) {
    entries_.emplace_back(key, value ? "true" : "false");
  }
  void set(const std::string& key, const std::string& value) {
    std::string quoted;
    probemon::telemetry::json_escape(quoted, value);
    entries_.emplace_back(key, std::move(quoted));
  }
  void set(const std::string& key, const char* value) {
    set(key, std::string(value));
  }

  /// Raw JSON fragment (e.g. an array built elsewhere); caller
  /// guarantees validity.
  void set_raw(const std::string& key, std::string json) {
    entries_.emplace_back(key, std::move(json));
  }

  std::string path() const { return out_dir() + "/" + name_ + ".json"; }

  void write() {
    written_ = true;
    std::string doc = "{\n  \"experiment\": ";
    probemon::telemetry::json_escape(doc, name_);
    for (const auto& [key, value] : entries_) {
      doc += ",\n  ";
      probemon::telemetry::json_escape(doc, key);
      doc += ": ";
      doc += value;
    }
    // Every bench reports its memory high-water mark so bytes/entity is
    // gateable (bench_diff ignores it in the determinism self-diff).
    doc += ",\n  \"peak_rss_bytes\": " + std::to_string(peak_rss_bytes());
    doc += "\n}\n";
    std::ofstream out(path());
    out << doc;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
  bool written_ = false;
};

}  // namespace benchutil
