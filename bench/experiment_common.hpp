// Shared helpers for the experiment binaries under bench/.
//
// Every binary prints:
//   * a header naming the paper artifact it regenerates,
//   * the scenario parameters,
//   * a paper-vs-measured table,
// and (when it has a time-series) writes CSV traces plus a gnuplot script
// into ./bench_out/ so the figure can be re-plotted.
#pragma once

#include <filesystem>
#include <iostream>
#include <string>

namespace benchutil {

/// Directory for CSV/gnuplot artifacts, created on first use.
inline std::string out_dir() {
  static const std::string dir = [] {
    std::filesystem::create_directories("bench_out");
    return std::string("bench_out");
  }();
  return dir;
}

inline void print_header(const std::string& experiment_id,
                         const std::string& paper_artifact,
                         const std::string& paper_claim) {
  std::cout << "==========================================================\n"
            << experiment_id << " -- " << paper_artifact << '\n'
            << "Paper: " << paper_claim << '\n'
            << "==========================================================\n";
}

inline void print_footer() { std::cout << '\n'; }

}  // namespace benchutil
