// Shared main() body for the google-benchmark binaries: run with the
// normal console output AND capture every run into
// bench_out/<name>.json, so the micro-benches emit machine-readable
// summaries exactly like the experiment binaries do. (We cannot use
// benchmark::JSONReporter as the file reporter directly — the library
// rejects a file reporter unless --benchmark_out is also passed.)
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <string>
#include <vector>

#include "experiment_common.hpp"
#include "telemetry/json.hpp"

namespace benchutil {

/// Console reporter that additionally keeps each finished run.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    std::int64_t iterations;
    double real_time;
    double cpu_time;
    std::string time_unit;
    double items_per_second;
    // User counters (state.counters[...]) other than items_per_second,
    // in name order — e.g. BM_HistorySample's bytes_per_window.
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      Entry e;
      e.name = run.benchmark_name();
      e.iterations = run.iterations;
      e.real_time = run.GetAdjustedRealTime();
      e.cpu_time = run.GetAdjustedCPUTime();
      e.time_unit = benchmark::GetTimeUnitString(run.time_unit);
      e.items_per_second =
          run.counters.count("items_per_second")
              ? static_cast<double>(run.counters.at("items_per_second"))
              : 0.0;
      for (const auto& [name, counter] : run.counters) {
        if (name == "items_per_second") continue;
        e.counters.emplace_back(name, static_cast<double>(counter));
      }
      entries_.push_back(std::move(e));
    }
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

/// Run all registered benchmarks; write bench_out/<name>.json.
inline int run_benchmarks_with_json(int argc, char** argv,
                                    const std::string& name) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  probemon::telemetry::JsonWriter json;
  json.begin_object();
  json.key("experiment");
  json.value(name);
  json.key("benchmarks");
  json.begin_array();
  for (const auto& e : reporter.entries()) {
    json.begin_object();
    json.key("name");
    json.value(e.name);
    json.key("iterations");
    json.value(e.iterations);
    json.key("real_time");
    json.value(e.real_time);
    json.key("cpu_time");
    json.value(e.cpu_time);
    json.key("time_unit");
    json.value(e.time_unit);
    if (e.items_per_second > 0) {
      json.key("items_per_second");
      json.value(e.items_per_second);
    }
    for (const auto& [name, counter] : e.counters) {
      json.key(name);
      json.value(counter);
    }
    json.end_object();
  }
  json.end_array();
  json.key("peak_rss_bytes");
  json.value(static_cast<std::int64_t>(peak_rss_bytes()));
  json.end_object();

  std::ofstream out(out_dir() + "/" + name + ".json");
  out << json.str() << '\n';
  return 0;
}

}  // namespace benchutil
