// A13 — micro-benchmarks of the telemetry subsystem (google-benchmark).
//
// Not a paper artifact: the acceptance bar for instrumenting protocol
// hot paths is that a counter increment stays in the tens of
// nanoseconds (target <= 50 ns single-threaded), so instrumentation can
// never distort the experiments it measures. Registry lookup cost is
// benchmarked separately to document why hot paths cache metric
// pointers instead of resolving names per event.
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "benchmark_json.hpp"
#include "telemetry/export.hpp"
#include "telemetry/history/history.hpp"
#include "telemetry/metric.hpp"
#include "telemetry/probe_tracer.hpp"
#include "telemetry/registry.hpp"

using namespace probemon;

namespace {

void BM_CounterInc(benchmark::State& state) {
  telemetry::Registry registry;
  auto& counter = registry.counter("bench_counter_total", "bench");
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterInc);

void BM_CounterIncContended(benchmark::State& state) {
  static telemetry::Counter counter;
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterIncContended)->Threads(1)->Threads(4);

void BM_GaugeSet(benchmark::State& state) {
  telemetry::Gauge gauge;
  double x = 0.0;
  for (auto _ : state) {
    gauge.set(x);
    x += 1.0;
  }
  benchmark::DoNotOptimize(gauge.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  telemetry::Histogram histogram(
      telemetry::Histogram::exponential_buckets(0.0005, 2.0, 11));
  double x = 0.0;
  for (auto _ : state) {
    histogram.observe(x);
    x += 0.001;
    if (x > 1.0) x = 0.0;
  }
  benchmark::DoNotOptimize(histogram.count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramObserve);

// The anti-pattern hot paths must avoid: resolving the metric by name
// on every event. Orders of magnitude slower than a cached pointer.
void BM_RegistryLookup(benchmark::State& state) {
  telemetry::Registry registry;
  registry.counter("bench_lookup_total", "bench",
                   {{"device", "7"}, {"transport", "inproc"}});
  for (auto _ : state) {
    auto& counter = registry.counter(
        "bench_lookup_total", "bench",
        {{"device", "7"}, {"transport", "inproc"}});
    counter.inc();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegistryLookup);

void BM_TracerRecord(benchmark::State& state) {
  telemetry::ProbeCycleTracer tracer(4096);
  telemetry::ProbeCycleTrace trace;
  trace.cp = 1;
  trace.device = 2;
  trace.attempts = 1;
  trace.success = true;
  for (auto _ : state) {
    ++trace.cycle;
    tracer.record(trace);
  }
  benchmark::DoNotOptimize(tracer.recorded());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerRecord);

void BM_SnapshotAndExport(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  telemetry::Registry registry;
  for (std::size_t i = 0; i < n; ++i) {
    registry
        .counter("bench_family_total", "bench",
                 {{"device", std::to_string(i)}})
        .inc(i);
  }
  for (auto _ : state) {
    std::string text = telemetry::to_prometheus(registry);
    benchmark::DoNotOptimize(text.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SnapshotAndExport)->Arg(100);

// One history.sample(t) snapshots the registry and appends a point to
// every tracked ring. items_per_second is series-samples ingested per
// second (n series per sample call); bytes_per_window is the exact
// retained footprint of the full rings — the knob the history config
// trades against query depth, gated one-sided in CI so the ring can
// never quietly grow per-point state.
void BM_HistorySample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  telemetry::Registry registry;
  std::vector<telemetry::Gauge*> gauges;
  gauges.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    gauges.push_back(&registry.gauge("bench_history_series", "",
                                     {{"device", std::to_string(i)}}));
  }
  telemetry::TimeSeriesHistory history(registry,
                                       {.sample_period_s = 1.0, .slots = 512});
  history.track_prefix("bench_history_series");
  double t = 0.0;
  std::size_t dirty = 0;
  for (auto _ : state) {
    t += 1.0;
    gauges[dirty]->set(t);  // keep one series moving between samples
    dirty = (dirty + 1) % n;
    history.sample(t);
  }
  benchmark::DoNotOptimize(history.samples_taken());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["bytes_per_window"] =
      static_cast<double>(history.retained_bytes());
}
BENCHMARK(BM_HistorySample)->Arg(100);

}  // namespace

// Custom main (instead of benchmark_main) so results also land in
// bench_out/bench_a13_telemetry_micro.json like every other bench.
int main(int argc, char** argv) {
  return benchutil::run_benchmarks_with_json(argc, argv,
                                             "bench_a13_telemetry_micro");
}
