// F3 — paper Figure 3: probe frequencies of 7 (out of 20) CPs over the
// one-minute window t = 12300..12360 s.
//
// Paper: individual CP frequencies oscillate strongly within a minute;
// some CPs sit near zero while others exceed 10 probe cycles/s.
#include <algorithm>
#include <iostream>

#include "experiment_common.hpp"
#include "scenario/experiment.hpp"
#include "trace/csv.hpp"
#include "trace/gnuplot.hpp"
#include "trace/table.hpp"

using namespace probemon;

int main() {
  benchutil::print_header(
      "F3", "SAPP, 7 of 20 CPs, 1-minute window (Fig 3)",
      "within one minute individual frequencies swing across [0, ~14] 1/s; "
      "frequencies of different CPs are far apart (unfair)");

  constexpr double kWindowStart = 12300.0;
  constexpr double kWindowEnd = 12360.0;

  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kSapp;
  config.seed = 20;
  config.initial_cps = 20;
  config.metrics.warmup = 0.0;

  scenario::Experiment exp(config);
  exp.run_until(kWindowEnd + 10.0);
  exp.finish();

  // The paper shows 7 arbitrary CPs (cp 01, 02, 07, 10, 12, 19, 20); its
  // Fig 3 spans both starved CPs near zero and fast CPs swinging above
  // 10 1/s. Our steady state concentrates the fast role in fewer CPs, so
  // we keep six of the paper's indices and make sure the currently
  // fastest CP is among the seven — otherwise the window would show only
  // the starved herd.
  std::vector<int> shown = {1, 2, 7, 10, 12, 19};
  {
    int fastest = 20;
    double best = -1;
    const auto& ids = exp.initial_cp_ids();
    for (int idx = 1; idx <= 20; ++idx) {
      const auto* m = exp.metrics().cp(ids[static_cast<std::size_t>(idx - 1)]);
      if (!m) continue;
      double mean = 0;
      std::size_t n = 0;
      for (const auto& s : m->delay_series.samples()) {
        if (s.t >= kWindowStart && s.t < kWindowEnd && s.value > 0) {
          mean += 1.0 / s.value;
          ++n;
        }
      }
      if (n > 0 && mean / static_cast<double>(n) > best) {
        best = mean / static_cast<double>(n);
        fastest = idx;
      }
    }
    if (std::find(shown.begin(), shown.end(), fastest) == shown.end()) {
      shown.push_back(fastest);
    } else {
      shown.push_back(20);
    }
  }

  std::vector<stats::TimeSeries> freq_window;
  trace::Table table({"CP", "samples in window", "mean freq", "min freq",
                      "max freq", "freq var"});
  double global_min = 1e9, global_max = -1e9;
  for (int idx : shown) {
    const net::NodeId id = exp.initial_cp_ids()[static_cast<std::size_t>(
        idx - 1)];
    const auto* m = exp.metrics().cp(id);
    stats::TimeSeries f("cp_" + std::string(idx < 10 ? "0" : "") +
                        std::to_string(idx));
    if (m) {
      for (const auto& s : m->delay_series.samples()) {
        if (s.t >= kWindowStart && s.t < kWindowEnd && s.value > 0) {
          f.add(s.t, 1.0 / s.value);
        }
      }
    }
    const auto w = f.summary();
    if (!w.empty()) {
      global_min = std::min(global_min, w.min());
      global_max = std::max(global_max, w.max());
    }
    table.row()
        .cell(f.name())
        .cell(static_cast<std::uint64_t>(f.size()))
        .cell(w.empty() ? 0.0 : w.mean(), 3)
        .cell(w.empty() ? 0.0 : w.min(), 3)
        .cell(w.empty() ? 0.0 : w.max(), 3)
        .cell(w.empty() ? 0.0 : w.variance(), 3);
    freq_window.push_back(std::move(f));
  }
  table.print(std::cout);

  trace::Table expect({"check", "paper", "measured"});
  expect.row()
      .cell("frequency spread across CPs in 1 min")
      .cell("wide: roughly 0 .. 14 1/s")
      .cell("min " + std::to_string(global_min).substr(0, 5) + ", max " +
            std::to_string(global_max).substr(0, 5));
  expect.print(std::cout);

  const std::string dir = benchutil::out_dir();
  std::vector<const stats::TimeSeries*> ptrs;
  for (const auto& f : freq_window) ptrs.push_back(&f);
  trace::write_csv_aligned_file(dir + "/f3_sapp_20cps.csv", ptrs,
                                kWindowStart, kWindowEnd, 0.1);
  trace::GnuplotFigure fig;
  fig.title = "Evolution of Delays over 1 Minute [Fig 3]";
  fig.ylabel = "1/delay (1/sec)";
  fig.yrange = "[0:14]";
  for (std::size_t i = 0; i < freq_window.size(); ++i) {
    fig.series.push_back({dir + "/f3_sapp_20cps.csv", static_cast<int>(i + 2),
                          freq_window[i].name()});
  }
  trace::write_gnuplot_file(dir + "/f3_sapp_20cps.gp", fig,
                            dir + "/f3_sapp_20cps.png");
  std::cout << "\ntraces: " << dir << "/f3_sapp_20cps.csv (+ .gp)\n";

  benchutil::JsonSummary summary_json("bench_f3_sapp_20cps");
  summary_json.set("window_start_s", kWindowStart);
  summary_json.set("window_end_s", kWindowEnd);
  summary_json.set("shown_cps", static_cast<std::uint64_t>(shown.size()));
  summary_json.set("window_min_freq", global_min);
  summary_json.set("window_max_freq", global_max);
  summary_json.set("window_freq_spread", global_max - global_min);

  benchutil::print_footer();
  return 0;
}
