// A9 — extension: leave-event dissemination over the last-two-probers
// overlay (paper section 2 describes the overlay and the dissemination
// phase but explicitly leaves its analysis out; this bench supplies it).
//
// Metric: mean and worst time for the CP population to learn that the
// device left, as a function of the gossip TTL (TTL 0 = no gossip:
// every CP must discover by its own failed probe cycle).
#include <algorithm>
#include <iostream>

#include "scenario/experiment.hpp"
#include "trace/table.hpp"
#include "experiment_common.hpp"

using namespace probemon;

namespace {

struct Outcome {
  double mean_latency;
  double worst_latency;
  double gossip_fraction;  ///< CPs that learned via notify, not probing
};

Outcome run(std::uint8_t ttl, std::size_t k, std::uint64_t seed) {
  constexpr double kDepart = 120.0;
  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kDcpp;
  config.seed = seed;
  config.initial_cps = k;
  config.dissemination = ttl > 0;
  config.dissemination_ttl = ttl;
  config.metrics.record_delay_series = false;
  scenario::Experiment exp(config);
  exp.schedule_device_departure(kDepart);
  exp.run_until(kDepart + 30.0);
  exp.finish();

  double total = 0, worst = 0;
  std::size_t n = 0, by_gossip = 0;
  for (const auto& [id, m] : exp.metrics().per_cp()) {
    double at = 1e18;
    bool gossip = false;
    if (m.declared_absent_at) at = *m.declared_absent_at;
    if (m.learned_absent_at && *m.learned_absent_at < at) {
      at = *m.learned_absent_at;
      gossip = true;
    }
    if (at > 1e17) continue;
    const double latency = at - kDepart;
    total += latency;
    worst = std::max(worst, latency);
    by_gossip += gossip ? 1 : 0;
    ++n;
  }
  return Outcome{n ? total / static_cast<double>(n) : -1, worst,
                 n ? static_cast<double>(by_gossip) / static_cast<double>(n)
                   : 0};
}

}  // namespace

int main() {
  benchutil::print_header(
      "A9", "leave dissemination over the last-two-probers overlay",
      "section 2 sketches the overlay ('inform all CPs about the leave of "
      "the device rapidly') without analysis; gossip should cut the worst-"
      "case knowledge latency well below the probing-period bound");

  constexpr std::size_t k = 20;
  benchutil::JsonSummary summary_json("bench_a9_dissemination");
  summary_json.set("cps", static_cast<std::uint64_t>(k));
  trace::Table table({"gossip TTL", "mean latency (s)", "worst latency (s)",
                      "learned via gossip"});
  for (std::uint8_t ttl : {0, 1, 2, 3, 4}) {
    const Outcome o = run(ttl, k, 900 + ttl);
    table.row()
        .cell(static_cast<std::uint64_t>(ttl))
        .cell(o.mean_latency, 3)
        .cell(o.worst_latency, 3)
        .cell(o.gossip_fraction, 2);
    const std::string prefix = "ttl" + std::to_string(ttl) + "_";
    summary_json.set(prefix + "mean_latency_s", o.mean_latency);
    summary_json.set(prefix + "worst_latency_s", o.worst_latency);
    summary_json.set(prefix + "gossip_fraction", o.gossip_fraction);
  }
  table.print(std::cout);
  std::cout << "\nNo-gossip bound for k = 20: period max(k*0.1, 0.5) + "
               "0.085 = 2.085 s worst case. Expected: TTL >= 2 drops the "
               "worst case to roughly one probe period of the FIRST "
               "detector plus a network round-trip.\n";
  benchutil::print_footer();
  return 0;
}
