// F5 — paper Figure 5 + section 5 numbers: DCPP in the dynamic worst
// case. The number of active CPs is redrawn uniformly from {1..60}
// every Exp(0.05)-distributed interval (mean 20 s); delta_min = 0.1
// (L_nom = 10), d_min = 0.5 (f_max = 2); no packet loss.
//
// Paper: mean device load 9.7 probes/s, variance 20.0 (sigma ~ 4.5);
// spikes at join bursts decay quickly back toward L_nom = 10.
#include <iostream>

#include "experiment_common.hpp"
#include "scenario/churn.hpp"
#include "scenario/experiment.hpp"
#include "trace/csv.hpp"
#include "trace/gnuplot.hpp"
#include "trace/table.hpp"
#include "util/cli.hpp"

using namespace probemon;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const double kDuration = cli.get<double>("duration", 3000.0);
  const double kWarmup = cli.get<double>("warmup", 200.0);
  const auto seed = cli.get<std::uint64_t>("seed", 55);
  const auto max_cps = cli.get<std::uint64_t>("max-cps", 60);
  const double churn_rate = cli.get<double>("churn-rate", 0.05);
  cli.finish("F5: DCPP dynamic worst case (paper Fig 5)");

  benchutil::print_header(
      "F5", "DCPP dynamic scenario (Fig 5, section 5)",
      "steady-state mean load 9.7 probes/s, variance 20 (sigma ~4.5); "
      "load spikes when many CPs join, falls back to L_nom = 10 quickly");

  scenario::ExperimentConfig config;
  config.protocol = scenario::Protocol::kDcpp;
  config.seed = seed;
  config.initial_cps = 20;
  config.dcpp_device.delta_min = 0.1;  // L_nom = 10
  config.dcpp_device.d_min = 0.5;      // f_max = 2
  config.join_jitter_max = 0.0;        // paper's worst case: synchronous joins
  config.metrics.load_window = 1.0;
  config.metrics.load_sample_every = 1.0;

  scenario::Experiment exp(config);
  exp.install_churn(std::make_unique<scenario::DynamicUniformChurn>(
      1, static_cast<std::size_t>(max_cps), churn_rate));
  exp.run_until(kDuration);
  exp.finish();

  const auto& load = exp.metrics().device_load().series();
  const auto w = load.summary(kWarmup, kDuration);

  trace::Table summary({"metric", "paper", "measured"});
  summary.row().cell("mean device load (probes/s)").cell("9.7").cell(
      w.mean(), 2);
  summary.row().cell("load variance").cell("20.0").cell(w.variance(), 1);
  summary.row().cell("load std dev").cell("~4.5").cell(w.stddev(), 2);
  summary.row()
      .cell("max load sample")
      .cell("spikes up to ~60 on join bursts")
      .cell(w.max(), 1);
  summary.row()
      .cell("behaviour after spike")
      .cell("\"falls off very quickly again towards L_nom = 10\"")
      .cell("see CSV trace");
  summary.print(std::cout);

  const std::string dir = benchutil::out_dir();
  auto active = exp.metrics().active_cps_series();
  std::vector<const stats::TimeSeries*> ptrs{&load, &active};
  trace::write_csv_aligned_file(dir + "/f5_dcpp_dynamic.csv", ptrs, 1000.0,
                                2800.0, 1.0);
  trace::GnuplotFigure fig;
  fig.title = "Load and #CPs over 30 min [Fig 5]";
  fig.ylabel = "probes/s | #CPs";
  fig.xrange = "[1000:2800]";
  fig.series.push_back({dir + "/f5_dcpp_dynamic.csv", 2, "Device Load"});
  fig.series.push_back({dir + "/f5_dcpp_dynamic.csv", 3, "#Control Points"});
  trace::write_gnuplot_file(dir + "/f5_dcpp_dynamic.gp", fig,
                            dir + "/f5_dcpp_dynamic.png");
  std::cout << "\ntraces: " << dir << "/f5_dcpp_dynamic.csv (+ .gp)\n";

  benchutil::JsonSummary summary_json("bench_f5_dcpp_dynamic");
  summary_json.set("duration_s", kDuration);
  summary_json.set("max_cps", static_cast<std::uint64_t>(max_cps));
  summary_json.set("churn_rate", churn_rate);
  summary_json.set("paper_mean_load", 9.7);
  summary_json.set("mean_load", w.mean());
  summary_json.set("paper_load_variance", 20.0);
  summary_json.set("load_variance", w.variance());
  summary_json.set("load_stddev", w.stddev());
  summary_json.set("max_load_sample", w.max());

  benchutil::print_footer();
  return 0;
}
