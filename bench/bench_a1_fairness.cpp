// A1 — ablation: fairness of SAPP vs DCPP across population sizes.
//
// The paper's qualitative claim: SAPP is fair for k <= 2 and unfair from
// k = 3 on; DCPP equalizes frequencies for every k. We quantify with
// Jain's index over mean per-CP probe frequencies (1.0 = perfectly fair).
#include <iostream>
#include <vector>

#include "experiment_common.hpp"
#include "scenario/experiment.hpp"
#include "scenario/sweep.hpp"
#include "stats/series.hpp"
#include "trace/table.hpp"
#include "util/cli.hpp"

using namespace probemon;

namespace {

struct Run {
  double jain;
  double load;
};

Run run_protocol(scenario::Protocol protocol, std::size_t k,
                 std::uint64_t seed) {
  constexpr double kDuration = 4000.0;
  constexpr double kWarmup = 1000.0;
  scenario::ExperimentConfig config;
  config.protocol = protocol;
  config.seed = seed;
  config.initial_cps = k;
  config.metrics.warmup = kWarmup;
  config.metrics.record_delay_series = false;
  config.metrics.load_window = 10.0;
  scenario::Experiment exp(config);
  exp.run_until(kDuration);
  exp.finish();
  const auto load =
      exp.metrics().device_load().series().summary(kWarmup, kDuration);
  return Run{exp.metrics().frequency_fairness(), load.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto threads = cli.get<std::uint64_t>("threads", 0);
  cli.finish("A1: SAPP vs DCPP fairness sweep");

  benchutil::print_header(
      "A1", "fairness: Jain index of per-CP frequencies, SAPP vs DCPP",
      "SAPP fair only for k <= 2 (paper: \"for one or two CPs the probe "
      "frequencies were balanced\"); DCPP fair for all k (section 5)");

  // The 7 population sizes x 2 protocols are 14 independent simulations;
  // fan them out over the sweep runner. Results land in job order, so
  // the table below is byte-identical for any thread count.
  const std::vector<std::size_t> ks{1, 2, 3, 5, 10, 20, 40};
  scenario::SweepRunner runner(static_cast<unsigned>(threads));
  const std::vector<Run> runs = runner.map<Run>(
      ks.size() * 2, [&](std::size_t job, scenario::SweepWorkerContext&) {
        const std::size_t k = ks[job / 2];
        return job % 2 == 0
                   ? run_protocol(scenario::Protocol::kSapp, k, 100 + k)
                   : run_protocol(scenario::Protocol::kDcpp, k, 200 + k);
      });

  benchutil::JsonSummary summary_json("bench_a1_fairness");
  trace::Table table({"k CPs", "SAPP Jain", "SAPP load", "DCPP Jain",
                      "DCPP load", "fair protocol"});
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const std::size_t k = ks[i];
    const Run& sapp = runs[2 * i];
    const Run& dcpp = runs[2 * i + 1];
    table.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(sapp.jain, 3)
        .cell(sapp.load, 2)
        .cell(dcpp.jain, 3)
        .cell(dcpp.load, 2)
        .cell(dcpp.jain >= sapp.jain ? "DCPP" : "SAPP");
    const std::string prefix = "k" + std::to_string(k) + "_";
    summary_json.set(prefix + "sapp_jain", sapp.jain);
    summary_json.set(prefix + "dcpp_jain", dcpp.jain);
    summary_json.set(prefix + "sapp_load", sapp.load);
    summary_json.set(prefix + "dcpp_load", dcpp.load);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: SAPP Jain degrades sharply with k while "
               "DCPP stays ~1.0 throughout; DCPP load = min(10, 2k).\n"
               "Deviation note: the paper reports balance for k = 2 as "
               "well; with our serial (queueing) device model the "
               "duplicate-reply ratchet already splits a 2-CP population "
               "(see EXPERIMENTS.md).\n";
  benchutil::print_footer();
  return 0;
}
