// A4 — ablation: DCPP steady-state load vs population size.
//
// Analysis (section 4's constraints): with k CPs the device load is
// min(L_nom, k * f_max) and the per-CP inter-probe time is
// max(k * delta_min, d_min). With delta_min = 0.1 and d_min = 0.5 the
// crossover sits at k = d_min/delta_min = 5. Per-CP frequencies stay
// equal (Jain ~ 1) on both sides.
#include <iostream>

#include "experiment_common.hpp"
#include "scenario/experiment.hpp"
#include "stats/welford.hpp"
#include "trace/table.hpp"

using namespace probemon;

int main() {
  benchutil::print_header(
      "A4", "DCPP load/frequency crossover at k = d_min/delta_min",
      "device load = min(L_nom, k*f_max) = min(10, 2k); per-CP period = "
      "max(k*delta_min, d_min); crossover at k = 5");

  constexpr double kDuration = 600.0;
  constexpr double kWarmup = 100.0;

  benchutil::JsonSummary summary_json("bench_a4_dcpp_crossover");
  trace::Table table({"k CPs", "predicted load", "measured load",
                      "predicted period (s)", "measured mean period", "Jain"});
  for (std::size_t k : {1u, 2u, 3u, 4u, 5u, 6u, 8u, 10u, 12u, 20u}) {
    scenario::ExperimentConfig config;
    config.protocol = scenario::Protocol::kDcpp;
    config.seed = 400 + k;
    config.initial_cps = k;
    config.metrics.warmup = kWarmup;
    config.metrics.record_delay_series = false;
    config.metrics.load_window = 10.0;

    scenario::Experiment exp(config);
    exp.run_until(kDuration);
    exp.finish();

    const double l_nom = config.dcpp_device.l_nom();
    const double f_max = config.dcpp_device.f_max();
    const double predicted_load =
        std::min(l_nom, static_cast<double>(k) * f_max);
    const double predicted_period =
        std::max(static_cast<double>(k) * config.dcpp_device.delta_min,
                 config.dcpp_device.d_min);

    const auto load =
        exp.metrics().device_load().series().summary(kWarmup, kDuration);
    stats::Welford periods;
    for (const double d : exp.metrics().mean_delays()) periods.add(d);

    table.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(predicted_load, 1)
        .cell(load.mean(), 2)
        .cell(predicted_period, 2)
        .cell(periods.mean(), 3)
        .cell(exp.metrics().frequency_fairness(), 4);
    const std::string prefix = "k" + std::to_string(k) + "_";
    summary_json.set(prefix + "predicted_load", predicted_load);
    summary_json.set(prefix + "measured_load", load.mean());
    summary_json.set(prefix + "predicted_period_s", predicted_period);
    summary_json.set(prefix + "measured_period_s", periods.mean());
    summary_json.set(prefix + "jain", exp.metrics().frequency_fairness());
  }
  table.print(std::cout);
  std::cout << "\nExpected: measured tracks predicted on both sides of the "
               "k = 5 crossover; Jain ~1.0 everywhere.\n";
  benchutil::print_footer();
  return 0;
}
