// bench_telemetry_scale — fleet-scale telemetry registry costs.
//
// Not a paper artifact: this gates the observability subsystem itself.
// Three questions, each at a sweep of series cardinalities:
//
//   1. Registration throughput: how fast can a ShardedRegistry
//      find-or-create series through the interned-id API?
//   2. Scrape cost: full Prometheus exposition vs a delta scrape with
//      only `--dirty` series changed — the O(total) vs O(changed)
//      claim, reported as bytes and microseconds plus the ratios
//      (speedup_time / speedup_bytes, gated one-sided in CI).
//   3. Equivalence: ShardedRegistry output must be byte-identical to
//      the single-map Registry for the same contents, at any shard
//      count (snapshot_identical / shard_invariant booleans — exact
//      CI tripwires, not thresholds).
//
//   ./bench_telemetry_scale --series=1000,100000,1000000 --dirty=1000
//
// Writes bench_out/bench_telemetry_scale.json (keys s<N>.*).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "experiment_common.hpp"
#include "telemetry/export.hpp"
#include "telemetry/interner.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sharded_registry.hpp"
#include "util/cli.hpp"

using namespace probemon;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<std::uint64_t> parse_series_list(const std::string& spec) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    out.push_back(std::stoull(spec.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

/// Populate `n` counter series (device=0..n-1) through the id API and
/// return the counters for later dirtying.
std::vector<telemetry::Counter*> populate(telemetry::ShardedRegistry& reg,
                                          std::uint64_t n) {
  std::vector<telemetry::Counter*> counters;
  counters.reserve(n);
  const auto name = reg.intern_name("probemon_scale_series_total");
  const auto device = reg.intern_label_name("device");
  const auto help = reg.intern("Synthetic per-device series");
  for (std::uint64_t i = 0; i < n; ++i) {
    const telemetry::LabelIds labels{
        {device, reg.intern(std::to_string(i))}};
    auto& c = reg.counter_ids(name, labels, help);
    c.inc(i % 7);
    counters.push_back(&c);
  }
  return counters;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto series_spec =
      cli.get<std::string>("series", "1000,100000,1000000");
  const auto dirty = cli.get<std::uint64_t>("dirty", 1000);
  const auto shards = cli.get<std::uint64_t>("shards", 16);
  cli.finish("bench_telemetry_scale: registry scale + delta-scrape costs");

  benchutil::print_header(
      "bench_telemetry_scale", "observability scale gate",
      "delta scrape is O(changed): >=10x cheaper than full at high "
      "cardinality");
  benchutil::JsonSummary summary("bench_telemetry_scale");
  summary.set("dirty", dirty);
  summary.set("shards", shards);

  for (const std::uint64_t n : parse_series_list(series_spec)) {
    telemetry::LabelInterner interner;
    telemetry::ShardedRegistry reg(shards, &interner);

    auto start = std::chrono::steady_clock::now();
    auto counters = populate(reg, n);
    const double register_s = seconds_since(start);
    const double register_per_s = static_cast<double>(n) / register_s;

    telemetry::DeltaExporter exporter(reg);

    // Full scrape (first scrape of a fresh cursor is always full).
    start = std::chrono::steady_clock::now();
    const std::string full = exporter.prometheus();
    const double full_s = seconds_since(start);

    // Dirty a spread subset, then delta-scrape.
    const std::uint64_t step = dirty == 0 ? n : std::max<std::uint64_t>(
                                                    1, n / std::max<
                                                           std::uint64_t>(
                                                           1, dirty));
    std::uint64_t dirtied = 0;
    for (std::uint64_t i = 0; i < n && dirtied < dirty; i += step) {
      counters[i]->inc();
      ++dirtied;
    }
    start = std::chrono::steady_clock::now();
    const std::string delta = exporter.prometheus();
    const double delta_s = seconds_since(start);

    const double speedup_time = delta_s > 0 ? full_s / delta_s : 0.0;
    const double speedup_bytes =
        delta.empty() ? 0.0
                      : static_cast<double>(full.size()) /
                            static_cast<double>(delta.size());

    std::printf(
        "series=%-9llu register %8.3g/s | full %9zu B %9.1f us | "
        "delta(%llu dirty) %7zu B %8.1f us | speedup %.1fx time %.1fx "
        "bytes\n",
        static_cast<unsigned long long>(n), register_per_s, full.size(),
        full_s * 1e6, static_cast<unsigned long long>(dirtied),
        delta.size(), delta_s * 1e6, speedup_time, speedup_bytes);

    const std::string prefix = "s" + std::to_string(n) + ".";
    summary.set(prefix + "register_per_s", register_per_s);
    summary.set(prefix + "full_bytes", std::uint64_t(full.size()));
    summary.set(prefix + "full_us", full_s * 1e6);
    summary.set(prefix + "delta_bytes", std::uint64_t(delta.size()));
    summary.set(prefix + "delta_us", delta_s * 1e6);
    summary.set(prefix + "speedup_time", speedup_time);
    summary.set(prefix + "speedup_bytes", speedup_bytes);
  }

  // Equivalence tripwires at a small cardinality: sharded output must
  // match the single-map Registry byte for byte, at any shard count.
  {
    const std::uint64_t n = 1000;
    telemetry::Registry plain;
    for (std::uint64_t i = 0; i < n; ++i) {
      plain
          .counter("probemon_scale_series_total",
                   "Synthetic per-device series",
                   {{"device", std::to_string(i)}})
          .inc(i % 7);
    }
    const std::string want = telemetry::to_prometheus(plain);
    bool identical = true;
    bool shard_invariant = true;
    for (const std::size_t sc : {1u, 4u, 64u}) {
      telemetry::LabelInterner interner;
      telemetry::ShardedRegistry reg(sc, &interner);
      populate(reg, n);
      const std::string got = telemetry::to_prometheus(reg);
      if (got != want) {
        identical = false;
        shard_invariant = false;
      }
    }
    std::printf("sharded == single-map exposition: %s (shards 1/4/64)\n",
                identical ? "identical" : "MISMATCH");
    summary.set("snapshot_identical", identical);
    summary.set("shard_invariant", shard_invariant);
  }

  summary.write();
  std::printf("wrote %s\n", summary.path().c_str());
  benchutil::print_footer();
  return 0;
}
