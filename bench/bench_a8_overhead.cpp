// A8 — extension: message and computation overhead, SAPP vs DCPP.
//
// The paper's conclusion: "Faster CPs send more packets than really
// necessary and have a lot of computation to do in order to adjust
// their frequencies. This leads to a waste of computing resources and
// an increase of power consumption." We quantify: total probes sent per
// second across the CP population (the useful minimum is L_nom — any
// surplus is either retransmission or overshoot), plus the number of
// delay adaptations per second (the CP-side computation the paper
// flags).
#include <iostream>

#include "scenario/experiment.hpp"
#include "trace/table.hpp"
#include "experiment_common.hpp"

using namespace probemon;

namespace {

struct Outcome {
  double probes_per_s;       ///< sent by all CPs together
  double retransmit_per_s;   ///< probes beyond one per cycle
  double adaptations_per_s;  ///< delay updates (CP-side computation)
};

Outcome run(scenario::Protocol protocol, std::size_t k, std::uint64_t seed) {
  constexpr double kDuration = 3000.0;
  constexpr double kWarmup = 500.0;
  scenario::ExperimentConfig config;
  config.protocol = protocol;
  config.seed = seed;
  config.initial_cps = k;
  config.metrics.warmup = kWarmup;
  config.metrics.record_delay_series = false;
  scenario::Experiment exp(config);
  exp.run_until(kDuration);
  exp.finish();

  std::uint64_t probes = 0, cycles = 0, adaptations = 0;
  for (const auto& [id, m] : exp.metrics().per_cp()) {
    probes += m.probes_sent;
    cycles += m.cycles_succeeded;
    adaptations += m.delay_moments.count();
  }
  const double span = kDuration;  // probes counted from t=0
  return Outcome{static_cast<double>(probes) / span,
                 static_cast<double>(probes - cycles) / span,
                 static_cast<double>(adaptations) / (kDuration - kWarmup)};
}

}  // namespace

int main() {
  benchutil::print_header(
      "A8", "protocol overhead: packets and adaptation work, SAPP vs DCPP",
      "conclusion section: SAPP's fast CPs waste packets and computation; "
      "DCPP sends just what the schedule needs");

  benchutil::JsonSummary summary_json("bench_a8_overhead");
  trace::Table table({"k CPs", "protocol", "probes/s (min needed = 10)",
                      "retransmissions/s", "delay updates/s"});
  for (std::size_t k : {5u, 10u, 20u, 40u}) {
    for (auto protocol :
         {scenario::Protocol::kSapp, scenario::Protocol::kDcpp}) {
      const Outcome o = run(protocol, k, 800 + k);
      table.row()
          .cell(static_cast<std::uint64_t>(k))
          .cell(scenario::to_string(protocol))
          .cell(o.probes_per_s, 2)
          .cell(o.retransmit_per_s, 3)
          .cell(o.adaptations_per_s, 2);
      const std::string prefix =
          "k" + std::to_string(k) + "_" +
          (protocol == scenario::Protocol::kSapp ? "sapp" : "dcpp") + "_";
      summary_json.set(prefix + "probes_per_s", o.probes_per_s);
      summary_json.set(prefix + "retransmissions_per_s", o.retransmit_per_s);
      summary_json.set(prefix + "delay_updates_per_s", o.adaptations_per_s);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: both protocols sit near the 10 probes/s the "
               "device accepts, but SAPP adds retransmission traffic "
               "(duplicate-reply collisions at the serial device) that "
               "grows with k, while DCPP's retransmissions stay ~0.\n";
  benchutil::print_footer();
  return 0;
}
